//! Workspace-level integration tests: the full stack (solver → amr →
//! pm-octree → nvbm) exercised end to end, including the paper's
//! headline behaviours.

use pmoctree::amr::{
    check_balance, extract, EtreeBackend, InCoreBackend, OctreeBackend, PmBackend,
};
use pmoctree::cluster::{ClusterSim, Scheme};
use pmoctree::nvbm::{CrashMode, DeviceModel, NvbmArena};
use pmoctree::pm::{PmConfig, PmOctree};
use pmoctree::solver::{SimConfig, Simulation};

fn pm_backend(transform: bool) -> PmBackend {
    PmBackend::new(PmOctree::create(
        NvbmArena::new(96 << 20, DeviceModel::default()),
        PmConfig { dynamic_transform: transform, ..PmConfig::default() },
    ))
}

fn sim(steps: usize) -> Simulation {
    Simulation::new(SimConfig { steps, max_level: 4, base_level: 2, ..SimConfig::default() })
}

#[test]
fn full_simulation_crash_restore_resume() {
    // Simulate, crash mid-run, restore, resume, and finish: the restored
    // tree must behave exactly like a live one.
    let s = sim(8);
    let mut b = pm_backend(false);
    s.construct(&mut b);
    for step in 0..4 {
        s.step(&mut b, step);
    }
    let persisted = {
        let mut v = Vec::new();
        b.for_each_leaf(&mut |k, d| v.push((k, *d)));
        v.sort_by_key(|a| a.0);
        v
    };
    // Crash with random partial commits.
    let PmBackend { tree } = b;
    let mut arena = tree.store.arena;
    arena.crash(CrashMode::CommitRandom { p: 0.3, seed: 99 });
    let restored = PmOctree::restore(arena, PmConfig::default()).expect("restore after crash");
    let mut b = PmBackend::new(restored);
    let mut recovered = Vec::new();
    b.for_each_leaf(&mut |k, d| recovered.push((k, *d)));
    recovered.sort_by_key(|a| a.0);
    assert_eq!(recovered, persisted, "restore must reproduce the persisted mesh");
    // Resume the simulation on the restored tree.
    for step in 4..8 {
        s.step(&mut b, step);
    }
    assert!(check_balance(&mut b).is_none(), "resumed simulation keeps 2:1");
    assert!(b.leaf_count() > 64);
}

#[test]
fn mesh_extraction_from_simulated_tree() {
    let s = sim(3);
    let mut b = InCoreBackend::new();
    s.construct(&mut b);
    for step in 0..3 {
        s.step(&mut b, step);
    }
    let mesh = extract(&mut b);
    assert_eq!(mesh.cell_count(), b.leaf_count());
    assert!(mesh.vertex_count() > mesh.cell_count());
    // An adapted mesh has hanging nodes; a 2:1 mesh has bounded ones.
    assert!(mesh.dangling_count() > 0, "adapted mesh should hang nodes");
    assert!(mesh.dangling_count() < mesh.vertex_count() / 2);
    assert_eq!(mesh.anchored.len(), mesh.vertex_count());
}

#[test]
fn transformation_never_changes_results() {
    // The dynamic layout transformation is a pure performance lever: the
    // mesh and field data must be bit-identical with and without it.
    let leaves = |transform: bool| {
        let s = sim(5);
        let mut b = pm_backend(transform);
        if transform {
            b.tree.add_feature(pmoctree::solver::refinement_feature(
                s.interface,
                s.time.clone(),
                s.cfg.band_cells,
            ));
        }
        s.construct(&mut b);
        for step in 0..5 {
            s.step(&mut b, step);
        }
        let mut v = Vec::new();
        b.for_each_leaf(&mut |k, d| v.push((k, *d)));
        v.sort_by_key(|a| a.0);
        v
    };
    assert_eq!(leaves(false), leaves(true));
}

#[test]
fn three_schemes_one_cluster_same_elements() {
    let cfg = SimConfig { steps: 2, max_level: 4, base_level: 2, ..SimConfig::default() };
    let counts: Vec<usize> = [Scheme::pm_default(), Scheme::InCore, Scheme::Etree]
        .into_iter()
        .map(|scheme| {
            let mut c = ClusterSim::new(scheme, 3, cfg, 48 << 20);
            let r = c.run(2);
            r.steps.last().unwrap().elements
        })
        .collect();
    assert_eq!(counts[0], counts[1], "pm vs in-core cluster");
    assert_eq!(counts[0], counts[2], "pm vs etree cluster");
}

#[test]
fn nvbm_wear_stays_bounded() {
    // Deferred deletion + GC block reuse must not hammer one block: after
    // a full run, the hottest wear block stays within a small multiple of
    // the mean (no pathological hotspot besides the header).
    let s = sim(8);
    let mut b = pm_backend(false);
    s.construct(&mut b);
    for step in 0..8 {
        s.step(&mut b, step);
    }
    let stats = &b.tree.store.arena.stats;
    let max = stats.max_wear().0 as f64;
    let mean = stats.mean_wear().max(1.0);
    assert!(max / mean < 3_000.0, "wear hotspot: max {max} vs mean {mean}");
}

#[test]
fn etree_and_incore_survive_full_simulation() {
    let s = sim(6);
    let mut et = EtreeBackend::on_nvbm();
    let mut ic = InCoreBackend::new();
    s.run(&mut et);
    let r = s.run(&mut ic);
    assert!(r.total_secs() > 0.0);
    assert_eq!(et.leaf_count(), ic.leaf_count());
    // Etree paid vastly more virtual time through the FS interface.
    assert!(et.elapsed_ns() > ic.elapsed_ns());
}

#[test]
fn memory_extension_story() {
    // The headline capability: the working set exceeds the DRAM budget
    // and the simulation still runs, with the overflow in NVBM.
    let cfg = PmConfig {
        c0_capacity_octants: 128, // tiny DRAM
        dynamic_transform: false,
        ..PmConfig::default()
    };
    let mut b =
        PmBackend::new(PmOctree::create(NvbmArena::new(96 << 20, DeviceModel::default()), cfg));
    let s = Simulation::new(SimConfig {
        steps: 4,
        max_level: 5,
        base_level: 2,
        ..SimConfig::default()
    });
    s.construct(&mut b);
    for step in 0..4 {
        s.step(&mut b, step);
    }
    let total = b.leaf_count();
    let in_dram = b.tree.c0_octants();
    assert!(total > 500, "mesh should outgrow DRAM: {total}");
    assert!(in_dram <= 128, "C0 respects its budget: {in_dram}");
    assert!(b.tree.events.evictions > 0, "DRAM pressure must have evicted");
}
