//! # pmoctree — umbrella crate
//!
//! A reproduction of *"Large-Scale Adaptive Mesh Simulations Through
//! Non-Volatile Byte-Addressable Memory"* (SC'17): the **PM-octree**
//! persistent merged octree, its NVBM substrate, the two baseline octree
//! implementations from the paper's evaluation, the AMR meshing
//! routines, the droplet-ejection workload, and the multi-rank scaling
//! harness.
//!
//! This crate just re-exports the workspace members under friendly
//! names; see each module for the real documentation:
//!
//! * [`morton`] — locational codes and Morton-curve partitioning,
//! * [`nvbm`] — the emulated NVBM device (latency model, crash
//!   injection, persistent allocator),
//! * [`simfs`] — the simulated file system used by the baselines,
//! * [`pm`] — the PM-octree itself (`pm_create` / `pm_persistent` /
//!   `pm_restore` / `pm_delete`),
//! * [`rt`] — the orthogonal-persistence runtime (the same four verbs
//!   for *any* serializable object: named roots, `PPtr<T>`, atomic
//!   root-table swap),
//! * [`baselines`] — the in-core (Gerris-style) and out-of-core
//!   (Etree-style) octrees,
//! * [`amr`] — Construct / Refine & Coarsen / Balance / Partition /
//!   Extract over any backend,
//! * [`solver`] — the droplet-ejection workload,
//! * [`cluster`] — weak/strong scaling and failure-recovery harness.
//!
//! ```
//! use pmoctree::pm::{PmConfig, PmOctree};
//! use pmoctree::morton::OctKey;
//! use pmoctree::nvbm::{DeviceModel, NvbmArena};
//!
//! let arena = NvbmArena::new(8 << 20, DeviceModel::default());
//! let mut tree = PmOctree::create(arena, PmConfig::default());
//! tree.refine(OctKey::root()).unwrap();
//! tree.persist();
//! assert_eq!(tree.leaf_count(), 8);
//! ```
#![warn(missing_docs)]

pub use pm_octree as pm;
pub use pm_rt as rt;
pub use pmoctree_amr as amr;
pub use pmoctree_baselines as baselines;
pub use pmoctree_cluster as cluster;
pub use pmoctree_morton as morton;
pub use pmoctree_nvbm as nvbm;
pub use pmoctree_simfs as simfs;
pub use pmoctree_solver as solver;
