#!/usr/bin/env bash
# Local CI gate: build, full test suite, lints, formatting.
# Run from the repo root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
# SIMD-fallback gate: the Morton suite (including the SIMD==scalar
# property tests) must pass with the batch kernels pinned to the scalar
# path, proving the dispatch override and the fallback itself.
PMOCTREE_MORTON_FORCE_SCALAR=1 cargo test -p pmoctree-morton -q
# Crash-consistency gate: every crash opportunity x every injection mode
# must recover to exactly V_i or V_{i-1} (exits non-zero on violation).
# The opportunity space includes the per-thread interleaving schedules at
# write-domain publication boundaries (exits non-zero if none fired).
cargo run --release -p pmoctree-bench --bin repro -- crash-sweep --smoke
# Concurrent-write-domain gate: batched refine/coarsen/solve sweeps on one
# tree must be byte-identical (media, leaves, MemStats, reports) whether
# 1, 2 or 4 workers execute the domains.
cargo test --release -p pmoctree-cluster --test thread_invariance -q
# Orthogonal-persistence gate: runs crashed at sampled FailPlan
# opportunities (including rt::commit) must resume to a report — and
# hence a BENCH JSON — byte-identical to the uncrashed run, and
# whole-application PM restart must beat the fsync-charged
# file-checkpoint baseline >=10x (exits non-zero on either failure).
cargo run --release -p pmoctree-bench --bin repro -- recovery-rt --smoke
# Observability gate: a traced smoke workload must export a Chrome trace
# that the independent JSON-level validator accepts.
cargo run --release -p pmoctree-bench --bin repro -- droplet --quick --trace trace_smoke.json
cargo run --release -p pmoctree-bench --bin repro -- trace-check trace_smoke.json
rm -f trace_smoke.json
# Worker-pool determinism gate: the cluster smoke must emit byte-identical
# JSON whether the pool runs 1 worker or 4 (only wall-clock may differ).
cargo run --release -p pmoctree-bench --bin repro -- cluster-smoke --workers 1
mv BENCH_cluster_smoke.json BENCH_cluster_smoke.w1.json
cargo run --release -p pmoctree-bench --bin repro -- cluster-smoke --workers 4
if ! diff -q BENCH_cluster_smoke.w1.json BENCH_cluster_smoke.json; then
    echo "cluster smoke diverged between 1 and 4 workers" >&2
    exit 1
fi
rm -f BENCH_cluster_smoke.w1.json
# Multi-tenant service gate: the Zipf-skewed service benchmark (>=100
# tenants, pinned-snapshot isolation checks, quota rejections) must pass
# its internal gates and emit byte-identical JSON under 1 and 4 workers
# (the driver is single-threaded over the virtual clock by design).
cargo run --release -p pmoctree-bench --bin repro -- service --smoke --workers 1
mv BENCH_service.json BENCH_service.w1.json
cargo run --release -p pmoctree-bench --bin repro -- service --smoke --workers 4
if ! diff -q BENCH_service.w1.json BENCH_service.json; then
    echo "service benchmark diverged between 1 and 4 workers" >&2
    exit 1
fi
rm -f BENCH_service.w1.json
# Flight-recorder gate: the blackbox run (recorder on, recovered from the
# arena's own media, overhead measured against a recorder-off run) must
# pass its internal gates — well-formed dump, <=5% virtual-clock
# inflation — and emit byte-identical JSON under 1 and 4 workers.
cargo run --release -p pmoctree-bench --bin repro -- blackbox --quick --workers 1
mv BENCH_blackbox.json BENCH_blackbox.w1.json
cargo run --release -p pmoctree-bench --bin repro -- blackbox --quick --workers 4
if ! diff -q BENCH_blackbox.w1.json BENCH_blackbox.json; then
    echo "blackbox run diverged between 1 and 4 workers" >&2
    exit 1
fi
rm -f BENCH_blackbox.w1.json
# Wear-telemetry gate: after the write_fraction and service runs above,
# BENCH_wear.json must hold complete per-region/per-phase attribution
# for BOTH drivers (the shape is checked by trace-check below).
cargo run --release -p pmoctree-bench --bin repro -- write_fraction --quick
for d in droplet service; do
    if ! grep -q "\"driver\":\"$d\"" BENCH_wear.json; then
        echo "BENCH_wear.json is missing the $d driver" >&2
        exit 1
    fi
done
# Log-structured wear-leveling gate: the wear-level driver must pass its
# internal gates (>=1 wear-GC relocation, pinned snapshots byte-identical
# under relocation, bytes/commit and flatness against recorded baselines)
# and both its documents — BENCH_wear_level.json and the merged
# BENCH_wear.json — must be byte-identical under 1 and 4 workers.
cargo run --release -p pmoctree-bench --bin repro -- wear-level --smoke --workers 1
mv BENCH_wear_level.json BENCH_wear_level.w1.json
cp BENCH_wear.json BENCH_wear.w1.json
cargo run --release -p pmoctree-bench --bin repro -- wear-level --smoke --workers 4
if ! diff -q BENCH_wear_level.w1.json BENCH_wear_level.json ||
    ! diff -q BENCH_wear.w1.json BENCH_wear.json; then
    echo "wear-level benchmark diverged between 1 and 4 workers" >&2
    exit 1
fi
rm -f BENCH_wear_level.w1.json BENCH_wear.w1.json
if ! grep -q "\"driver\":\"wear-level\"" BENCH_wear.json; then
    echo "BENCH_wear.json is missing the wear-level driver" >&2
    exit 1
fi
# BENCH-document shape gate: trace-check validates every emitted
# BENCH_*.json (wear docs need all four regions + the 16-bucket
# histogram; blackbox needs a well-formed recovered dump).
for f in BENCH_*.json; do
    cargo run --release -p pmoctree-bench --bin repro -- trace-check "$f"
done
