//! Deterministic crash-opportunity accounting and injection.
//!
//! A *crash opportunity* is any point where dying would leave the media in
//! a state the program did not choose: immediately before a store enters
//! the dirty-line cache, before a line (or the whole cache) is written
//! back, and at every explicitly labelled protocol point
//! ([`NvbmArena::failpoint`](crate::arena::NvbmArena::failpoint)).
//!
//! Because the whole simulator is deterministic (virtual clock, seeded
//! RNGs, ordered dirty-line cache), the opportunity sequence of a workload
//! is reproducible: a counting run and a replay run visit the *same*
//! opportunities in the same order. A crash injected at opportunity `k`
//! therefore does not need to abort the process — the plan snapshots the
//! media image a reboot would find (current media plus the dirty cache
//! filtered through a [`CrashMode`]) and lets the workload continue. The
//! snapshot is byte-identical to what re-running the workload and killing
//! it at opportunity `k` would leave behind.
//!
//! Three observation modes:
//!
//! * [`FailPlan::count`] — record how many opportunities the workload has
//!   (the recorded run of a record/replay sweep);
//! * [`FailPlan::armed`] — capture the crashed image at one opportunity
//!   (the replay run; drive it from a property test or a sweep driver);
//! * [`FailPlan::with_hook`] — invoke a callback with a [`CrashView`] at
//!   *every* opportunity, so a sweep can verify recovery for each
//!   opportunity × mode pair in a single pass instead of `O(n)` replays.

use std::collections::BTreeMap;

use crate::arena::{apply_crash, CrashMode};
use crate::model::CACHELINE;

/// Callback invoked at every opportunity when a hook plan is installed.
/// `Send` so an arena carrying a plan can still move across rank threads.
pub type FailHook = Box<dyn FnMut(&CrashView<'_>) + Send>;

/// A read-only view of the device at one crash opportunity: the persistent
/// media plus the dirty lines that a crash would lose or partially commit.
pub struct CrashView<'a> {
    /// Opportunity index (0-based, monotone within a plan).
    pub opportunity: u64,
    /// Protocol label when this opportunity came from an explicit
    /// [`failpoint`](crate::arena::NvbmArena::failpoint) call.
    pub label: Option<&'static str>,
    media: &'a [u8],
    dirty: &'a BTreeMap<u64, [u8; CACHELINE]>,
}

impl<'a> CrashView<'a> {
    pub(crate) fn new(
        opportunity: u64,
        label: Option<&'static str>,
        media: &'a [u8],
        dirty: &'a BTreeMap<u64, [u8; CACHELINE]>,
    ) -> Self {
        CrashView { opportunity, label, media, dirty }
    }

    /// Number of dirty (unflushed) lines at this opportunity.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.len()
    }

    /// The media image a reboot would find if the crash happened here
    /// under `mode`. Allocates a fresh copy; the live arena is untouched.
    pub fn image(&self, mode: CrashMode) -> Vec<u8> {
        let mut media = self.media.to_vec();
        apply_crash(&mut media, self.dirty, mode, None);
        media
    }

    /// The media image a *clean* shutdown would find: every dirty line
    /// committed. An upper bound for what any crash image can contain —
    /// the sweep oracle compares a crashed flight-recorder dump against
    /// the dump recovered from this image.
    pub fn full_image(&self) -> Vec<u8> {
        let mut media = self.media.to_vec();
        for (&line, data) in self.dirty {
            let s = line as usize * CACHELINE;
            let e = (s + CACHELINE).min(media.len());
            media[s..e].copy_from_slice(&data[..e - s]);
        }
        media
    }
}

/// The crashed-media snapshot captured by an armed plan.
#[derive(Clone)]
pub struct CrashCapture {
    /// Opportunity index the crash was injected at.
    pub opportunity: u64,
    /// Label of the opportunity, when it was an explicit failpoint.
    pub label: Option<&'static str>,
    /// Crash mode that produced the image.
    pub mode: CrashMode,
    /// Media image as a rebooted node would find it.
    pub media: Vec<u8>,
}

impl std::fmt::Debug for CrashCapture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashCapture")
            .field("opportunity", &self.opportunity)
            .field("label", &self.label)
            .field("mode", &self.mode)
            .field("media_len", &self.media.len())
            .finish()
    }
}

/// Crash-opportunity plan installed on an
/// [`NvbmArena`](crate::arena::NvbmArena).
#[derive(Default)]
pub struct FailPlan {
    counter: u64,
    armed: Option<(u64, CrashMode)>,
    capture: Option<CrashCapture>,
    hook: Option<FailHook>,
    labels: Vec<(u64, &'static str)>,
    interleavings: u64,
}

impl std::fmt::Debug for FailPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailPlan")
            .field("counter", &self.counter)
            .field("armed", &self.armed)
            .field("captured", &self.capture.is_some())
            .field("hook", &self.hook.is_some())
            .field("labels", &self.labels.len())
            .finish()
    }
}

impl FailPlan {
    /// A counting plan: records the opportunity total and labels, injects
    /// nothing.
    pub fn count() -> Self {
        FailPlan::default()
    }

    /// An armed plan: capture the crashed image at opportunity `at` under
    /// `mode`. The workload continues normally afterwards; fetch the image
    /// with [`FailPlan::take_capture`].
    pub fn armed(at: u64, mode: CrashMode) -> Self {
        FailPlan { armed: Some((at, mode)), ..FailPlan::default() }
    }

    /// A hook plan: `f` runs at every opportunity with a [`CrashView`].
    pub fn with_hook(f: FailHook) -> Self {
        FailPlan { hook: Some(f), ..FailPlan::default() }
    }

    /// Opportunities observed so far.
    pub fn opportunities(&self) -> u64 {
        self.counter
    }

    /// Interleaving opportunities observed so far: crash points injected
    /// at domain-publication boundaries, where the dirty image presented
    /// to the oracle is the base cache *plus a deterministic prefix* of
    /// the per-thread write domains (the thread-choice schedule). Always
    /// ≤ [`FailPlan::opportunities`]; the crash-sweep drivers assert it
    /// is non-zero once domain-parallel sweeps run under the plan.
    pub fn interleavings(&self) -> u64 {
        self.interleavings
    }

    /// `(opportunity, label)` pairs of the labelled opportunities seen so
    /// far, in order.
    pub fn labels(&self) -> &[(u64, &'static str)] {
        &self.labels
    }

    /// Take the captured crash image, if the armed opportunity has been
    /// reached.
    pub fn take_capture(&mut self) -> Option<CrashCapture> {
        self.capture.take()
    }

    /// Called by the arena at each opportunity. `media`/`dirty` describe
    /// the device state *before* the operation the opportunity precedes.
    pub(crate) fn observe(
        &mut self,
        label: Option<&'static str>,
        media: &[u8],
        dirty: &BTreeMap<u64, [u8; CACHELINE]>,
    ) {
        let op = self.counter;
        self.counter += 1;
        if let Some(l) = label {
            self.labels.push((op, l));
        }
        let view = CrashView::new(op, label, media, dirty);
        if let Some((at, mode)) = self.armed {
            if at == op && self.capture.is_none() {
                self.capture =
                    Some(CrashCapture { opportunity: op, label, mode, media: view.image(mode) });
            }
        }
        if let Some(hook) = self.hook.as_mut() {
            hook(&view);
        }
    }

    /// Like [`FailPlan::observe`], for a *per-thread interleaving*
    /// opportunity: `dirty` is the base dirty cache merged with the
    /// overlays of the domains absorbed so far, i.e. the image a crash
    /// would leave if the scheduler had run exactly that prefix of
    /// domains before dying. Counted both as a regular opportunity and
    /// in [`FailPlan::interleavings`].
    pub(crate) fn observe_interleave(
        &mut self,
        label: Option<&'static str>,
        media: &[u8],
        dirty: &BTreeMap<u64, [u8; CACHELINE]>,
    ) {
        self.interleavings += 1;
        self.observe(label, media, dirty);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::arena::{CrashMode, NvbmArena, POffset};
    use crate::model::DeviceModel;
    use std::sync::{Arc, Mutex};

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 20, DeviceModel::default())
    }

    /// A tiny deterministic workload: returns the arena afterwards.
    fn workload(a: &mut NvbmArena) {
        a.write(4096, b"aaaa");
        a.failpoint("phase::one");
        a.write(8192, b"bbbb");
        a.flush_all();
        a.set_root(0, POffset(4096));
        a.failpoint("phase::two");
        a.write(12288, b"cccc");
    }

    #[test]
    fn counting_is_deterministic() {
        let count = |_| {
            let mut a = arena();
            a.set_fail_plan(FailPlan::count());
            workload(&mut a);
            let plan = a.take_fail_plan().unwrap();
            (plan.opportunities(), plan.labels().to_vec())
        };
        let (n1, l1) = count(0);
        let (n2, l2) = count(1);
        assert_eq!(n1, n2);
        assert_eq!(l1, l2);
        assert!(n1 >= 7, "writes + flushes + 2 labels + root store: {n1}");
        assert_eq!(l1.iter().filter(|(_, l)| *l == "phase::one").count(), 1);
    }

    #[test]
    fn armed_capture_equals_replay_crash() {
        // Count first.
        let mut a = arena();
        a.set_fail_plan(FailPlan::count());
        workload(&mut a);
        let total = a.take_fail_plan().unwrap().opportunities();
        for k in 0..total {
            let mode = CrashMode::LoseDirty;
            // Armed run: capture at k, workload continues to completion.
            let mut armed = arena();
            armed.set_fail_plan(FailPlan::armed(k, mode));
            workload(&mut armed);
            let cap = armed.take_fail_plan().unwrap().take_capture().expect("captured");
            assert_eq!(cap.opportunity, k);
            // Replay run: stop the workload at opportunity k and crash.
            let stopper = Arc::new(Mutex::new(None::<Vec<u8>>));
            let got = stopper.clone();
            let mut replay = arena();
            replay.set_fail_plan(FailPlan::with_hook(Box::new(move |view| {
                let mut slot = got.lock().unwrap();
                if view.opportunity == k && slot.is_none() {
                    *slot = Some(view.image(mode));
                }
            })));
            workload(&mut replay);
            let replayed = stopper.lock().unwrap().take().expect("hook image");
            assert_eq!(cap.media, replayed, "opportunity {k}");
        }
    }

    #[test]
    fn hook_sees_every_opportunity_in_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let log = seen.clone();
        let mut a = arena();
        a.set_fail_plan(FailPlan::with_hook(Box::new(move |view| {
            log.lock().unwrap().push((view.opportunity, view.label));
        })));
        workload(&mut a);
        let total = a.take_fail_plan().unwrap().opportunities();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len() as u64, total);
        for (i, (op, _)) in seen.iter().enumerate() {
            assert_eq!(*op, i as u64);
        }
        assert!(seen.iter().any(|(_, l)| *l == Some("phase::two")));
    }

    #[test]
    fn torn_image_preserves_word_atomicity() {
        let mut a = arena();
        // Persist a known root, then overwrite it without flushing.
        a.set_root(0, POffset(0x1000));
        a.write(16, &0x2000u64.to_le_bytes()); // root slot 0, dirty
        a.set_fail_plan(FailPlan::armed(0, CrashMode::TornWrite { seed: 7 }));
        a.failpoint("check");
        let cap = a.take_fail_plan().unwrap().take_capture().unwrap();
        let raw = u64::from_le_bytes(cap.media[16..24].try_into().unwrap());
        assert!(raw == 0x1000 || raw == 0x2000, "8-byte store must not tear mid-word: {raw:#x}");
    }
}
