//! The emulated NVBM device: a byte-addressable arena with a CPU-cache
//! write-back model.
//!
//! Stores go into a bounded *dirty-line cache* first and only reach the
//! persistent media when flushed, evicted, or explicitly persisted — this
//! reproduces the hazard the paper describes in §1: "CPU cache does not
//! guarantee the order of writing the octant and writing the pointer".
//! [`NvbmArena::crash`] drops (or randomly commits) dirty lines, letting
//! tests check that PM-octree's multi-version protocol survives arbitrary
//! write reordering without fences.
//!
//! Every access charges the Table 2 latency model onto a [`VirtualClock`]
//! and updates [`MemStats`].

use std::collections::BTreeMap;
use std::path::Path;

use crate::clock::VirtualClock;
use crate::failplan::FailPlan;
use crate::model::{DeviceModel, CACHELINE};
use crate::pins::EpochPins;
use crate::recorder::{self, RecKind, RecorderDump, OFF_REC_BASE, OFF_REC_SLOTS};
use crate::region::RegionManager;
use crate::stats::MemStats;
use pmoctree_obsv::{Span, Tracer};

/// Persistent offset within an NVBM arena. Offset 0 is the device header,
/// so 0 doubles as the null pointer in on-media structures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct POffset(pub u64);

impl POffset {
    /// The on-media null pointer.
    pub const NULL: POffset = POffset(0);

    /// Is this the null pointer?
    #[inline]
    pub fn is_null(&self) -> bool {
        self.0 == 0
    }

    /// Convert to `Option`, mapping null to `None`.
    #[inline]
    pub fn opt(self) -> Option<POffset> {
        if self.is_null() {
            None
        } else {
            Some(self)
        }
    }
}

/// How a simulated crash treats the dirty-line cache.
#[derive(Clone, Copy, Debug)]
pub enum CrashMode {
    /// All unflushed lines are lost (power cut before any eviction).
    LoseDirty,
    /// Each dirty line independently reaches the media with probability
    /// `p` — models arbitrary cache eviction order at the moment of
    /// failure. `seed` makes the outcome reproducible.
    CommitRandom {
        /// Per-line survival probability in `[0, 1]`.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Torn cacheline write-back: each dirty line commits a random
    /// *prefix* of its 64 bytes — the line was mid-transfer when power
    /// failed. Prefix lengths are 8-byte-aligned (0..=64 in steps of 8)
    /// because the platform guarantees atomic persistence of aligned
    /// 8-byte stores; anything wider can tear. `seed` makes the outcome
    /// reproducible.
    TornWrite {
        /// RNG seed.
        seed: u64,
    },
}

/// Apply a crash to `media`: commit (part of) the dirty lines according to
/// `mode`. Shared by [`NvbmArena::crash`] (which destroys the cache) and
/// [`CrashView::image`](crate::failplan::CrashView::image) (which builds a
/// virtual snapshot while the run continues). `stats` is charged for wear
/// only when the caller is the live arena.
pub(crate) fn apply_crash(
    media: &mut [u8],
    cache: &BTreeMap<u64, [u8; CACHELINE]>,
    mode: CrashMode,
    mut stats: Option<&mut MemStats>,
) {
    // Small deterministic xorshift so the crate doesn't need a rand
    // dependency on its hot path.
    let mut state = match mode {
        CrashMode::LoseDirty => 0,
        CrashMode::CommitRandom { seed, .. } | CrashMode::TornWrite { seed } => seed | 1,
    };
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    match mode {
        CrashMode::LoseDirty => {}
        CrashMode::CommitRandom { p, .. } => {
            for (&line, data) in cache {
                let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
                if u < p {
                    commit_line_to(media, stats.as_deref_mut(), line, data);
                }
            }
        }
        CrashMode::TornWrite { .. } => {
            for (&line, data) in cache {
                // Prefix of k words, k uniform in 0..=8.
                let words = (next() % 9) as usize;
                if words == 0 {
                    continue;
                }
                let s = line as usize * CACHELINE;
                let e = (s + words * 8).min(media.len());
                if s >= e {
                    continue;
                }
                media[s..e].copy_from_slice(&data[..e - s]);
                if let Some(st) = stats.as_deref_mut() {
                    st.wear_commit(s as u64, e - s);
                }
            }
        }
    }
}

/// Overlay the dirty cachelines in `cache` onto `buf`, which holds the
/// media bytes at `[offset, offset + buf.len())`. Shared by the live
/// arena's [`NvbmArena::read`], [`ArenaSnapshot::read_into`] and the
/// per-domain [`ShardWriter`] overlay.
fn apply_overlay(cache: &BTreeMap<u64, [u8; CACHELINE]>, offset: u64, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let first = offset / CACHELINE as u64;
    let last = (offset + buf.len() as u64 - 1) / CACHELINE as u64;
    for (&line, data) in cache.range(first..=last) {
        let line_start = line * CACHELINE as u64;
        // Intersection of [line_start, line_start+64) with [offset, offset+len).
        let lo = line_start.max(offset);
        let hi = (line_start + CACHELINE as u64).min(offset + buf.len() as u64);
        if lo < hi {
            let src = (lo - line_start) as usize..(hi - line_start) as usize;
            let dst = (lo - offset) as usize..(hi - offset) as usize;
            buf[dst].copy_from_slice(&data[src]);
        }
    }
}

/// Commit one full cacheline to `media`, charging wear when stats are live.
fn commit_line_to(
    media: &mut [u8],
    stats: Option<&mut MemStats>,
    line: u64,
    data: &[u8; CACHELINE],
) {
    let s = line as usize * CACHELINE;
    let e = (s + CACHELINE).min(media.len());
    media[s..e].copy_from_slice(&data[..e - s]);
    if let Some(st) = stats {
        st.wear_commit(s as u64, e - s);
    }
}

/// Size of the device header (root slots, epoch, allocator bump pointer).
pub const HEADER_SIZE: u64 = 256;

const MAGIC: u64 = 0x504d_4f43_5452_4545; // "PMOCTREE"-ish
const OFF_MAGIC: u64 = 0;
const OFF_EPOCH: u64 = 8;
const OFF_ROOT0: u64 = 16;
#[allow(dead_code)]
const OFF_ROOT1: u64 = 24;
const OFF_BUMP: u64 = 32;
const OFF_RT_ROOT: u64 = 40;
const OFF_RT_BUMP: u64 = 48;

/// Number of 8-byte root slots in the header.
pub const ROOT_SLOTS: usize = 2;

/// Emulated NVBM arena.
pub struct NvbmArena {
    media: Vec<u8>,
    /// Dirty cachelines (line index → line bytes). BTreeMap keeps eviction
    /// deterministic; crash randomness comes from [`CrashMode`].
    cache: BTreeMap<u64, [u8; CACHELINE]>,
    cache_cap: usize,
    model: DeviceModel,
    /// Virtual clock charged by every access.
    pub clock: VirtualClock,
    /// Access statistics (NVBM tier + caller-recorded DRAM tier).
    pub stats: MemStats,
    /// Tracing journal for this device. Disabled (free) by default;
    /// attach with `arena.tracer = Tracer::enabled(tid)`. Span guards from
    /// [`NvbmArena::span`] stamp begin/end with this arena's [`VirtualClock`].
    pub tracer: Tracer,
    /// Installed crash-opportunity plan (see [`FailPlan`]).
    plan: Option<FailPlan>,
    /// The device address space as explicit typed regions (root table,
    /// octree, rt heap, recorder) with live edges: the octree
    /// bump-allocates upward in `[HEADER_SIZE, octree_edge)` and the
    /// `pm-rt` heap grows downward in `[rt_floor, heap_top)`. Each side
    /// publishes its edge here and consults the other's before growing,
    /// so neither can silently overwrite committed state the other owns.
    /// Not part of the media: re-derived (conservatively, from the
    /// persisted header hints) on `from_media`/`restore_media`, then
    /// corrected by each subsystem's restore.
    regions: RegionManager,
    /// Refcounted pins on `pm-rt` root-table epochs (MVCC snapshot
    /// readers). Volatile: invalidated whenever the media is replaced,
    /// because the pinned epochs belong to the old lineage.
    rt_pins: EpochPins,
    /// Flight-recorder ring base (from the header descriptor; 0 = none).
    rec_base: u64,
    /// Flight-recorder ring capacity in one-cacheline slots (0 = none).
    rec_slots: usize,
    /// Next recorder sequence number (volatile; re-derived from the
    /// recovered ring on `from_media`/`restore_media`).
    rec_next_seq: u64,
    /// Recorder on/off switch (volatile). On by default; benches flip it
    /// off to measure the recorder's virtual-clock overhead.
    rec_enabled: bool,
}

/// Derive the live allocation boundaries from a media image's header:
/// the persisted bump / rt-floor hints, clamped into the arena. A zero
/// rt hint means the rt heap was never used (floor = top of the heap —
/// the flight-recorder ring base when one is present, else capacity).
fn derive_live_bounds(media: &[u8]) -> (u64, u64) {
    let cap = media.len() as u64;
    let rd = |off: u64| {
        let s = off as usize;
        u64::from_le_bytes(media[s..s + 8].try_into().expect("header slot"))
    };
    let bump = rd(OFF_BUMP).clamp(HEADER_SIZE, cap);
    let top = match recorder::region_of(media) {
        Some((base, slots)) if slots > 0 => base,
        _ => cap,
    };
    let rt = rd(OFF_RT_BUMP);
    let floor = if rt == 0 { top } else { rt.clamp(HEADER_SIZE, top) };
    (bump, floor)
}

impl NvbmArena {
    /// Create a fresh, zeroed arena of `capacity` bytes with a default
    /// dirty-cache of 4096 lines (256 KiB, an L2-ish footprint) and a
    /// default-sized flight-recorder ring (see
    /// [`NvbmArena::default_recorder_slots`]).
    pub fn new(capacity: usize, model: DeviceModel) -> Self {
        let slots = Self::default_recorder_slots(capacity);
        Self::new_with_recorder(capacity, model, slots)
    }

    /// Default recorder sizing: 1/8th of the device, capped at 256 slots
    /// (16 KiB); 0 (disabled) for devices too small to spare a slot.
    pub fn default_recorder_slots(capacity: usize) -> usize {
        if (capacity as u64) < HEADER_SIZE + CACHELINE as u64 {
            return 0;
        }
        (capacity / 8 / CACHELINE).min(256)
    }

    /// [`NvbmArena::new`] with an explicit flight-recorder ring capacity
    /// (`slots` one-cacheline entries carved from the top of the device;
    /// 0 disables the recorder).
    pub fn new_with_recorder(capacity: usize, model: DeviceModel, slots: usize) -> Self {
        assert!(capacity as u64 >= HEADER_SIZE, "arena smaller than header");
        let rec_bytes = (slots * CACHELINE) as u64;
        assert!(
            rec_bytes == 0 || HEADER_SIZE + rec_bytes <= capacity as u64,
            "recorder ring ({rec_bytes} bytes) does not fit in {capacity} bytes"
        );
        let rec_base =
            if slots == 0 { 0 } else { (capacity as u64 - rec_bytes) & !(CACHELINE as u64 - 1) };
        let heap_top = if slots == 0 { capacity as u64 } else { rec_base };
        let mut stats = MemStats::new(capacity);
        stats.set_region_bounds(rec_base, heap_top);
        let mut a = NvbmArena {
            media: vec![0; capacity],
            cache: BTreeMap::new(),
            cache_cap: 4096,
            model,
            clock: VirtualClock::new(),
            stats,
            tracer: Tracer::default(),
            plan: None,
            regions: RegionManager::new(capacity as u64, rec_base),
            rt_pins: EpochPins::new(),
            rec_base,
            rec_slots: slots,
            rec_next_seq: 1,
            rec_enabled: true,
        };
        a.format();
        a
    }

    /// Build an arena directly over a media image (e.g. a crash snapshot
    /// from a [`FailPlan`] capture). The dirty cache starts cold, exactly
    /// like a rebooted node. The flight recorder is recovered from the
    /// image: recording continues after the last surviving entry.
    pub fn from_media(media: Vec<u8>, model: DeviceModel) -> Self {
        assert!(media.len() as u64 >= HEADER_SIZE, "image too small");
        let mut stats = MemStats::new(media.len());
        let (octree_edge, rt_floor) = derive_live_bounds(&media);
        let (rec_base, rec_slots) = recorder::region_of(&media).unwrap_or((0, 0));
        let rec_next_seq = recorder::recover(&media).last().map_or(1, |e| e.seq + 1);
        stats.set_region_bounds(rec_base, rt_floor);
        let regions =
            RegionManager::from_bounds(media.len() as u64, rec_base, octree_edge, rt_floor);
        NvbmArena {
            media,
            cache: BTreeMap::new(),
            cache_cap: 4096,
            model,
            clock: VirtualClock::new(),
            stats,
            tracer: Tracer::default(),
            plan: None,
            regions,
            rt_pins: EpochPins::new(),
            rec_base,
            rec_slots,
            rec_next_seq,
            rec_enabled: true,
        }
    }

    // ---- tracing ---------------------------------------------------------

    /// Open a tracing span stamped with this arena's virtual clock. A
    /// no-op guard when no tracer is attached.
    pub fn span(&self, name: &'static str) -> Span {
        if !self.tracer.is_enabled() {
            return Span::noop();
        }
        let clock = self.clock.clone();
        self.tracer.span(name, move || clock.now_ns())
    }

    /// [`NvbmArena::span`] with a numeric argument (e.g. a step index).
    pub fn span_arg(&self, name: &'static str, arg: u64) -> Span {
        if !self.tracer.is_enabled() {
            return Span::noop();
        }
        let clock = self.clock.clone();
        self.tracer.span_arg(name, arg, move || clock.now_ns())
    }

    /// Record a point event at the current virtual time (e.g. a sampling
    /// decision). No-op when tracing is disabled.
    pub fn instant(&self, name: &'static str, arg: Option<u64>) {
        if self.tracer.is_enabled() {
            self.tracer.instant(name, self.clock.now_ns(), arg);
        }
    }

    /// Publish the ad-hoc [`MemStats`] accumulators into the tracer's
    /// metrics registry (counters for tier/traversal totals, gauges for
    /// wear), so one metrics snapshot carries everything. No-op when
    /// tracing is disabled.
    pub fn publish_metrics(&self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let t = &self.tracer;
        let s = &self.stats;
        t.counter_set("nvbm.read_lines", s.nvbm.read_lines);
        t.counter_set("nvbm.write_lines", s.nvbm.write_lines);
        t.counter_set("nvbm.bytes_read", s.nvbm.bytes_read);
        t.counter_set("nvbm.bytes_written", s.nvbm.bytes_written);
        t.counter_set("dram.read_lines", s.dram.read_lines);
        t.counter_set("dram.write_lines", s.dram.write_lines);
        t.counter_set("dram.bytes_read", s.dram.bytes_read);
        t.counter_set("dram.bytes_written", s.dram.bytes_written);
        t.counter_set("trav.root_descents", s.trav.root_descents);
        t.counter_set("trav.index_hits", s.trav.index_hits);
        t.counter_set("trav.index_rebuilds", s.trav.index_rebuilds);
        t.counter_set("trav.index_rebuild_octants", s.trav.index_rebuild_octants);
        t.counter_set("trav.descent_lines", s.trav.descent_lines);
        t.gauge_set("trav.charged_lines_per_descent", s.trav.charged_lines_per_descent());
        let (max_wear, max_wear_offset) = s.max_wear();
        t.gauge_set("wear.max", max_wear as f64);
        t.gauge_set("wear.max_offset", max_wear_offset as f64);
        t.gauge_set("wear.mean", s.mean_wear());
        t.gauge_set("wear.flatness", s.wear_flatness());
        t.counter_set("wear.relocations", s.relocations());
        t.counter_set("wear.relocated_bytes", s.relocated_bytes());
        let by_region = s.bytes_by_region();
        t.counter_set("wear.bytes.root_table", by_region[0]);
        t.counter_set("wear.bytes.octree", by_region[1]);
        t.counter_set("wear.bytes.rt_heap", by_region[2]);
        t.counter_set("wear.bytes.recorder", by_region[3]);
        for (phase, bytes) in s.bytes_by_phase() {
            t.counter_set_labeled("wear.bytes_by_phase", &format!("phase=\"{phase}\""), bytes);
        }
        t.counter_set("recorder.entries", self.rec_next_seq - 1);
        t.gauge_set("write_fraction", s.overall_write_fraction());
        t.gauge_set("clock.now_secs", self.clock.now_secs());
    }

    // ---- flight recorder -------------------------------------------------

    /// The flight-recorder ring geometry `(base, slots)`; `(0, 0)` when
    /// the device carries no recorder.
    pub fn recorder_region(&self) -> (u64, usize) {
        (self.rec_base, self.rec_slots)
    }

    /// Highest offset the downward-growing rt heap may occupy: the base
    /// of the recorder ring when one is carved, the device capacity
    /// otherwise. `pm-rt` uses this instead of [`NvbmArena::capacity`] so
    /// heap objects never collide with the ring.
    pub fn rt_heap_top(&self) -> u64 {
        self.regions.heap_top()
    }

    /// Disable or re-enable recording (volatile switch; the persisted
    /// ring is untouched). Benches use this to measure the recorder's
    /// virtual-clock overhead.
    pub fn set_recorder_enabled(&mut self, on: bool) {
        self.rec_enabled = on;
    }

    /// Whether recording is live (a ring exists and is enabled).
    pub fn recorder_enabled(&self) -> bool {
        self.rec_enabled && self.rec_slots > 0
    }

    /// Append one entry to the flight recorder: a single cacheline store
    /// followed by a line flush — the exact discipline real data uses, so
    /// the entry is durable the moment this returns and a crash sweep
    /// injecting *during* the append can at worst tear this one entry.
    pub fn rec_mark(&mut self, kind: RecKind, label: &'static str, arg: u64) {
        if !self.recorder_enabled() {
            return;
        }
        let seq = self.rec_next_seq;
        let slot = (seq - 1) % self.rec_slots as u64;
        let off = self.rec_base + slot * CACHELINE as u64;
        let bytes = recorder::encode_slot(seq, self.clock.now_ns(), arg, kind, label);
        self.write(off, &bytes);
        self.flush_line(off);
        self.rec_next_seq = seq + 1;
    }

    /// Recover the flight recorder from this arena's *durable* view (the
    /// media, not the dirty cache) — exactly what a post-crash reboot
    /// would see.
    pub fn recorder_dump(&self) -> RecorderDump {
        recorder::recover(&self.media)
    }

    // ---- write attribution ----------------------------------------------

    /// Set the protocol phase that committed bytes are attributed to (see
    /// [`MemStats::set_phase`]); returns the previous phase so callers
    /// restore it when their phase ends.
    pub fn set_phase(&mut self, phase: &'static str) -> &'static str {
        self.stats.set_phase(phase)
    }

    // ---- crash-opportunity plan -----------------------------------------

    /// Install a crash-opportunity plan. Replaces any existing plan.
    pub fn set_fail_plan(&mut self, plan: FailPlan) {
        self.plan = Some(plan);
    }

    /// Remove and return the installed plan (with its counters/capture).
    pub fn take_fail_plan(&mut self) -> Option<FailPlan> {
        self.plan.take()
    }

    /// The installed plan, if any.
    pub fn fail_plan(&self) -> Option<&FailPlan> {
        self.plan.as_ref()
    }

    /// An explicit, labelled crash opportunity: protocol code calls this
    /// between phases (e.g. `"gc::sweep"`, `"persist::root_swap"`) so
    /// sweeps can attribute opportunities to protocol phases. The label
    /// is first appended (and flushed) to the flight recorder, so at the
    /// moment a sweep injects a crash here, the recorder's newest durable
    /// entry *is* this failpoint.
    pub fn failpoint(&mut self, label: &'static str) {
        self.rec_mark(RecKind::Failpoint, label, 0);
        self.opportunity(Some(label));
    }

    /// Fire one crash opportunity. No-op unless a plan is installed.
    #[inline]
    fn opportunity(&mut self, label: Option<&'static str>) {
        let Some(mut plan) = self.plan.take() else {
            return;
        };
        plan.observe(label, &self.media, &self.cache);
        self.plan = Some(plan);
    }

    /// Change the dirty-line cache capacity (lines).
    pub fn set_cache_lines(&mut self, lines: usize) {
        self.cache_cap = lines.max(1);
        self.evict_over_cap();
    }

    /// Write the header magic, zeroed roots, and the flight-recorder ring
    /// descriptor, bypassing the cache (a freshly formatted device is by
    /// definition persistent).
    fn format(&mut self) {
        self.media[..HEADER_SIZE as usize].fill(0);
        self.media[OFF_MAGIC as usize..OFF_MAGIC as usize + 8]
            .copy_from_slice(&MAGIC.to_le_bytes());
        let bump = HEADER_SIZE;
        self.media[OFF_BUMP as usize..OFF_BUMP as usize + 8].copy_from_slice(&bump.to_le_bytes());
        self.media[OFF_REC_BASE as usize..OFF_REC_BASE as usize + 8]
            .copy_from_slice(&self.rec_base.to_le_bytes());
        self.media[OFF_REC_SLOTS as usize..OFF_REC_SLOTS as usize + 8]
            .copy_from_slice(&(self.rec_slots as u64).to_le_bytes());
    }

    /// Device capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.media.len()
    }

    /// The timing model in force.
    #[inline]
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    fn check_range(&self, offset: u64, len: usize) {
        assert!(
            offset.checked_add(len as u64).is_some_and(|end| end <= self.media.len() as u64),
            "NVBM access out of bounds: offset {offset} len {len} capacity {}",
            self.media.len()
        );
    }

    /// Read `buf.len()` bytes at `offset`, observing un-flushed stores
    /// (the CPU reads through its own cache).
    pub fn read(&mut self, offset: u64, buf: &mut [u8]) {
        self.check_range(offset, buf.len());
        let lines = DeviceModel::lines(offset, buf.len());
        self.clock.advance(lines * self.model.nvbm.read_ns);
        self.stats.nvbm_read(buf.len(), lines);
        buf.copy_from_slice(&self.media[offset as usize..offset as usize + buf.len()]);
        // Overlay dirty lines.
        apply_overlay(&self.cache, offset, buf);
    }

    /// Write `data` at `offset`. The store lands in the dirty-line cache;
    /// it reaches the media on flush, eviction, or a lucky crash.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        self.check_range(offset, data.len());
        if data.is_empty() {
            return;
        }
        self.opportunity(None);
        let lines = DeviceModel::lines(offset, data.len());
        self.clock.advance(lines * self.model.nvbm.write_ns);
        self.stats.nvbm_write(data.len(), lines);
        let first = offset / CACHELINE as u64;
        let last = (offset + data.len() as u64 - 1) / CACHELINE as u64;
        for line in first..=last {
            let line_start = line * CACHELINE as u64;
            let entry = self.cache.entry(line).or_insert_with(|| {
                // Read-modify-write: seed the cacheline from media.
                let mut l = [0u8; CACHELINE];
                let s = line_start as usize;
                let e = (s + CACHELINE).min(self.media.len());
                l[..e - s].copy_from_slice(&self.media[s..e]);
                l
            });
            let lo = line_start.max(offset);
            let hi = (line_start + CACHELINE as u64).min(offset + data.len() as u64);
            let src = (lo - offset) as usize..(hi - offset) as usize;
            let dst = (lo - line_start) as usize..(hi - line_start) as usize;
            entry[dst].copy_from_slice(&data[src]);
        }
        self.evict_over_cap();
    }

    fn commit_line(media: &mut [u8], stats: &mut MemStats, line: u64, data: &[u8; CACHELINE]) {
        commit_line_to(media, Some(stats), line, data);
    }

    fn evict_over_cap(&mut self) {
        while self.cache.len() > self.cache_cap {
            let (line, data) = self.cache.pop_first().expect("cache non-empty");
            Self::commit_line(&mut self.media, &mut self.stats, line, &data);
        }
    }

    /// Flush one cacheline (the `clflush` analogue). Charges one write
    /// latency for the media commit.
    pub fn flush_line(&mut self, offset: u64) {
        let line = offset / CACHELINE as u64;
        if self.cache.contains_key(&line) {
            self.opportunity(None);
        }
        if let Some(data) = self.cache.remove(&line) {
            self.clock.advance(self.model.nvbm.write_ns);
            Self::commit_line(&mut self.media, &mut self.stats, line, &data);
        }
    }

    /// Flush every dirty line (an `sfence` + full write-back). Used at
    /// persist points and before [`Self::save`].
    pub fn flush_all(&mut self) {
        if !self.cache.is_empty() {
            self.opportunity(None);
        }
        let cache = std::mem::take(&mut self.cache);
        self.clock.advance(cache.len() as u64 * self.model.nvbm.write_ns);
        for (line, data) in cache {
            Self::commit_line(&mut self.media, &mut self.stats, line, &data);
        }
    }

    /// Number of dirty (unflushed) lines.
    pub fn dirty_lines(&self) -> usize {
        self.cache.len()
    }

    /// Simulate a crash: dirty lines are lost or partially committed per
    /// `mode`; the cache is emptied either way. The media afterwards is
    /// exactly what a rebooted node would find in its NVBM.
    pub fn crash(&mut self, mode: CrashMode) {
        let cache = std::mem::take(&mut self.cache);
        apply_crash(&mut self.media, &cache, mode, Some(&mut self.stats));
    }

    // ---- domain-parallel shard support -----------------------------------

    /// An immutable snapshot of the CPU-visible device state (persistent
    /// media overlaid by a frozen copy of the dirty-line cache), taken at
    /// a domain-parallel sweep's fork point. `Sync`: N worker threads read
    /// through it concurrently while each buffers its own stores in a
    /// [`ShardWriter`].
    pub fn snapshot(&self) -> ArenaSnapshot<'_> {
        ArenaSnapshot { media: &self.media, dirty: self.cache.clone(), model: self.model }
    }

    /// Absorb one write domain's buffered stores at the join point of a
    /// domain-parallel sweep. Called serially in a fixed domain order
    /// independent of the worker count, so the resulting cache, virtual
    /// clock, stats and flight recorder are byte-identical for any number
    /// of workers.
    ///
    /// The publication edge is recorded as a *per-thread interleaving*
    /// crash opportunity before the merge: the dirty image handed to the
    /// installed [`FailPlan`] is the current cache plus this delta — the
    /// state a crash would leave had the scheduler absorbed exactly this
    /// prefix of domains before dying. As with [`NvbmArena::failpoint`],
    /// the label is first appended durably to the flight recorder.
    pub fn absorb_shard(&mut self, label: &'static str, delta: ShardDelta) {
        self.rec_mark(RecKind::Failpoint, label, delta.overlay.len() as u64);
        if let Some(mut plan) = self.plan.take() {
            let mut merged = self.cache.clone();
            for (&line, data) in &delta.overlay {
                merged.insert(line, *data);
            }
            plan.observe_interleave(Some(label), &self.media, &merged);
            self.plan = Some(plan);
        }
        self.clock.advance(delta.clock_ns);
        self.stats.nvbm_read(delta.read_bytes as usize, delta.read_lines);
        self.stats.nvbm_write(delta.write_bytes as usize, delta.write_lines);
        for (line, data) in delta.overlay {
            self.cache.insert(line, data);
        }
        self.evict_over_cap();
    }

    // ---- device header -------------------------------------------------

    /// An 8-byte header write, immediately flushed: the one place the
    /// protocol relies on an atomic persistent store (root-pointer swap).
    fn header_write_u64(&mut self, off: u64, v: u64) {
        debug_assert!(off + 8 <= HEADER_SIZE);
        self.write(off, &v.to_le_bytes());
        self.flush_line(off);
    }

    fn header_read_u64(&mut self, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Is the device formatted (magic present on persistent media)?
    pub fn is_formatted(&mut self) -> bool {
        self.header_read_u64(OFF_MAGIC) == MAGIC
    }

    /// Get persistent root slot `i` (`ADDR(V_i)` / `ADDR(V_{i-1})`).
    pub fn root(&mut self, slot: usize) -> POffset {
        assert!(slot < ROOT_SLOTS);
        POffset(self.header_read_u64(OFF_ROOT0 + 8 * slot as u64))
    }

    /// Atomically set persistent root slot `i`.
    pub fn set_root(&mut self, slot: usize, p: POffset) {
        assert!(slot < ROOT_SLOTS);
        self.header_write_u64(OFF_ROOT0 + 8 * slot as u64, p.0);
    }

    /// Persistent epoch counter (incremented at every persist point).
    pub fn epoch(&mut self) -> u64 {
        self.header_read_u64(OFF_EPOCH)
    }

    /// Set the persistent epoch.
    pub fn set_epoch(&mut self, e: u64) {
        self.header_write_u64(OFF_EPOCH, e);
    }

    /// Persisted allocator bump pointer.
    pub fn bump_hint(&mut self) -> u64 {
        self.header_read_u64(OFF_BUMP)
    }

    /// Persist the allocator bump pointer.
    pub fn set_bump_hint(&mut self, b: u64) {
        self.header_write_u64(OFF_BUMP, b);
    }

    /// Stage the allocator bump pointer *without* the immediate line
    /// flush: the hint rides the next atomic header write's media commit
    /// (the root swap shares the cacheline), halving block-0 wear per
    /// persist. Safe because recovery treats the bump slot as a hint —
    /// a torn line persisting it without the root swap only wastes
    /// space, never corrupts.
    pub fn stage_bump_hint(&mut self, b: u64) {
        self.write(OFF_BUMP, &b.to_le_bytes());
    }

    /// Stage the persistent epoch without the immediate line flush (see
    /// [`NvbmArena::stage_bump_hint`]). Safe because the epoch is a
    /// monotone counter recovery only lower-bounds: a torn line that
    /// persists the epoch without the root swap merely inflates it, and
    /// restore already resumes at `max(header_epoch, scan.max_epoch)+1`.
    pub fn stage_epoch(&mut self, e: u64) {
        self.write(OFF_EPOCH, &e.to_le_bytes());
    }

    /// Persistent root of the orthogonal-persistence runtime (`pm-rt`)
    /// object table. `0` means no table has ever been committed.
    pub fn rt_root(&mut self) -> POffset {
        POffset(self.header_read_u64(OFF_RT_ROOT))
    }

    /// Atomically publish a new `pm-rt` object table: the runtime's one
    /// commit point, same atomicity argument as [`NvbmArena::set_root`].
    pub fn set_rt_root(&mut self, p: POffset) {
        self.header_write_u64(OFF_RT_ROOT, p.0);
    }

    /// Persisted floor of the `pm-rt` downward-growing heap (grows from
    /// the top of the device toward the octree's bump allocator). `0`
    /// means the heap has never been used (floor = capacity).
    pub fn rt_bump_hint(&mut self) -> u64 {
        self.header_read_u64(OFF_RT_BUMP)
    }

    /// Persist the `pm-rt` heap floor.
    pub fn set_rt_bump_hint(&mut self, b: u64) {
        self.header_write_u64(OFF_RT_BUMP, b);
    }

    // ---- live allocation boundaries --------------------------------------

    /// The device's region manager: typed regions, live edges, checked
    /// carve-out. Volatile; free to read (no media access).
    pub fn regions(&self) -> &RegionManager {
        &self.regions
    }

    /// The octree allocator's live bump pointer: the `pm-rt` heap must
    /// not grow below this. Volatile; free to read (no media access).
    pub fn live_bump(&self) -> u64 {
        self.regions.octree_edge()
    }

    /// Publish the octree allocator's bump pointer. Called by the octree
    /// store after every allocation (and allocator rebuild) so the
    /// `pm-rt` heap sees the boundary move in real time.
    pub fn publish_bump(&mut self, b: u64) {
        self.regions.publish_octree_edge(b);
    }

    /// The `pm-rt` heap's live floor: the octree allocator must not bump
    /// past this. Volatile; free to read (no media access).
    pub fn live_rt_floor(&self) -> u64 {
        self.regions.rt_floor()
    }

    /// Publish the `pm-rt` heap floor. Called by the runtime after every
    /// heap allocation (and heap rebuild) so the octree allocator sees
    /// the boundary move in real time (and so wear attribution classifies
    /// commits above it as runtime-heap traffic).
    pub fn publish_rt_floor(&mut self, f: u64) {
        let floor = self.regions.publish_rt_floor(f);
        self.stats.set_rt_floor(floor);
    }

    /// The device's registry of pinned `pm-rt` root-table epochs (MVCC
    /// snapshot readers). The runtime consults it before freeing retired
    /// blobs; snapshot handles hold [`crate::pins::PinGuard`]s from it.
    pub fn rt_pins(&self) -> &EpochPins {
        &self.rt_pins
    }

    // ---- typed access helpers -------------------------------------------

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self, offset: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, offset: u64, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Read a little-endian `f64`.
    pub fn read_f64(&mut self, offset: u64) -> f64 {
        f64::from_bits(self.read_u64(offset))
    }

    /// Write a little-endian `f64`.
    pub fn write_f64(&mut self, offset: u64, v: f64) {
        self.write_u64(offset, v.to_bits());
    }

    // ---- whole-device persistence (node reboot) --------------------------

    /// Flush and save the media image to a host file (simulates the NVBM
    /// DIMM surviving a node reboot — or a replica shipped elsewhere).
    pub fn save(&mut self, path: &Path) -> std::io::Result<()> {
        self.flush_all();
        std::fs::write(path, &self.media)
    }

    /// Load a media image saved by [`Self::save`]. Clock and stats start
    /// fresh; the dirty cache is empty (a rebooted CPU cache is cold).
    pub fn load(path: &Path, model: DeviceModel) -> std::io::Result<Self> {
        let media = std::fs::read(path)?;
        Ok(Self::from_media(media, model))
    }

    /// Clone the persistent image of this arena (flushes first). Used by
    /// the replica feature to snapshot `V_{i-1}` onto another node.
    pub fn clone_media(&mut self) -> Vec<u8> {
        self.flush_all();
        self.media.clone()
    }

    /// Overwrite this arena's media with `image` (replica restore). Any
    /// pinned `pm-rt` snapshot epochs belong to the replaced lineage, so
    /// the pin registry is invalidated: surviving snapshot handles report
    /// `SnapshotGone` rather than reading reused blobs.
    pub fn restore_media(&mut self, image: &[u8]) {
        assert_eq!(image.len(), self.media.len(), "image size mismatch");
        self.media.copy_from_slice(image);
        self.cache.clear();
        let (bump, floor) = derive_live_bounds(&self.media);
        self.rt_pins.invalidate();
        // The image carries its own flight recorder: adopt its ring and
        // continue recording after its last surviving entry.
        let (rec_base, rec_slots) = recorder::region_of(&self.media).unwrap_or((0, 0));
        self.regions = RegionManager::from_bounds(self.media.len() as u64, rec_base, bump, floor);
        self.rec_base = rec_base;
        self.rec_slots = rec_slots;
        self.rec_next_seq = recorder::recover(&self.media).last().map_or(1, |e| e.seq + 1);
        self.stats.set_region_bounds(rec_base, floor);
    }
}

/// An immutable view of the device at a fork point: the persistent media
/// plus a frozen copy of the dirty-line cache. Reads through it see
/// exactly what [`NvbmArena::read`] saw at the moment of the snapshot,
/// with no clock or stats side effects — per-domain [`ShardWriter`]s
/// charge their own accounts and settle them at absorb time.
pub struct ArenaSnapshot<'a> {
    media: &'a [u8],
    dirty: BTreeMap<u64, [u8; CACHELINE]>,
    model: DeviceModel,
}

impl ArenaSnapshot<'_> {
    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.media.len()
    }

    /// The timing model in force at snapshot time.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// Read `buf.len()` bytes at `offset`, observing the stores that were
    /// un-flushed when the snapshot was taken.
    pub fn read_into(&self, offset: u64, buf: &mut [u8]) {
        assert!(
            offset.checked_add(buf.len() as u64).is_some_and(|end| end <= self.media.len() as u64),
            "NVBM snapshot access out of bounds: offset {offset} len {} capacity {}",
            buf.len(),
            self.media.len()
        );
        buf.copy_from_slice(&self.media[offset as usize..offset as usize + buf.len()]);
        apply_overlay(&self.dirty, offset, buf);
    }
}

/// One write domain's private device view during a domain-parallel sweep.
///
/// Reads fall through the writer's own overlay to the shared
/// [`ArenaSnapshot`]; writes buffer into the overlay with the same
/// read-modify-write cacheline discipline as [`NvbmArena::write`].
/// Latency and access statistics accumulate locally and are charged to
/// the device when the finished overlay is absorbed
/// ([`NvbmArena::absorb_shard`]), which keeps the virtual clock and
/// stats deterministic for any worker count. Buffered stores fire no
/// crash opportunities — a shard is invisible until its publication
/// edge, which is where [`NvbmArena::absorb_shard`] injects the
/// per-thread interleaving opportunity.
pub struct ShardWriter<'a> {
    snap: &'a ArenaSnapshot<'a>,
    overlay: BTreeMap<u64, [u8; CACHELINE]>,
    clock_ns: u64,
    read_bytes: u64,
    read_lines: u64,
    write_bytes: u64,
    write_lines: u64,
}

impl<'a> ShardWriter<'a> {
    /// A writer with an empty overlay over `snap`.
    pub fn new(snap: &'a ArenaSnapshot<'a>) -> Self {
        ShardWriter {
            snap,
            overlay: BTreeMap::new(),
            clock_ns: 0,
            read_bytes: 0,
            read_lines: 0,
            write_bytes: 0,
            write_lines: 0,
        }
    }

    /// Read `buf.len()` bytes at `offset`: the writer's own stores first,
    /// then the snapshot underneath.
    pub fn read(&mut self, offset: u64, buf: &mut [u8]) {
        let lines = DeviceModel::lines(offset, buf.len());
        self.clock_ns += lines * self.snap.model.nvbm.read_ns;
        self.read_lines += lines;
        self.read_bytes += buf.len() as u64;
        self.snap.read_into(offset, buf);
        apply_overlay(&self.overlay, offset, buf);
    }

    /// Buffer a store of `data` at `offset` into the overlay.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        assert!(
            offset
                .checked_add(data.len() as u64)
                .is_some_and(|end| end <= self.snap.capacity() as u64),
            "NVBM shard access out of bounds: offset {offset} len {} capacity {}",
            data.len(),
            self.snap.capacity()
        );
        if data.is_empty() {
            return;
        }
        let lines = DeviceModel::lines(offset, data.len());
        self.clock_ns += lines * self.snap.model.nvbm.write_ns;
        self.write_lines += lines;
        self.write_bytes += data.len() as u64;
        let snap = self.snap;
        let first = offset / CACHELINE as u64;
        let last = (offset + data.len() as u64 - 1) / CACHELINE as u64;
        for line in first..=last {
            let line_start = line * CACHELINE as u64;
            let entry = self.overlay.entry(line).or_insert_with(|| {
                // Read-modify-write: seed the line from the snapshot view.
                let mut l = [0u8; CACHELINE];
                let s = line_start as usize;
                let e = (s + CACHELINE).min(snap.capacity());
                snap.read_into(line_start, &mut l[..e - s]);
                l
            });
            let lo = line_start.max(offset);
            let hi = (line_start + CACHELINE as u64).min(offset + data.len() as u64);
            let src = (lo - offset) as usize..(hi - offset) as usize;
            let dst = (lo - line_start) as usize..(hi - line_start) as usize;
            entry[dst].copy_from_slice(&data[src]);
        }
    }

    /// Number of dirty lines currently buffered.
    pub fn dirty_lines(&self) -> usize {
        self.overlay.len()
    }

    /// Freeze this writer into a delta for [`NvbmArena::absorb_shard`].
    pub fn into_delta(self) -> ShardDelta {
        ShardDelta {
            overlay: self.overlay,
            clock_ns: self.clock_ns,
            read_bytes: self.read_bytes,
            read_lines: self.read_lines,
            write_bytes: self.write_bytes,
            write_lines: self.write_lines,
        }
    }
}

/// The buffered effects of one write domain: produced by
/// [`ShardWriter::into_delta`] on the worker side, consumed by
/// [`NvbmArena::absorb_shard`] at the serial join point. Owns its data
/// (no borrows), so it crosses thread boundaries freely.
pub struct ShardDelta {
    overlay: BTreeMap<u64, [u8; CACHELINE]>,
    clock_ns: u64,
    read_bytes: u64,
    read_lines: u64,
    write_bytes: u64,
    write_lines: u64,
}

impl ShardDelta {
    /// Number of dirty lines this delta merges into the device cache.
    pub fn dirty_lines(&self) -> usize {
        self.overlay.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 20, DeviceModel::default())
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = arena();
        a.write(4096, b"hello, nvbm");
        let mut buf = [0u8; 11];
        a.read(4096, &mut buf);
        assert_eq!(&buf, b"hello, nvbm");
    }

    #[test]
    fn read_sees_unflushed_writes_across_lines() {
        let mut a = arena();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        a.write(1000, &data); // spans 4 lines, unaligned
        let mut buf = vec![0u8; 200];
        a.read(1000, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn latency_charged_per_line() {
        let mut a = arena();
        let t0 = a.clock.now_ns();
        a.write(0x1000, &[0u8; 64]); // exactly one aligned line
        assert_eq!(a.clock.now_ns() - t0, 150);
        let t1 = a.clock.now_ns();
        let mut b = [0u8; 64];
        a.read(0x1000, &mut b);
        assert_eq!(a.clock.now_ns() - t1, 100);
        let t2 = a.clock.now_ns();
        a.write(0x1000 + 32, &[0u8; 64]); // straddles two lines
        assert_eq!(a.clock.now_ns() - t2, 300);
    }

    #[test]
    fn crash_lose_dirty_reverts_unflushed() {
        let mut a = arena();
        a.write(8192, b"persisted");
        a.flush_all();
        a.write(8192, b"ephemeral");
        a.crash(CrashMode::LoseDirty);
        let mut buf = [0u8; 9];
        a.read(8192, &mut buf);
        assert_eq!(&buf, b"persisted");
    }

    #[test]
    fn crash_commit_random_is_deterministic() {
        let run = |seed| {
            let mut a = arena();
            for i in 0..32u64 {
                a.write(4096 + i * 64, &[i as u8; 64]);
            }
            a.crash(CrashMode::CommitRandom { p: 0.5, seed });
            let mut survived = 0;
            for i in 0..32u64 {
                let mut b = [0u8; 1];
                a.read(4096 + i * 64, &mut b);
                if b[0] == i as u8 && i != 0 {
                    survived += 1;
                }
            }
            survived
        };
        assert_eq!(run(42), run(42));
        // With p=0.5 over 31 distinguishable lines, some but not all survive.
        let s = run(42);
        assert!(s > 0 && s < 31, "survived {s}");
    }

    #[test]
    fn torn_write_commits_aligned_prefixes() {
        let run = |seed| {
            let mut a = arena();
            for i in 0..16u64 {
                a.write(4096 + i * 64, &[0xAB; 64]);
            }
            a.crash(CrashMode::TornWrite { seed });
            let mut prefixes = Vec::new();
            for i in 0..16u64 {
                let mut b = [0u8; 64];
                a.read(4096 + i * 64, &mut b);
                let committed = b.iter().take_while(|&&x| x == 0xAB).count();
                // Prefix property: after the committed prefix, nothing.
                assert!(b[committed..].iter().all(|&x| x == 0), "suffix leaked");
                assert_eq!(committed % 8, 0, "prefix must be 8-byte aligned");
                prefixes.push(committed);
            }
            prefixes
        };
        assert_eq!(run(3), run(3), "torn writes must be deterministic");
        let p = run(3);
        assert!(p.iter().any(|&x| x > 0 && x < 64), "some line should tear mid-way: {p:?}");
        assert_ne!(run(3), run(99), "different seeds tear differently");
    }

    #[test]
    fn flush_makes_writes_crash_proof() {
        let mut a = arena();
        a.write(4096, b"important");
        a.flush_all();
        a.crash(CrashMode::LoseDirty);
        let mut buf = [0u8; 9];
        a.read(4096, &mut buf);
        assert_eq!(&buf, b"important");
    }

    #[test]
    fn root_slots_are_atomic_persistent() {
        let mut a = arena();
        a.set_root(0, POffset(12345));
        a.set_root(1, POffset(999));
        a.crash(CrashMode::LoseDirty);
        assert_eq!(a.root(0), POffset(12345));
        assert_eq!(a.root(1), POffset(999));
    }

    #[test]
    fn header_formatted() {
        let mut a = arena();
        assert!(a.is_formatted());
        assert_eq!(a.epoch(), 0);
        assert_eq!(a.root(0), POffset::NULL);
        assert_eq!(a.bump_hint(), HEADER_SIZE);
    }

    #[test]
    fn eviction_commits_oldest_lines() {
        let mut a = arena();
        a.set_cache_lines(4);
        for i in 0..8u64 {
            a.write(4096 + i * 64, &[7u8; 64]);
        }
        assert!(a.dirty_lines() <= 4);
        // Early lines were evicted to media: visible even after crash.
        a.crash(CrashMode::LoseDirty);
        let mut b = [0u8; 1];
        a.read(4096, &mut b);
        assert_eq!(b[0], 7);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("nvbm_test_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("image.nvbm");
        let mut a = arena();
        a.write(5000, b"survives reboot");
        a.set_root(0, POffset(5000));
        a.save(&path).unwrap();
        let mut b = NvbmArena::load(&path, DeviceModel::default()).unwrap();
        assert!(b.is_formatted());
        assert_eq!(b.root(0), POffset(5000));
        let mut buf = [0u8; 15];
        b.read(5000, &mut buf);
        assert_eq!(&buf, b"survives reboot");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn live_bounds_rederived_from_media() {
        let mut a = arena();
        // The recorder ring carves the top of the device; the rt heap's
        // virgin floor sits just below it.
        let (rec_base, rec_slots) = a.recorder_region();
        assert_eq!(rec_slots, 256);
        assert_eq!(rec_base, (1 << 20) - 256 * 64);
        assert_eq!(a.live_bump(), HEADER_SIZE);
        assert_eq!(a.live_rt_floor(), rec_base);
        a.set_bump_hint(4096);
        a.set_rt_bump_hint(rec_base - 8192);
        let b = NvbmArena::from_media(a.clone_media(), DeviceModel::default());
        assert_eq!(b.live_bump(), 4096);
        assert_eq!(b.live_rt_floor(), rec_base - 8192);
        // restore_media re-derives too; a zero rt hint means floor = ring
        // base; an rt hint above the ring base is clamped under it.
        let mut c = arena();
        c.set_bump_hint(2048);
        let img = c.clone_media();
        let mut d = arena();
        d.publish_bump(9999);
        d.publish_rt_floor(5000);
        d.restore_media(&img);
        assert_eq!(d.live_bump(), 2048);
        assert_eq!(d.live_rt_floor(), rec_base);
    }

    #[test]
    fn replica_media_clone_restore() {
        let mut a = arena();
        a.write(4096, b"replica me");
        let img = a.clone_media();
        let mut b = arena();
        b.restore_media(&img);
        let mut buf = [0u8; 10];
        b.read(4096, &mut buf);
        assert_eq!(&buf, b"replica me");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let mut a = NvbmArena::new(4096, DeviceModel::default());
        let mut b = [0u8; 8];
        a.read(4095, &mut b);
    }

    #[test]
    fn stats_track_lines_and_bytes() {
        let mut a = arena();
        a.write(0x2000, &[0u8; 100]); // 2 lines
        assert_eq!(a.stats.nvbm.write_lines, 2);
        assert_eq!(a.stats.nvbm.bytes_written, 100);
        let mut b = [0u8; 100];
        a.read(0x2000, &mut b);
        assert_eq!(a.stats.nvbm.read_lines, 2);
    }

    #[test]
    fn wear_counted_on_commit_not_on_write() {
        let mut a = arena();
        for _ in 0..10 {
            a.write(0x3000, &[1u8; 64]);
        }
        assert_eq!(a.stats.max_wear(), (0, 0), "no commit yet");
        a.flush_all();
        assert_eq!(a.stats.max_wear(), (1, 0x3000), "ten cached writes commit once");
        assert_eq!(a.stats.bytes_by_region()[1], 64, "0x3000 is octree territory");
    }

    #[test]
    fn failpoints_land_in_the_recorder_durably() {
        let mut a = arena();
        a.failpoint("persist::merge");
        a.failpoint("persist::root_swap");
        // No flush_all: each entry is flushed by rec_mark itself.
        a.crash(CrashMode::LoseDirty);
        let d = a.recorder_dump();
        assert!(d.header_ok);
        let labels: Vec<&str> = d.entries.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["persist::merge", "persist::root_swap"]);
        assert_eq!(d.last().expect("entries").seq, 2);
    }

    #[test]
    fn recorder_survives_restore_and_continues_numbering() {
        let mut a = arena();
        a.rec_mark(crate::recorder::RecKind::Note, "before", 7);
        a.failpoint("gc::sweep");
        let img = a.clone_media();
        // A rebooted arena adopts the ring and appends after seq 2.
        let mut b = NvbmArena::from_media(img.clone(), DeviceModel::default());
        b.rec_mark(crate::recorder::RecKind::Note, "after", 0);
        let d = b.recorder_dump();
        let seqs: Vec<u64> = d.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(d.entries[0].arg, 7);
        assert_eq!(d.entries[2].label, "after");
        // restore_media adopts too.
        let mut c = arena();
        c.restore_media(&img);
        c.rec_mark(crate::recorder::RecKind::Note, "replica", 0);
        assert_eq!(c.recorder_dump().last().expect("entries").seq, 3);
    }

    #[test]
    fn recorder_disabled_writes_nothing() {
        let mut a = arena();
        a.set_recorder_enabled(false);
        a.failpoint("persist::merge");
        assert!(a.recorder_dump().entries.is_empty());
        let t0 = a.clock.now_ns();
        a.failpoint("persist::flush");
        assert_eq!(a.clock.now_ns(), t0, "disabled recorder is free");
        // Tiny devices have no ring at all and never panic.
        let mut tiny = NvbmArena::new(HEADER_SIZE as usize, DeviceModel::default());
        tiny.failpoint("persist::merge");
        assert_eq!(tiny.recorder_region(), (0, 0));
    }

    #[test]
    fn shard_writer_buffers_and_absorb_merges() {
        let mut a = arena();
        a.write(4096, b"base"); // dirty, unflushed: the snapshot must see it
        let t0 = a.clock.now_ns();
        let delta = {
            let snap = a.snapshot();
            let mut w = ShardWriter::new(&snap);
            let mut buf = [0u8; 4];
            w.read(4096, &mut buf);
            assert_eq!(&buf, b"base", "snapshot carries unflushed stores");
            w.write(4096, b"EDIT");
            w.read(4096, &mut buf);
            assert_eq!(&buf, b"EDIT", "writer reads its own overlay");
            assert_eq!(w.dirty_lines(), 1);
            w.into_delta()
        };
        assert_eq!(a.clock.now_ns(), t0, "buffered shard work charges nothing yet");
        assert_eq!(delta.dirty_lines(), 1);
        let w_lines = a.stats.nvbm.write_lines;
        a.absorb_shard("sweep::interleave", delta);
        let mut buf = [0u8; 4];
        a.read(4096, &mut buf);
        assert_eq!(&buf, b"EDIT", "absorbed overlay lands in the cache");
        // One shard read + one shard write, each a single line, plus the
        // recorder append rec_mark makes: clock moved by at least the
        // shard's own 100 + 150 ns.
        assert!(a.clock.now_ns() - t0 >= 250, "shard latency settles at absorb");
        assert!(a.stats.nvbm.write_lines > w_lines);
        // The overlay was seeded RMW from the snapshot: bytes around the
        // store survive a flush intact.
        a.flush_all();
        let mut line = [0u8; 64];
        a.read(4096, &mut line);
        assert_eq!(&line[..4], b"EDIT");
        assert!(line[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn absorb_fires_interleave_opportunity() {
        let mut a = arena();
        a.set_fail_plan(FailPlan::count());
        let delta = {
            let snap = a.snapshot();
            let mut w = ShardWriter::new(&snap);
            w.write(8192, b"dom0");
            w.into_delta()
        };
        a.absorb_shard("sweep::interleave", delta);
        let plan = a.take_fail_plan().expect("plan");
        assert_eq!(plan.interleavings(), 1);
        assert!(plan.opportunities() >= plan.interleavings());
        assert!(plan.labels().iter().any(|(_, l)| *l == "sweep::interleave"));
    }

    #[test]
    fn interleave_view_contains_prefix_of_domains() {
        // Absorbing domains serially must present the oracle with the
        // crash image of exactly the absorbed prefix: after absorbing
        // domain 0 the hook's full image holds dom0's bytes but not
        // dom1's; after absorbing domain 1 it holds both.
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(bool, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let log = seen.clone();
        let mut a = arena();
        let deltas: Vec<ShardDelta> = {
            let snap = a.snapshot();
            [(8192u64, b"dom0"), (16384u64, b"dom1")]
                .iter()
                .map(|&(off, bytes)| {
                    let mut w = ShardWriter::new(&snap);
                    w.write(off, bytes);
                    w.into_delta()
                })
                .collect()
        };
        a.set_fail_plan(FailPlan::with_hook(Box::new(move |view| {
            if view.label == Some("sweep::interleave") {
                let img = view.full_image();
                log.lock()
                    .unwrap()
                    .push((&img[8192..8196] == b"dom0", &img[16384..16388] == b"dom1"));
            }
        })));
        for d in deltas {
            a.absorb_shard("sweep::interleave", d);
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.as_slice(), &[(true, false), (true, true)]);
    }

    #[test]
    fn recorder_ring_wraps_and_keeps_newest() {
        let mut a = NvbmArena::new_with_recorder(1 << 20, DeviceModel::default(), 8);
        for i in 0..20u64 {
            a.rec_mark(crate::recorder::RecKind::Note, "op", i);
        }
        let d = a.recorder_dump();
        assert_eq!(d.slots, 8);
        let args: Vec<u64> = d.entries.iter().map(|e| e.arg).collect();
        assert_eq!(args, (12..20).collect::<Vec<u64>>());
    }
}
