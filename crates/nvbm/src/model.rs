//! Device timing models.
//!
//! The paper (Table 2) models NVBM with DRAM-like read latency and ~2.5×
//! DRAM write latency, and evaluates against both a DRAM tier and (for the
//! out-of-core baseline) rotating disks. All latencies here are charged per
//! cacheline (or per page for block devices) onto a virtual clock, exactly
//! mirroring the paper's RDTSCP spin-loop emulation but deterministic.

/// Size of one CPU cacheline; NVBM and DRAM accesses are charged at this
/// granularity.
pub const CACHELINE: usize = 64;

/// Size of one block-device page (Etree's minimum I/O unit).
pub const PAGE: usize = 4096;

/// Latency parameters of a byte-addressable memory tier, in nanoseconds
/// per cacheline access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemLatency {
    /// Read latency per cacheline (ns).
    pub read_ns: u64,
    /// Write latency per cacheline (ns).
    pub write_ns: u64,
}

/// Full device model: DRAM tier, NVBM tier, and endurance bound.
///
/// Defaults reproduce the paper's Table 2 (values from Lee et al. ISCA'09,
/// Chen & Gibbons CIDR'11, Venkataraman et al. FAST'11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceModel {
    /// DRAM tier: 60 ns read, 60 ns write.
    pub dram: MemLatency,
    /// NVBM tier: 100 ns read, 150 ns write (2.5× DRAM).
    pub nvbm: MemLatency,
    /// NVBM endurance in writes per bit (lower bound of the 10^6–10^8
    /// range quoted in Table 2); used by wear reporting, not enforced.
    pub endurance_writes_per_bit: u64,
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel {
            dram: MemLatency { read_ns: 60, write_ns: 60 },
            nvbm: MemLatency { read_ns: 100, write_ns: 150 },
            endurance_writes_per_bit: 1_000_000,
        }
    }
}

impl DeviceModel {
    /// A model where NVBM behaves exactly like DRAM — useful to isolate
    /// algorithmic overhead from device overhead in ablations.
    pub fn nvbm_as_dram() -> Self {
        let d = DeviceModel::default();
        DeviceModel { nvbm: d.dram, ..d }
    }

    /// Number of cachelines spanned by a byte range.
    #[inline]
    pub fn lines(offset: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = offset / CACHELINE as u64;
        let last = (offset + len as u64 - 1) / CACHELINE as u64;
        last - first + 1
    }
}

/// Latency parameters of a block device behind a file-system interface
/// (used by `simfs` for the snapshot and Etree baselines).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockDeviceModel {
    /// Fixed per-operation latency (seek/setup), ns.
    pub op_ns: u64,
    /// Transfer time per 4 KiB page, ns.
    pub page_ns: u64,
    /// Durability-barrier cost (`fsync`): flushing the device/OS write
    /// cache so the data is actually on stable media, ns. Checkpoint
    /// baselines must pay this after every checkpoint write or they are
    /// comparing a maybe-durable file against an always-durable NVBM
    /// commit.
    pub sync_ns: u64,
}

impl BlockDeviceModel {
    /// NVBM accessed through a file-system interface: no seek, page
    /// transfer at memory-bus speed (64 lines × 150 ns write / 100 ns read
    /// is charged by the caller per direction; this model approximates
    /// with a symmetric per-page cost plus small software overhead).
    pub fn nvbm_fs() -> Self {
        // Software path (syscall + FS) ~ 2 us per op; page move at NVBM
        // bandwidth ~ 64 lines * 125 ns avg = 8 us.
        // A sync on NVBM-backed storage only drains the small controller
        // buffer: ~5 us.
        BlockDeviceModel { op_ns: 2_000, page_ns: 8_000, sync_ns: 5_000 }
    }

    /// A 7200 RPM hard disk: ~8 ms average seek + rotational latency,
    /// ~150 MB/s streaming (≈27 us per 4 KiB page).
    pub fn hard_disk() -> Self {
        // fsync forces the on-disk write cache out: roughly one further
        // rotation + seek, ~10 ms.
        BlockDeviceModel { op_ns: 8_000_000, page_ns: 27_000, sync_ns: 10_000_000 }
    }

    /// A SATA SSD: ~60 us access, ~500 MB/s (≈8 us per page).
    pub fn ssd() -> Self {
        // FLUSH CACHE on consumer SSDs is notoriously expensive: ~1 ms.
        BlockDeviceModel { op_ns: 60_000, page_ns: 8_000, sync_ns: 1_000_000 }
    }

    /// Cost of transferring `pages` pages in one operation.
    #[inline]
    pub fn io_ns(&self, pages: u64) -> u64 {
        self.op_ns + self.page_ns * pages
    }
}

/// Network model for replica transfer and partition exchange:
/// classic α–β (latency–bandwidth) model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Per-message latency α, ns.
    pub alpha_ns: u64,
    /// Per-byte transfer cost β, picoseconds per byte (to keep integer
    /// math exact: 1 GB/s == 1000 ps/byte).
    pub beta_ps_per_byte: u64,
}

impl NetworkModel {
    /// Cray Gemini-like interconnect (Titan): ~1.5 us latency, ~6 GB/s
    /// per-direction injection bandwidth.
    pub fn gemini() -> Self {
        NetworkModel { alpha_ns: 1_500, beta_ps_per_byte: 167 }
    }

    /// 56 Gb/s InfiniBand (the Kamiak cluster in §5.6): ~1 us latency,
    /// ~7 GB/s.
    pub fn infiniband_fdr() -> Self {
        NetworkModel { alpha_ns: 1_000, beta_ps_per_byte: 143 }
    }

    /// Time to move one message of `bytes` bytes.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.alpha_ns + bytes * self.beta_ps_per_byte / 1000
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let m = DeviceModel::default();
        assert_eq!(m.dram.read_ns, 60);
        assert_eq!(m.dram.write_ns, 60);
        assert_eq!(m.nvbm.read_ns, 100);
        assert_eq!(m.nvbm.write_ns, 150);
        assert!(m.nvbm.write_ns as f64 / m.dram.write_ns as f64 == 2.5);
    }

    #[test]
    fn line_counting() {
        assert_eq!(DeviceModel::lines(0, 0), 0);
        assert_eq!(DeviceModel::lines(0, 1), 1);
        assert_eq!(DeviceModel::lines(0, 64), 1);
        assert_eq!(DeviceModel::lines(0, 65), 2);
        assert_eq!(DeviceModel::lines(63, 2), 2);
        assert_eq!(DeviceModel::lines(64, 64), 1);
        assert_eq!(DeviceModel::lines(10, 128), 3);
    }

    #[test]
    fn disk_much_slower_than_nvbm_fs() {
        let disk = BlockDeviceModel::hard_disk();
        let nvbm = BlockDeviceModel::nvbm_fs();
        // Paper: disks are 4-5 orders of magnitude slower than NVBM.
        assert!(disk.io_ns(1) > 100 * nvbm.io_ns(1));
    }

    #[test]
    fn network_transfer_scales() {
        let n = NetworkModel::gemini();
        assert_eq!(n.transfer_ns(0), n.alpha_ns);
        assert!(n.transfer_ns(1 << 20) > n.transfer_ns(1 << 10));
    }
}
