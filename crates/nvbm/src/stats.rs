//! Access accounting: read/write counts, byte volumes, wear map.
//!
//! The paper reports (a) the fraction of memory accesses that are writes
//! (41% average, 72% max for the droplet workload, §1), (b) NVBM write
//! counts saved by dynamic transformation (−31%, §5.5), and (c) implies
//! endurance pressure (Table 2). This module supplies those counters.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::region::{classify_at, RegionKind};

/// Counters for one memory tier.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TierStats {
    /// Number of cacheline read operations.
    pub read_lines: u64,
    /// Number of cacheline write operations.
    pub write_lines: u64,
    /// Bytes read (as requested, not rounded to lines).
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl TierStats {
    /// Total line accesses.
    pub fn total_lines(&self) -> u64 {
        self.read_lines + self.write_lines
    }

    /// Fraction of accesses that are writes (0 when idle).
    pub fn write_fraction(&self) -> f64 {
        let t = self.total_lines();
        if t == 0 {
            0.0
        } else {
            self.write_lines as f64 / t as f64
        }
    }

    fn add(&mut self, other: &TierStats) {
        self.read_lines += other.read_lines;
        self.write_lines += other.write_lines;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// Counters for *how* octants were located, independent of which tier paid
/// for the accesses. They make the sorted-leaf-index optimisation
/// observable: a query answered by the DRAM index bumps `index_hits`, a
/// query that had to walk the tree from the root bumps `root_descents`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraversalStats {
    /// Full root-to-leaf descents taken (per-hop octant reads charged to
    /// whichever tier each hop lived in).
    pub root_descents: u64,
    /// Containment / neighbor queries answered from the Morton-sorted
    /// DRAM leaf index (no tree walk).
    pub index_hits: u64,
    /// Times the leaf index was rebuilt from a full leaf enumeration.
    pub index_rebuilds: u64,
    /// Octants enumerated across all index rebuilds (the rebuild cost; the
    /// enumeration's tier charges are accounted separately by the owner).
    pub index_rebuild_octants: u64,
    /// Cachelines charged (any tier) across all root-to-leaf descents.
    /// `descent_lines / root_descents` is the per-hit cost the hot/cold
    /// octant layout is designed to shrink: one navigation line per hop.
    pub descent_lines: u64,
}

impl TraversalStats {
    fn add(&mut self, other: &TraversalStats) {
        self.root_descents += other.root_descents;
        self.index_hits += other.index_hits;
        self.index_rebuilds += other.index_rebuilds;
        self.index_rebuild_octants += other.index_rebuild_octants;
        self.descent_lines += other.descent_lines;
    }

    /// Mean cachelines charged per root-to-leaf descent (0 when no
    /// descents ran).
    pub fn charged_lines_per_descent(&self) -> f64 {
        if self.root_descents == 0 {
            0.0
        } else {
            self.descent_lines as f64 / self.root_descents as f64
        }
    }
}

/// Canonical attribution regions of an NVBM device, in reporting order:
/// the header (root slots + allocator hints), the octree allocator's
/// upward territory, the `pm-rt` heap growing down from the top, and the
/// flight-recorder ring above it.
pub const REGIONS: [&str; 4] = ["root_table", "octree", "rt_heap", "recorder"];

/// A `(name, bytes)` attribution row — the compat serde has no map
/// support, so breakdowns serialize as vectors of these.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize)]
pub struct NamedBytes {
    /// Region or phase name.
    pub name: String,
    /// Bytes committed to media under that name.
    pub bytes: u64,
}

/// Serializable wear / write-amplification report: where committed bytes
/// landed (region), which protocol phase pushed them (phase), and how
/// unevenly the wear blocks absorbed them (histogram).
#[derive(Debug, Default, Clone, PartialEq, Serialize)]
pub struct WearReport {
    /// Committed bytes per device region, in [`REGIONS`] order.
    pub bytes_by_region: Vec<NamedBytes>,
    /// Committed bytes per protocol phase, sorted by phase name.
    pub bytes_by_phase: Vec<NamedBytes>,
    /// Log2-bucketed block-wear histogram: `wear_hist[i]` counts wear
    /// blocks whose commit count is in `[2^i, 2^(i+1))`; the last bucket
    /// absorbs everything ≥ 2^15. Untouched blocks are not counted.
    pub wear_hist: Vec<u64>,
    /// Commit count of the hottest wear block.
    pub max_wear: u32,
    /// Byte offset of the hottest wear block.
    pub max_wear_offset: u64,
    /// Mean commits over blocks ever written.
    pub mean_wear: f64,
    /// Wear blocks written at least once.
    pub blocks_touched: u64,
    /// Total bytes committed to media (sum over regions).
    pub bytes_committed: u64,
    /// Wear-leveling relocations performed (blobs/octants moved off hot
    /// blocks).
    pub relocations: u64,
    /// Bytes moved by wear-leveling relocations.
    pub relocated_bytes: u64,
    /// Wear flatness: hottest block's commit count over the mean (1.0 =
    /// perfectly even; 0 when nothing was ever committed). Post-relocation
    /// wear — blocks a relocation vacated count only their traffic since
    /// the move.
    pub flatness: f64,
}

/// Combined DRAM + NVBM accounting plus a per-block wear map for the NVBM
/// device.
#[derive(Debug, Clone)]
pub struct MemStats {
    /// DRAM tier counters (the C0 tree instruments itself through these).
    pub dram: TierStats,
    /// NVBM tier counters.
    pub nvbm: TierStats,
    /// Octant-location counters (root descents vs. leaf-index hits).
    pub trav: TraversalStats,
    /// Writes per 4 KiB wear block of the NVBM arena (committed lines).
    wear: Vec<u32>,
    /// Wear level each block had when a relocation last vacated it; the
    /// readouts subtract this so a block the GC has already cooled no
    /// longer reads as the live hot spot (only its post-move traffic
    /// counts).
    wear_baseline: Vec<u32>,
    /// Wear-leveling relocations recorded via [`MemStats::note_relocation`].
    relocations: u64,
    /// Bytes moved by those relocations.
    relocated_bytes: u64,
    /// Protocol phase commits are currently attributed to ("" = mutate).
    phase: &'static str,
    /// Base of the flight-recorder ring (0 = none): commits at or above
    /// it are recorder traffic.
    rec_base: u64,
    /// Live `pm-rt` heap floor (0 = none): commits in `[rt_floor,
    /// rec_base)` are runtime-heap traffic.
    rt_floor: u64,
    /// Committed bytes per region, [`REGIONS`] order.
    bytes_by_region: [u64; REGIONS.len()],
    /// Committed bytes per phase tag.
    bytes_by_phase: BTreeMap<&'static str, u64>,
}

/// Wear-map block granularity.
pub const WEAR_BLOCK: usize = 4096;

/// The attribution phase in force when none was ever set: ordinary
/// mutation traffic between protocol phases.
pub const PHASE_MUTATE: &str = "mutate";

impl Default for MemStats {
    fn default() -> Self {
        MemStats::new(0)
    }
}

impl MemStats {
    /// Stats for an arena of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        MemStats {
            dram: TierStats::default(),
            nvbm: TierStats::default(),
            trav: TraversalStats::default(),
            wear: vec![0; capacity.div_ceil(WEAR_BLOCK)],
            wear_baseline: vec![0; capacity.div_ceil(WEAR_BLOCK)],
            relocations: 0,
            relocated_bytes: 0,
            phase: PHASE_MUTATE,
            rec_base: 0,
            rt_floor: 0,
            bytes_by_region: [0; REGIONS.len()],
            bytes_by_phase: BTreeMap::new(),
        }
    }

    // ---- write attribution ----------------------------------------------

    /// Set the protocol phase subsequent commits are attributed to;
    /// returns the previous phase so callers can restore it when the
    /// phase ends (phases nest, e.g. `rt::commit` inside a persist hook).
    pub fn set_phase(&mut self, phase: &'static str) -> &'static str {
        std::mem::replace(&mut self.phase, phase)
    }

    /// The attribution phase in force.
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// Publish the region boundaries commits are classified against: the
    /// flight-recorder ring base and the live `pm-rt` heap floor (0 for
    /// "none"). The owning arena keeps these fresh.
    pub fn set_region_bounds(&mut self, rec_base: u64, rt_floor: u64) {
        self.rec_base = rec_base;
        self.rt_floor = rt_floor;
    }

    /// Update just the live `pm-rt` heap floor.
    pub fn set_rt_floor(&mut self, rt_floor: u64) {
        self.rt_floor = rt_floor;
    }

    fn region_index(&self, offset: u64) -> usize {
        // One classification rule for the whole crate: the region
        // manager's (see `region::classify_at`).
        match classify_at(offset, self.rec_base, self.rt_floor) {
            RegionKind::RootTable => 0,
            RegionKind::Octree => 1,
            RegionKind::RtHeap => 2,
            RegionKind::Recorder => 3,
        }
    }

    /// Committed bytes per region, [`REGIONS`] order.
    pub fn bytes_by_region(&self) -> [u64; REGIONS.len()] {
        self.bytes_by_region
    }

    /// Committed bytes per phase tag, in name order.
    pub fn bytes_by_phase(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.bytes_by_phase.iter().map(|(k, v)| (*k, *v))
    }

    /// Record one full root-to-leaf descent.
    #[inline]
    pub fn root_descent(&mut self) {
        self.trav.root_descents += 1;
    }

    /// Attribute `lines` cacheline charges to descent traffic. Callers
    /// measure the delta of tier line counters around a descent body so
    /// the same access is never double-counted.
    #[inline]
    pub fn descent_lines(&mut self, lines: u64) {
        self.trav.descent_lines += lines;
    }

    /// Total cacheline charges so far across both tiers — the snapshot
    /// callers delta around a descent to feed [`Self::descent_lines`].
    #[inline]
    pub fn total_lines_snapshot(&self) -> u64 {
        self.dram.total_lines() + self.nvbm.total_lines()
    }

    /// Record `n` queries answered from the sorted leaf index.
    #[inline]
    pub fn index_hits(&mut self, n: u64) {
        self.trav.index_hits += n;
    }

    /// Record a leaf-index rebuild that enumerated `octants` leaves.
    #[inline]
    pub fn index_rebuild(&mut self, octants: u64) {
        self.trav.index_rebuilds += 1;
        self.trav.index_rebuild_octants += octants;
    }

    /// Record an NVBM read of `len` bytes spanning `lines` cachelines.
    #[inline]
    pub fn nvbm_read(&mut self, len: usize, lines: u64) {
        self.nvbm.read_lines += lines;
        self.nvbm.bytes_read += len as u64;
    }

    /// Record an NVBM write of `len` bytes spanning `lines` cachelines.
    #[inline]
    pub fn nvbm_write(&mut self, len: usize, lines: u64) {
        self.nvbm.write_lines += lines;
        self.nvbm.bytes_written += len as u64;
    }

    /// Record a DRAM read (the volatile C0 tree calls this).
    #[inline]
    pub fn dram_read(&mut self, len: usize, lines: u64) {
        self.dram.read_lines += lines;
        self.dram.bytes_read += len as u64;
    }

    /// Record a DRAM write.
    #[inline]
    pub fn dram_write(&mut self, len: usize, lines: u64) {
        self.dram.write_lines += lines;
        self.dram.bytes_written += len as u64;
    }

    /// Record a committed (persisted) write of `bytes` bytes at byte
    /// `offset`: bumps the wear map and attributes the bytes to the
    /// current phase and the offset's region. Called when a dirty
    /// cacheline (or a torn prefix of one) actually reaches the media.
    #[inline]
    pub fn wear_commit(&mut self, offset: u64, bytes: usize) {
        let b = offset as usize / WEAR_BLOCK;
        if let Some(w) = self.wear.get_mut(b) {
            *w += 1;
        }
        self.bytes_by_region[self.region_index(offset)] += bytes as u64;
        *self.bytes_by_phase.entry(self.phase).or_insert(0) += bytes as u64;
    }

    /// Record a wear-leveling relocation that moved `bytes` live bytes
    /// *off* the block holding `old_offset`. The vacated block's current
    /// wear becomes its baseline: the hottest-block readouts then track
    /// traffic *since* the move, so a spot the GC already cooled no
    /// longer masks the live peak.
    pub fn note_relocation(&mut self, old_offset: u64, bytes: usize) {
        let b = old_offset as usize / WEAR_BLOCK;
        if let Some(&w) = self.wear.get(b) {
            if self.wear_baseline.len() < self.wear.len() {
                self.wear_baseline.resize(self.wear.len(), 0);
            }
            self.wear_baseline[b] = w;
        }
        self.relocations += 1;
        self.relocated_bytes += bytes as u64;
    }

    /// Number of wear-leveling relocations recorded.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// Bytes moved by wear-leveling relocations.
    pub fn relocated_bytes(&self) -> u64 {
        self.relocated_bytes
    }

    /// A block's *effective* wear: commits since a relocation last vacated
    /// it (raw lifetime commits for blocks never relocated away from).
    #[inline]
    fn effective_wear(&self, block: usize) -> u32 {
        let base = self.wear_baseline.get(block).copied().unwrap_or(0);
        self.wear[block].saturating_sub(base)
    }

    /// Effective wear of the block containing byte `offset` (0 if out of
    /// range). The wear-leveling GC uses this to pick the hottest live
    /// blob to relocate toward cold lines.
    pub fn block_wear(&self, offset: u64) -> u32 {
        let b = offset as usize / WEAR_BLOCK;
        if b < self.wear.len() {
            self.effective_wear(b)
        } else {
            0
        }
    }

    /// Maximum effective writes any single wear block has absorbed, and
    /// the byte offset of that hottest block (0 when nothing was ever
    /// committed). Post-relocation state: a block the wear-leveling GC
    /// vacated counts only its traffic since the move, so the readout
    /// tracks the *new* hot location rather than a stale pre-move peak.
    pub fn max_wear(&self) -> (u32, u64) {
        let mut best = (0u32, 0u64);
        for i in 0..self.wear.len() {
            let w = self.effective_wear(i);
            if w > best.0 {
                best = (w, (i * WEAR_BLOCK) as u64);
            }
        }
        best
    }

    /// Log2-bucketed block-wear histogram (see [`WearReport::wear_hist`]),
    /// over effective (post-relocation) wear.
    pub fn wear_histogram(&self) -> [u64; 16] {
        let mut h = [0u64; 16];
        for i in 0..self.wear.len() {
            let w = self.effective_wear(i);
            if w == 0 {
                continue;
            }
            h[(w.ilog2() as usize).min(15)] += 1;
        }
        h
    }

    /// Wear flatness: hottest block over the mean of touched blocks, on
    /// effective wear (1.0 = perfectly even, 0 when idle).
    pub fn wear_flatness(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            0.0
        } else {
            self.max_wear().0 as f64 / mean
        }
    }

    /// Assemble the serializable wear / write-amplification report.
    pub fn wear_report(&self) -> WearReport {
        let (max_wear, max_wear_offset) = self.max_wear();
        WearReport {
            bytes_by_region: REGIONS
                .iter()
                .zip(self.bytes_by_region.iter())
                .map(|(n, &b)| NamedBytes { name: n.to_string(), bytes: b })
                .collect(),
            bytes_by_phase: self
                .bytes_by_phase
                .iter()
                .map(|(n, &b)| NamedBytes { name: n.to_string(), bytes: b })
                .collect(),
            wear_hist: self.wear_histogram().to_vec(),
            max_wear,
            max_wear_offset,
            mean_wear: self.mean_wear(),
            blocks_touched: self.wear.iter().filter(|&&w| w > 0).count() as u64,
            bytes_committed: self.bytes_by_region.iter().sum(),
            relocations: self.relocations,
            relocated_bytes: self.relocated_bytes,
            flatness: self.wear_flatness(),
        }
    }

    /// Mean effective writes per wear block (over blocks with effective
    /// wear, i.e. written since any relocation vacated them).
    pub fn mean_wear(&self) -> f64 {
        let (mut sum, mut n) = (0.0f64, 0u64);
        for i in 0..self.wear.len() {
            let w = self.effective_wear(i);
            if w > 0 {
                sum += w as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Write fraction over *all* accesses, both tiers — the §1 statistic.
    pub fn overall_write_fraction(&self) -> f64 {
        let w = self.dram.write_lines + self.nvbm.write_lines;
        let t = self.dram.total_lines() + self.nvbm.total_lines();
        if t == 0 {
            0.0
        } else {
            w as f64 / t as f64
        }
    }

    /// Fold another stats block into this one (rank aggregation).
    pub fn merge(&mut self, other: &MemStats) {
        self.dram.add(&other.dram);
        self.nvbm.add(&other.nvbm);
        self.trav.add(&other.trav);
        if self.wear.len() < other.wear.len() {
            self.wear.resize(other.wear.len(), 0);
        }
        for (a, b) in self.wear.iter_mut().zip(&other.wear) {
            *a += *b;
        }
        if self.wear_baseline.len() < other.wear_baseline.len() {
            self.wear_baseline.resize(other.wear_baseline.len(), 0);
        }
        for (a, b) in self.wear_baseline.iter_mut().zip(&other.wear_baseline) {
            *a += *b;
        }
        self.relocations += other.relocations;
        self.relocated_bytes += other.relocated_bytes;
        for (a, b) in self.bytes_by_region.iter_mut().zip(&other.bytes_by_region) {
            *a += *b;
        }
        for (k, v) in &other.bytes_by_phase {
            *self.bytes_by_phase.entry(k).or_insert(0) += v;
        }
    }

    /// Zero all counters (keeps wear-map size and region bounds).
    pub fn reset(&mut self) {
        self.dram = TierStats::default();
        self.nvbm = TierStats::default();
        self.trav = TraversalStats::default();
        self.wear.fill(0);
        self.wear_baseline.fill(0);
        self.relocations = 0;
        self.relocated_bytes = 0;
        self.bytes_by_region = [0; REGIONS.len()];
        self.bytes_by_phase.clear();
    }

    /// Snapshot of NVBM write-line count — convenient for deltas around a
    /// phase (`let before = ...; run(); writes = now - before`).
    pub fn nvbm_write_lines(&self) -> u64 {
        self.nvbm.write_lines
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn write_fraction_computation() {
        let mut s = MemStats::new(1 << 16);
        s.dram_read(64, 1);
        s.dram_write(64, 1);
        s.nvbm_read(64, 1);
        s.nvbm_write(64, 1);
        assert!((s.overall_write_fraction() - 0.5).abs() < 1e-12);
        assert!((s.dram.write_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wear_tracking() {
        let mut s = MemStats::new(WEAR_BLOCK * 4);
        s.wear_commit(0, 64);
        s.wear_commit(10, 64);
        s.wear_commit(WEAR_BLOCK as u64, 64);
        assert_eq!(s.max_wear(), (2, 0), "block 0 is hottest");
        assert!((s.mean_wear() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn max_wear_reports_hottest_offset() {
        let mut s = MemStats::new(WEAR_BLOCK * 8);
        s.wear_commit(0, 64);
        for _ in 0..3 {
            s.wear_commit(3 * WEAR_BLOCK as u64 + 17, 64);
        }
        let (count, offset) = s.max_wear();
        assert_eq!(count, 3);
        assert_eq!(offset, 3 * WEAR_BLOCK as u64);
    }

    #[test]
    fn max_wear_tracks_post_relocation_state() {
        // Regression: after the GC relocates the hot blob away from block
        // 3, the hottest-offset readout must follow the traffic to the new
        // location, not keep reporting block 3's stale pre-move peak.
        let mut s = MemStats::new(WEAR_BLOCK * 8);
        for _ in 0..10 {
            s.wear_commit(3 * WEAR_BLOCK as u64, 64);
        }
        s.wear_commit(5 * WEAR_BLOCK as u64, 64);
        assert_eq!(s.max_wear(), (10, 3 * WEAR_BLOCK as u64), "pre-move: block 3 is hottest");
        s.note_relocation(3 * WEAR_BLOCK as u64, 512);
        assert_eq!(s.relocations(), 1);
        assert_eq!(s.relocated_bytes(), 512);
        // Re-query: block 3's peak is baselined away; block 5 leads now.
        assert_eq!(s.max_wear(), (1, 5 * WEAR_BLOCK as u64), "post-move: new location leads");
        // New traffic on the vacated block counts from zero again.
        s.wear_commit(3 * WEAR_BLOCK as u64, 64);
        s.wear_commit(3 * WEAR_BLOCK as u64, 64);
        assert_eq!(s.max_wear(), (2, 3 * WEAR_BLOCK as u64));
        let rep = s.wear_report();
        assert_eq!(rep.relocations, 1);
        assert_eq!(rep.relocated_bytes, 512);
        assert!((rep.flatness - 2.0 / 1.5).abs() < 1e-12, "max 2 over mean (2+1)/2");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MemStats::new(WEAR_BLOCK);
        let mut b = MemStats::new(WEAR_BLOCK);
        a.nvbm_write(128, 2);
        b.nvbm_write(64, 1);
        b.wear_commit(5, 64);
        a.merge(&b);
        assert_eq!(a.nvbm.write_lines, 3);
        assert_eq!(a.nvbm.bytes_written, 192);
        assert_eq!(a.max_wear(), (1, 0));
        assert_eq!(a.bytes_by_region()[0], 64, "offset 5 is root_table");
    }

    #[test]
    fn reset_zeroes() {
        let mut s = MemStats::new(WEAR_BLOCK);
        s.nvbm_write(64, 1);
        s.wear_commit(0, 64);
        s.reset();
        assert_eq!(s.nvbm.write_lines, 0);
        assert_eq!(s.max_wear(), (0, 0));
        assert_eq!(s.wear_report().bytes_committed, 0);
    }

    #[test]
    fn commits_attribute_to_region_and_phase() {
        let mut s = MemStats::new(WEAR_BLOCK * 16);
        // Regions: recorder ring at the top 4 KiB, rt heap above 48 KiB.
        s.set_region_bounds(15 * WEAR_BLOCK as u64, 12 * WEAR_BLOCK as u64);
        s.wear_commit(0, 8); // root_table
        s.wear_commit(4096, 64); // octree
        let prev = s.set_phase("persist::flush");
        assert_eq!(prev, PHASE_MUTATE);
        s.wear_commit(13 * WEAR_BLOCK as u64, 64); // rt_heap
        s.wear_commit(15 * WEAR_BLOCK as u64 + 64, 64); // recorder
        s.set_phase(prev);
        assert_eq!(s.bytes_by_region(), [8, 64, 64, 64]);
        let phases: Vec<_> = s.bytes_by_phase().collect();
        assert_eq!(phases, vec![(PHASE_MUTATE, 72), ("persist::flush", 128)]);
        let rep = s.wear_report();
        assert_eq!(rep.bytes_committed, 200);
        assert_eq!(rep.blocks_touched, 4);
        assert_eq!(rep.wear_hist[0], 4, "four blocks worn exactly once");
    }

    #[test]
    fn wear_histogram_buckets_by_log2() {
        let mut s = MemStats::new(WEAR_BLOCK * 4);
        for _ in 0..5 {
            s.wear_commit(0, 64); // block 0: wear 5 → bucket 2
        }
        s.wear_commit(WEAR_BLOCK as u64, 64); // block 1: wear 1 → bucket 0
        let h = s.wear_histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h.iter().sum::<u64>(), 2);
    }

    #[test]
    fn idle_fractions_are_zero() {
        let s = MemStats::new(0);
        assert_eq!(s.overall_write_fraction(), 0.0);
        assert_eq!(s.mean_wear(), 0.0);
        assert_eq!(s.trav.charged_lines_per_descent(), 0.0);
    }

    #[test]
    fn descent_lines_accounting() {
        let mut s = MemStats::new(WEAR_BLOCK);
        let before = s.total_lines_snapshot();
        s.nvbm_read(64, 1);
        s.nvbm_read(64, 1);
        s.dram_read(64, 1);
        s.root_descent();
        s.descent_lines(s.total_lines_snapshot() - before);
        s.root_descent();
        s.descent_lines(1);
        assert_eq!(s.trav.descent_lines, 4);
        assert!((s.trav.charged_lines_per_descent() - 2.0).abs() < 1e-12);

        let mut merged = MemStats::new(WEAR_BLOCK);
        merged.merge(&s);
        assert_eq!(merged.trav.descent_lines, 4);
    }
}
