//! Access accounting: read/write counts, byte volumes, wear map.
//!
//! The paper reports (a) the fraction of memory accesses that are writes
//! (41% average, 72% max for the droplet workload, §1), (b) NVBM write
//! counts saved by dynamic transformation (−31%, §5.5), and (c) implies
//! endurance pressure (Table 2). This module supplies those counters.

use serde::Serialize;

/// Counters for one memory tier.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TierStats {
    /// Number of cacheline read operations.
    pub read_lines: u64,
    /// Number of cacheline write operations.
    pub write_lines: u64,
    /// Bytes read (as requested, not rounded to lines).
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl TierStats {
    /// Total line accesses.
    pub fn total_lines(&self) -> u64 {
        self.read_lines + self.write_lines
    }

    /// Fraction of accesses that are writes (0 when idle).
    pub fn write_fraction(&self) -> f64 {
        let t = self.total_lines();
        if t == 0 {
            0.0
        } else {
            self.write_lines as f64 / t as f64
        }
    }

    fn add(&mut self, other: &TierStats) {
        self.read_lines += other.read_lines;
        self.write_lines += other.write_lines;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// Counters for *how* octants were located, independent of which tier paid
/// for the accesses. They make the sorted-leaf-index optimisation
/// observable: a query answered by the DRAM index bumps `index_hits`, a
/// query that had to walk the tree from the root bumps `root_descents`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraversalStats {
    /// Full root-to-leaf descents taken (per-hop octant reads charged to
    /// whichever tier each hop lived in).
    pub root_descents: u64,
    /// Containment / neighbor queries answered from the Morton-sorted
    /// DRAM leaf index (no tree walk).
    pub index_hits: u64,
    /// Times the leaf index was rebuilt from a full leaf enumeration.
    pub index_rebuilds: u64,
    /// Octants enumerated across all index rebuilds (the rebuild cost; the
    /// enumeration's tier charges are accounted separately by the owner).
    pub index_rebuild_octants: u64,
    /// Cachelines charged (any tier) across all root-to-leaf descents.
    /// `descent_lines / root_descents` is the per-hit cost the hot/cold
    /// octant layout is designed to shrink: one navigation line per hop.
    pub descent_lines: u64,
}

impl TraversalStats {
    fn add(&mut self, other: &TraversalStats) {
        self.root_descents += other.root_descents;
        self.index_hits += other.index_hits;
        self.index_rebuilds += other.index_rebuilds;
        self.index_rebuild_octants += other.index_rebuild_octants;
        self.descent_lines += other.descent_lines;
    }

    /// Mean cachelines charged per root-to-leaf descent (0 when no
    /// descents ran).
    pub fn charged_lines_per_descent(&self) -> f64 {
        if self.root_descents == 0 {
            0.0
        } else {
            self.descent_lines as f64 / self.root_descents as f64
        }
    }
}

/// Combined DRAM + NVBM accounting plus a per-block wear map for the NVBM
/// device.
#[derive(Debug, Default, Clone)]
pub struct MemStats {
    /// DRAM tier counters (the C0 tree instruments itself through these).
    pub dram: TierStats,
    /// NVBM tier counters.
    pub nvbm: TierStats,
    /// Octant-location counters (root descents vs. leaf-index hits).
    pub trav: TraversalStats,
    /// Writes per 4 KiB wear block of the NVBM arena (committed lines).
    wear: Vec<u32>,
}

/// Wear-map block granularity.
pub const WEAR_BLOCK: usize = 4096;

impl MemStats {
    /// Stats for an arena of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        MemStats {
            dram: TierStats::default(),
            nvbm: TierStats::default(),
            trav: TraversalStats::default(),
            wear: vec![0; capacity.div_ceil(WEAR_BLOCK)],
        }
    }

    /// Record one full root-to-leaf descent.
    #[inline]
    pub fn root_descent(&mut self) {
        self.trav.root_descents += 1;
    }

    /// Attribute `lines` cacheline charges to descent traffic. Callers
    /// measure the delta of tier line counters around a descent body so
    /// the same access is never double-counted.
    #[inline]
    pub fn descent_lines(&mut self, lines: u64) {
        self.trav.descent_lines += lines;
    }

    /// Total cacheline charges so far across both tiers — the snapshot
    /// callers delta around a descent to feed [`Self::descent_lines`].
    #[inline]
    pub fn total_lines_snapshot(&self) -> u64 {
        self.dram.total_lines() + self.nvbm.total_lines()
    }

    /// Record `n` queries answered from the sorted leaf index.
    #[inline]
    pub fn index_hits(&mut self, n: u64) {
        self.trav.index_hits += n;
    }

    /// Record a leaf-index rebuild that enumerated `octants` leaves.
    #[inline]
    pub fn index_rebuild(&mut self, octants: u64) {
        self.trav.index_rebuilds += 1;
        self.trav.index_rebuild_octants += octants;
    }

    /// Record an NVBM read of `len` bytes spanning `lines` cachelines.
    #[inline]
    pub fn nvbm_read(&mut self, len: usize, lines: u64) {
        self.nvbm.read_lines += lines;
        self.nvbm.bytes_read += len as u64;
    }

    /// Record an NVBM write of `len` bytes spanning `lines` cachelines.
    #[inline]
    pub fn nvbm_write(&mut self, len: usize, lines: u64) {
        self.nvbm.write_lines += lines;
        self.nvbm.bytes_written += len as u64;
    }

    /// Record a DRAM read (the volatile C0 tree calls this).
    #[inline]
    pub fn dram_read(&mut self, len: usize, lines: u64) {
        self.dram.read_lines += lines;
        self.dram.bytes_read += len as u64;
    }

    /// Record a DRAM write.
    #[inline]
    pub fn dram_write(&mut self, len: usize, lines: u64) {
        self.dram.write_lines += lines;
        self.dram.bytes_written += len as u64;
    }

    /// Record a committed (persisted) line at byte `offset` in the wear
    /// map. Called when a dirty cacheline actually reaches the media.
    #[inline]
    pub fn wear_commit(&mut self, offset: u64) {
        let b = offset as usize / WEAR_BLOCK;
        if let Some(w) = self.wear.get_mut(b) {
            *w += 1;
        }
    }

    /// Maximum writes any single wear block has absorbed.
    pub fn max_wear(&self) -> u32 {
        self.wear.iter().copied().max().unwrap_or(0)
    }

    /// Mean writes per wear block (over blocks ever written).
    pub fn mean_wear(&self) -> f64 {
        let touched: Vec<u32> = self.wear.iter().copied().filter(|&w| w > 0).collect();
        if touched.is_empty() {
            0.0
        } else {
            touched.iter().map(|&w| w as f64).sum::<f64>() / touched.len() as f64
        }
    }

    /// Write fraction over *all* accesses, both tiers — the §1 statistic.
    pub fn overall_write_fraction(&self) -> f64 {
        let w = self.dram.write_lines + self.nvbm.write_lines;
        let t = self.dram.total_lines() + self.nvbm.total_lines();
        if t == 0 {
            0.0
        } else {
            w as f64 / t as f64
        }
    }

    /// Fold another stats block into this one (rank aggregation).
    pub fn merge(&mut self, other: &MemStats) {
        self.dram.add(&other.dram);
        self.nvbm.add(&other.nvbm);
        self.trav.add(&other.trav);
        if self.wear.len() < other.wear.len() {
            self.wear.resize(other.wear.len(), 0);
        }
        for (a, b) in self.wear.iter_mut().zip(&other.wear) {
            *a += *b;
        }
    }

    /// Zero all counters (keeps wear-map size).
    pub fn reset(&mut self) {
        self.dram = TierStats::default();
        self.nvbm = TierStats::default();
        self.trav = TraversalStats::default();
        self.wear.fill(0);
    }

    /// Snapshot of NVBM write-line count — convenient for deltas around a
    /// phase (`let before = ...; run(); writes = now - before`).
    pub fn nvbm_write_lines(&self) -> u64 {
        self.nvbm.write_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_fraction_computation() {
        let mut s = MemStats::new(1 << 16);
        s.dram_read(64, 1);
        s.dram_write(64, 1);
        s.nvbm_read(64, 1);
        s.nvbm_write(64, 1);
        assert!((s.overall_write_fraction() - 0.5).abs() < 1e-12);
        assert!((s.dram.write_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wear_tracking() {
        let mut s = MemStats::new(WEAR_BLOCK * 4);
        s.wear_commit(0);
        s.wear_commit(10);
        s.wear_commit(WEAR_BLOCK as u64);
        assert_eq!(s.max_wear(), 2);
        assert!((s.mean_wear() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MemStats::new(WEAR_BLOCK);
        let mut b = MemStats::new(WEAR_BLOCK);
        a.nvbm_write(128, 2);
        b.nvbm_write(64, 1);
        b.wear_commit(5);
        a.merge(&b);
        assert_eq!(a.nvbm.write_lines, 3);
        assert_eq!(a.nvbm.bytes_written, 192);
        assert_eq!(a.max_wear(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = MemStats::new(WEAR_BLOCK);
        s.nvbm_write(64, 1);
        s.wear_commit(0);
        s.reset();
        assert_eq!(s.nvbm.write_lines, 0);
        assert_eq!(s.max_wear(), 0);
    }

    #[test]
    fn idle_fractions_are_zero() {
        let s = MemStats::new(0);
        assert_eq!(s.overall_write_fraction(), 0.0);
        assert_eq!(s.mean_wear(), 0.0);
        assert_eq!(s.trav.charged_lines_per_descent(), 0.0);
    }

    #[test]
    fn descent_lines_accounting() {
        let mut s = MemStats::new(WEAR_BLOCK);
        let before = s.total_lines_snapshot();
        s.nvbm_read(64, 1);
        s.nvbm_read(64, 1);
        s.dram_read(64, 1);
        s.root_descent();
        s.descent_lines(s.total_lines_snapshot() - before);
        s.root_descent();
        s.descent_lines(1);
        assert_eq!(s.trav.descent_lines, 4);
        assert!((s.trav.charged_lines_per_descent() - 2.0).abs() < 1e-12);

        let mut merged = MemStats::new(WEAR_BLOCK);
        merged.merge(&s);
        assert_eq!(merged.trav.descent_lines, 4);
    }
}
