//! Crash-surviving flight recorder: a persistent ring of event slots.
//!
//! Every `obsv` journal and metric dies with the process, so a crash used
//! to leave no record of what the device was doing. The recorder fixes
//! that with NVBM's own medicine: a fixed ring region at the **top** of
//! the arena (below the `pm-rt` heap) whose entries are written with the
//! same store → flush-line discipline as real data. After any crash the
//! ring is recovered from the raw media image — no volatile state needed
//! — and dumped to explain the last N operations before the failure.
//!
//! ## Slot format
//!
//! One entry is exactly one cacheline (64 bytes), so a torn write-back
//! can only damage a single entry and the platform's 8-byte-atomicity
//! guarantee bounds how it tears:
//!
//! ```text
//! 0..8    seq        monotone sequence number, starts at 1 (0 = empty)
//! 8..16   t_ns       virtual-clock timestamp
//! 16..24  arg        caller argument (epoch, batch size, ...)
//! 24      kind       1=failpoint 2=span_begin 3=span_end 4=note
//! 25      label_len  0..=34
//! 26..60  label      UTF-8 bytes, zero-padded
//! 60..64  checksum   FNV-1a-32 over bytes 0..60
//! ```
//!
//! ## Recovery
//!
//! No head pointer is persisted — sequence numbers encode the order, so
//! appending an entry costs exactly one line write + one flush and the
//! header is never touched. [`recover`] decodes every slot, drops any
//! whose checksum fails or whose `seq` does not map back to its slot
//! index (torn tails, stale generations, garbage), and returns the
//! maximal contiguous run of sequence numbers ending at the newest
//! surviving entry. A crash that tears the tail entry therefore truncates
//! the log by exactly that entry; it can never fabricate a phantom one.

use serde::Serialize;

use crate::arena::HEADER_SIZE;
use crate::model::CACHELINE;

/// Byte offset of the persisted ring base pointer in the device header.
pub(crate) const OFF_REC_BASE: u64 = 56;
/// Byte offset of the persisted ring slot count in the device header.
pub(crate) const OFF_REC_SLOTS: u64 = 64;

/// Longest label an entry can carry (longer labels are truncated).
pub const REC_LABEL_MAX: usize = 34;

/// What kind of moment an entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecKind {
    /// A labelled crash opportunity (`NvbmArena::failpoint`).
    Failpoint,
    /// A protocol phase began (e.g. a persist).
    SpanBegin,
    /// A protocol phase completed.
    SpanEnd,
    /// A free-form milestone (restore completed, batch flushed, ...).
    Note,
}

impl RecKind {
    /// Stable textual name (used by dumps and JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            RecKind::Failpoint => "failpoint",
            RecKind::SpanBegin => "span_begin",
            RecKind::SpanEnd => "span_end",
            RecKind::Note => "note",
        }
    }

    fn code(self) -> u8 {
        match self {
            RecKind::Failpoint => 1,
            RecKind::SpanBegin => 2,
            RecKind::SpanEnd => 3,
            RecKind::Note => 4,
        }
    }

    fn from_code(c: u8) -> Option<RecKind> {
        match c {
            1 => Some(RecKind::Failpoint),
            2 => Some(RecKind::SpanBegin),
            3 => Some(RecKind::SpanEnd),
            4 => Some(RecKind::Note),
            _ => None,
        }
    }
}

impl Serialize for RecKind {
    fn json(&self, out: &mut String) {
        serde::ser::string(out, self.as_str());
    }
}

/// One recovered recorder entry.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RecEntry {
    /// Monotone sequence number (starts at 1).
    pub seq: u64,
    /// Virtual-clock timestamp at record time.
    pub t_ns: u64,
    /// Caller argument (epoch, batch size, 0 when unused).
    pub arg: u64,
    /// Entry kind.
    pub kind: RecKind,
    /// Label (possibly truncated to [`REC_LABEL_MAX`] bytes).
    pub label: String,
}

/// The recovered ring: the surviving recent history, oldest first.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct RecorderDump {
    /// Whether the header's ring descriptor was present and sane. A dump
    /// with `header_ok == false` has no entries by construction.
    pub header_ok: bool,
    /// Ring capacity in slots (0 = recorder disabled on this device).
    pub slots: usize,
    /// Contiguous run of entries ending at the newest surviving one.
    pub entries: Vec<RecEntry>,
    /// Slots holding nothing decodable: never written, torn by the crash,
    /// or overwritten garbage. A freshly formatted device reports all
    /// slots here.
    pub dropped_slots: usize,
    /// Decodable entries discarded because a sequence gap (a lost or torn
    /// newer entry) cut them off from the surviving tail.
    pub truncated: usize,
}

impl RecorderDump {
    /// The newest surviving entry, if any.
    pub fn last(&self) -> Option<&RecEntry> {
        self.entries.last()
    }
}

/// FNV-1a 32-bit over `bytes`.
fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encode one slot. Labels longer than [`REC_LABEL_MAX`] are truncated at
/// a UTF-8 boundary.
pub(crate) fn encode_slot(
    seq: u64,
    t_ns: u64,
    arg: u64,
    kind: RecKind,
    label: &str,
) -> [u8; CACHELINE] {
    let mut s = [0u8; CACHELINE];
    s[0..8].copy_from_slice(&seq.to_le_bytes());
    s[8..16].copy_from_slice(&t_ns.to_le_bytes());
    s[16..24].copy_from_slice(&arg.to_le_bytes());
    s[24] = kind.code();
    let mut n = label.len().min(REC_LABEL_MAX);
    while n > 0 && !label.is_char_boundary(n) {
        n -= 1;
    }
    s[25] = n as u8;
    s[26..26 + n].copy_from_slice(&label.as_bytes()[..n]);
    let c = fnv32(&s[..60]);
    s[60..64].copy_from_slice(&c.to_le_bytes());
    s
}

/// Decode one slot; `None` for empty, torn, or corrupt slots.
pub(crate) fn decode_slot(s: &[u8]) -> Option<RecEntry> {
    if s.len() < CACHELINE {
        return None;
    }
    let rd = |o: usize| u64::from_le_bytes(s[o..o + 8].try_into().expect("slot bounds checked"));
    let seq = rd(0);
    if seq == 0 {
        return None;
    }
    let stored = u32::from_le_bytes(s[60..64].try_into().expect("slot bounds checked"));
    if fnv32(&s[..60]) != stored {
        return None;
    }
    let kind = RecKind::from_code(s[24])?;
    let n = s[25] as usize;
    if n > REC_LABEL_MAX {
        return None;
    }
    let label = std::str::from_utf8(&s[26..26 + n]).ok()?.to_string();
    Some(RecEntry { seq, t_ns: rd(8), arg: rd(16), kind, label })
}

/// Read the ring descriptor `(base, slots)` from a raw media image's
/// header. `None` when the header is too small or the descriptor is
/// insane (out of bounds, unaligned); `Some((_, 0))` when the device has
/// the recorder disabled.
pub fn region_of(media: &[u8]) -> Option<(u64, usize)> {
    if (media.len() as u64) < HEADER_SIZE {
        return None;
    }
    let rd = |off: u64| {
        let s = off as usize;
        media[s..s + 8].try_into().map(u64::from_le_bytes).ok()
    };
    let base = rd(OFF_REC_BASE)?;
    let slots = rd(OFF_REC_SLOTS)?;
    if slots == 0 {
        return Some((0, 0));
    }
    let bytes = slots.checked_mul(CACHELINE as u64)?;
    let end = base.checked_add(bytes)?;
    let sane = base >= HEADER_SIZE
        && base % CACHELINE as u64 == 0
        && end <= media.len() as u64
        && slots <= media.len() as u64 / CACHELINE as u64;
    if sane {
        Some((base, slots as usize))
    } else {
        None
    }
}

/// Recover the flight recorder from a raw media image (a crash snapshot,
/// a replica, or a live arena's durable view). Never panics: damaged
/// slots are dropped and counted, a damaged header yields an empty dump
/// with `header_ok == false`.
pub fn recover(media: &[u8]) -> RecorderDump {
    let Some((base, slots)) = region_of(media) else {
        return RecorderDump { header_ok: false, ..Default::default() };
    };
    if slots == 0 {
        return RecorderDump { header_ok: true, ..Default::default() };
    }
    let mut found: Vec<RecEntry> = Vec::new();
    let mut dropped = 0usize;
    for i in 0..slots {
        let off = base as usize + i * CACHELINE;
        match decode_slot(&media[off..off + CACHELINE]) {
            // A valid entry must sit in the slot its seq maps to —
            // anything else is a stale copy or corruption.
            Some(e) if (e.seq - 1) % slots as u64 == i as u64 => found.push(e),
            _ => dropped += 1,
        }
    }
    found.sort_by_key(|e| e.seq);
    // Keep only the maximal contiguous seq run ending at the newest
    // entry: a gap means the entries before it were severed from the
    // surviving tail by a lost or torn newer write.
    let mut start = found.len().saturating_sub(1);
    while start > 0 && found[start - 1].seq + 1 == found[start].seq {
        start -= 1;
    }
    let entries = if found.is_empty() { Vec::new() } else { found.split_off(start) };
    RecorderDump { header_ok: true, slots, entries, dropped_slots: dropped, truncated: found.len() }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn media_with_ring(slots: usize) -> (Vec<u8>, u64) {
        let cap = 1 << 16;
        let base = (cap - slots * CACHELINE) as u64;
        let mut m = vec![0u8; cap];
        m[OFF_REC_BASE as usize..OFF_REC_BASE as usize + 8].copy_from_slice(&base.to_le_bytes());
        m[OFF_REC_SLOTS as usize..OFF_REC_SLOTS as usize + 8]
            .copy_from_slice(&(slots as u64).to_le_bytes());
        (m, base)
    }

    fn put(m: &mut [u8], base: u64, slots: usize, seq: u64, label: &str) {
        let slot = ((seq - 1) % slots as u64) as usize;
        let off = base as usize + slot * CACHELINE;
        m[off..off + CACHELINE].copy_from_slice(&encode_slot(
            seq,
            seq * 10,
            0,
            RecKind::Note,
            label,
        ));
    }

    #[test]
    fn slot_roundtrip() {
        let s = encode_slot(7, 123, 42, RecKind::Failpoint, "persist::root_swap");
        let e = decode_slot(&s).expect("decodes");
        assert_eq!(e.seq, 7);
        assert_eq!(e.t_ns, 123);
        assert_eq!(e.arg, 42);
        assert_eq!(e.kind, RecKind::Failpoint);
        assert_eq!(e.label, "persist::root_swap");
    }

    #[test]
    fn empty_and_corrupt_slots_decode_to_none() {
        assert_eq!(decode_slot(&[0u8; CACHELINE]), None);
        let mut s = encode_slot(1, 0, 0, RecKind::Note, "x");
        s[30] ^= 0xFF;
        assert_eq!(decode_slot(&s), None);
    }

    #[test]
    fn long_labels_truncate_at_char_boundary() {
        let long = "é".repeat(40); // 2 bytes per char
        let e = decode_slot(&encode_slot(1, 0, 0, RecKind::Note, &long)).expect("decodes");
        assert!(e.label.len() <= REC_LABEL_MAX);
        assert!(e.label.chars().all(|c| c == 'é'));
    }

    #[test]
    fn recover_orders_and_wraps() {
        let (mut m, base) = media_with_ring(4);
        for seq in 1..=6 {
            put(&mut m, base, 4, seq, "op");
        }
        let d = recover(&m);
        assert!(d.header_ok);
        let seqs: Vec<u64> = d.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
        assert_eq!(d.truncated, 0);
    }

    #[test]
    fn gap_truncates_older_history() {
        let (mut m, base) = media_with_ring(8);
        for seq in [1u64, 2, 3, 5, 6] {
            put(&mut m, base, 8, seq, "op");
        }
        let d = recover(&m);
        let seqs: Vec<u64> = d.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 6], "gap at 4 severs 1..3");
        assert_eq!(d.truncated, 3);
    }

    #[test]
    fn stale_seq_in_wrong_slot_is_dropped() {
        let (mut m, base) = media_with_ring(4);
        put(&mut m, base, 4, 1, "real");
        // A copy of entry 1 planted in slot 2: valid checksum, wrong slot.
        let off = base as usize + 2 * CACHELINE;
        let copy = encode_slot(1, 10, 0, RecKind::Note, "real");
        m[off..off + CACHELINE].copy_from_slice(&copy);
        let d = recover(&m);
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.dropped_slots, 3);
    }

    #[test]
    fn damaged_header_yields_empty_dump_not_panic() {
        let (mut m, _) = media_with_ring(4);
        // Base pointing past the device.
        m[OFF_REC_BASE as usize..OFF_REC_BASE as usize + 8]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        let d = recover(&m);
        assert!(!d.header_ok);
        assert!(d.entries.is_empty());
        // Too-small image.
        assert!(!recover(&[0u8; 16]).header_ok);
    }

    #[test]
    fn disabled_recorder_is_ok_and_empty() {
        let m = vec![0u8; 4096];
        let d = recover(&m);
        assert!(d.header_ok);
        assert_eq!(d.slots, 0);
        assert!(d.entries.is_empty());
    }
}
