//! Refcounted version pins on `pm-rt` root-table epochs.
//!
//! The runtime's copy-on-write commit retires the blobs a new root table
//! supersedes. MVCC snapshot readers need those blobs to *stay put*: a
//! snapshot pinned at epoch `E` keeps every blob that was live in table
//! version `E` allocated until the pin is released. [`EpochPins`] is the
//! device-side registry of those pins: the runtime consults
//! [`EpochPins::min_pinned`] before freeing anything it retired, so a
//! retired blob is reclaimed only once no snapshot older than its
//! retirement epoch remains.
//!
//! Pins are **volatile** — they describe live readers in this process,
//! not persistent state. A reboot (or [`NvbmArena::restore_media`]
//! (crate::NvbmArena::restore_media), which models one) drops every
//! reader, so the registry is *invalidated*: its generation counter
//! bumps, outstanding [`PinGuard`]s stop counting, and a snapshot that
//! survived the swap reports `SnapshotGone` instead of reading blobs the
//! new lineage may have reused.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct PinMap {
    /// epoch → number of live pins.
    pins: BTreeMap<u64, u32>,
    /// Bumped by [`EpochPins::invalidate`]; guards from an older
    /// generation are dead (their epochs are no longer protected).
    generation: u64,
}

/// Shared, refcounted registry of pinned root-table epochs. Cloning is
/// cheap (an `Arc`); every clone observes the same pins.
#[derive(Debug, Clone, Default)]
pub struct EpochPins(Arc<Mutex<PinMap>>);

impl EpochPins {
    /// A fresh registry with no pins, generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin `epoch`. The returned guard releases the pin on drop (if the
    /// registry has not been invalidated in between).
    pub fn pin(&self, epoch: u64) -> PinGuard {
        let mut m = self.0.lock().expect("pin registry lock");
        *m.pins.entry(epoch).or_insert(0) += 1;
        PinGuard { pins: self.clone(), epoch, generation: m.generation }
    }

    /// The oldest pinned epoch, if any pin is live.
    pub fn min_pinned(&self) -> Option<u64> {
        self.0.lock().expect("pin registry lock").pins.keys().next().copied()
    }

    /// Number of live pins across all epochs.
    pub fn count(&self) -> usize {
        self.0.lock().expect("pin registry lock").pins.values().map(|&n| n as usize).sum()
    }

    /// Is `epoch` currently pinned?
    pub fn is_pinned(&self, epoch: u64) -> bool {
        self.0.lock().expect("pin registry lock").pins.contains_key(&epoch)
    }

    /// Current generation (bumped by every [`EpochPins::invalidate`]).
    pub fn generation(&self) -> u64 {
        self.0.lock().expect("pin registry lock").generation
    }

    /// Drop every pin and bump the generation: outstanding guards become
    /// dead and snapshots holding them must report `SnapshotGone`. Called
    /// when the underlying media is replaced or the runtime registry is
    /// destroyed — the epochs the pins named no longer exist.
    pub fn invalidate(&self) {
        let mut m = self.0.lock().expect("pin registry lock");
        m.pins.clear();
        m.generation += 1;
    }
}

/// RAII release of one epoch pin. Obtained from [`EpochPins::pin`];
/// dropping it decrements the epoch's refcount (unless the registry was
/// invalidated, in which case the pin is already gone).
#[derive(Debug)]
pub struct PinGuard {
    pins: EpochPins,
    epoch: u64,
    generation: u64,
}

impl PinGuard {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Is this pin still protecting its epoch? `false` after the
    /// registry was invalidated (media swap / registry destroy).
    pub fn is_live(&self) -> bool {
        let m = self.pins.0.lock().expect("pin registry lock");
        m.generation == self.generation && m.pins.contains_key(&self.epoch)
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut m = self.pins.0.lock().expect("pin registry lock");
        if m.generation != self.generation {
            return; // invalidated: the pin no longer exists
        }
        if let Some(n) = m.pins.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                m.pins.remove(&self.epoch);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn pin_unpin_refcounts() {
        let p = EpochPins::new();
        assert_eq!(p.min_pinned(), None);
        let a = p.pin(5);
        let b = p.pin(5);
        let c = p.pin(9);
        assert_eq!(p.min_pinned(), Some(5));
        assert_eq!(p.count(), 3);
        drop(a);
        assert_eq!(p.min_pinned(), Some(5), "second pin still holds epoch 5");
        drop(b);
        assert_eq!(p.min_pinned(), Some(9));
        assert!(c.is_live());
        drop(c);
        assert_eq!(p.min_pinned(), None);
    }

    #[test]
    fn invalidate_kills_outstanding_guards() {
        let p = EpochPins::new();
        let g = p.pin(3);
        assert!(g.is_live());
        p.invalidate();
        assert!(!g.is_live());
        assert_eq!(p.min_pinned(), None);
        // A stale guard's drop must not disturb a new-generation pin on
        // the same epoch.
        let h = p.pin(3);
        drop(g);
        assert!(h.is_live());
        assert_eq!(p.min_pinned(), Some(3));
    }

    #[test]
    fn clones_share_state() {
        let p = EpochPins::new();
        let q = p.clone();
        let _g = p.pin(1);
        assert!(q.is_pinned(1));
    }
}
