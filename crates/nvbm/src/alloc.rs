//! Persistent-region allocator.
//!
//! Carves an [`NvbmArena`](crate::arena::NvbmArena)'s space (above the
//! device header) into cacheline-multiple blocks. The free lists live in
//! volatile memory: after a crash they are *rebuilt* from the set of live
//! octants discovered by PM-octree's mark phase ([`PmemAllocator::rebuild`]),
//! which is exactly how the paper avoids logging allocator metadata.
//!
//! Deferred reuse matches §3.2: freed regions "will not be released and can
//! be reused for inserting new octants" — a `free` immediately recycles the
//! block without touching the media at all (deletion writes nothing).

use std::collections::{BTreeMap, VecDeque};

use crate::arena::{POffset, HEADER_SIZE};
use crate::model::CACHELINE;

/// Round a size up to a whole number of cachelines.
#[inline]
pub fn size_class(size: usize) -> usize {
    size.div_ceil(CACHELINE) * CACHELINE
}

/// Free-block reuse order — the endurance lever for a device with
/// 10^6–10^8 writes/bit (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReusePolicy {
    /// LIFO: reuse the most-recently-freed block. Best locality (the
    /// block's lines are likely still in the dirty cache) but
    /// concentrates writes on few blocks.
    #[default]
    Lifo,
    /// FIFO rotation: reuse the least-recently-freed block, cycling
    /// through all freed space — a simple wear-leveling discipline that
    /// spreads writes across the device.
    WearAware,
}

/// Volatile free-list allocator over a persistent arena.
#[derive(Debug, Clone)]
pub struct PmemAllocator {
    capacity: u64,
    bump: u64,
    /// Exclusive ceiling for bump growth: the byte where someone else's
    /// territory begins (the `pm-rt` heap grows down from the arena top).
    /// The owner refreshes this from the arena's live rt floor before
    /// allocating, so a near-full device fails the allocation instead of
    /// silently overwriting committed runtime state.
    limit: u64,
    /// size-class → queue of free block offsets.
    free: BTreeMap<usize, VecDeque<u64>>,
    /// Bytes currently handed out (for utilization thresholds).
    live_bytes: u64,
    policy: ReusePolicy,
}

impl PmemAllocator {
    /// Allocator over an arena of `capacity` bytes, starting fresh
    /// (everything above the header is free). LIFO reuse.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, ReusePolicy::Lifo)
    }

    /// Allocator with an explicit reuse policy.
    pub fn with_policy(capacity: usize, policy: ReusePolicy) -> Self {
        PmemAllocator {
            capacity: capacity as u64,
            bump: HEADER_SIZE,
            limit: capacity as u64,
            free: BTreeMap::new(),
            live_bytes: 0,
            policy,
        }
    }

    /// Lower the bump ceiling to `limit` (clamped to the capacity): bytes
    /// at or above it belong to the downward-growing `pm-rt` heap.
    pub fn set_limit(&mut self, limit: u64) {
        self.limit = limit.min(self.capacity);
    }

    /// The bump ceiling in force.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The reuse policy in force.
    pub fn policy(&self) -> ReusePolicy {
        self.policy
    }

    /// Change the reuse policy (takes effect for subsequent allocations).
    pub fn set_policy(&mut self, policy: ReusePolicy) {
        self.policy = policy;
    }

    /// Allocate `size` bytes (rounded up to cachelines). Returns `None`
    /// when the device is full.
    pub fn alloc(&mut self, size: usize) -> Option<POffset> {
        let cls = size_class(size.max(1));
        if let Some(list) = self.free.get_mut(&cls) {
            let reused = match self.policy {
                ReusePolicy::Lifo => list.pop_back(),
                ReusePolicy::WearAware => list.pop_front(),
            };
            if let Some(off) = reused {
                self.live_bytes += cls as u64;
                return Some(POffset(off));
            }
        }
        if self.bump + cls as u64 > self.limit {
            return None;
        }
        let off = self.bump;
        self.bump += cls as u64;
        self.live_bytes += cls as u64;
        Some(POffset(off))
    }

    /// Return a block to its size-class free list. `size` must be the
    /// original requested size (or its class).
    pub fn free(&mut self, p: POffset, size: usize) {
        debug_assert!(!p.is_null(), "freeing null");
        let cls = size_class(size.max(1));
        self.free.entry(cls).or_default().push_back(p.0);
        self.live_bytes = self.live_bytes.saturating_sub(cls as u64);
    }

    /// Sort every size-class free list coldest-first by measured block
    /// wear, so [`ReusePolicy::WearAware`]'s front-of-list reuse lands on
    /// the least-worn blocks instead of merely rotating FIFO. `wear_of`
    /// maps a byte offset to its block's effective wear (pass
    /// [`MemStats::block_wear`](crate::MemStats::block_wear)). The sort is
    /// stable, so equally-cold blocks keep their FIFO rotation order.
    /// O(n log n) over the free set — call from GC sweeps, not per alloc.
    pub fn steer_cold(&mut self, wear_of: impl Fn(u64) -> u32) {
        for list in self.free.values_mut() {
            let mut v: Vec<u64> = list.drain(..).collect();
            v.sort_by_key(|&off| wear_of(off));
            list.extend(v);
        }
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Fraction of the device currently free — the paper's
    /// `threshold_NVBM` check ("track the percentage of available NVBM
    /// space") compares against this.
    pub fn available_fraction(&self) -> f64 {
        let usable = self.capacity - HEADER_SIZE;
        1.0 - self.live_bytes.min(usable) as f64 / usable as f64
    }

    /// Bump pointer (persist via the arena header at persist points).
    pub fn bump(&self) -> u64 {
        self.bump
    }

    /// Every block currently on a free list, as `(offset, size_class)`
    /// pairs. Recovery invariant checking uses this to prove no reachable
    /// octant sits on the free list.
    pub fn free_blocks(&self) -> Vec<(POffset, usize)> {
        let mut out = Vec::new();
        for (&cls, list) in &self.free {
            out.extend(list.iter().map(|&off| (POffset(off), cls)));
        }
        out.sort_unstable();
        out
    }

    /// Rebuild the allocator after a crash from the live set discovered by
    /// GC's mark phase: `live` is an iterator of `(offset, size)` pairs of
    /// reachable blocks; everything else below `bump_hint` becomes free.
    ///
    /// All live blocks must have been allocated at cacheline-class sizes,
    /// which holds for every allocation this type ever hands out.
    pub fn rebuild(
        capacity: usize,
        bump_hint: u64,
        live: impl IntoIterator<Item = (POffset, usize)>,
    ) -> Self {
        let mut blocks: Vec<(u64, usize)> =
            live.into_iter().map(|(p, s)| (p.0, size_class(s.max(1)))).collect();
        blocks.sort_unstable();
        let mut a = PmemAllocator::new(capacity);
        a.bump = bump_hint.max(HEADER_SIZE);
        let mut cursor = HEADER_SIZE;
        for &(off, cls) in &blocks {
            debug_assert!(off >= cursor, "overlapping live blocks in rebuild");
            // The gap [cursor, off) is dead space: free it in class-sized
            // chunks (largest class that fits, greedily).
            Self::free_gap(&mut a.free, cursor, off);
            a.live_bytes += cls as u64;
            cursor = off + cls as u64;
        }
        Self::free_gap(&mut a.free, cursor, a.bump);
        a
    }

    /// Carve a private bump region of `blocks × block_size` bytes off the
    /// top of the shared bump pointer, for one concurrent write domain.
    /// The whole region is charged to `live_bytes` up front; release the
    /// unused tail with [`PmemAllocator::release_lease`] so the charge
    /// nets out to exactly the blocks actually consumed. Returns `None`
    /// when the region would cross the bump ceiling — callers fall back
    /// to serial allocation.
    ///
    /// Leases never draw from the free lists: every lease region is a
    /// fresh, pairwise-disjoint address range, which is what lets N
    /// domains allocate COW copies concurrently without contending on —
    /// or interleaving lines with — each other.
    pub fn carve_lease(&mut self, blocks: usize, block_size: usize) -> Option<AllocLease> {
        let cls = size_class(block_size.max(1));
        let total = cls as u64 * blocks as u64;
        if self.bump + total > self.limit {
            return None;
        }
        let start = self.bump;
        self.bump += total;
        self.live_bytes += total;
        Some(AllocLease { start, next: start, limit: start + total, block: cls })
    }

    /// Return a lease's unconsumed blocks (from `from` to the lease end)
    /// to the free lists, reversing their up-front `live_bytes` charge.
    /// Pass `lease.cursor()` to keep the consumed prefix, or
    /// `lease.start()` to discard the whole region (failed domain).
    pub fn release_lease(&mut self, lease: AllocLease, from: u64) {
        let mut off = from.clamp(lease.start, lease.limit);
        while off + lease.block as u64 <= lease.limit {
            self.free(POffset(off), lease.block);
            off += lease.block as u64;
        }
    }

    fn free_gap(free: &mut BTreeMap<usize, VecDeque<u64>>, mut lo: u64, hi: u64) {
        // Chop the gap into power-of-two-ish multiples of CACHELINE so the
        // chunks land in commonly requested classes. Simple scheme: walk in
        // 128-byte blocks (the octant class), then mop up a 64-byte tail.
        const OCTANT_CLASS: u64 = 2 * CACHELINE as u64;
        while lo + OCTANT_CLASS <= hi {
            free.entry(OCTANT_CLASS as usize).or_default().push_back(lo);
            lo += OCTANT_CLASS;
        }
        while lo + CACHELINE as u64 <= hi {
            free.entry(CACHELINE).or_default().push_back(lo);
            lo += CACHELINE as u64;
        }
    }
}

/// A private bump region carved from a [`PmemAllocator`] for one
/// concurrent write domain ([`PmemAllocator::carve_lease`]). Allocation
/// is a plain cursor advance — no shared state, so it is safe to hand
/// each worker thread its own lease and let them allocate concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocLease {
    start: u64,
    next: u64,
    limit: u64,
    block: usize,
}

impl AllocLease {
    /// Allocate one block from the lease; `None` when it is exhausted
    /// (the domain over-ran its pre-sized budget — callers treat this
    /// as device-full and fall back to serial allocation).
    pub fn alloc(&mut self) -> Option<POffset> {
        if self.next + self.block as u64 > self.limit {
            return None;
        }
        let off = self.next;
        self.next += self.block as u64;
        Some(POffset(off))
    }

    /// First byte of the lease region.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Current cursor: the first unconsumed byte.
    pub fn cursor(&self) -> u64 {
        self.next
    }

    /// One past the last byte of the lease region.
    pub fn end(&self) -> u64 {
        self.limit
    }

    /// Block size (cacheline class) the lease hands out.
    pub fn block_size(&self) -> usize {
        self.block
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_cacheline() {
        let mut a = PmemAllocator::new(1 << 20);
        let p1 = a.alloc(1).unwrap();
        let p2 = a.alloc(1).unwrap();
        assert_eq!(p2.0 - p1.0, 64);
        assert_eq!(a.live_bytes(), 128);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let mut a = PmemAllocator::new(1 << 20);
        let p = a.alloc(128).unwrap();
        a.free(p, 128);
        let q = a.alloc(100).unwrap(); // same class (128)
        assert_eq!(p, q);
    }

    #[test]
    fn distinct_classes_do_not_mix() {
        let mut a = PmemAllocator::new(1 << 20);
        let p = a.alloc(64).unwrap();
        a.free(p, 64);
        let q = a.alloc(128).unwrap();
        assert_ne!(p, q, "128B alloc must not reuse a 64B block");
    }

    #[test]
    fn limit_caps_bump_growth() {
        let mut a = PmemAllocator::new(1 << 20);
        a.set_limit(HEADER_SIZE + 128);
        let p = a.alloc(128).unwrap();
        assert!(a.alloc(128).is_none(), "bump must not cross the limit");
        // Free-list reuse below the limit is unaffected.
        a.free(p, 128);
        assert_eq!(a.alloc(128), Some(p));
        // Raising the limit re-enables bump growth.
        a.set_limit(HEADER_SIZE + 256);
        assert!(a.alloc(128).is_some());
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = PmemAllocator::new(HEADER_SIZE as usize + 256);
        assert!(a.alloc(128).is_some());
        assert!(a.alloc(128).is_some());
        assert!(a.alloc(128).is_none());
    }

    #[test]
    fn available_fraction_tracks_usage() {
        let mut a = PmemAllocator::new(HEADER_SIZE as usize + 1024);
        assert!((a.available_fraction() - 1.0).abs() < 1e-12);
        let _ = a.alloc(512).unwrap();
        assert!((a.available_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rebuild_reconstructs_free_space() {
        let mut a = PmemAllocator::new(1 << 16);
        let blocks: Vec<_> = (0..8).map(|_| a.alloc(128).unwrap()).collect();
        // Keep blocks 0, 2, 4, 6 live; crash; rebuild.
        let live: Vec<_> = blocks.iter().step_by(2).map(|&p| (p, 128)).collect();
        let mut b = PmemAllocator::rebuild(1 << 16, a.bump(), live.clone());
        assert_eq!(b.live_bytes(), 4 * 128);
        // The 4 dead blocks are reusable before the bump pointer moves.
        let bump_before = b.bump();
        for _ in 0..4 {
            let p = b.alloc(128).unwrap();
            assert!(p.0 < bump_before, "should reuse freed block, got {p:?}");
            assert!(!live.iter().any(|&(l, _)| l == p), "handed out a live block");
        }
    }

    #[test]
    fn wear_aware_rotates_reuse() {
        let mut lifo = PmemAllocator::with_policy(1 << 20, ReusePolicy::Lifo);
        let mut wear = PmemAllocator::with_policy(1 << 20, ReusePolicy::WearAware);
        for a in [&mut lifo, &mut wear] {
            let blocks: Vec<_> = (0..8).map(|_| a.alloc(128).unwrap()).collect();
            for &b in &blocks {
                a.free(b, 128);
            }
        }
        // LIFO hands back the last-freed block; wear-aware the first.
        let l = lifo.alloc(128).unwrap();
        let w = wear.alloc(128).unwrap();
        assert!(l.0 > w.0, "lifo {l:?} vs wear-aware {w:?}");
        // Wear-aware cycles: consecutive alloc/free pairs touch distinct
        // blocks until the queue wraps.
        let mut seen = std::collections::HashSet::new();
        wear.free(w, 128);
        for _ in 0..8 {
            let p = wear.alloc(128).unwrap();
            seen.insert(p);
            wear.free(p, 128);
        }
        assert_eq!(seen.len(), 8, "rotation must visit all freed blocks");
        // LIFO hammers one block in the same pattern.
        let mut seen_l = std::collections::HashSet::new();
        lifo.free(l, 128);
        for _ in 0..8 {
            let p = lifo.alloc(128).unwrap();
            seen_l.insert(p);
            lifo.free(p, 128);
        }
        assert_eq!(seen_l.len(), 1);
    }

    #[test]
    fn steer_cold_reorders_reuse_coldest_first() {
        let mut a = PmemAllocator::with_policy(1 << 20, ReusePolicy::WearAware);
        let blocks: Vec<_> = (0..6).map(|_| a.alloc(128).unwrap()).collect();
        for &b in &blocks {
            a.free(b, 128);
        }
        // Synthetic wear: earlier (lower-offset) blocks are the hottest,
        // i.e. exactly the ones FIFO rotation would reuse first.
        let hottest = blocks[0];
        a.steer_cold(|off| u32::MAX - (off / 64) as u32);
        let order: Vec<_> = (0..6).map(|_| a.alloc(128).unwrap()).collect();
        let mut coldest_first = blocks.clone();
        coldest_first.reverse();
        assert_eq!(order, coldest_first, "reuse must visit coldest blocks first");
        assert_eq!(*order.last().unwrap(), hottest, "hottest block reused last");
        // Stable on ties: uniform wear degrades to the FIFO rotation.
        for &b in &order {
            a.free(b, 128);
        }
        a.steer_cold(|_| 7);
        let tied: Vec<_> = (0..6).map(|_| a.alloc(128).unwrap()).collect();
        assert_eq!(tied, coldest_first, "tied wear keeps FIFO order");
    }

    #[test]
    fn lease_regions_are_disjoint_and_accounted() {
        let mut a = PmemAllocator::new(1 << 20);
        let base = a.alloc(128).unwrap();
        let mut l1 = a.carve_lease(4, 128).unwrap();
        let l2 = a.carve_lease(4, 128).unwrap();
        assert_eq!(a.live_bytes(), 128 + 2 * 4 * 128, "leases charged up front");
        // Regions are disjoint from each other and from prior allocations.
        assert!(l1.start() >= base.0 + 128);
        assert_eq!(l2.start(), l1.end());
        // Lease allocation is a cursor walk inside the region.
        let p1 = l1.alloc().unwrap();
        let p2 = l1.alloc().unwrap();
        assert_eq!((p1.0, p2.0), (l1.start(), l1.start() + 128));
        for _ in 0..2 {
            assert!(l1.alloc().is_some());
        }
        assert!(l1.alloc().is_none(), "lease exhausts at its budget");
        // Releasing the unused tail refunds the live-byte charge.
        let consumed = l2.cursor();
        a.release_lease(l1, l1.cursor()); // fully consumed: refunds nothing
        a.release_lease(l2, consumed); // untouched: refunds all 4 blocks
        assert_eq!(a.live_bytes(), 128 + 4 * 128);
        // The refunded blocks are reusable.
        let q = a.alloc(128).unwrap();
        assert!(q.0 >= l2.start() && q.0 < l2.end());
    }

    #[test]
    fn lease_respects_bump_limit() {
        let mut a = PmemAllocator::new(HEADER_SIZE as usize + 512);
        assert!(a.carve_lease(8, 128).is_none(), "lease must not cross the limit");
        let l = a.carve_lease(4, 128).unwrap();
        assert_eq!(l.end() - l.start(), 512);
        assert!(a.alloc(64).is_none(), "lease consumed the remaining space");
    }

    #[test]
    fn rebuild_empty_live_set_frees_all() {
        let mut a = PmemAllocator::rebuild(1 << 16, 4096, std::iter::empty());
        assert_eq!(a.live_bytes(), 0);
        // Everything below the hint is in free lists.
        let p = a.alloc(128).unwrap();
        assert!(p.0 < 4096);
    }
}
