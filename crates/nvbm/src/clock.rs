//! Virtual time.
//!
//! The paper emulates NVBM latency with RDTSCP spin loops; spinning makes
//! wall-clock measurements real but non-deterministic and slow. We instead
//! charge modeled latencies onto a per-rank [`VirtualClock`]. Experiment
//! harnesses report virtual seconds; Criterion micro-benches may opt into
//! [`SpinMode`] to burn real cycles like the original emulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic virtual clock, advanced by device/cost models.
///
/// One clock per simulated rank; the simulated execution time of a
/// parallel phase is the max over rank clocks (computed by the `cluster`
/// crate).
///
/// The instant lives behind a shared atomic: `clone()` yields another
/// handle onto the *same* clock, which is what lets RAII tracing spans
/// (`pmoctree-obsv`) read the time at drop without borrowing the arena
/// that owns the clock. Each rank is single-threaded, so `Relaxed`
/// ordering is sufficient and reads stay deterministic.
#[derive(Clone)]
pub struct VirtualClock {
    now_ns: Arc<AtomicU64>,
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock { now_ns: Arc::new(AtomicU64::new(0)) }
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualClock").field("now_ns", &self.now_ns()).finish()
    }
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 * 1e-9
    }

    /// Advance the clock by `ns` nanoseconds.
    #[inline]
    pub fn advance(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Advance to at least `t_ns` (used to synchronize ranks at barriers).
    #[inline]
    pub fn advance_to(&self, t_ns: u64) {
        self.now_ns.fetch_max(t_ns, Ordering::Relaxed);
    }

    /// Reset to zero (new experiment).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }
}

/// Real spin-loop delay, equivalent to the paper's RDTSCP-based emulation.
///
/// Only used by micro-benchmarks that want wall-clock effects; the
/// experiment harness uses [`VirtualClock`] for determinism.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinMode;

impl SpinMode {
    /// Busy-wait for approximately `ns` nanoseconds.
    pub fn delay(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(150);
        c.advance(100);
        assert_eq!(c.now_ns(), 250);
        assert!((c.now_secs() - 250e-9).abs() < 1e-18);
    }

    #[test]
    fn advance_to_is_max() {
        let c = VirtualClock::new();
        c.advance(500);
        c.advance_to(300);
        assert_eq!(c.now_ns(), 500);
        c.advance_to(800);
        assert_eq!(c.now_ns(), 800);
    }

    #[test]
    fn clone_is_a_shared_handle() {
        let c = VirtualClock::new();
        let view = c.clone();
        c.advance(150);
        assert_eq!(view.now_ns(), 150, "clones observe the same instant");
        view.advance(50);
        assert_eq!(c.now_ns(), 200);
    }

    #[test]
    fn spin_waits_roughly() {
        let s = SpinMode;
        let t0 = Instant::now();
        s.delay(200_000); // 200 us
        assert!(t0.elapsed().as_nanos() >= 200_000);
    }
}
