//! Virtual time.
//!
//! The paper emulates NVBM latency with RDTSCP spin loops; spinning makes
//! wall-clock measurements real but non-deterministic and slow. We instead
//! charge modeled latencies onto a per-rank [`VirtualClock`]. Experiment
//! harnesses report virtual seconds; Criterion micro-benches may opt into
//! [`SpinMode`] to burn real cycles like the original emulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic virtual clock, advanced by device/cost models.
///
/// One clock per simulated rank; the simulated execution time of a
/// parallel phase is the max over rank clocks (computed by the `cluster`
/// crate).
///
/// The instant lives behind a shared atomic: `clone()` yields another
/// handle onto the *same* clock, which is what lets RAII tracing spans
/// (`pmoctree-obsv`) read the time at drop without borrowing the arena
/// that owns the clock.
///
/// ### Ownership and ordering under the worker pool
///
/// Ranks execute on a real thread pool (the `rayon` shim), so clock
/// handles genuinely cross threads: a rank — and every clock handle
/// cloned into its spans — is advanced by whichever worker currently
/// runs that rank, and the coordinator reads all rank clocks at barriers.
/// Determinism comes from the ownership discipline, not from luck:
/// *during a parallel phase exactly one worker touches a given rank's
/// clock* (ranks are disjoint `&mut` items), and the coordinator only
/// reads after the pool's scope join, which is a full happens-before
/// edge. The atomics therefore never race on the same instant; they are
/// still upgraded from `Relaxed` to acquire/release orderings so that a
/// clock value published by one worker is a correct synchronisation
/// point even for code that inspects clocks mid-phase (e.g. span guards
/// dropped on another worker after a rank migrates between chunks), and
/// so the single-writer argument is not load-bearing for memory safety.
#[derive(Clone)]
pub struct VirtualClock {
    now_ns: Arc<AtomicU64>,
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock { now_ns: Arc::new(AtomicU64::new(0)) }
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualClock").field("now_ns", &self.now_ns()).finish()
    }
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 * 1e-9
    }

    /// Advance the clock by `ns` nanoseconds.
    #[inline]
    pub fn advance(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::AcqRel);
    }

    /// Advance to at least `t_ns` (used to synchronize ranks at barriers).
    #[inline]
    pub fn advance_to(&self, t_ns: u64) {
        self.now_ns.fetch_max(t_ns, Ordering::AcqRel);
    }

    /// Reset to zero (new experiment).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Release);
    }
}

/// Real spin-loop delay, equivalent to the paper's RDTSCP-based emulation.
///
/// Only used by micro-benchmarks that want wall-clock effects; the
/// experiment harness uses [`VirtualClock`] for determinism.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinMode;

impl SpinMode {
    /// Busy-wait for approximately `ns` nanoseconds.
    pub fn delay(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(150);
        c.advance(100);
        assert_eq!(c.now_ns(), 250);
        assert!((c.now_secs() - 250e-9).abs() < 1e-18);
    }

    #[test]
    fn advance_to_is_max() {
        let c = VirtualClock::new();
        c.advance(500);
        c.advance_to(300);
        assert_eq!(c.now_ns(), 500);
        c.advance_to(800);
        assert_eq!(c.now_ns(), 800);
    }

    #[test]
    fn clone_is_a_shared_handle() {
        let c = VirtualClock::new();
        let view = c.clone();
        c.advance(150);
        assert_eq!(view.now_ns(), 150, "clones observe the same instant");
        view.advance(50);
        assert_eq!(c.now_ns(), 200);
    }

    #[test]
    fn concurrent_advance_totals_exactly() {
        // `advance` is a single atomic RMW, so even when handles are
        // hammered from many threads (stronger than the pool's
        // one-worker-per-rank discipline requires) no increment may be
        // lost: the final instant equals the deterministic total.
        const THREADS: u64 = 8;
        const ITERS: u64 = 10_000;
        const STEP: u64 = 3;
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let h = c.clone();
                s.spawn(move || {
                    for _ in 0..ITERS {
                        h.advance(STEP);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), THREADS * ITERS * STEP);
    }

    #[test]
    fn concurrent_advance_to_converges_to_max() {
        // `advance_to` is fetch_max: whatever the interleaving, the clock
        // must end at the maximum requested instant.
        const THREADS: u64 = 8;
        const ITERS: u64 = 5_000;
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = c.clone();
                s.spawn(move || {
                    for i in 0..ITERS {
                        h.advance_to(t * ITERS + i);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), (THREADS - 1) * ITERS + (ITERS - 1));
    }

    #[test]
    fn spin_waits_roughly() {
        let s = SpinMode;
        let t0 = Instant::now();
        s.delay(200_000); // 200 us
        assert!(t0.elapsed().as_nanos() >= 200_000);
    }
}
