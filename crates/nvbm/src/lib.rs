//! Emulated non-volatile byte-addressable memory (NVBM).
//!
//! The paper evaluates PM-octree on DRAM-emulated NVBM: every NVBM read or
//! write is delayed per Table 2 (100 ns read / 150 ns write per cacheline
//! vs 60/60 ns for DRAM). This crate reproduces that emulator with a
//! deterministic twist — latencies are charged to a per-device
//! [`VirtualClock`] instead of burned in spin loops (a [`SpinMode`] helper
//! exists for wall-clock micro-benchmarks).
//!
//! Beyond timing, the crate models what actually makes persistent-memory
//! programming hard and what PM-octree is designed to survive:
//!
//! * a bounded **dirty-line cache** between the CPU and the media, so
//!   stores become persistent in an order the program did not choose;
//! * [`NvbmArena::crash`] — drop or randomly commit the dirty lines, then
//!   let recovery code prove it can live with the result;
//! * a [`PmemAllocator`] whose free lists are volatile and rebuilt from
//!   the GC mark phase after a crash (no allocator logging);
//! * persistent **root slots** in a device header written with atomic
//!   8-byte flushed stores (`ADDR(V_i)` / `ADDR(V_{i-1})` in the paper);
//! * wear and access statistics ([`MemStats`]) for the write-reduction
//!   experiments.
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod alloc;
pub mod arena;
pub mod clock;
pub mod failplan;
pub mod model;
pub mod pins;
pub mod recorder;
pub mod region;
pub mod stats;

// The observability layer: re-exported whole so downstream crates reach
// the exporters (`nvbm::obsv::chrome`, …) without a separate dependency.
pub use pmoctree_obsv as obsv;

pub use alloc::{size_class, AllocLease, PmemAllocator, ReusePolicy};
pub use arena::{
    ArenaSnapshot, CrashMode, NvbmArena, POffset, ShardDelta, ShardWriter, HEADER_SIZE, ROOT_SLOTS,
};
pub use clock::{SpinMode, VirtualClock};
pub use failplan::{CrashCapture, CrashView, FailHook, FailPlan};
pub use model::{BlockDeviceModel, DeviceModel, MemLatency, NetworkModel, CACHELINE, PAGE};
pub use pins::{EpochPins, PinGuard};
pub use pmoctree_obsv::{Event, EventKind, Metrics, Span, Tracer};
pub use recorder::{RecEntry, RecKind, RecorderDump, REC_LABEL_MAX};
pub use region::{Region, RegionError, RegionKind, RegionManager};
pub use stats::{MemStats, NamedBytes, TierStats, TraversalStats, WearReport, WEAR_BLOCK};

/// Compile-time `Send`/`Sync` audit for everything a rank carries across
/// worker threads now that the `rayon` shim runs a real pool. A rank's
/// arena (with its embedded fail plan, stats, tracer and clock) moves
/// between workers as chunks are claimed; clock and tracer handles are
/// additionally *shared* (cloned into span guards), so they must be
/// `Sync` too. If a future field breaks one of these bounds, the build
/// fails here instead of deep inside a `thread::scope` bound error.
#[allow(dead_code)]
mod send_audit {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    fn audit() {
        assert_send::<crate::NvbmArena>();
        assert_send::<crate::FailPlan>();
        assert_send::<crate::MemStats>();
        assert_send::<crate::stats::TraversalStats>();
        assert_send::<crate::VirtualClock>();
        assert_sync::<crate::VirtualClock>();
        assert_send::<crate::Tracer>();
        assert_sync::<crate::Tracer>();
        // Domain-parallel sweeps: workers share one snapshot and each
        // sends its finished delta back to the serial join point.
        assert_sync::<crate::ArenaSnapshot<'static>>();
        assert_send::<crate::ShardWriter<'static>>();
        assert_send::<crate::ShardDelta>();
        assert_send::<crate::AllocLease>();
    }
}
