//! Typed region management for the NVBM address space.
//!
//! Historically the arena's address space was split by two hand-maintained
//! volatile fields (`octree_bump_live` / `rt_floor_live`) that the octree
//! allocator and the `pm-rt` heap published into and read from each other
//! — correct, but implicit: nothing *named* the regions, and a new
//! subsystem (the flight recorder, the log heap) had to re-derive the
//! geometry from scattered accessors. [`RegionManager`] makes the split
//! explicit: the device is four typed regions in a fixed address order —
//!
//! ```text
//! 0 ──────── HEADER_SIZE ───── octree_edge ──── rt_floor ──── rec_base ──── capacity
//! │ root table │   octree ↑    │    free gap    │  rt heap   │  recorder  │
//! ```
//!
//! The root-table and recorder spans are fixed at format time; the octree
//! and rt-heap regions meet at two *live edges* that their owners publish
//! after every allocation. [`RegionManager::carve`] is the checked
//! carve-out every grower goes through: a span is only valid if it lies
//! inside the maximal territory of its region — which for the two
//! elastic regions means "not across the opposing live edge".

use crate::arena::HEADER_SIZE;

/// The four typed regions of an NVBM device, in address order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// The device header: magic, epoch, root slots, allocator hints.
    RootTable,
    /// The octree allocator's upward-growing territory.
    Octree,
    /// The `pm-rt` log heap, growing down from the recorder base (or the
    /// device top when no recorder ring is carved).
    RtHeap,
    /// The flight-recorder ring at the top of the device (absent on tiny
    /// devices).
    Recorder,
}

impl RegionKind {
    /// Stable attribution name, matching [`crate::stats::REGIONS`].
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::RootTable => "root_table",
            RegionKind::Octree => "octree",
            RegionKind::RtHeap => "rt_heap",
            RegionKind::Recorder => "recorder",
        }
    }
}

/// One region's current span (half-open byte range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Which region this span describes.
    pub kind: RegionKind,
    /// First byte of the span.
    pub start: u64,
    /// One past the last byte of the span.
    pub end: u64,
}

impl Region {
    /// Span length in bytes.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Is the span empty?
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Does `[off, off + len)` lie entirely inside this span?
    pub fn contains(&self, off: u64, len: u64) -> bool {
        off >= self.start && off.checked_add(len).is_some_and(|end| end <= self.end)
    }
}

/// A rejected carve-out: the requested span does not fit the named
/// region's current territory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionError {
    /// Region the carve was attempted in.
    pub kind: RegionKind,
    /// Requested span start.
    pub off: u64,
    /// Requested span length.
    pub len: u64,
    /// The region's territory at the time of the attempt.
    pub territory: Region,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "carve of [{}, {}) rejected: outside the {} territory [{}, {})",
            self.off,
            self.off.saturating_add(self.len),
            self.kind.name(),
            self.territory.start,
            self.territory.end
        )
    }
}

impl std::error::Error for RegionError {}

/// Classify a byte offset into a region given the two boundary hints —
/// the single classification rule shared by [`RegionManager::classify`]
/// and the [`crate::stats::MemStats`] wear attribution (`rec_base == 0`
/// means "no recorder ring", `rt_floor == 0` means "rt heap never used").
pub fn classify_at(offset: u64, rec_base: u64, rt_floor: u64) -> RegionKind {
    if offset < HEADER_SIZE {
        RegionKind::RootTable
    } else if rec_base != 0 && offset >= rec_base {
        RegionKind::Recorder
    } else if rt_floor != 0 && offset >= rt_floor {
        RegionKind::RtHeap
    } else {
        RegionKind::Octree
    }
}

/// Owner of the arena address space as explicit typed regions with live
/// edges and checked carve-out. Volatile: rebuilt from the persisted
/// header hints on restore, then corrected by each subsystem's recovery
/// (exactly like the two loose fields it replaces).
#[derive(Debug, Clone)]
pub struct RegionManager {
    capacity: u64,
    /// Flight-recorder ring base; 0 = no ring.
    rec_base: u64,
    /// Live top of the octree allocator's territory (exclusive).
    octree_edge: u64,
    /// Live bottom of the rt heap's territory (inclusive).
    rt_floor: u64,
}

impl RegionManager {
    /// A manager for a virgin device: octree edge at the header top, rt
    /// floor at the heap top (no rt traffic yet).
    pub fn new(capacity: u64, rec_base: u64) -> Self {
        let heap_top = if rec_base == 0 { capacity } else { rec_base };
        RegionManager { capacity, rec_base, octree_edge: HEADER_SIZE, rt_floor: heap_top }
    }

    /// A manager over recovered live bounds (e.g. the persisted header
    /// hints of a crash image). Bounds are clamped like the publish
    /// methods clamp.
    pub fn from_bounds(capacity: u64, rec_base: u64, octree_edge: u64, rt_floor: u64) -> Self {
        let mut m = RegionManager::new(capacity, rec_base);
        m.publish_octree_edge(octree_edge);
        m.publish_rt_floor(rt_floor);
        m
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The flight-recorder ring base (0 = no ring).
    pub fn rec_base(&self) -> u64 {
        self.rec_base
    }

    /// Highest offset the rt heap may occupy: the recorder base when a
    /// ring is carved, the device capacity otherwise.
    pub fn heap_top(&self) -> u64 {
        if self.rec_base == 0 {
            self.capacity
        } else {
            self.rec_base
        }
    }

    /// The octree allocator's live edge (exclusive top of its territory).
    pub fn octree_edge(&self) -> u64 {
        self.octree_edge
    }

    /// The rt heap's live floor (inclusive bottom of its territory).
    pub fn rt_floor(&self) -> u64 {
        self.rt_floor
    }

    /// Bytes between the two live edges — the space either elastic
    /// region may still claim.
    pub fn free_gap(&self) -> u64 {
        self.rt_floor.saturating_sub(self.octree_edge)
    }

    /// Publish the octree allocator's live edge (clamped into the
    /// device); returns the value actually recorded.
    pub fn publish_octree_edge(&mut self, edge: u64) -> u64 {
        self.octree_edge = edge.clamp(HEADER_SIZE, self.capacity);
        self.octree_edge
    }

    /// Publish the rt heap's live floor (clamped into the device);
    /// returns the value actually recorded.
    pub fn publish_rt_floor(&mut self, floor: u64) -> u64 {
        self.rt_floor = floor.clamp(HEADER_SIZE, self.capacity);
        self.rt_floor
    }

    /// Which region owns byte `offset` right now.
    pub fn classify(&self, offset: u64) -> RegionKind {
        classify_at(offset, self.rec_base, self.rt_floor)
    }

    /// The *maximal territory* a region may carve from: its current span
    /// plus, for the two elastic regions, the free gap up to the
    /// opposing live edge.
    pub fn territory(&self, kind: RegionKind) -> Region {
        let (start, end) = match kind {
            RegionKind::RootTable => (0, HEADER_SIZE.min(self.capacity)),
            RegionKind::Octree => (HEADER_SIZE.min(self.capacity), self.rt_floor),
            RegionKind::RtHeap => (self.octree_edge, self.heap_top()),
            RegionKind::Recorder => {
                if self.rec_base == 0 {
                    (self.capacity, self.capacity)
                } else {
                    (self.rec_base, self.capacity)
                }
            }
        };
        Region { kind, start, end }
    }

    /// The region's *currently occupied* span (live edges, not maximal
    /// territory).
    pub fn region(&self, kind: RegionKind) -> Region {
        match kind {
            RegionKind::Octree => {
                Region { kind, start: HEADER_SIZE.min(self.capacity), end: self.octree_edge }
            }
            RegionKind::RtHeap => Region { kind, start: self.rt_floor, end: self.heap_top() },
            _ => self.territory(kind),
        }
    }

    /// Checked carve-out: validate that `[off, off + len)` may be claimed
    /// by `kind`. The span must lie inside the region's maximal
    /// territory — for the elastic regions that means not crossing the
    /// opposing live edge. The manager's edges are *not* moved; the
    /// caller publishes its new edge after committing to the carve.
    pub fn carve(&self, kind: RegionKind, off: u64, len: u64) -> Result<(), RegionError> {
        let territory = self.territory(kind);
        if territory.contains(off, len) {
            Ok(())
        } else {
            Err(RegionError { kind, off, len, territory })
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn mgr() -> RegionManager {
        // 1 MiB device with a 16 KiB recorder ring at the top.
        RegionManager::new(1 << 20, (1 << 20) - (1 << 14))
    }

    #[test]
    fn virgin_geometry() {
        let m = mgr();
        assert_eq!(m.octree_edge(), HEADER_SIZE);
        assert_eq!(m.rt_floor(), m.heap_top());
        assert_eq!(m.heap_top(), (1 << 20) - (1 << 14));
        assert_eq!(m.free_gap(), m.heap_top() - HEADER_SIZE);
        let no_ring = RegionManager::new(4096, 0);
        assert_eq!(no_ring.heap_top(), 4096);
        assert!(no_ring.region(RegionKind::Recorder).is_empty());
    }

    #[test]
    fn classify_matches_address_order() {
        let mut m = mgr();
        m.publish_octree_edge(8192);
        m.publish_rt_floor(m.heap_top() - 4096);
        assert_eq!(m.classify(0), RegionKind::RootTable);
        assert_eq!(m.classify(HEADER_SIZE), RegionKind::Octree);
        assert_eq!(m.classify(8192), RegionKind::Octree, "free gap reads as octree");
        assert_eq!(m.classify(m.rt_floor()), RegionKind::RtHeap);
        assert_eq!(m.classify(m.rec_base()), RegionKind::Recorder);
    }

    #[test]
    fn carve_checks_elastic_territories() {
        let mut m = mgr();
        m.publish_octree_edge(8192);
        m.publish_rt_floor(m.heap_top() - 4096);
        // Octree may claim through the free gap up to the rt floor…
        assert!(m.carve(RegionKind::Octree, 8192, m.rt_floor() - 8192).is_ok());
        // …but one byte across the floor is rejected.
        let e = m.carve(RegionKind::Octree, 8192, m.rt_floor() - 8192 + 1).unwrap_err();
        assert_eq!(e.kind, RegionKind::Octree);
        assert_eq!(e.territory.end, m.rt_floor());
        assert!(e.to_string().contains("octree territory"));
        // The rt heap mirrors: down to the octree edge, not across it.
        assert!(m.carve(RegionKind::RtHeap, 8192, 4096).is_ok());
        assert!(m.carve(RegionKind::RtHeap, 8191, 4096).is_err());
        // Fixed regions carve only inside their fixed spans.
        assert!(m.carve(RegionKind::RootTable, 0, HEADER_SIZE).is_ok());
        assert!(m.carve(RegionKind::RootTable, 8, HEADER_SIZE).is_err());
        assert!(m.carve(RegionKind::Recorder, m.rec_base(), 1 << 14).is_ok());
        assert!(m.carve(RegionKind::Recorder, m.rec_base() - 64, 64).is_err());
    }

    #[test]
    fn publish_clamps_into_device() {
        let mut m = mgr();
        assert_eq!(m.publish_octree_edge(0), HEADER_SIZE);
        assert_eq!(m.publish_octree_edge(u64::MAX), 1 << 20);
        assert_eq!(m.publish_rt_floor(0), HEADER_SIZE);
        assert_eq!(m.publish_rt_floor(u64::MAX), 1 << 20);
    }

    #[test]
    fn from_bounds_recovers_edges() {
        let m = RegionManager::from_bounds(1 << 20, 0, 4096, 65536);
        assert_eq!(m.octree_edge(), 4096);
        assert_eq!(m.rt_floor(), 65536);
        assert_eq!(m.free_gap(), 65536 - 4096);
        assert_eq!(m.region(RegionKind::RtHeap).len(), (1 << 20) - 65536);
    }

    #[test]
    fn carve_overflow_is_rejected() {
        let m = mgr();
        assert!(m.carve(RegionKind::Octree, u64::MAX - 8, 64).is_err());
    }
}
