//! Property tests: the arena behaves like flat memory under arbitrary
//! read/write interleavings, crashes only ever revert *unflushed* state,
//! and the flight recorder recovers a clean suffix of its history from
//! any torn media image.

use pmoctree_nvbm::{recorder, CrashMode, DeviceModel, NvbmArena, PmemAllocator, HEADER_SIZE};
use proptest::prelude::*;

const CAP: usize = 1 << 16;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, data: Vec<u8> },
    Flush,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (HEADER_SIZE..(CAP as u64 - 300), prop::collection::vec(any::<u8>(), 1..256))
                .prop_map(|(offset, data)| Op::Write { offset, data }),
            Just(Op::Flush),
        ],
        1..60,
    )
}

proptest! {
    /// Reads always observe the most recent write, flushed or not.
    #[test]
    fn arena_is_coherent_memory(ops in arb_ops()) {
        let mut arena = NvbmArena::new(CAP, DeviceModel::default());
        let mut shadow = vec![0u8; CAP];
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    arena.write(*offset, data);
                    shadow[*offset as usize..*offset as usize + data.len()].copy_from_slice(data);
                }
                Op::Flush => arena.flush_all(),
            }
        }
        let mut buf = vec![0u8; CAP - HEADER_SIZE as usize];
        arena.read(HEADER_SIZE, &mut buf);
        prop_assert_eq!(&buf[..], &shadow[HEADER_SIZE as usize..]);
    }

    /// After a crash, every byte region that was fully flushed reads back
    /// exactly; unflushed regions revert to pre-write contents or survive
    /// per-line — never garbage.
    #[test]
    fn crash_never_corrupts_flushed_state(ops in arb_ops(), seed in any::<u64>(), p in 0.0f64..=1.0) {
        let mut arena = NvbmArena::new(CAP, DeviceModel::default());
        let mut flushed_shadow = vec![0u8; CAP];
        let mut current = vec![0u8; CAP];
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    arena.write(*offset, data);
                    current[*offset as usize..*offset as usize + data.len()].copy_from_slice(data);
                }
                Op::Flush => {
                    arena.flush_all();
                    flushed_shadow.copy_from_slice(&current);
                }
            }
        }
        arena.crash(CrashMode::CommitRandom { p, seed });
        let mut buf = vec![0u8; CAP];
        arena.read(0, &mut buf);
        // Each cacheline equals either the flushed image or the current
        // (would-have-been) image: a committed line is all-new, a dropped
        // line is all-old. No third possibility.
        for line in (HEADER_SIZE as usize / 64)..(CAP / 64) {
            let r = line * 64..(line + 1) * 64;
            let got = &buf[r.clone()];
            prop_assert!(
                got == &flushed_shadow[r.clone()] || got == &current[r.clone()],
                "line {line} is neither old nor new state"
            );
        }
    }

    /// Flight-recorder wraparound: for any ring capacity and any number
    /// of appended marks, recovery returns exactly the newest
    /// `min(n, slots)` entries with contiguous sequence numbers ending
    /// at `n`.
    #[test]
    fn recorder_wraps_to_newest_suffix(slots in 1usize..=32, n in 0u64..200) {
        let mut a = NvbmArena::new_with_recorder(CAP, DeviceModel::default(), slots);
        for i in 1..=n {
            a.rec_mark(pmoctree_nvbm::RecKind::Note, "prop::mark", i);
        }
        let dump = a.recorder_dump();
        prop_assert!(dump.header_ok);
        let want = (n as usize).min(slots);
        prop_assert_eq!(dump.entries.len(), want);
        for (k, e) in dump.entries.iter().enumerate() {
            prop_assert_eq!(e.seq, n - want as u64 + 1 + k as u64);
            prop_assert_eq!(e.arg, e.seq, "arg was recorded as the seq");
        }
    }

    /// Torn write at *every* byte of the tail entry: recovery never
    /// panics, never invents entries, and either keeps the tail intact
    /// (the corruption missed something load-bearing) or truncates
    /// exactly it — the preceding entries always survive.
    #[test]
    fn recorder_survives_tail_corruption(
        slots in 2usize..=16,
        n in 1u64..64,
        delta in 1u8..=255,
    ) {
        let mut a = NvbmArena::new_with_recorder(CAP, DeviceModel::default(), slots);
        for i in 1..=n {
            a.rec_mark(pmoctree_nvbm::RecKind::Note, "prop::tear", i);
        }
        let media = a.clone_media();
        let base = (CAP - slots * 64) & !63;
        let tail_slot = ((n - 1) % slots as u64) as usize;
        let intact = recorder::recover(&media);
        prop_assert_eq!(intact.entries.last().map(|e| e.seq), Some(n));
        for k in 0..64 {
            let mut torn = media.clone();
            torn[base + tail_slot * 64 + k] ^= delta;
            let dump = recorder::recover(&torn);
            prop_assert!(dump.header_ok);
            // No phantom entries past what was ever written.
            prop_assert!(dump.entries.iter().all(|e| e.seq <= n), "byte {k}: phantom seq");
            let last = dump.entries.last().map(|e| e.seq);
            if last == Some(n) {
                // Tail decoded despite the flip (e.g. a flip inside the
                // truncated part of the label): it must decode to the
                // right metadata.
                prop_assert_eq!(dump.entries.last().unwrap().arg, n, "byte {k}");
            } else {
                // Tail truncated: the survivors are exactly the intact
                // entries minus the torn one.
                let want = (n as usize).min(slots) - 1;
                prop_assert_eq!(dump.entries.len(), want, "byte {k}: lost more than the tail");
                if want > 0 {
                    prop_assert_eq!(dump.entries.last().map(|e| e.seq), Some(n - 1), "byte {k}");
                }
            }
        }
    }

    /// Allocator invariant: live allocations never overlap, never cross
    /// capacity, regardless of alloc/free interleaving.
    #[test]
    fn allocator_no_overlap(ops in prop::collection::vec((1usize..512, any::<bool>()), 1..200)) {
        let mut a = PmemAllocator::new(CAP);
        let mut live: Vec<(u64, usize)> = Vec::new();
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let (off, sz) = live.swap_remove(live.len() / 2);
                a.free(pmoctree_nvbm::POffset(off), sz);
            } else if let Some(p) = a.alloc(size) {
                let cls = pmoctree_nvbm::size_class(size);
                prop_assert!(p.0 >= HEADER_SIZE);
                prop_assert!(p.0 + cls as u64 <= CAP as u64);
                for &(off, osz) in &live {
                    let ocls = pmoctree_nvbm::size_class(osz) as u64;
                    prop_assert!(
                        p.0 + cls as u64 <= off || off + ocls <= p.0,
                        "overlap: new ({}, {cls}) vs live ({off}, {ocls})", p.0
                    );
                }
                live.push((p.0, size));
            }
        }
    }
}
