//! Property-based equivalence of the batch SIMD kernels against the
//! scalar fallback: for random key batches across all levels, both
//! dispatches must be bit-identical, in 2D and 3D. On hardware without
//! BMI2+AVX2 `Dispatch::hardware()` degenerates to `Scalar` and these
//! become (trivially passing) self-comparisons — the CI run with
//! `PMOCTREE_MORTON_FORCE_SCALAR=1` covers the forced-fallback dispatch
//! path separately.

use pmoctree_morton::simd::{
    children_many_with, cmp_keys_many_with, decode_many_with, encode_many_with, neighbors_many,
    zorder_argsort, Dispatch,
};
use pmoctree_morton::{Key, OctKey, QuadKey};
use proptest::prelude::*;

/// Strategy: an arbitrary valid 3D key built by a random child path, so
/// every level 0..=MAX_LEVEL is reachable.
fn arb_octkey() -> impl Strategy<Value = OctKey> {
    prop::collection::vec(0usize..8, 0..=21).prop_map(|path| {
        let mut k = OctKey::root();
        for i in path {
            k = k.child(i);
        }
        k
    })
}

fn arb_quadkey() -> impl Strategy<Value = QuadKey> {
    prop::collection::vec(0usize..4, 0..=31).prop_map(|path| {
        let mut k = QuadKey::root();
        for i in path {
            k = k.child(i);
        }
        k
    })
}

/// Per-key scalar reference for a whole batch.
fn scalar_coords<const D: usize>(keys: &[Key<D>]) -> Vec<[u64; D]> {
    keys.iter().map(|k| k.coords()).collect()
}

proptest! {
    #[test]
    fn encode_simd_matches_scalar_3d(keys in prop::collection::vec(arb_octkey(), 0..40)) {
        let items: Vec<([u64; 3], u8)> = keys.iter().map(|k| (k.coords(), k.level())).collect();
        let scalar = encode_many_with(Dispatch::Scalar, &items);
        let hw = encode_many_with(Dispatch::hardware(), &items);
        prop_assert_eq!(&scalar, &hw);
        prop_assert_eq!(&scalar, &keys);
    }

    #[test]
    fn encode_simd_matches_scalar_2d(keys in prop::collection::vec(arb_quadkey(), 0..40)) {
        let items: Vec<([u64; 2], u8)> = keys.iter().map(|k| (k.coords(), k.level())).collect();
        let scalar = encode_many_with(Dispatch::Scalar, &items);
        let hw = encode_many_with(Dispatch::hardware(), &items);
        prop_assert_eq!(&scalar, &hw);
        prop_assert_eq!(&scalar, &keys);
    }

    #[test]
    fn decode_simd_matches_scalar_3d(keys in prop::collection::vec(arb_octkey(), 0..40)) {
        let scalar = decode_many_with(Dispatch::Scalar, &keys);
        let hw = decode_many_with(Dispatch::hardware(), &keys);
        prop_assert_eq!(&scalar, &hw);
        prop_assert_eq!(scalar, scalar_coords(&keys));
    }

    #[test]
    fn decode_simd_matches_scalar_2d(keys in prop::collection::vec(arb_quadkey(), 0..40)) {
        let scalar = decode_many_with(Dispatch::Scalar, &keys);
        let hw = decode_many_with(Dispatch::hardware(), &keys);
        prop_assert_eq!(&scalar, &hw);
        prop_assert_eq!(scalar, scalar_coords(&keys));
    }

    #[test]
    fn cmp_simd_matches_zcmp_3d(
        a in prop::collection::vec(arb_octkey(), 0..40),
        b in prop::collection::vec(arb_octkey(), 0..40),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let scalar = cmp_keys_many_with(Dispatch::Scalar, a, b);
        let hw = cmp_keys_many_with(Dispatch::hardware(), a, b);
        let want: Vec<_> = a.iter().zip(b).map(|(x, y)| x.zcmp(y)).collect();
        prop_assert_eq!(&scalar, &hw);
        prop_assert_eq!(scalar, want);
    }

    #[test]
    fn cmp_simd_matches_zcmp_2d(
        a in prop::collection::vec(arb_quadkey(), 0..40),
        b in prop::collection::vec(arb_quadkey(), 0..40),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let scalar = cmp_keys_many_with(Dispatch::Scalar, a, b);
        let hw = cmp_keys_many_with(Dispatch::hardware(), a, b);
        let want: Vec<_> = a.iter().zip(b).map(|(x, y)| x.zcmp(y)).collect();
        prop_assert_eq!(&scalar, &hw);
        prop_assert_eq!(scalar, want);
    }

    #[test]
    fn argsort_matches_sort_by_zcmp(keys in prop::collection::vec(arb_octkey(), 0..40)) {
        let order = zorder_argsort(&keys);
        let sorted: Vec<_> = order.iter().map(|&i| keys[i]).collect();
        let mut want = keys.clone();
        want.sort_by(|x, y| x.zcmp(y));
        prop_assert_eq!(sorted, want);
    }

    #[test]
    fn children_match_per_key_batch(keys in prop::collection::vec(arb_octkey(), 0..20)) {
        let keys: Vec<_> = keys
            .into_iter()
            .map(|k| if k.level() == OctKey::MAX_LEVEL { k.parent().unwrap() } else { k })
            .collect();
        for d in [Dispatch::Scalar, Dispatch::hardware()] {
            let flat = children_many_with(d, &keys);
            prop_assert_eq!(flat.len(), keys.len() * OctKey::FANOUT);
            for (i, k) in keys.iter().enumerate() {
                let want: Vec<_> = k.children().collect();
                prop_assert_eq!(&flat[i * OctKey::FANOUT..(i + 1) * OctKey::FANOUT], &want[..]);
            }
        }
    }

    #[test]
    fn neighbors_match_per_key_3d(keys in prop::collection::vec(arb_octkey(), 0..20), full in any::<bool>()) {
        let (flat, spans) = neighbors_many(&keys, full);
        prop_assert_eq!(spans.len(), keys.len());
        for (k, &(s, e)) in keys.iter().zip(&spans) {
            let want = if full { k.all_neighbors() } else { k.face_neighbors() };
            prop_assert_eq!(&flat[s..e], &want[..]);
        }
    }

    #[test]
    fn neighbors_match_per_key_2d(keys in prop::collection::vec(arb_quadkey(), 0..20), full in any::<bool>()) {
        let (flat, spans) = neighbors_many(&keys, full);
        prop_assert_eq!(spans.len(), keys.len());
        for (k, &(s, e)) in keys.iter().zip(&spans) {
            let want = if full { k.all_neighbors() } else { k.face_neighbors() };
            prop_assert_eq!(&flat[s..e], &want[..]);
        }
    }
}
