//! Property-based tests for locational-code invariants.

use pmoctree_morton::{anchor, anchor_end, partition_by_weight, OctKey, QuadKey, ZRange};
use proptest::prelude::*;

/// Strategy: an arbitrary valid 3D key built by a random child path.
fn arb_octkey() -> impl Strategy<Value = OctKey> {
    prop::collection::vec(0usize..8, 0..=21).prop_map(|path| {
        let mut k = OctKey::root();
        for i in path {
            k = k.child(i);
        }
        k
    })
}

fn arb_quadkey() -> impl Strategy<Value = QuadKey> {
    prop::collection::vec(0usize..4, 0..=31).prop_map(|path| {
        let mut k = QuadKey::root();
        for i in path {
            k = k.child(i);
        }
        k
    })
}

proptest! {
    #[test]
    fn coords_roundtrip(k in arb_octkey()) {
        let c = k.coords();
        prop_assert_eq!(OctKey::from_coords(c, k.level()), k);
    }

    #[test]
    fn parent_child_inverse(k in arb_octkey(), i in 0usize..8) {
        prop_assume!(k.level() < OctKey::MAX_LEVEL);
        let c = k.child(i);
        prop_assert_eq!(c.parent(), Some(k));
        prop_assert_eq!(c.sibling_index(), i);
    }

    #[test]
    fn ancestor_contains(k in arb_octkey(), lvl in 0u8..=21) {
        prop_assume!(lvl <= k.level());
        let a = k.ancestor_at(lvl);
        prop_assert!(a.contains(&k));
        prop_assert_eq!(a.level(), lvl);
    }

    #[test]
    fn neighbor_is_involution(k in arb_octkey(), axis in 0usize..3, dir in prop::sample::select(vec![-1i8, 1])) {
        if let Some(n) = k.face_neighbor(axis, dir) {
            prop_assert_eq!(n.face_neighbor(axis, -dir), Some(k));
            prop_assert_eq!(n.level(), k.level());
        }
    }

    #[test]
    fn zorder_total_and_consistent(a in arb_octkey(), b in arb_octkey()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(a, b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }

    #[test]
    fn ancestor_precedes_descendant(k in arb_octkey()) {
        for a in k.path_from_root() {
            if a != k {
                prop_assert!(a < k, "ancestor {:?} should precede {:?}", a, k);
            }
        }
    }

    #[test]
    fn anchor_ranges_nest(k in arb_octkey(), i in 0usize..8) {
        prop_assume!(k.level() < OctKey::MAX_LEVEL);
        let c = k.child(i);
        prop_assert!(anchor::<3>(&c) >= anchor::<3>(&k));
        prop_assert!(anchor_end::<3>(&c) <= anchor_end::<3>(&k));
        prop_assert!(ZRange::<3>::of(&k).contains(&c));
    }

    #[test]
    fn disjoint_cells_disjoint_ranges(a in arb_octkey(), b in arb_octkey()) {
        prop_assume!(!a.contains(&b) && !b.contains(&a));
        prop_assert!(!ZRange::<3>::of(&a).overlaps(&ZRange::<3>::of(&b)));
    }

    #[test]
    fn center_inside_cell(k in arb_octkey()) {
        let c = k.center();
        let lo = k.min_corner();
        let h = k.extent();
        for a in 0..3 {
            prop_assert!(c[a] > lo[a] && c[a] < lo[a] + h);
            prop_assert!(c[a] > 0.0 && c[a] < 1.0);
        }
    }

    #[test]
    fn quadkey_all_neighbors_bounded(k in arb_quadkey()) {
        let n = k.all_neighbors();
        prop_assert!(n.len() <= 8);
        for nb in &n {
            prop_assert_eq!(nb.level(), k.level());
            let a = k.coords();
            let b = nb.coords();
            for ax in 0..2 {
                prop_assert!(a[ax].abs_diff(b[ax]) <= 1);
            }
        }
    }

    #[test]
    fn partition_covers_curve(level in 1u8..5, parts in 1usize..10) {
        let mut leaves: Vec<QuadKey> = (0..(1u64 << level))
            .flat_map(|x| (0..(1u64 << level)).map(move |y| QuadKey::from_coords([x, y], level)))
            .collect();
        leaves.sort();
        let weighted: Vec<(QuadKey, f64)> = leaves.iter().map(|&k| (k, 1.0)).collect();
        let ranges = partition_by_weight(&weighted, parts);
        prop_assert_eq!(ranges.len(), parts);
        for k in &leaves {
            let owners = ranges.iter().filter(|r| r.owns(k)).count();
            prop_assert_eq!(owners, 1);
        }
    }
}
