//! Hilbert-curve indices.
//!
//! Morton (Z-order) is the curve the paper's systems use, but the
//! Hilbert curve is the classic alternative for `Partition`: consecutive
//! curve positions are always face-adjacent cells, so contiguous curve
//! ranges make geometrically tighter subdomains (fewer ghost faces).
//! This module provides 3D Hilbert index encoding/decoding (Skilling's
//! transpose algorithm, "Programming the Hilbert curve", AIP 2004) so a
//! partitioner can be run on either ordering and compared.

use crate::code::Key;

/// Maximum supported refinement level (21 × 3 = 63 bits).
pub const MAX_HILBERT_LEVEL: u8 = 21;

/// Hilbert index of grid cell `coords` at `level` (each coordinate
/// `< 2^level`). The index enumerates the 8^level cells so that
/// consecutive indices are face-adjacent.
pub fn hilbert_index(coords: [u64; 3], level: u8) -> u64 {
    assert!(level <= MAX_HILBERT_LEVEL, "level too deep for a u64 Hilbert index");
    for &c in &coords {
        assert!(level == 64 || c < 1u64 << level, "coordinate out of range");
    }
    if level == 0 {
        return 0;
    }
    let mut x = coords;
    let b = level as u32;
    // Skilling: Axes -> Transpose (inverse undo of the Hilbert transform).
    let mut q = 1u64 << (b - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..3 {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray decode.
    for i in 1..3 {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    q = 1u64 << (b - 1);
    while q > 1 {
        if x[2] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in &mut x {
        *xi ^= t;
    }
    // Interleave the transpose: bit j of axis i lands at position
    // 3*j + (2 - i) (axis 0 holds the most significant bits).
    let mut index = 0u64;
    for j in 0..b {
        for (i, xi) in x.iter().enumerate() {
            index |= ((xi >> j) & 1) << (3 * j + (2 - i as u32));
        }
    }
    index
}

/// Inverse of [`hilbert_index`]: the grid cell at curve position `index`.
pub fn hilbert_coords(index: u64, level: u8) -> [u64; 3] {
    assert!(level <= MAX_HILBERT_LEVEL);
    if level == 0 {
        return [0; 3];
    }
    let b = level as u32;
    assert!(b == 21 || index < 1u64 << (3 * b), "index out of range");
    // De-interleave into the transpose.
    let mut x = [0u64; 3];
    for j in 0..b {
        for (i, xi) in x.iter_mut().enumerate() {
            *xi |= ((index >> (3 * j + (2 - i as u32))) & 1) << j;
        }
    }
    // Skilling: Transpose -> Axes.
    let n = 3;
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    let mut q = 2u64;
    while q != 1u64 << b {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
    x
}

/// Hilbert index of a (leaf) key at its own level.
pub fn hilbert_of_key(k: &Key<3>) -> u64 {
    hilbert_index(k.coords(), k.level())
}

/// Split weighted leaves into `parts` contiguous Hilbert-order chunks of
/// roughly equal weight; returns the part index per input leaf. Unlike
/// the Morton [`partition_by_weight`](crate::range::partition_by_weight)
/// this assigns by position, because mixed-level Hilbert ranges do not
/// nest the way Morton anchors do.
pub fn hilbert_partition(leaves: &[(Key<3>, f64)], parts: usize) -> Vec<usize> {
    assert!(parts > 0);
    let mut order: Vec<usize> = (0..leaves.len()).collect();
    // Order by the Hilbert index of each leaf's finest-level anchor cell.
    let max_l = leaves.iter().map(|(k, _)| k.level()).max().unwrap_or(0);
    let hkey = |k: &Key<3>| {
        let shift = (max_l - k.level()) as u32;
        let c = k.coords();
        hilbert_index([c[0] << shift, c[1] << shift, c[2] << shift], max_l)
    };
    order.sort_by_key(|&i| hkey(&leaves[i].0));
    let total: f64 = leaves.iter().map(|(_, w)| w.max(0.0)).sum();
    let mut out = vec![0usize; leaves.len()];
    let mut acc = 0.0;
    let mut part = 0usize;
    for &i in &order {
        let target = total * (part as f64 + 1.0) / parts as f64;
        if acc >= target && part + 1 < parts {
            part += 1;
        }
        out[i] = part;
        acc += leaves[i].1.max(0.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::OctKey;

    #[test]
    fn roundtrip_small_levels() {
        for level in 1..=4u8 {
            let side = 1u64 << level;
            let mut seen = std::collections::HashSet::new();
            for x in 0..side {
                for y in 0..side {
                    for z in 0..side {
                        let h = hilbert_index([x, y, z], level);
                        assert!(h < side * side * side);
                        assert!(seen.insert(h), "index collision at ({x},{y},{z})");
                        assert_eq!(hilbert_coords(h, level), [x, y, z]);
                    }
                }
            }
            assert_eq!(seen.len() as u64, side * side * side, "bijection at level {level}");
        }
    }

    #[test]
    fn consecutive_indices_are_face_adjacent() {
        // The defining Hilbert property — and what makes it better for
        // partitioning than Morton, whose curve jumps across the domain.
        for level in 1..=4u8 {
            let n = 1u64 << (3 * level);
            let mut prev = hilbert_coords(0, level);
            for i in 1..n {
                let cur = hilbert_coords(i, level);
                let dist: u64 = (0..3).map(|a| prev[a].abs_diff(cur[a])).sum();
                assert_eq!(dist, 1, "step {i} at level {level}: {prev:?} -> {cur:?}");
                prev = cur;
            }
        }
    }

    #[test]
    fn deep_roundtrip_spot_checks() {
        let level = MAX_HILBERT_LEVEL;
        for &coords in
            &[[0u64, 0, 0], [1, 2, 3], [(1 << 21) - 1, 0, 1 << 20], [123_456, 654_321, 2_000_000]]
        {
            let h = hilbert_index(coords, level);
            assert_eq!(hilbert_coords(h, level), coords);
        }
    }

    #[test]
    fn key_level_mixing() {
        let k = OctKey::from_coords([3, 1, 2], 2);
        let h = hilbert_of_key(&k);
        assert_eq!(hilbert_coords(h, 2), [3, 1, 2]);
    }

    /// Partition-quality comparison on a uniform grid. Hilbert wins on
    /// most part counts (its curve never jumps), but not universally —
    /// the test asserts the honest aggregate: summed over a spread of
    /// part counts, Hilbert cuts no more faces than Morton, and both
    /// stay balanced.
    #[test]
    fn hilbert_partitions_cut_fewer_faces_than_morton() {
        let level = 4u8; // 4096 cells
        let mut leaves: Vec<(OctKey, f64)> = Vec::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                for z in 0..16u64 {
                    leaves.push((OctKey::from_coords([x, y, z], level), 1.0));
                }
            }
        }
        leaves.sort_by_key(|l| l.0);
        let index: std::collections::HashMap<OctKey, usize> =
            leaves.iter().enumerate().map(|(i, (k, _))| (*k, i)).collect();
        let cut = |owner: &[usize]| -> usize {
            let mut cuts = 0;
            for (i, (k, _)) in leaves.iter().enumerate() {
                for axis in 0..3 {
                    if let Some(nk) = k.face_neighbor(axis, 1) {
                        let j = index[&nk];
                        if owner[i] != owner[j] {
                            cuts += 1;
                        }
                    }
                }
            }
            cuts
        };
        let mut total_m = 0usize;
        let mut total_h = 0usize;
        // Part counts that do not align with octant blocks (powers of 8
        // would give both curves perfect cubes).
        for parts in [3usize, 5, 6, 7, 9, 12] {
            let ranges = crate::range::partition_by_weight(&leaves, parts);
            let owner_m: Vec<usize> = leaves
                .iter()
                .map(|(k, _)| ranges.iter().position(|r| r.owns(k)).unwrap())
                .collect();
            let owner_h = hilbert_partition(&leaves, parts);
            total_m += cut(&owner_m);
            total_h += cut(&owner_h);
            // Both stay balanced within ~20%.
            let expect = leaves.len() / parts;
            for p in 0..parts {
                let n = owner_h.iter().filter(|&&o| o == p).count();
                assert!(
                    n >= expect * 4 / 5 && n <= expect * 6 / 5 + 1,
                    "hilbert part {p}/{parts} has {n}"
                );
            }
        }
        assert!(total_h <= total_m, "hilbert cuts {total_h} faces vs morton {total_m}");
    }
}
