//! Batched Morton kernels with one-time runtime CPU dispatch.
//!
//! The per-key kernels in [`crate::bits`] spend most of their cycles in
//! the spread/compact magic-mask cascades; on x86-64 the same bit
//! permutations are single `pdep`/`pext` instructions (BMI2), and the
//! left-alignment shifts behind Z-order comparison vectorize 4-wide with
//! AVX2 (`vpsllvq`). This module exposes *batch* entry points —
//! [`encode_many`], [`decode_many`], [`cmp_keys_many`], [`children_many`],
//! [`anchors_many`], [`zorder_argsort`], [`neighbors_many`] — that the
//! sorted leaf index, the `amr` worklist sweeps and the partitioner call
//! instead of looping over per-key operations.
//!
//! # Dispatch
//!
//! The implementation is selected **once**, on first use, and cached for
//! the process lifetime ([`active`]): BMI2 + AVX2 when the CPU reports
//! both, the portable scalar path otherwise. Setting the environment
//! variable [`FORCE_SCALAR_ENV`] (`PMOCTREE_MORTON_FORCE_SCALAR=1`)
//! before first use pins the scalar path regardless of hardware — CI uses
//! this to exercise the fallback on machines that *do* have the features.
//! Both paths are bit-identical by construction (the deposit/extract
//! masks are exactly the spread positions of the scalar cascades), and
//! the property suite in `tests/prop_simd.rs` proves it per build.
//!
//! # Safety discipline
//!
//! `unsafe_op_in_unsafe_fn` is denied: every intrinsic call sits in its
//! own `unsafe` block carrying a `// SAFETY:` comment stating why the
//! required target feature is present and why any pointer access is in
//! bounds. Feature-gated functions are `unsafe fn`; the only callers are
//! the dispatch arms below, which run them strictly after runtime
//! detection succeeded.
#![deny(unsafe_op_in_unsafe_fn)]

use std::cmp::Ordering;
use std::sync::OnceLock;

use crate::bits::{deinterleave, interleave};
use crate::code::Key;

/// Environment variable pinning the scalar fallback (any non-empty value
/// other than `0`). Must be set before the first batch call; dispatch is
/// cached after that.
pub const FORCE_SCALAR_ENV: &str = "PMOCTREE_MORTON_FORCE_SCALAR";

/// Which kernel implementation a batch call runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Portable magic-mask cascades from [`crate::bits`].
    Scalar,
    /// BMI2 `pdep`/`pext` interleaving + AVX2 4-wide shifts/compares.
    Bmi2Avx2,
}

impl Dispatch {
    /// What the CPU supports, ignoring the environment override.
    pub fn hardware() -> Dispatch {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("bmi2") && is_x86_feature_detected!("avx2") {
                return Dispatch::Bmi2Avx2;
            }
        }
        Dispatch::Scalar
    }
}

/// Has [`FORCE_SCALAR_ENV`] pinned the scalar path?
fn forced_scalar() -> bool {
    std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != "0")
}

/// The implementation every batch entry point uses, selected on first
/// call and cached for the process lifetime.
pub fn active() -> Dispatch {
    static ACTIVE: OnceLock<Dispatch> = OnceLock::new();
    *ACTIVE.get_or_init(|| if forced_scalar() { Dispatch::Scalar } else { Dispatch::hardware() })
}

// ------------------------------------------------------------------ encode

/// Batch [`Key::from_coords`]: one key per `(coords, level)` pair.
///
/// # Panics
/// Panics under the same conditions as `from_coords` (level too deep or a
/// coordinate out of range), identified by item index.
pub fn encode_many<const D: usize>(items: &[([u64; D], u8)]) -> Vec<Key<D>> {
    encode_many_with(active(), items)
}

/// [`encode_many`] with an explicit implementation (benches and the
/// bit-identity property suite compare the two paths directly).
pub fn encode_many_with<const D: usize>(d: Dispatch, items: &[([u64; D], u8)]) -> Vec<Key<D>> {
    for (i, &(c, level)) in items.iter().enumerate() {
        assert!(level <= Key::<D>::MAX_LEVEL, "item {i}: level {level} too deep");
        for &x in &c {
            assert!(x < 1u64 << level, "item {i}: coordinate {x} out of range at level {level}");
        }
    }
    match d {
        Dispatch::Scalar => {
            items.iter().map(|&(c, l)| Key::from_raw_unchecked(interleave::<D>(c), l)).collect()
        }
        Dispatch::Bmi2Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: `Bmi2Avx2` is only ever produced by
                // `Dispatch::hardware()` after runtime feature detection.
                unsafe { x86::encode_slice::<D>(items) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("Bmi2Avx2 dispatch on a non-x86_64 target")
        }
    }
}

// ------------------------------------------------------------------ decode

/// Batch [`Key::coords`]: one coordinate tuple per key.
pub fn decode_many<const D: usize>(keys: &[Key<D>]) -> Vec<[u64; D]> {
    decode_many_with(active(), keys)
}

/// [`decode_many`] with an explicit implementation.
pub fn decode_many_with<const D: usize>(d: Dispatch, keys: &[Key<D>]) -> Vec<[u64; D]> {
    match d {
        Dispatch::Scalar => keys.iter().map(|k| deinterleave::<D>(k.raw())).collect(),
        Dispatch::Bmi2Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: dispatch established BMI2 support at runtime.
                unsafe { x86::decode_slice::<D>(keys) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("Bmi2Avx2 dispatch on a non-x86_64 target")
        }
    }
}

// ----------------------------------------------------------------- compare

/// Z-order anchors: each key's code left-aligned to `MAX_LEVEL`, the
/// major sort key of [`Key::zcmp`] (ties broken by level). Precomputing
/// anchors turns an `n log n`-comparison sort into one batched shift pass
/// plus integer compares.
pub fn anchors_many<const D: usize>(keys: &[Key<D>]) -> Vec<u64> {
    anchors_many_with(active(), keys)
}

/// [`anchors_many`] with an explicit implementation.
pub fn anchors_many_with<const D: usize>(d: Dispatch, keys: &[Key<D>]) -> Vec<u64> {
    let max = Key::<D>::MAX_LEVEL;
    match d {
        Dispatch::Scalar => {
            keys.iter().map(|k| k.raw() << (D as u32 * (max - k.level()) as u32)).collect()
        }
        Dispatch::Bmi2Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: dispatch established AVX2 support at runtime.
                unsafe { x86::anchors_slice::<D>(keys) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("Bmi2Avx2 dispatch on a non-x86_64 target")
        }
    }
}

/// Batch pairwise [`Key::zcmp`]: `out[i] = a[i].zcmp(&b[i])`. The
/// left-alignment shifts (the expensive half of `zcmp`) run through the
/// batched anchor kernel; the tie-break on level stays scalar.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn cmp_keys_many<const D: usize>(a: &[Key<D>], b: &[Key<D>]) -> Vec<Ordering> {
    cmp_keys_many_with(active(), a, b)
}

/// [`cmp_keys_many`] with an explicit implementation.
pub fn cmp_keys_many_with<const D: usize>(
    d: Dispatch,
    a: &[Key<D>],
    b: &[Key<D>],
) -> Vec<Ordering> {
    assert_eq!(a.len(), b.len(), "cmp_keys_many over unequal slices");
    let aa = anchors_many_with(d, a);
    let ab = anchors_many_with(d, b);
    a.iter()
        .zip(b)
        .zip(aa.iter().zip(&ab))
        .map(|((ka, kb), (&x, &y))| x.cmp(&y).then(ka.level().cmp(&kb.level())))
        .collect()
}

/// Indices of `keys` in Z-order ([`Key::zcmp`]): the permutation that
/// sorts the slice. Equal keys keep an unspecified relative order, same
/// as `sort_unstable_by(zcmp)`.
pub fn zorder_argsort<const D: usize>(keys: &[Key<D>]) -> Vec<usize> {
    let anchors = anchors_many(keys);
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_unstable_by_key(|&i| (anchors[i], keys[i].level()));
    order
}

// ---------------------------------------------------------------- children

/// Batch [`Key::children`]: the `FANOUT` children of every key,
/// flattened in Morton order (`out[k * FANOUT + i]` is child `i` of
/// `keys[k]`).
///
/// # Panics
/// Panics when any key is already at `MAX_LEVEL`.
pub fn children_many<const D: usize>(keys: &[Key<D>]) -> Vec<Key<D>> {
    children_many_with(active(), keys)
}

/// [`children_many`] with an explicit implementation. The child code is a
/// *uniform* shift-and-or, which the autovectorizer already handles; both
/// dispatches deliberately share one loop (routing a constant shift
/// through `vpsllvq` plus temporary vectors only added memory passes).
pub fn children_many_with<const D: usize>(_d: Dispatch, keys: &[Key<D>]) -> Vec<Key<D>> {
    for (i, k) in keys.iter().enumerate() {
        assert!(k.level() < Key::<D>::MAX_LEVEL, "item {i}: cannot refine beyond MAX_LEVEL");
    }
    let mut out = Vec::with_capacity(keys.len() * Key::<D>::FANOUT);
    for k in keys {
        let base = k.raw() << D;
        for i in 0..Key::<D>::FANOUT as u64 {
            out.push(Key::from_raw_unchecked(base | i, k.level() + 1));
        }
    }
    out
}

// --------------------------------------------------------------- neighbors

/// Batch same-level neighbor generation: for each key, its existing face
/// neighbors (`full = false`, up to `2 D`, in [`Key::face_neighbors`]
/// order) or all neighbors (`full = true`, up to `3^D - 1`, in
/// [`Key::all_neighbors`] order). Returns the flattened neighbor keys and
/// the per-source `[start, end)` spans into them.
///
/// Decoding and re-encoding run through the batched BMI2 kernels; the
/// per-direction boundary filter is plain integer arithmetic.
pub fn neighbors_many<const D: usize>(
    keys: &[Key<D>],
    full: bool,
) -> (Vec<Key<D>>, Vec<(usize, usize)>) {
    let coords = decode_many(keys);
    let cap = if full { 3usize.pow(D as u32) - 1 } else { 2 * D };
    let mut flat: Vec<([u64; D], u8)> = Vec::with_capacity(keys.len() * cap);
    let mut spans = Vec::with_capacity(keys.len());
    let push = |flat: &mut Vec<([u64; D], u8)>, c: &[u64; D], lvl: u8, dir: &[i8]| {
        let side = 1u64 << lvl;
        let mut nc = *c;
        for a in 0..D {
            match dir[a] {
                0 => {}
                1 => {
                    if nc[a] + 1 >= side {
                        return;
                    }
                    nc[a] += 1;
                }
                _ => {
                    if nc[a] == 0 {
                        return;
                    }
                    nc[a] -= 1;
                }
            }
        }
        flat.push((nc, lvl));
    };
    for (k, c) in keys.iter().zip(&coords) {
        let start = flat.len();
        if full {
            // Same enumeration order as Key::all_neighbors.
            for m in 0..3usize.pow(D as u32) {
                let mut dir = [0i8; D];
                let mut mm = m;
                let mut zero = true;
                for slot in dir.iter_mut() {
                    *slot = (mm % 3) as i8 - 1;
                    zero &= *slot == 0;
                    mm /= 3;
                }
                if !zero {
                    push(&mut flat, c, k.level(), &dir);
                }
            }
        } else {
            // Same enumeration order as Key::face_neighbors.
            for axis in 0..D {
                for d in [-1i8, 1] {
                    let mut dir = [0i8; D];
                    dir[axis] = d;
                    push(&mut flat, c, k.level(), &dir);
                }
            }
        }
        spans.push((start, flat.len()));
    }
    (encode_many(&flat), spans)
}

// ----------------------------------------------------------- x86-64 kernels

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_or_si256, _mm256_permute2x128_si256,
        _mm256_set1_epi64x, _mm256_set_epi64x, _mm256_sllv_epi64, _mm256_srli_epi64,
        _mm256_storeu_si256, _mm256_unpackhi_epi64, _mm256_unpacklo_epi64, _pdep_u64, _pext_u64,
    };

    use crate::code::Key;

    /// Deposit/extract masks — exactly the spread positions of the scalar
    /// cascades in `bits.rs`: 21 bits at stride 3 (`spread3` keeps the low
    /// 21 input bits), 31 bits at stride 2 (`spread2` keeps the low 31).
    /// Matching the *popcount* of the scalar input masks is what makes
    /// `pdep`/`pext` bit-identical to spread/compact for every input.
    const MASK3: u64 = 0x1249_2492_4924_9249;
    const MASK2: u64 = 0x1555_5555_5555_5555;

    /// Reinterpret a `(coords, level)` slice at its concrete dimension.
    ///
    /// # Safety
    /// `D` must equal `N` (the callers match on `D` first); the two types
    /// are then identical.
    unsafe fn cast_items<const D: usize, const N: usize>(
        items: &[([u64; D], u8)],
    ) -> &[([u64; N], u8)] {
        debug_assert_eq!(D, N);
        // SAFETY: D == N makes the element types layout-identical.
        unsafe { std::slice::from_raw_parts(items.as_ptr().cast(), items.len()) }
    }

    /// Batch interleave via BMI2. `target_feature` on the *slice* loop —
    /// not just the per-key helper — lets the interleave inline into the
    /// loop body instead of paying a call boundary per key.
    ///
    /// # Safety
    /// The CPU must support BMI2.
    #[target_feature(enable = "bmi2")]
    pub unsafe fn encode_slice<const D: usize>(items: &[([u64; D], u8)]) -> Vec<Key<D>> {
        let mut out = Vec::with_capacity(items.len());
        match D {
            3 => {
                // SAFETY: D == 3 in this arm.
                let it = unsafe { cast_items::<D, 3>(items) };
                for &(c, l) in it {
                    // Safe call: this fn already carries the bmi2 feature.
                    out.push(Key::from_raw_unchecked(interleave3(c), l));
                }
            }
            2 => {
                // SAFETY: D == 2 in this arm.
                let it = unsafe { cast_items::<D, 2>(items) };
                for &(c, l) in it {
                    out.push(Key::from_raw_unchecked(interleave2(c), l));
                }
            }
            _ => panic!("unsupported dimension {D}"),
        }
        out
    }

    /// `(x | (x >> S)) & MASK` — one step of a 4-lane compact cascade.
    #[target_feature(enable = "avx2")]
    fn gather_step<const S: i32>(x: __m256i, mask: u64) -> __m256i {
        _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<S>(x)),
            _mm256_set1_epi64x(mask as i64),
        )
    }

    /// 4-lane [`crate::bits::compact3`]: the identical magic-mask cascade,
    /// one step per constant, on four codes at once.
    #[target_feature(enable = "avx2")]
    fn compact3_x4(x: __m256i) -> __m256i {
        let mut x = _mm256_and_si256(x, _mm256_set1_epi64x(0x1249_2492_4924_9249));
        x = gather_step::<2>(x, 0x10c3_0c30_c30c_30c3);
        x = gather_step::<4>(x, 0x100f_00f0_0f00_f00f);
        x = gather_step::<8>(x, 0x001f_0000_ff00_00ff);
        x = gather_step::<16>(x, 0x001f_0000_0000_ffff);
        x = gather_step::<32>(x, 0x1f_ffff);
        x
    }

    /// 4-lane [`crate::bits::compact2`].
    #[target_feature(enable = "avx2")]
    fn compact2_x4(x: __m256i) -> __m256i {
        let mut x = _mm256_and_si256(x, _mm256_set1_epi64x(0x5555_5555_5555_5555));
        x = gather_step::<1>(x, 0x3333_3333_3333_3333);
        x = gather_step::<2>(x, 0x0f0f_0f0f_0f0f_0f0f);
        x = gather_step::<4>(x, 0x00ff_00ff_00ff_00ff);
        x = gather_step::<8>(x, 0x0000_ffff_0000_ffff);
        x = gather_step::<16>(x, 0x7fff_ffff);
        x
    }

    /// Batch deinterleave, 4 keys per iteration through the vectorized
    /// compact cascade. Deliberately *not* `pext`-based: `pext` is
    /// microcoded (slow) on several x86-64 parts where AVX2 shifts are
    /// full-speed, and one cascade amortized over 4 lanes beats even a
    /// fast `pext` per key. Tail keys (< 4) fall back to the BMI2 helper.
    ///
    /// # Safety
    /// The CPU must support AVX2 and BMI2 (the dispatch only selects this
    /// path when both are present).
    #[target_feature(enable = "avx2")]
    #[target_feature(enable = "bmi2")]
    pub unsafe fn decode_slice<const D: usize>(keys: &[Key<D>]) -> Vec<[u64; D]> {
        assert!(D == 2 || D == 3, "unsupported dimension {D}");
        let n = keys.len();
        // Preallocated (not push-grown): the 4-wide body writes 4 * D
        // coordinates per iteration and per-push capacity checks would
        // cost more than the cascade saves.
        let mut out = vec![[0u64; D]; n];
        let mut i = 0;
        while i + 4 <= n {
            // Register inserts, not a gather through a stack array: a
            // 32-byte reload spanning four fresh 8-byte stores defeats
            // store-to-load forwarding and stalls every iteration.
            let c = _mm256_set_epi64x(
                keys[i + 3].raw() as i64,
                keys[i + 2].raw() as i64,
                keys[i + 1].raw() as i64,
                keys[i].raw() as i64,
            );
            // Writes below cover `out[i..i + 4]` exactly (4 * D lanes),
            // in bounds because `i + 4 <= n`.
            let dst: *mut u64 = out[i..].as_mut_ptr().cast();
            if D == 3 {
                // Per-axis cascades over `code >> a`, as in
                // `bits::deinterleave`, then a 4x3 in-register transpose
                // (unpack + cross-lane permutes) so the result lands in
                // `out`'s key-major layout with three contiguous stores —
                // a lane-at-a-time scatter through the stack costs more
                // than the cascades.
                let x = compact3_x4(c);
                let y = compact3_x4(_mm256_srli_epi64::<1>(c));
                let z = compact3_x4(_mm256_srli_epi64::<2>(c));
                let xy_lo = _mm256_unpacklo_epi64(x, y); // [x0 y0 x2 y2]
                let xy_hi = _mm256_unpackhi_epi64(x, y); // [x1 y1 x3 y3]
                let yz_hi = _mm256_unpackhi_epi64(y, z); // [y1 z1 y3 z3]
                let zx = _mm256_unpacklo_epi64(z, xy_hi); // [z0 x1 z2 x3]
                let r0 = _mm256_permute2x128_si256::<0x20>(xy_lo, zx); // [x0 y0 z0 x1]
                let r1 = _mm256_permute2x128_si256::<0x30>(yz_hi, xy_lo); // [y1 z1 x2 y2]
                let r2 = _mm256_permute2x128_si256::<0x31>(zx, yz_hi); // [z2 x3 y3 z3]
                                                                       // SAFETY: 3 unaligned 32-byte stores = 96 bytes = 4 keys'
                                                                       // 3 coordinates each, all inside `out[i..i + 4]`.
                unsafe {
                    _mm256_storeu_si256(dst.cast(), r0);
                    _mm256_storeu_si256(dst.add(4).cast(), r1);
                    _mm256_storeu_si256(dst.add(8).cast(), r2);
                }
            } else {
                let x = compact2_x4(c);
                let y = compact2_x4(_mm256_srli_epi64::<1>(c));
                let xy_lo = _mm256_unpacklo_epi64(x, y); // [x0 y0 x2 y2]
                let xy_hi = _mm256_unpackhi_epi64(x, y); // [x1 y1 x3 y3]
                let r0 = _mm256_permute2x128_si256::<0x20>(xy_lo, xy_hi); // [x0 y0 x1 y1]
                let r1 = _mm256_permute2x128_si256::<0x31>(xy_lo, xy_hi); // [x2 y2 x3 y3]
                                                                          // SAFETY: 2 unaligned 32-byte stores = 64 bytes = 4 keys'
                                                                          // 2 coordinates each, all inside `out[i..i + 4]`.
                unsafe {
                    _mm256_storeu_si256(dst.cast(), r0);
                    _mm256_storeu_si256(dst.add(4).cast(), r1);
                }
            }
            i += 4;
        }
        for (coords, k) in out[i..].iter_mut().zip(&keys[i..]) {
            if D == 3 {
                coords.copy_from_slice(&deinterleave3(k.raw()));
            } else {
                coords.copy_from_slice(&deinterleave2(k.raw()));
            }
        }
        out
    }

    // `pdep`/`pext` are register-only intrinsics: with the feature enabled
    // on the function they are *safe* to call, so the `unsafe` obligation
    // lives solely at the dispatch call sites (which proved the feature at
    // runtime before calling these `#[target_feature]` functions).

    /// One 3D interleave: deposit each axis into its stride-3 lane.
    #[target_feature(enable = "bmi2")]
    fn interleave3(c: [u64; 3]) -> u64 {
        _pdep_u64(c[0], MASK3) | _pdep_u64(c[1], MASK3 << 1) | _pdep_u64(c[2], MASK3 << 2)
    }

    /// One 2D interleave.
    #[target_feature(enable = "bmi2")]
    fn interleave2(c: [u64; 2]) -> u64 {
        _pdep_u64(c[0], MASK2) | _pdep_u64(c[1], MASK2 << 1)
    }

    /// One 3D deinterleave: extract each stride-3 lane.
    #[target_feature(enable = "bmi2")]
    fn deinterleave3(code: u64) -> [u64; 3] {
        [_pext_u64(code, MASK3), _pext_u64(code, MASK3 << 1), _pext_u64(code, MASK3 << 2)]
    }

    /// One 2D deinterleave.
    #[target_feature(enable = "bmi2")]
    fn deinterleave2(code: u64) -> [u64; 2] {
        [_pext_u64(code, MASK2), _pext_u64(code, MASK2 << 1)]
    }

    /// Fused anchor kernel: `keys[i].raw() << (D * (MAX_LEVEL -
    /// keys[i].level()))` in a single pass, 4 lanes at a time (`vpsllvq`),
    /// without materializing intermediate code/shift vectors (three extra
    /// memory passes that erase the SIMD win once the batch spills L2).
    /// Shift counts are < 64 (guaranteed: `D * MAX_LEVEL <= 63`).
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn anchors_slice<const D: usize>(keys: &[Key<D>]) -> Vec<u64> {
        let max = Key::<D>::MAX_LEVEL;
        let n = keys.len();
        let mut out = vec![0u64; n];
        let mut i = 0;
        while i + 4 <= n {
            let mut codes = [0u64; 4];
            let mut shifts = [0u64; 4];
            for (lane, k) in keys[i..i + 4].iter().enumerate() {
                codes[lane] = k.raw();
                shifts[lane] = D as u64 * (max - k.level()) as u64;
            }
            // SAFETY: the 4-lane unaligned accesses cover exactly the two
            // stack arrays and `out[i..i + 4]` (`i + 4 <= n`); AVX2 is
            // enabled on this function.
            unsafe {
                let c = _mm256_loadu_si256(codes.as_ptr().cast());
                let s = _mm256_loadu_si256(shifts.as_ptr().cast());
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_sllv_epi64(c, s));
            }
            i += 4;
        }
        for (o, k) in out[i..].iter_mut().zip(&keys[i..]) {
            *o = k.raw() << (D as u32 * (max - k.level()) as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{OctKey, QuadKey};

    #[test]
    fn dispatch_respects_env_override() {
        // `active()` is cached per process: when CI pins the fallback via
        // the environment it must report Scalar; otherwise it must agree
        // with the hardware probe. Either way the dispatch path is
        // exercised.
        if forced_scalar() {
            assert_eq!(active(), Dispatch::Scalar);
        } else {
            assert_eq!(active(), Dispatch::hardware());
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_dispatches() {
        let items: Vec<([u64; 3], u8)> =
            vec![([0, 0, 0], 0), ([1, 2, 3], 2), ([5, 9, 14], 4), ([(1 << 21) - 1, 0, 7], 21)];
        for d in [Dispatch::Scalar, Dispatch::hardware()] {
            let keys = encode_many_with(d, &items);
            for (k, &(c, l)) in keys.iter().zip(&items) {
                assert_eq!(*k, OctKey::from_coords(c, l), "{d:?}");
            }
            let back = decode_many_with(d, &keys);
            for (b, &(c, _)) in back.iter().zip(&items) {
                assert_eq!(*b, c, "{d:?}");
            }
        }
    }

    #[test]
    fn cmp_matches_zcmp() {
        let a = vec![OctKey::root(), OctKey::root().child(3), OctKey::root().child(1).child(7)];
        let b = vec![OctKey::root().child(0), OctKey::root().child(3), OctKey::root().child(2)];
        for d in [Dispatch::Scalar, Dispatch::hardware()] {
            let got = cmp_keys_many_with(d, &a, &b);
            let want: Vec<_> = a.iter().zip(&b).map(|(x, y)| x.zcmp(y)).collect();
            assert_eq!(got, want, "{d:?}");
        }
    }

    #[test]
    fn children_match_per_key() {
        let keys = vec![QuadKey::root(), QuadKey::root().child(2).child(1)];
        for d in [Dispatch::Scalar, Dispatch::hardware()] {
            let flat = children_many_with(d, &keys);
            assert_eq!(flat.len(), keys.len() * QuadKey::FANOUT);
            for (i, k) in keys.iter().enumerate() {
                let want: Vec<_> = k.children().collect();
                assert_eq!(&flat[i * QuadKey::FANOUT..(i + 1) * QuadKey::FANOUT], &want[..]);
            }
        }
    }

    #[test]
    fn argsort_matches_zcmp_sort() {
        let keys = vec![
            OctKey::root().child(7),
            OctKey::root(),
            OctKey::root().child(0).child(3),
            OctKey::root().child(0),
            OctKey::root().child(7).child(7).child(7),
        ];
        let order = zorder_argsort(&keys);
        let sorted: Vec<_> = order.iter().map(|&i| keys[i]).collect();
        let mut want = keys.clone();
        want.sort_unstable_by(|a, b| a.zcmp(b));
        assert_eq!(sorted, want);
    }

    #[test]
    fn neighbors_match_per_key() {
        let keys = vec![
            OctKey::from_coords([0, 0, 0], 2),
            OctKey::from_coords([1, 1, 1], 2),
            OctKey::from_coords([3, 2, 0], 2),
        ];
        for full in [false, true] {
            let (flat, spans) = neighbors_many(&keys, full);
            for (k, &(s, e)) in keys.iter().zip(&spans) {
                let want = if full { k.all_neighbors() } else { k.face_neighbors() };
                assert_eq!(&flat[s..e], &want[..], "full={full}");
            }
        }
    }
}
