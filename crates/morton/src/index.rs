//! A Morton-sorted linear view of an octree's leaf set.
//!
//! [`LeafIndex`] is the "quadrant array" of linear-octree codes (p4est,
//! Kirilin & Burstedde): the complete leaf set stored as a flat
//! `Vec<(Key, slot)>` sorted by Z-order. Because leaves tile the domain
//! disjointly, point-containment becomes one binary search and a batch of
//! sorted queries resolves in a single merge-scan — no per-query root
//! descent, and therefore no per-hop NVBM cacheline charges. The `slot` is
//! a backend-private payload locator (node index, page id, …) that lets
//! the owner jump straight to the destination octant, which is the only
//! place an NVBM access is still required.
//!
//! The index is *lazily maintained*: owners call [`LeafIndex::on_refine`] /
//! [`LeafIndex::on_coarsen`] to splice the sorted array incrementally on
//! mesh mutations, and [`LeafIndex::invalidate`] on wholesale changes
//! (crash recovery, snapshot restore). An invalid index stays cheap: all
//! incremental hooks become no-ops until the owner rebuilds it from a full
//! leaf enumeration.
//!
//! The index itself is DRAM-resident; owners are responsible for charging
//! DRAM-read costs for probes (see [`LeafIndex::lines_for_entries`] and the
//! touched-entry counts returned by the query methods).

use crate::code::Key;

/// Bytes one index entry occupies in DRAM (16-byte key + 8-byte slot,
/// padded to the struct layout actually stored).
pub const ENTRY_BYTES: usize = std::mem::size_of::<(Key<3>, u64)>();

/// DRAM cacheline size used for cost conversion.
const LINE: usize = 64;

/// Morton-sorted leaf array with incremental maintenance.
///
/// Invariants while [`LeafIndex::is_valid`]:
/// * entries are sorted ascending by [`Key::zcmp`],
/// * entries are exactly the owner's current leaf set (disjoint cells —
///   no entry is an ancestor of another).
#[derive(Clone, Debug, Default)]
pub struct LeafIndex<const D: usize> {
    entries: Vec<(Key<D>, u64)>,
    valid: bool,
}

impl<const D: usize> LeafIndex<D> {
    /// New, invalid (empty) index; call [`LeafIndex::rebuild`] before use.
    pub fn new() -> Self {
        LeafIndex { entries: Vec::new(), valid: false }
    }

    /// Is the index current with the owner's leaf set?
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Drop the index contents; incremental hooks become no-ops until the
    /// next [`LeafIndex::rebuild`]. Owners call this on wholesale leaf-set
    /// changes (crash recovery, snapshot restore).
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.entries.clear();
    }

    /// Rebuild from a full leaf enumeration (any order; sorted here).
    ///
    /// Returns the number of entries, so the owner can account the rebuild
    /// cost (the enumeration itself is charged by the owner's traversal).
    pub fn rebuild(&mut self, leaves: impl IntoIterator<Item = (Key<D>, u64)>) -> usize {
        let entries: Vec<(Key<D>, u64)> = leaves.into_iter().collect();
        // Batched Z-order sort: one vectorized anchor pass instead of two
        // alignment shifts inside every one of the n·log n comparisons.
        let keys: Vec<Key<D>> = entries.iter().map(|e| e.0).collect();
        let order = crate::simd::zorder_argsort(&keys);
        self.entries = order.into_iter().map(|i| entries[i]).collect();
        self.valid = true;
        self.entries.len()
    }

    /// Number of leaves in the index (0 when invalid).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted `(key, slot)` entries.
    ///
    /// # Panics
    /// Panics if the index is invalid — callers must rebuild first.
    pub fn entries(&self) -> &[(Key<D>, u64)] {
        assert!(self.valid, "leaf index queried while invalid");
        &self.entries
    }

    /// DRAM cachelines occupied by `n` index entries (for cost charging).
    pub fn lines_for_entries(n: usize) -> u64 {
        ((n * ENTRY_BYTES).div_ceil(LINE)) as u64
    }

    /// DRAM cachelines touched by one binary-search probe of this index.
    pub fn probe_lines(&self) -> u64 {
        let hops = usize::BITS - self.entries.len().leading_zeros();
        Self::lines_for_entries(hops.max(1) as usize)
    }

    /// Splice a refine into the sorted array: `parent` (a leaf) is replaced
    /// by its `FANOUT` children, child `i` receiving `child_slots[i]`.
    ///
    /// No-op while invalid. If `parent` is not present the index can no
    /// longer be trusted and is invalidated (defensive, should not happen
    /// when owners hook every mutation).
    pub fn on_refine(&mut self, parent: Key<D>, child_slots: &[u64]) {
        if !self.valid {
            return;
        }
        debug_assert_eq!(child_slots.len(), Key::<D>::FANOUT);
        match self.entries.binary_search_by(|e| e.0.zcmp(&parent)) {
            Ok(pos) => {
                let children: Vec<(Key<D>, u64)> =
                    parent.children().zip(child_slots.iter().copied()).collect();
                self.entries.splice(pos..pos + 1, children);
            }
            Err(_) => self.invalidate(),
        }
    }

    /// Like [`LeafIndex::on_refine`] with the same slot for every child.
    pub fn on_refine_uniform(&mut self, parent: Key<D>, slot: u64) {
        if !self.valid {
            return;
        }
        let slots = vec![slot; Key::<D>::FANOUT];
        self.on_refine(parent, &slots);
    }

    /// Splice a coarsen: the `FANOUT` children of `parent` (all leaves)
    /// are replaced by `parent` with slot `slot`.
    ///
    /// No-op while invalid; invalidates defensively if the children are not
    /// present contiguously.
    pub fn on_coarsen(&mut self, parent: Key<D>, slot: u64) {
        if !self.valid {
            return;
        }
        let fanout = Key::<D>::FANOUT;
        let first = parent.child(0);
        match self.entries.binary_search_by(|e| e.0.zcmp(&first)) {
            Ok(pos) if pos + fanout <= self.entries.len() => {
                let contiguous =
                    parent.children().enumerate().all(|(i, c)| self.entries[pos + i].0 == c);
                if contiguous {
                    self.entries.splice(pos..pos + fanout, [(parent, slot)]);
                } else {
                    self.invalidate();
                }
            }
            _ => self.invalidate(),
        }
    }

    /// Update the slot stored for `key` (payload moved; leaf set unchanged).
    /// No-op while invalid or when `key` is absent.
    pub fn set_slot(&mut self, key: Key<D>, slot: u64) {
        if !self.valid {
            return;
        }
        if let Ok(pos) = self.entries.binary_search_by(|e| e.0.zcmp(&key)) {
            self.entries[pos].1 = slot;
        }
    }

    /// Containing leaf of `query` by binary search: the greatest entry
    /// `<=` query in Z-order, accepted iff it contains `query`. Returns
    /// `(entry_index, key, slot)`.
    ///
    /// Returns `None` when `query` lies strictly above the leaf level
    /// (i.e. the region is refined deeper than `query`), matching the
    /// backends' `containing_leaf` semantics.
    ///
    /// # Panics
    /// Panics if the index is invalid.
    pub fn find(&self, query: &Key<D>) -> Option<(usize, Key<D>, u64)> {
        assert!(self.valid, "leaf index queried while invalid");
        let pos = self.entries.partition_point(|e| e.0.zcmp(query).is_le());
        if pos == 0 {
            return None;
        }
        let (k, slot) = self.entries[pos - 1];
        k.contains(query).then_some((pos - 1, k, slot))
    }

    /// Resolve a Z-order-ascending batch of queries in one merge-scan.
    ///
    /// Returns per-query `Option<entry_index>` plus the number of index
    /// entries the scan advanced over (for DRAM cost charging). Queries
    /// **must** be sorted ascending (checked in debug builds); duplicates
    /// are fine.
    ///
    /// # Panics
    /// Panics if the index is invalid.
    pub fn resolve_sorted(&self, queries: &[Key<D>]) -> (Vec<Option<usize>>, usize) {
        assert!(self.valid, "leaf index queried while invalid");
        #[cfg(debug_assertions)]
        if queries.len() > 1 {
            assert!(
                crate::simd::cmp_keys_many(&queries[..queries.len() - 1], &queries[1..])
                    .iter()
                    .all(|o| o.is_le()),
                "resolve_sorted requires Z-order-ascending queries"
            );
        }
        let mut out = Vec::with_capacity(queries.len());
        let mut cur = 0usize; // number of entries known to be <= the query
        let mut touched = 0usize;
        for q in queries {
            while cur < self.entries.len() && self.entries[cur].0.zcmp(q).is_le() {
                cur += 1;
                touched += 1;
            }
            if cur == 0 {
                out.push(None);
                continue;
            }
            let (k, _) = self.entries[cur - 1];
            touched += 1;
            out.push(if k.contains(q) { Some(cur - 1) } else { None });
        }
        (out, touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::OctKey;

    fn build(keys: &[OctKey]) -> LeafIndex<3> {
        let mut idx = LeafIndex::new();
        idx.rebuild(keys.iter().enumerate().map(|(i, k)| (*k, i as u64)));
        idx
    }

    /// Leaves: root refined once, child 3 refined again.
    fn sample_leaves() -> Vec<OctKey> {
        let r = OctKey::root();
        let mut out: Vec<OctKey> = (0..8).filter(|&i| i != 3).map(|i| r.child(i)).collect();
        out.extend(r.child(3).children());
        out
    }

    #[test]
    fn find_matches_linear_scan() {
        let leaves = sample_leaves();
        let idx = build(&leaves);
        let probes = [
            OctKey::root().child(0).child(5).child(2),
            OctKey::root().child(3).child(7),
            OctKey::root().child(3).child(7).child(1),
            OctKey::root().child(6),
        ];
        for p in probes {
            let want = leaves.iter().find(|l| l.contains(&p)).copied();
            assert_eq!(idx.find(&p).map(|(_, k, _)| k), want, "probe {p:?}");
        }
        // Query at an internal position (coarser than the leaves): None.
        assert!(idx.find(&OctKey::root()).is_none());
        assert!(idx.find(&OctKey::root().child(3)).is_none());
    }

    #[test]
    fn resolve_sorted_matches_find() {
        let leaves = sample_leaves();
        let idx = build(&leaves);
        let mut queries: Vec<OctKey> = leaves
            .iter()
            .flat_map(|l| l.all_neighbors())
            .chain([OctKey::root().child(3)])
            .collect();
        queries.sort_unstable();
        let (resolved, touched) = idx.resolve_sorted(&queries);
        assert!(touched > 0);
        for (q, r) in queries.iter().zip(&resolved) {
            assert_eq!(r.map(|i| idx.entries()[i].0), idx.find(q).map(|(_, k, _)| k));
        }
    }

    #[test]
    fn refine_coarsen_splices_match_rebuild() {
        let mut idx = build(&sample_leaves());
        let target = OctKey::root().child(5);
        idx.on_refine_uniform(target, 9);
        let mut want = sample_leaves();
        want.retain(|k| *k != target);
        want.extend(target.children());
        want.sort_unstable();
        let got: Vec<OctKey> = idx.entries().iter().map(|e| e.0).collect();
        assert_eq!(got, want);

        idx.on_coarsen(target, 11);
        let mut want = sample_leaves();
        want.sort_unstable();
        let got: Vec<OctKey> = idx.entries().iter().map(|e| e.0).collect();
        assert_eq!(got, want);
        assert_eq!(idx.find(&target.child(2)).unwrap().2, 11);
    }

    #[test]
    fn hooks_are_noops_while_invalid_and_defensive_on_mismatch() {
        let mut idx = LeafIndex::<3>::new();
        idx.on_refine_uniform(OctKey::root(), 0);
        idx.on_coarsen(OctKey::root(), 0);
        assert!(!idx.is_valid());

        let mut idx = build(&sample_leaves());
        // Refining a key that is not a leaf must invalidate, not corrupt.
        idx.on_refine_uniform(OctKey::root().child(3), 0);
        assert!(!idx.is_valid());
    }
}
