//! Bit-interleaving primitives (Morton / Z-order encoding).
//!
//! A *Morton code* interleaves the bits of D coordinate values so that
//! lexicographic order on the interleaved word corresponds to Z-order
//! traversal of the D-dimensional grid. These routines use the classic
//! magic-number "bit spreading" constants; they are branch-free and run in
//! a handful of cycles, which matters because locational-code arithmetic
//! sits on the hot path of every octree operation.

/// Maximum refinement level representable in a `u64` code for dimension `D`.
///
/// One bit group of `D` bits is consumed per level; we reserve nothing for a
/// sentinel, so `floor(63 / D)` levels fit together with the implicit root.
pub const fn max_level(d: usize) -> u8 {
    (63 / d) as u8
}

/// Spread the low 21 bits of `x` so that bit `i` of the input lands at bit
/// `3*i` of the output (dilated integer for 3D interleaving).
#[inline]
pub const fn spread3(x: u64) -> u64 {
    let mut x = x & 0x1f_ffff; // 21 bits
    x = (x | x << 32) & 0x001f_0000_0000_ffff;
    x = (x | x << 16) & 0x001f_0000_ff00_00ff;
    x = (x | x << 8) & 0x100f_00f0_0f00_f00f;
    x = (x | x << 4) & 0x10c3_0c30_c30c_30c3;
    x = (x | x << 2) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread3`]: gather every third bit back into a dense integer.
#[inline]
pub const fn compact3(x: u64) -> u64 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | x >> 2) & 0x10c3_0c30_c30c_30c3;
    x = (x | x >> 4) & 0x100f_00f0_0f00_f00f;
    x = (x | x >> 8) & 0x001f_0000_ff00_00ff;
    x = (x | x >> 16) & 0x001f_0000_0000_ffff;
    x = (x | x >> 32) & 0x1f_ffff;
    x
}

/// Spread the low 31 bits of `x` so that bit `i` lands at bit `2*i`
/// (dilated integer for 2D interleaving).
#[inline]
pub const fn spread2(x: u64) -> u64 {
    let mut x = x & 0x7fff_ffff; // 31 bits
    x = (x | x << 16) & 0x0000_ffff_0000_ffff;
    x = (x | x << 8) & 0x00ff_00ff_00ff_00ff;
    x = (x | x << 4) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | x << 2) & 0x3333_3333_3333_3333;
    x = (x | x << 1) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread2`].
#[inline]
pub const fn compact2(x: u64) -> u64 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | x >> 1) & 0x3333_3333_3333_3333;
    x = (x | x >> 2) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | x >> 4) & 0x00ff_00ff_00ff_00ff;
    x = (x | x >> 8) & 0x0000_ffff_0000_ffff;
    x = (x | x >> 16) & 0x7fff_ffff;
    x
}

/// Interleave `coords` (each `< 2^level_bits`) into a single Morton word.
///
/// Axis `a`'s bit `i` lands at output bit `D*i + a`, i.e. the x axis owns
/// the least significant bit of every D-bit group — matching the child
/// indexing convention used throughout this workspace.
#[inline]
pub fn interleave<const D: usize>(coords: [u64; D]) -> u64 {
    debug_assert!(D == 2 || D == 3, "only quadtrees and octrees are supported");
    let mut out = 0u64;
    for (a, &c) in coords.iter().enumerate() {
        out |= match D {
            2 => spread2(c) << a,
            _ => spread3(c) << a,
        };
    }
    out
}

/// Inverse of [`interleave`].
#[inline]
pub fn deinterleave<const D: usize>(code: u64) -> [u64; D] {
    debug_assert!(D == 2 || D == 3, "only quadtrees and octrees are supported");
    let mut out = [0u64; D];
    for (a, slot) in out.iter_mut().enumerate() {
        *slot = match D {
            2 => compact2(code >> a),
            _ => compact3(code >> a),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread3_roundtrip_exhaustive_low() {
        for x in 0u64..4096 {
            assert_eq!(compact3(spread3(x)), x);
        }
    }

    #[test]
    fn spread2_roundtrip_exhaustive_low() {
        for x in 0u64..4096 {
            assert_eq!(compact2(spread2(x)), x);
        }
    }

    #[test]
    fn spread3_max_value() {
        let max = 0x1f_ffff;
        assert_eq!(compact3(spread3(max)), max);
    }

    #[test]
    fn spread2_max_value() {
        let max = 0x7fff_ffff;
        assert_eq!(compact2(spread2(max)), max);
    }

    #[test]
    fn interleave_3d_known_values() {
        // (1,0,0) -> 0b001, (0,1,0) -> 0b010, (0,0,1) -> 0b100
        assert_eq!(interleave::<3>([1, 0, 0]), 0b001);
        assert_eq!(interleave::<3>([0, 1, 0]), 0b010);
        assert_eq!(interleave::<3>([0, 0, 1]), 0b100);
        assert_eq!(interleave::<3>([1, 1, 1]), 0b111);
        // second bit group
        assert_eq!(interleave::<3>([2, 0, 0]), 0b001_000);
    }

    #[test]
    fn interleave_2d_known_values() {
        assert_eq!(interleave::<2>([1, 0]), 0b01);
        assert_eq!(interleave::<2>([0, 1]), 0b10);
        assert_eq!(interleave::<2>([3, 0]), 0b0101);
        assert_eq!(interleave::<2>([0, 3]), 0b1010);
    }

    #[test]
    fn deinterleave_roundtrip_3d() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                for z in 0..16u64 {
                    assert_eq!(deinterleave::<3>(interleave::<3>([x, y, z])), [x, y, z]);
                }
            }
        }
    }

    #[test]
    fn max_level_values() {
        assert_eq!(max_level(3), 21);
        assert_eq!(max_level(2), 31);
    }
}
