//! Locational-code arithmetic for linear and pointer-based octrees.
//!
//! This crate is the shared foundation of the PM-octree workspace: every
//! octree implementation (the PM-octree itself, the Gerris-style in-core
//! baseline, and the Etree-style out-of-core baseline) identifies cells by
//! a [`Key`]: a Morton-encoded locational code plus a refinement level.
//!
//! Provided here:
//! * [`bits`] — branch-free bit interleaving (2D and 3D),
//! * [`code`] — the [`Key`] type: parent/child/ancestor/neighbor calculus,
//!   Z-order total order,
//! * [`range`] — Morton-curve intervals and the weighted splitting used by
//!   the `Partition` meshing routine,
//! * [`index`] — [`LeafIndex`]: a Morton-sorted linear view of a leaf set
//!   with incremental refine/coarsen maintenance and merge-scan batch
//!   containment queries,
//! * [`simd`] — batched kernels (`encode_many`, `decode_many`,
//!   `cmp_keys_many`, `children_many`, `neighbors_many`) behind a
//!   **one-time runtime dispatch**: BMI2 `pdep`/`pext` + AVX2 shifts on
//!   x86-64 CPUs that report them, the portable scalar cascades
//!   everywhere else. The two paths are bit-identical; set
//!   `PMOCTREE_MORTON_FORCE_SCALAR=1` to pin the fallback (CI does, so
//!   dispatch is exercised even without the hardware).
#![warn(missing_docs)]

pub mod bits;
pub mod code;
pub mod hilbert;
pub mod index;
pub mod range;
pub mod simd;

pub use code::{Key, OctKey, QuadKey};
pub use hilbert::{hilbert_coords, hilbert_index, hilbert_of_key, hilbert_partition};
pub use index::LeafIndex;
pub use range::{anchor, anchor_end, partition_by_weight, ZRange};
