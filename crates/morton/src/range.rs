//! Z-order ranges and space-filling-curve partitioning.
//!
//! Parallel octree meshing assigns each rank a contiguous interval of the
//! Morton curve ([Tu et al. SC'05], [Sundar et al. 2008]); this module
//! provides the interval type and the weighted splitting used by the
//! `Partition` meshing routine.

use crate::code::Key;

/// A half-open interval `[lo, hi)` of the Morton curve at a fixed level,
/// expressed on *anchor* codes (codes of `first_descendant(MAX_LEVEL)`),
/// so that cells of any level can be tested for membership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZRange<const D: usize> {
    /// Inclusive lower anchor (left-aligned code at `MAX_LEVEL`).
    pub lo: u64,
    /// Exclusive upper anchor; `u64::MAX` means "to the end of the domain".
    pub hi: u64,
}

/// Left-aligned anchor of a key: the Morton code of its first descendant at
/// `MAX_LEVEL`. Two cells are disjoint iff their anchor ranges are.
#[inline]
pub fn anchor<const D: usize>(k: &Key<D>) -> u64 {
    k.raw() << (D as u32 * (Key::<D>::MAX_LEVEL - k.level()) as u32)
}

/// One-past-the-last anchor covered by `k`.
#[inline]
pub fn anchor_end<const D: usize>(k: &Key<D>) -> u64 {
    let shift = D as u32 * (Key::<D>::MAX_LEVEL - k.level()) as u32;
    let span = 1u64 << shift;
    anchor::<D>(k).saturating_add(span)
}

impl<const D: usize> ZRange<D> {
    /// The whole domain.
    pub fn all() -> Self {
        ZRange { lo: 0, hi: u64::MAX }
    }

    /// Range covering exactly the cell `k` and its descendants.
    pub fn of(k: &Key<D>) -> Self {
        ZRange { lo: anchor::<D>(k), hi: anchor_end::<D>(k) }
    }

    /// Does this range contain cell `k` entirely?
    #[inline]
    pub fn contains(&self, k: &Key<D>) -> bool {
        anchor::<D>(k) >= self.lo && anchor_end::<D>(k) <= self.hi
    }

    /// Does this range contain the *anchor* of `k` (ownership test used by
    /// partitioning: each cell is owned by the range holding its anchor)?
    #[inline]
    pub fn owns(&self, k: &Key<D>) -> bool {
        let a = anchor::<D>(k);
        a >= self.lo && a < self.hi
    }

    /// Do the two ranges overlap?
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Is the range empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// Split a set of weighted leaves (sorted by Z-order) into `parts`
/// contiguous [`ZRange`]s with approximately equal total weight.
///
/// This is the load-balancing step of the `Partition` routine: weights are
/// per-octant work estimates (typically 1, or solver cost). Returns exactly
/// `parts` ranges covering the entire curve; trailing ranges may own no
/// leaves when there are fewer leaves than parts.
///
/// # Panics
/// Panics if `parts == 0` or the leaves are not sorted by Z-order.
pub fn partition_by_weight<const D: usize>(
    leaves: &[(Key<D>, f64)],
    parts: usize,
) -> Vec<ZRange<D>> {
    assert!(parts > 0, "cannot partition into zero parts");
    #[cfg(debug_assertions)]
    if leaves.len() > 1 {
        let keys: Vec<Key<D>> = leaves.iter().map(|l| l.0).collect();
        assert!(
            crate::simd::cmp_keys_many(&keys[..keys.len() - 1], &keys[1..])
                .iter()
                .all(|o| o.is_lt()),
            "leaves must be sorted by Z-order and unique"
        );
    }
    let total: f64 = leaves.iter().map(|(_, w)| w.max(0.0)).sum();
    let mut out = Vec::with_capacity(parts);
    let mut cursor = 0u64; // current lower anchor
    let mut acc = 0.0;
    let mut li = 0usize;
    for p in 0..parts {
        if p == parts - 1 {
            out.push(ZRange { lo: cursor, hi: u64::MAX });
            break;
        }
        let target = total * (p as f64 + 1.0) / parts as f64;
        while li < leaves.len() && acc < target {
            acc += leaves[li].1.max(0.0);
            li += 1;
        }
        // Cut after the last consumed leaf.
        let hi = if li == 0 {
            cursor
        } else if li >= leaves.len() {
            u64::MAX
        } else {
            anchor::<D>(&leaves[li].0)
        };
        let hi = hi.max(cursor);
        out.push(ZRange { lo: cursor, hi });
        cursor = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{OctKey, QuadKey};

    fn leaves_at_level(level: u8) -> Vec<(QuadKey, f64)> {
        let mut v: Vec<QuadKey> = (0..(1u64 << level))
            .flat_map(|x| (0..(1u64 << level)).map(move |y| QuadKey::from_coords([x, y], level)))
            .collect();
        v.sort();
        v.into_iter().map(|k| (k, 1.0)).collect()
    }

    #[test]
    fn range_of_root_is_all_anchors() {
        let r = ZRange::<3>::of(&OctKey::root());
        assert_eq!(r.lo, 0);
        assert!(r.hi >= anchor_end::<3>(&OctKey::root().child(7)));
    }

    #[test]
    fn child_ranges_tile_parent() {
        let k = OctKey::root().child(5);
        let parent = ZRange::<3>::of(&k);
        let mut cursor = parent.lo;
        for c in k.children() {
            let r = ZRange::<3>::of(&c);
            assert_eq!(r.lo, cursor);
            cursor = r.hi;
        }
        assert_eq!(cursor, parent.hi);
    }

    #[test]
    fn contains_vs_owns() {
        let k = OctKey::root().child(2);
        let r = ZRange::<3>::of(&k);
        assert!(r.contains(&k.child(0)));
        assert!(r.owns(&k.child(0)));
        assert!(!r.contains(&OctKey::root()));
        // Root's anchor is 0 which lies in child 0's range, not child 2's.
        assert!(!r.owns(&OctKey::root()));
    }

    #[test]
    fn partition_equal_weights_balances() {
        let leaves = leaves_at_level(4); // 256 leaves
        let parts = partition_by_weight(&leaves, 8);
        assert_eq!(parts.len(), 8);
        // Ranges are contiguous and cover everything.
        assert_eq!(parts[0].lo, 0);
        assert_eq!(parts.last().unwrap().hi, u64::MAX);
        for w in parts.windows(2) {
            assert_eq!(w[0].hi, w[1].lo);
        }
        // Each part owns 32 +- 1 leaves.
        for r in &parts {
            let n = leaves.iter().filter(|(k, _)| r.owns(k)).count();
            assert!((31..=33).contains(&n), "part owns {n} leaves");
        }
    }

    #[test]
    fn partition_skewed_weights() {
        let mut leaves = leaves_at_level(3); // 64 leaves
                                             // First leaf carries half of all the weight.
        leaves[0].1 = 63.0;
        let parts = partition_by_weight(&leaves, 2);
        let n0 = leaves.iter().filter(|(k, _)| parts[0].owns(k)).count();
        // Part 0 should own just the heavy leaf (possibly a couple more).
        assert!(n0 <= 3, "heavy part owns {n0} leaves");
    }

    #[test]
    fn partition_more_parts_than_leaves() {
        let leaves = leaves_at_level(1); // 4 leaves
        let parts = partition_by_weight(&leaves, 16);
        assert_eq!(parts.len(), 16);
        let owned: usize =
            parts.iter().map(|r| leaves.iter().filter(|(k, _)| r.owns(k)).count()).sum();
        assert_eq!(owned, 4);
    }

    #[test]
    fn every_leaf_owned_exactly_once() {
        let leaves = leaves_at_level(4);
        let parts = partition_by_weight(&leaves, 5);
        for (k, _) in &leaves {
            let owners = parts.iter().filter(|r| r.owns(k)).count();
            assert_eq!(owners, 1);
        }
    }
}
