//! Locational codes: the identity of an octant.
//!
//! A [`Key`] names one cell of the recursively-refined domain: its
//! refinement `level` and its position encoded as `level` interleaved
//! D-bit groups (a Morton code). The root of the tree is the unique key at
//! level 0. Keys are plain 16-byte values; they are what gets stored in
//! NVBM octants, exchanged between ranks during partitioning, and used as
//! B-tree keys by the Etree baseline.

use crate::bits::{deinterleave, interleave, max_level};

/// Locational code of a cell in a `D`-dimensional linear 2^D-tree
/// (`D = 2`: quadtree, `D = 3`: octree).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key<const D: usize> {
    /// Interleaved coordinate bits; only the low `D * level` bits are used.
    code: u64,
    /// Refinement depth: 0 is the root enclosing the whole domain.
    level: u8,
}

/// Convenient alias for the 3D case used by the flow-solver workloads.
pub type OctKey = Key<3>;
/// Convenient alias for the 2D case (quadtree), used in figures and tests.
pub type QuadKey = Key<2>;

impl<const D: usize> std::fmt::Debug for Key<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key<{}>(L{} ", D, self.level)?;
        // Shift widths are computed in u32 and checked: `D * l` stays < 64
        // for every valid key (D * (MAX_LEVEL - 1) <= 60), but the
        // formatter is also reached from recovery paths printing keys
        // decoded off crashed media, so a hostile (code, level) pair must
        // degrade to zero digits instead of a shift-overflow panic.
        for l in (0..self.level as u32).rev() {
            let digit = self.code.checked_shr(D as u32 * l).unwrap_or(0) & ((1u64 << D) - 1);
            write!(f, "{digit}")?;
            if l > 0 {
                write!(f, ".")?;
            }
        }
        write!(f, ")")
    }
}

impl<const D: usize> Default for Key<D> {
    fn default() -> Self {
        Self::root()
    }
}

impl<const D: usize> Key<D> {
    /// Number of children of an internal node (`2^D`).
    pub const FANOUT: usize = 1 << D;

    /// Deepest representable level for this dimension.
    pub const MAX_LEVEL: u8 = max_level(D);

    /// The root cell covering the entire domain.
    #[inline]
    pub const fn root() -> Self {
        Key { code: 0, level: 0 }
    }

    /// Build a key from a raw Morton code and level.
    ///
    /// # Panics
    /// Panics if `level` exceeds [`Self::MAX_LEVEL`] or `code` has bits set
    /// above `D * level`.
    #[inline]
    pub fn from_raw(code: u64, level: u8) -> Self {
        assert!(level <= Self::MAX_LEVEL, "level {level} too deep");
        assert!(
            level as u32 * D as u32 == 64 || code >> (level as u32 * D as u32) == 0,
            "code {code:#x} has bits above level {level}"
        );
        Key { code, level }
    }

    /// Build a key from parts already proven valid (batch kernels check
    /// whole slices up front instead of per element).
    #[inline]
    pub(crate) const fn from_raw_unchecked(code: u64, level: u8) -> Self {
        debug_assert!(level <= Self::MAX_LEVEL);
        debug_assert!(level as u32 * D as u32 >= 64 || code >> (level as u32 * D as u32) == 0);
        Key { code, level }
    }

    /// Build a key from integer grid coordinates at a level.
    ///
    /// Each coordinate must be `< 2^level`.
    #[inline]
    pub fn from_coords(coords: [u64; D], level: u8) -> Self {
        assert!(level <= Self::MAX_LEVEL, "level {level} too deep");
        for &c in &coords {
            assert!(c < 1u64 << level, "coordinate {c} out of range at level {level}");
        }
        Key { code: interleave::<D>(coords), level }
    }

    /// Integer grid coordinates of this cell's minimum corner, in units of
    /// cells at its own level.
    #[inline]
    pub fn coords(&self) -> [u64; D] {
        deinterleave::<D>(self.code)
    }

    /// Raw interleaved code (low `D * level` bits meaningful).
    #[inline]
    pub const fn raw(&self) -> u64 {
        self.code
    }

    /// Refinement level; the root is level 0.
    #[inline]
    pub const fn level(&self) -> u8 {
        self.level
    }

    /// Side length of this cell as a fraction of the domain (`2^-level`).
    #[inline]
    pub fn extent(&self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }

    /// Center of the cell in the unit domain `[0,1)^D`.
    #[inline]
    pub fn center(&self) -> [f64; D] {
        let h = self.extent();
        let c = self.coords();
        let mut out = [0.0; D];
        for a in 0..D {
            out[a] = (c[a] as f64 + 0.5) * h;
        }
        out
    }

    /// Minimum corner of the cell in the unit domain.
    #[inline]
    pub fn min_corner(&self) -> [f64; D] {
        let h = self.extent();
        let c = self.coords();
        let mut out = [0.0; D];
        for a in 0..D {
            out[a] = c[a] as f64 * h;
        }
        out
    }

    /// Index of this cell among its siblings (`0..FANOUT`); 0 for the root.
    #[inline]
    pub fn sibling_index(&self) -> usize {
        if self.level == 0 {
            0
        } else {
            (self.code & ((1 << D) - 1)) as usize
        }
    }

    /// Parent cell, or `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<Self> {
        if self.level == 0 {
            None
        } else {
            Some(Key { code: self.code >> D, level: self.level - 1 })
        }
    }

    /// The `i`-th child cell.
    ///
    /// Bit `a` of `i` selects the upper half along axis `a`.
    ///
    /// # Panics
    /// Panics if `i >= FANOUT` or the key is already at `MAX_LEVEL`.
    #[inline]
    pub fn child(&self, i: usize) -> Self {
        assert!(i < Self::FANOUT, "child index {i} out of range");
        assert!(self.level < Self::MAX_LEVEL, "cannot refine beyond MAX_LEVEL");
        Key { code: self.code << D | i as u64, level: self.level + 1 }
    }

    /// Iterator over all `FANOUT` children in Morton order.
    #[inline]
    pub fn children(&self) -> impl Iterator<Item = Self> + '_ {
        (0..Self::FANOUT).map(move |i| self.child(i))
    }

    /// Ancestor of this key at `level` (`level <= self.level()`).
    #[inline]
    pub fn ancestor_at(&self, level: u8) -> Self {
        assert!(level <= self.level, "ancestor level above key level");
        Key { code: self.code >> (D as u32 * (self.level - level) as u32), level }
    }

    /// Does `self` contain `other` (or equal it)? I.e. is `self` an
    /// ancestor-or-self of `other` in the tree.
    #[inline]
    pub fn contains(&self, other: &Self) -> bool {
        other.level >= self.level && other.ancestor_at(self.level) == *self
    }

    /// First (Z-order smallest) descendant at `level >= self.level()`.
    #[inline]
    pub fn first_descendant(&self, level: u8) -> Self {
        assert!(level >= self.level && level <= Self::MAX_LEVEL);
        Key { code: self.code << (D as u32 * (level - self.level) as u32), level }
    }

    /// Last (Z-order largest) descendant at `level >= self.level()`.
    #[inline]
    pub fn last_descendant(&self, level: u8) -> Self {
        assert!(level >= self.level && level <= Self::MAX_LEVEL);
        let shift = D as u32 * (level - self.level) as u32;
        let fill = if shift == 64 { u64::MAX } else { (1u64 << shift) - 1 };
        Key { code: (self.code << shift) | fill, level }
    }

    /// Z-order comparison as used for linear octrees: pre-order traversal
    /// position. An ancestor sorts immediately *before* all of its
    /// descendants; disjoint cells sort by spatial Z-order.
    #[inline]
    pub fn zcmp(&self, other: &Self) -> std::cmp::Ordering {
        let max = Self::MAX_LEVEL;
        let a = self.code << (D as u32 * (max - self.level) as u32);
        let b = other.code << (D as u32 * (max - other.level) as u32);
        a.cmp(&b).then(self.level.cmp(&other.level))
    }

    /// Neighbor of the same level displaced by `dir[a] ∈ {-1, 0, +1}` cells
    /// along each axis. Returns `None` when the displacement leaves the
    /// unit domain (non-periodic boundaries, as in Gerris' closed box).
    pub fn neighbor(&self, dir: [i8; D]) -> Option<Self> {
        let mut c = self.coords();
        let side = 1u64 << self.level;
        for a in 0..D {
            match dir[a] {
                0 => {}
                1 => {
                    if c[a] + 1 >= side {
                        return None;
                    }
                    c[a] += 1;
                }
                -1 => {
                    if c[a] == 0 {
                        return None;
                    }
                    c[a] -= 1;
                }
                d => panic!("direction component {d} out of range"),
            }
        }
        Some(Key::from_coords(c, self.level))
    }

    /// Face neighbor along `axis` in direction `dir` (+1 or -1).
    #[inline]
    pub fn face_neighbor(&self, axis: usize, dir: i8) -> Option<Self> {
        let mut d = [0i8; D];
        d[axis] = dir;
        self.neighbor(d)
    }

    /// All existing same-level neighbors (faces, edges, corners):
    /// up to `3^D - 1` keys.
    pub fn all_neighbors(&self) -> Vec<Self> {
        let mut out = Vec::with_capacity(3usize.pow(D as u32) - 1);
        let combos = 3usize.pow(D as u32);
        for m in 0..combos {
            let mut dir = [0i8; D];
            let mut mm = m;
            let mut zero = true;
            for slot in dir.iter_mut() {
                *slot = (mm % 3) as i8 - 1;
                zero &= *slot == 0;
                mm /= 3;
            }
            if zero {
                continue;
            }
            if let Some(n) = self.neighbor(dir) {
                out.push(n);
            }
        }
        out
    }

    /// Face neighbors only (up to `2 * D`).
    pub fn face_neighbors(&self) -> Vec<Self> {
        let mut out = Vec::with_capacity(2 * D);
        for axis in 0..D {
            for dir in [-1i8, 1] {
                if let Some(n) = self.face_neighbor(axis, dir) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// The chain of keys from the root down to (and including) `self`.
    pub fn path_from_root(&self) -> Vec<Self> {
        let mut out = Vec::with_capacity(self.level as usize + 1);
        for l in 0..=self.level {
            out.push(self.ancestor_at(l));
        }
        out
    }
}

impl<const D: usize> PartialOrd for Key<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const D: usize> Ord for Key<D> {
    /// Total order = Z-order (pre-order traversal position).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.zcmp(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let r = OctKey::root();
        assert_eq!(r.level(), 0);
        assert_eq!(r.parent(), None);
        assert_eq!(r.sibling_index(), 0);
        assert_eq!(r.extent(), 1.0);
        assert_eq!(r.center(), [0.5, 0.5, 0.5]);
    }

    #[test]
    fn child_parent_roundtrip() {
        let r = OctKey::root();
        for i in 0..8 {
            let c = r.child(i);
            assert_eq!(c.level(), 1);
            assert_eq!(c.sibling_index(), i);
            assert_eq!(c.parent(), Some(r));
        }
    }

    #[test]
    fn deep_path() {
        let mut k = OctKey::root();
        let idxs = [3usize, 5, 0, 7, 2];
        for &i in &idxs {
            k = k.child(i);
        }
        assert_eq!(k.level(), 5);
        let path = k.path_from_root();
        assert_eq!(path.len(), 6);
        assert_eq!(path[0], OctKey::root());
        assert_eq!(path[5], k);
        for w in path.windows(2) {
            assert_eq!(w[1].parent(), Some(w[0]));
        }
    }

    #[test]
    fn coords_roundtrip() {
        let k = OctKey::from_coords([5, 9, 14], 4);
        assert_eq!(k.coords(), [5, 9, 14]);
        assert_eq!(k.level(), 4);
    }

    #[test]
    fn child_moves_coords() {
        let k = OctKey::from_coords([1, 2, 3], 3);
        // child index 0b101 = +x, +z halves
        let c = k.child(0b101);
        assert_eq!(c.coords(), [2 + 1, 2 * 2, 2 * 3 + 1]);
    }

    #[test]
    fn contains_works() {
        let r = OctKey::root();
        let k = r.child(3).child(2);
        assert!(r.contains(&k));
        assert!(r.child(3).contains(&k));
        assert!(!r.child(2).contains(&k));
        assert!(k.contains(&k));
        assert!(!k.contains(&r));
    }

    #[test]
    fn face_neighbor_basic() {
        let k = OctKey::from_coords([3, 3, 3], 3);
        assert_eq!(k.face_neighbor(0, 1), Some(OctKey::from_coords([4, 3, 3], 3)));
        assert_eq!(k.face_neighbor(1, -1), Some(OctKey::from_coords([3, 2, 3], 3)));
    }

    #[test]
    fn boundary_has_no_neighbor() {
        let k = OctKey::from_coords([0, 0, 0], 2);
        assert_eq!(k.face_neighbor(0, -1), None);
        assert_eq!(k.face_neighbor(1, -1), None);
        let k = OctKey::from_coords([3, 3, 3], 2);
        assert_eq!(k.face_neighbor(2, 1), None);
    }

    #[test]
    fn all_neighbors_interior_count() {
        // Interior octant at level 2: full 26 neighbors in 3D.
        let k = OctKey::from_coords([1, 1, 1], 2);
        assert_eq!(k.all_neighbors().len(), 26);
        // Corner octant: only 7.
        let k = OctKey::from_coords([0, 0, 0], 2);
        assert_eq!(k.all_neighbors().len(), 7);
        // 2D interior: 8 neighbors.
        let q = QuadKey::from_coords([1, 1], 2);
        assert_eq!(q.all_neighbors().len(), 8);
    }

    #[test]
    fn zorder_ancestor_sorts_first() {
        let r = OctKey::root();
        let c0 = r.child(0);
        let c7 = r.child(7);
        assert!(r < c0);
        assert!(c0 < c7);
        assert!(c0.child(7) < c7);
        assert!(r < c7.child(0));
    }

    #[test]
    fn zorder_matches_spatial_order_at_same_level() {
        let a = QuadKey::from_coords([0, 0], 1);
        let b = QuadKey::from_coords([1, 0], 1);
        let c = QuadKey::from_coords([0, 1], 1);
        let d = QuadKey::from_coords([1, 1], 1);
        let mut v = vec![d, b, c, a];
        v.sort();
        assert_eq!(v, vec![a, b, c, d]);
    }

    #[test]
    fn descendant_range_brackets_children() {
        let k = OctKey::root().child(3);
        let lo = k.first_descendant(4);
        let hi = k.last_descendant(4);
        for c in k.children() {
            assert!(lo.zcmp(&c.first_descendant(4)).is_le());
            assert!(hi.zcmp(&c.last_descendant(4)).is_ge());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_coords_rejects_out_of_range() {
        let _ = OctKey::from_coords([4, 0, 0], 2);
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn from_raw_rejects_deep_level() {
        let _ = OctKey::from_raw(0, 22);
    }

    #[test]
    fn debug_formats_max_level_keys() {
        // Regression: formatting a MAX_LEVEL key must not overflow the
        // digit shift in debug builds. Descend along child 7 / child 3 so
        // every digit is non-zero and the count is checkable.
        let mut k = OctKey::root();
        for _ in 0..OctKey::MAX_LEVEL {
            k = k.child(7);
        }
        let s = format!("{k:?}");
        assert!(s.starts_with("Key<3>(L21 "), "{s}");
        assert_eq!(s.matches('7').count(), OctKey::MAX_LEVEL as usize, "{s}");

        let mut q = QuadKey::root();
        for _ in 0..QuadKey::MAX_LEVEL {
            q = q.child(3);
        }
        let s = format!("{q:?}");
        assert!(s.starts_with("Key<2>(L31 "), "{s}");
        assert_eq!(s.matches('3').count(), 1 + QuadKey::MAX_LEVEL as usize, "{s}");

        // First/last descendants of the root at MAX_LEVEL are the extreme
        // representable codes; both must format without panicking.
        let lo = OctKey::root().first_descendant(OctKey::MAX_LEVEL);
        let hi = OctKey::root().last_descendant(OctKey::MAX_LEVEL);
        assert!(format!("{lo:?}").contains("L21"));
        assert!(format!("{hi:?}").contains("L21"));
    }
}
