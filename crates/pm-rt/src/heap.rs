//! Downward-growing persistent heap for runtime objects.
//!
//! The octree bump-allocates **upward** from the device header; the
//! runtime carves object blobs **downward** from the top of the same
//! arena, so the two share one device, one crash image, and one replica
//! ship without interleaving. Like [`pmoctree_nvbm::PmemAllocator`], the
//! free lists are volatile: after a crash they are rebuilt from the live
//! blobs named by the committed object table — no allocator logging.
//!
//! Every block is a whole number of cachelines and cacheline-aligned, so
//! the number of lines an object touches is independent of *where* it
//! lands. That makes restart timing reproducible even when a resumed
//! run's allocation offsets differ from the original run's.

use std::collections::BTreeMap;

use pmoctree_nvbm::model::CACHELINE;
use pmoctree_nvbm::POffset;

use crate::rt::RtError;

/// Round a size up to a whole number of cachelines.
#[inline]
pub fn class_of(size: usize) -> usize {
    size.max(1).div_ceil(CACHELINE) * CACHELINE
}

/// Volatile free-list allocator growing downward from the arena top.
#[derive(Debug, Clone)]
pub struct RtHeap {
    /// Lowest byte ever handed out (exclusive floor of free space above).
    floor: u64,
    /// Lower limit the heap must not cross (the octree's territory).
    limit: u64,
    /// size-class → free block offsets (LIFO).
    free: BTreeMap<usize, Vec<u64>>,
}

impl RtHeap {
    /// Fresh heap over `[limit, top)`; `top` is rounded down to a
    /// cacheline boundary.
    pub fn new(limit: u64, top: u64) -> Self {
        RtHeap { floor: top & !(CACHELINE as u64 - 1), limit, free: BTreeMap::new() }
    }

    /// Current floor: everything in `[floor, top)` is heap-owned.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Refresh the lower limit (the octree's live bump pointer). The
    /// runtime calls this before every allocation: the octree grows its
    /// territory between runtime calls, and a limit snapshotted at
    /// create/restore time would let the two allocators overlap.
    pub fn set_limit(&mut self, limit: u64) {
        self.limit = limit;
    }

    /// Allocate `size` bytes (rounded to cachelines, cacheline-aligned).
    pub fn alloc(&mut self, size: usize) -> Result<POffset, RtError> {
        let cls = class_of(size);
        if let Some(list) = self.free.get_mut(&cls) {
            if let Some(off) = list.pop() {
                return Ok(POffset(off));
            }
        }
        let newfloor = self
            .floor
            .checked_sub(cls as u64)
            .ok_or_else(|| RtError::Full(format!("rt heap exhausted allocating {cls} bytes")))?;
        if newfloor < self.limit {
            return Err(RtError::Full(format!(
                "rt heap floor {newfloor:#x} would cross the octree bump pointer {:#x}",
                self.limit
            )));
        }
        self.floor = newfloor;
        Ok(POffset(newfloor))
    }

    /// Return a block to its size-class free list.
    pub fn free(&mut self, p: POffset, size: usize) {
        self.free.entry(class_of(size)).or_default().push(p.0);
    }

    /// Rebuild after a crash: `live` blocks (from the committed object
    /// table) stay allocated; every gap between them in `[floor, top)`
    /// becomes one free block of the gap's size. `floor` is clamped under
    /// the lowest live block, so a stale persisted floor can never turn a
    /// live blob into free space.
    pub fn rebuild(
        limit: u64,
        top: u64,
        floor_hint: u64,
        live: impl IntoIterator<Item = (POffset, usize)>,
    ) -> Result<Self, RtError> {
        let top = top & !(CACHELINE as u64 - 1);
        let mut blocks: Vec<(u64, usize)> =
            live.into_iter().map(|(p, s)| (p.0, class_of(s))).collect();
        blocks.sort_unstable();
        let mut h = RtHeap::new(limit, top);
        h.floor = top.min(if floor_hint == 0 { top } else { floor_hint });
        if let Some(&(lowest, _)) = blocks.first() {
            h.floor = h.floor.min(lowest);
        }
        if h.floor < limit {
            return Err(RtError::Corrupt(format!(
                "rt heap floor {:#x} below limit {limit:#x}",
                h.floor
            )));
        }
        let mut cursor = h.floor;
        for &(off, cls) in &blocks {
            if off < cursor {
                return Err(RtError::Corrupt(format!("overlapping rt blocks at {off:#x}")));
            }
            if off > cursor {
                h.free(POffset(cursor), (off - cursor) as usize);
            }
            cursor = off + cls as u64;
        }
        if cursor > top {
            return Err(RtError::Corrupt(format!(
                "rt block ends at {cursor:#x} past top {top:#x}"
            )));
        }
        if cursor < top {
            h.free(POffset(cursor), (top - cursor) as usize);
        }
        Ok(h)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn grows_downward_aligned() {
        let mut h = RtHeap::new(256, 4096);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(1).unwrap();
        assert_eq!(a.0, 4096 - 128);
        assert_eq!(b.0, 4096 - 128 - 64);
        assert_eq!(a.0 % CACHELINE as u64, 0);
        assert_eq!(h.floor(), b.0);
    }

    #[test]
    fn free_then_alloc_reuses() {
        let mut h = RtHeap::new(256, 4096);
        let a = h.alloc(128).unwrap();
        h.free(a, 128);
        assert_eq!(h.alloc(128).unwrap(), a);
    }

    #[test]
    fn refuses_to_cross_limit() {
        let mut h = RtHeap::new(4096 - 64, 4096);
        assert!(h.alloc(64).is_ok());
        assert!(matches!(h.alloc(64), Err(RtError::Full(_))));
    }

    #[test]
    fn rebuild_frees_gaps_and_clamps_floor() {
        // Live blocks at top-128 (len 64) and top-320 (len 128): the gap
        // between them and the space under the floor hint become free.
        let top = 4096u64;
        let live = vec![(POffset(top - 128), 64), (POffset(top - 320), 128)];
        let mut h = RtHeap::rebuild(256, top, top - 320, live).unwrap();
        assert_eq!(h.floor(), top - 320);
        // Two 64-byte free blocks: the gap [top-192, top-128) and the
        // cacheline above the highest live blob, [top-64, top).
        assert_eq!(h.alloc(64).unwrap().0, top - 64);
        assert_eq!(h.alloc(64).unwrap().0, top - 192);
        // Exhausted the rebuilt free list: next 64 comes off the floor.
        assert_eq!(h.alloc(64).unwrap().0, top - 320 - 64);
        // Stale (too high) floor hint: clamped under the lowest live blob.
        let h2 = RtHeap::rebuild(256, top, top, vec![(POffset(top - 256), 64)]).unwrap();
        assert_eq!(h2.floor(), top - 256);
    }

    #[test]
    fn rebuild_rejects_overlap() {
        let live = vec![(POffset(1000 & !63), 64), (POffset(1000 & !63), 64)];
        assert!(RtHeap::rebuild(256, 4096, 0, live).is_err());
    }
}
