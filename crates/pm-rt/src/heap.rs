//! Circular-log heap for runtime objects (the rt region's ring).
//!
//! The octree bump-allocates **upward** from the device header; the
//! runtime appends log records **downward-growing ring** carved from the
//! top of the same arena. Unlike the old size-class free-list heap,
//! allocation is strictly log-structured: every record is appended at
//! the ring head, the tail chases the oldest still-live record, and
//! space is reclaimed by the tail sweeping over records that died
//! (superseded blobs, retired commit-chain records) — plus compaction,
//! which relocates live tail records to the head so the tail can keep
//! moving. Sequential appends are the point: writes spread over the
//! whole ring instead of hammering a hot free-list block, which is what
//! flattens the wear histogram (Circ-Tree's argument).
//!
//! All bookkeeping here is **volatile**. Recovery never trusts it: the
//! committed table is rebuilt by chain-walking checksummed commit
//! records from the durable root pointer, and [`LogHeap::rebuild`]
//! re-seats the ring around exactly the records that walk names.
//!
//! Geometry: the ring occupies `[base, top)`. `top` is fixed (the
//! bottom of the flight-recorder region); `base` is the published rt
//! floor and only grows downward — in [`GROW_CHUNK`] steps, never past
//! the octree's live bump pointer (`limit`). The common shapes are the
//! classic two:
//!
//! ```text
//!  not wrapped:  base ... tail ███ head ──free──▶ top
//!  wrapped:      base ███ head ──free──▶ tail ███ top
//! ```
//!
//! but allocation is *next-fit*, not strict head-chasing: a record an
//! MVCC snapshot pins stays live (and byte-stable) indefinitely, and a
//! pure two-shape ring would wedge the moment the head came back around
//! to a pinned tail. Instead the allocator probes forward from the head,
//! jumping over live islands, wraps to the base when the top is
//! exhausted, and only then grows the window downward (geometrically, so
//! a working set that outgrows the window settles in O(log n) laps).
//! With nothing pinned every record dies in ring order and next-fit
//! degenerates to exactly the two shapes above.

use std::collections::{BTreeMap, HashMap, VecDeque};

use pmoctree_nvbm::model::CACHELINE;
use pmoctree_nvbm::POffset;

use crate::log::REC_HEADER;
use crate::rt::RtError;

/// Step by which the ring grows downward when the current window is too
/// small. Small on purpose: growth is the fallback, tail recycling the
/// steady state.
pub const GROW_CHUNK: u64 = 1024;

#[derive(Debug, Clone, Copy)]
struct RecMeta {
    size: u64,
    live: bool,
}

/// Volatile bookkeeping for the circular record log in `[base, top)`.
#[derive(Debug, Clone)]
pub struct LogHeap {
    /// Ring bottom — the published rt floor. Grows downward only.
    base: u64,
    /// Ring top (fixed; cacheline-aligned).
    top: u64,
    /// Lower bound the ring must never cross (octree live bump).
    limit: u64,
    /// Next append offset.
    head: u64,
    /// Next record sequence number.
    seq: u64,
    /// Record offsets in append (ring) order, oldest first.
    order: VecDeque<u64>,
    /// Per-record footprint and liveness.
    meta: HashMap<u64, RecMeta>,
    /// Live records by offset — the spatial index the next-fit probe
    /// walks to jump over pinned islands.
    live_index: BTreeMap<u64, u64>,
    /// Sum of live record footprints.
    live_bytes: u64,
    /// Wrap gap the caller still has to stamp with a pad header.
    pending_pad: Option<(u64, u64)>,
    /// Number of head wraps (telemetry).
    laps: u64,
}

impl LogHeap {
    /// Fresh empty ring under `top` (rounded down to a cacheline). The
    /// ring starts zero-sized and grows downward on first use.
    pub fn new(limit: u64, top: u64) -> Self {
        let top = top & !(CACHELINE as u64 - 1);
        LogHeap {
            base: top,
            top,
            limit,
            head: top,
            seq: 0,
            order: VecDeque::new(),
            meta: HashMap::new(),
            live_index: BTreeMap::new(),
            live_bytes: 0,
            pending_pad: None,
            laps: 0,
        }
    }

    /// Ring bottom: everything in `[floor, top)` is heap territory.
    pub fn floor(&self) -> u64 {
        self.base
    }

    /// Fixed ring top.
    pub fn top(&self) -> u64 {
        self.top
    }

    /// Refresh the lower limit (the octree's live bump pointer). Called
    /// before every allocation — the octree grows between runtime calls.
    pub fn set_limit(&mut self, limit: u64) {
        self.limit = limit;
    }

    /// Sum of live record footprints.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Current ring window size.
    pub fn window(&self) -> u64 {
        self.top - self.base
    }

    /// Live bytes over window size — the compaction watermark input.
    pub fn occupancy(&self) -> f64 {
        let w = self.window();
        if w == 0 {
            0.0
        } else {
            self.live_bytes as f64 / w as f64
        }
    }

    /// Number of head wraps so far.
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Next record sequence number (consumes it).
    pub fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Is the log in the wrapped shape (newest records below the
    /// oldest)? Diagnostic only: the next-fit allocator walks over live
    /// islands and can still grow the base, so a wrapped log allocates
    /// exactly like an unwrapped one — this is the steady state once the
    /// head first laps the window.
    pub fn is_wrapped(&self) -> bool {
        self.order.front().is_some_and(|&tail| tail >= self.head)
    }

    /// Is `off` a live record?
    pub fn is_live(&self, off: u64) -> bool {
        self.meta.get(&off).is_some_and(|m| m.live)
    }

    /// Footprint of the record at `off`, if tracked.
    pub fn size_of(&self, off: u64) -> Option<u64> {
        self.meta.get(&off).map(|m| m.size)
    }

    /// Live record offsets in ring order, oldest first.
    pub fn ring_live(&self) -> impl Iterator<Item = u64> + '_ {
        self.order.iter().copied().filter(|o| self.is_live(*o))
    }

    /// The wrap gap produced by the last [`LogHeap::alloc`], if any:
    /// `(offset, skip)` for a pad header the caller must write so a
    /// forward scan can jump the gap. Draining is the caller's job.
    pub fn take_pending_pad(&mut self) -> Option<(u64, u64)> {
        self.pending_pad.take()
    }

    /// Append a record of `size` bytes (8-byte aligned, from
    /// [`crate::log::record_size`]): next-fit from the head (jumping
    /// over live islands such as snapshot-pinned records), wrapping to
    /// the base, growing the window downward, or failing with
    /// [`RtError::Full`] when the octree bump leaves no room.
    pub fn alloc(&mut self, size: usize) -> Result<POffset, RtError> {
        debug_assert_eq!(size % 8, 0, "record sizes are 8-byte aligned");
        let need = size as u64;
        self.advance_tail();
        let off = if let Some(at) = self.probe(self.head, need) {
            at
        } else {
            // The head abandons its hole: stamp a pad header over the
            // free bytes so a forward scan can jump the seam. The pad
            // must stop at the next live island, not the top — under
            // next-fit the span `[head, top)` can contain live records,
            // and the head can sit flush against one (a probe places
            // records ending exactly where an island begins), so a
            // top-sized pad would clobber a live record header.
            let hole_end =
                self.live_index.range(self.head..).next().map_or(self.top, |(&off, _)| off);
            let gap = hole_end - self.head;
            if gap >= REC_HEADER as u64 {
                self.pending_pad = Some((self.head, gap - REC_HEADER as u64));
            }
            if let Some(at) = self.probe(self.base, need) {
                self.laps += 1;
                at
            } else {
                // No gap anywhere in the window: grow it downward —
                // geometrically when the octree permits, minimally if
                // that is too greedy — and place at the new base.
                let want = need.max(GROW_CHUNK).max(self.window() / 2);
                if self.grow_base(want).is_err() {
                    self.grow_base(need)?;
                }
                self.base
            }
        };
        self.head = off + need;
        self.order.push_back(off);
        self.meta.insert(off, RecMeta { size: need, live: true });
        self.live_index.insert(off, need);
        self.live_bytes += need;
        Ok(POffset(off))
    }

    /// Lowest offset `at >= from` where `need` bytes fit strictly below
    /// the next live record (and under the top). Live records never
    /// overlap and never start below `base`, so walking the spatial
    /// index from `at` upward visits every island in the way.
    fn probe(&self, from: u64, need: u64) -> Option<u64> {
        let mut at = from.max(self.base);
        loop {
            let end = at.checked_add(need)?;
            if end > self.top {
                return None;
            }
            match self.live_index.range(at..).next() {
                Some((&off, &sz)) if off < end => at = off + sz,
                _ => return Some(at),
            }
        }
    }

    /// Extend the window downward so `[new_base, old_base)` holds `need`
    /// bytes (cacheline-aligned), refusing to cross the octree bump.
    fn grow_base(&mut self, need: u64) -> Result<(), RtError> {
        let line = CACHELINE as u64 - 1;
        let new_base = self.base.saturating_sub(need) & !line;
        if new_base >= self.limit && self.base - new_base >= need {
            self.base = new_base;
            return Ok(());
        }
        Err(RtError::Full(format!(
            "rt log base {:#x} would cross the octree bump pointer {:#x} growing {need} bytes",
            self.base, self.limit
        )))
    }

    /// Mark the record at `off` dead; its space is free for the next
    /// probe that reaches it.
    pub fn mark_dead(&mut self, off: u64) {
        if let Some(m) = self.meta.get_mut(&off) {
            if m.live {
                m.live = false;
                self.live_bytes -= m.size;
                self.live_index.remove(&off);
            }
        }
        self.advance_tail();
    }

    /// Pop dead records off the ring tail.
    fn advance_tail(&mut self) {
        while let Some(&front) = self.order.front() {
            match self.meta.get(&front) {
                Some(m) if !m.live => {
                    self.order.pop_front();
                    self.meta.remove(&front);
                }
                _ => break,
            }
        }
        if self.order.is_empty() {
            self.head = self.base;
        }
    }

    /// Rebuild after a crash: `live` is the set of `(offset, footprint)`
    /// records the recovered commit chain names (blob records of live
    /// entries plus the chain records themselves). The ring is re-seated
    /// not-wrapped around them: base under the lowest record (clamped by
    /// the persisted floor hint), head after the highest. Gaps between
    /// live records are reclaimed as the tail sweeps past them.
    pub fn rebuild(
        limit: u64,
        top: u64,
        floor_hint: u64,
        live: impl IntoIterator<Item = (POffset, u64)>,
    ) -> Result<Self, RtError> {
        let mut h = LogHeap::new(limit, top);
        let mut recs: Vec<(u64, u64)> = live.into_iter().map(|(p, s)| (p.0, s)).collect();
        recs.sort_unstable();
        let mut base = h.top.min(if floor_hint == 0 { h.top } else { floor_hint });
        if let Some(&(lowest, _)) = recs.first() {
            base = base.min(lowest);
        }
        let base = base & !(CACHELINE as u64 - 1);
        if base < limit {
            return Err(RtError::Corrupt(format!("rt log base {base:#x} below limit {limit:#x}")));
        }
        let mut cursor = base;
        for &(off, size) in &recs {
            if off < cursor {
                return Err(RtError::Corrupt(format!("overlapping rt log records at {off:#x}")));
            }
            let end = off
                .checked_add(size)
                .ok_or_else(|| RtError::Corrupt(format!("rt log record at {off:#x} overflows")))?;
            if end > h.top {
                return Err(RtError::Corrupt(format!(
                    "rt log record ends at {end:#x} past top {:#x}",
                    h.top
                )));
            }
            h.order.push_back(off);
            h.meta.insert(off, RecMeta { size, live: true });
            h.live_index.insert(off, size);
            h.live_bytes += size;
            cursor = end;
        }
        h.base = base;
        h.head = if cursor == base { base } else { cursor };
        Ok(h)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::log::record_size;

    #[test]
    fn appends_are_sequential_and_grow_on_demand() {
        let mut h = LogHeap::new(256, 4096);
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        // First alloc grows one chunk down from the top.
        assert_eq!(a.0, 4096 - GROW_CHUNK);
        assert_eq!(b.0, a.0 + 64);
        assert_eq!(h.floor(), 4096 - GROW_CHUNK);
        assert_eq!(h.live_bytes(), 128);
    }

    #[test]
    fn tail_death_lets_the_head_wrap() {
        let mut h = LogHeap::new(0, 4096);
        // Fill the initial 1024-byte window with 16 64-byte records.
        let offs: Vec<u64> = (0..16).map(|_| h.alloc(64).unwrap().0).collect();
        // Kill the four oldest: the tail sweeps, the head can wrap.
        for &o in &offs[..4] {
            h.mark_dead(o);
        }
        let wrapped = h.alloc(64).unwrap();
        assert_eq!(wrapped.0, h.floor(), "wrap lands at the ring base");
        assert_eq!(h.laps(), 1);
        // The wrapped gap holds three more records; with the gap
        // exhausted and every remaining record live, the next append
        // grows the window below the old base — never an overwrite.
        for _ in 0..3 {
            h.alloc(64).unwrap();
        }
        let old_floor = h.floor();
        let grown = h.alloc(64).unwrap();
        assert!(grown.0 < old_floor, "a full wrapped ring grows instead of overwriting");
        assert_eq!(h.floor(), grown.0);
    }

    #[test]
    fn full_window_grows_downward_when_all_live() {
        let mut h = LogHeap::new(0, 4096);
        let offs: Vec<u64> = (0..16).map(|_| h.alloc(64).unwrap().0).collect();
        let grown = h.alloc(64).unwrap();
        assert!(grown.0 < offs[0], "growth extends below the old base");
        assert_eq!(h.floor(), offs[0] - GROW_CHUNK);
    }

    #[test]
    fn wrap_gap_yields_a_pending_pad() {
        let mut h = LogHeap::new(0, 4096);
        // 240-byte records: 4 fit in the 1024 window with a 64-byte gap.
        let offs: Vec<u64> = (0..4).map(|_| h.alloc(240).unwrap().0).collect();
        for &o in &offs[..2] {
            h.mark_dead(o);
        }
        let w = h.alloc(240).unwrap();
        assert_eq!(w.0, h.floor());
        let (pad_off, skip) = h.take_pending_pad().unwrap();
        assert_eq!(pad_off, offs[3] + 240);
        assert_eq!(skip as usize, 64 - REC_HEADER);
        assert!(h.take_pending_pad().is_none(), "pad drains once");
    }

    #[test]
    fn pad_never_covers_a_live_island() {
        let mut h = LogHeap::new(0, 4096);
        let offs: Vec<u64> = (0..16).map(|_| h.alloc(64).unwrap().0).collect();
        // Free one mid-ring slot; the next alloc wraps into it and
        // leaves the head flush against the live record behind the hole.
        h.mark_dead(offs[2]);
        let w = h.alloc(64).unwrap();
        assert_eq!(w.0, offs[2]);
        assert!(h.take_pending_pad().is_none(), "zero-width top hole yields no pad");
        // The head now sits exactly at a live record. The next alloc
        // abandons the (zero-width) hole and wraps again; stamping a
        // top-sized pad here would overwrite the live header at the head.
        let grown = h.alloc(64).unwrap();
        assert!(h.take_pending_pad().is_none(), "no pad over the live island at the head");
        assert!(grown.0 < offs[0], "fully-live ring grows instead of overwriting");
        for &o in offs.iter().filter(|&&o| o != offs[2]) {
            assert!(h.is_live(o), "live records survive the wrap");
        }
    }

    #[test]
    fn wrapped_ring_reports_full_not_overwrite() {
        // Pin the window to exactly 1024 bytes by placing the octree
        // limit right under it: a wedged ring must report Full, never
        // overwrite a live record.
        let mut h = LogHeap::new(4096 - GROW_CHUNK, 4096);
        let offs: Vec<u64> = (0..16).map(|_| h.alloc(64).unwrap().0).collect();
        h.mark_dead(offs[0]); // one tail slot free
        let w = h.alloc(64).unwrap();
        assert_eq!(w.0, h.floor());
        // Gap now zero, every record live, growth blocked by the limit.
        let err = h.alloc(64).unwrap_err();
        assert!(matches!(err, RtError::Full(_)));
        assert!(format!("{err}").contains("cross the octree bump pointer"));
        for &o in &offs[1..] {
            assert!(h.is_live(o), "no live record may be overwritten");
        }
    }

    #[test]
    fn refuses_to_cross_limit() {
        let mut h = LogHeap::new(4096 - 64, 4096);
        assert!(h.alloc(64).is_ok());
        let err = h.alloc(64).unwrap_err();
        assert!(format!("{err}").contains("cross the octree bump pointer"));
    }

    #[test]
    fn rebuild_seats_ring_around_live_records() {
        let top = 4096u64;
        let live = vec![(POffset(top - 128), 64), (POffset(top - 320), 128)];
        let h = LogHeap::rebuild(256, top, top - 320, live).unwrap();
        assert_eq!(h.floor(), top - 320);
        assert_eq!(h.live_bytes(), 192);
        // Head sits after the highest record; the next append goes there
        // (nothing fits above, so it wraps or grows — here top-64 fits).
        let mut h = h;
        assert_eq!(h.alloc(64).unwrap().0, top - 64);
        // Ring order is ascending-offset after rebuild.
        let ring: Vec<u64> = h.ring_live().collect();
        assert_eq!(ring, vec![top - 320, top - 128, top - 64]);
    }

    #[test]
    fn rebuild_rejects_overlap_and_overflow() {
        let live = vec![(POffset(1024), 64), (POffset(1024), 64)];
        assert!(LogHeap::rebuild(256, 4096, 0, live).is_err());
        assert!(LogHeap::rebuild(256, 4096, 0, vec![(POffset(4096 - 32), 64)]).is_err());
        assert!(LogHeap::rebuild(4096, 4096, 64, vec![(POffset(64), 64)]).is_err());
    }

    #[test]
    fn record_size_is_the_footprint_currency() {
        // The ring allocates whole record footprints; make sure the
        // codec's sizing stays 8-byte aligned for any payload.
        for len in 0..128 {
            assert_eq!(record_size(len) % 8, 0);
            assert!(record_size(len) >= REC_HEADER + len + 4);
        }
    }
}
