//! Circular-log record codec for the log-structured rt heap.
//!
//! Every byte the runtime appends to the rt region is framed as a
//! **record**: a fixed 24-byte header, the payload, and an FNV-1a-32
//! trailer over header + payload (the same checksum discipline as
//! `nvbm::recorder`'s flight-recorder slots). Records are 8-byte
//! aligned so a torn 8-byte-atomic store can never split a field:
//!
//! ```text
//! off+0   u32  magic      (LOG_MAGIC, "RTLG")
//! off+4   u32  payload_len
//! off+8   u64  seq        (monotone append sequence, debugging aid)
//! off+16  u8   kind       (Blob | Commit | Pad)
//! off+17  [7]  zero pad
//! off+24  ...  payload
//! off+24+len   u32 fnv    (FNV-1a-32 over bytes [0, 24+len))
//! ...     pad to 8-byte boundary
//! ```
//!
//! `Pad` records are header-only (24 bytes on media): `payload_len`
//! holds the number of bytes a scanner must *skip* after the header, so
//! a wrap gap at the top of the ring costs one cacheline-sized header,
//! not a full dummy payload. A torn pad header fails the magic/kind
//! check and cleanly terminates the scan.
//!
//! Recovery of the *table* never scans forward — it chain-walks commit
//! records from the durable root pointer, each validated by checksum —
//! but [`scan`] gives the torn-tail-safe forward reader the property
//! tests (and debugging tools) use: scanning stops at the first record
//! whose header or checksum does not validate, so a crash mid-append
//! truncates to exactly the fully-written prefix.

/// Record magic: `"RTLG"` little-endian.
pub const LOG_MAGIC: u32 = 0x474c_5452;

/// Fixed record header size (bytes).
pub const REC_HEADER: usize = 24;

/// Checksum trailer size (bytes).
pub const REC_TRAILER: usize = 4;

/// Smallest non-pad record (empty payload, aligned).
pub const MIN_RECORD: usize = record_size(0);

/// What a record carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// An object blob (`OBJ_MAGIC` framing + payload), referenced by a
    /// table entry.
    Blob = 1,
    /// A commit record: epoch, previous-commit pointer, table delta.
    Commit = 2,
    /// A wrap gap: header-only, `payload_len` bytes of dead space follow.
    Pad = 3,
}

impl RecordKind {
    /// Decode a kind byte; `None` for anything unknown (torn / garbage).
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        match v {
            1 => Some(RecordKind::Blob),
            2 => Some(RecordKind::Commit),
            3 => Some(RecordKind::Pad),
            _ => None,
        }
    }
}

/// Total on-media size of a non-pad record with `payload_len` payload
/// bytes: header + payload + trailer, rounded up to 8-byte alignment.
pub const fn record_size(payload_len: usize) -> usize {
    (REC_HEADER + payload_len + REC_TRAILER + 7) & !7
}

/// FNV-1a-32 (same constants as the flight recorder).
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encode a full Blob/Commit record (header + payload + checksum +
/// alignment padding). The returned buffer is exactly
/// [`record_size`]`(payload.len())` bytes.
pub fn encode_record(seq: u64, kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    debug_assert!(kind != RecordKind::Pad, "pads are header-only; use encode_pad");
    let total = record_size(payload.len());
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&LOG_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&[0u8; 7]);
    out.extend_from_slice(payload);
    let fnv = fnv1a32(&out);
    out.extend_from_slice(&fnv.to_le_bytes());
    out.resize(total, 0);
    out
}

/// Encode a pad header covering `skip` bytes of dead space after it
/// (total gap consumed = `REC_HEADER + skip`). Header-only on media.
pub fn encode_pad(seq: u64, skip: usize) -> [u8; REC_HEADER] {
    let mut out = [0u8; REC_HEADER];
    out[0..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
    out[4..8].copy_from_slice(&(skip as u32).to_le_bytes());
    out[8..16].copy_from_slice(&seq.to_le_bytes());
    out[16] = RecordKind::Pad as u8;
    out
}

/// A record decoded from a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Offset of the record header within the scanned buffer.
    pub off: usize,
    /// Append sequence number.
    pub seq: u64,
    /// Record kind (never `Pad`; pads are skipped by [`scan`]).
    pub kind: RecordKind,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Total on-media footprint including header/trailer/padding.
    pub size: usize,
}

/// Decode the record starting at `off`, validating magic, kind, bounds
/// and checksum. Returns `None` for anything that does not validate —
/// including a torn tail. For `Pad` records the payload is empty and
/// `size` covers the skipped gap.
pub fn decode_at(buf: &[u8], off: usize) -> Option<Record> {
    if off + REC_HEADER > buf.len() {
        return None;
    }
    let h = &buf[off..off + REC_HEADER];
    let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
    if magic != LOG_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes([h[4], h[5], h[6], h[7]]) as usize;
    let seq = u64::from_le_bytes([h[8], h[9], h[10], h[11], h[12], h[13], h[14], h[15]]);
    let kind = RecordKind::from_u8(h[16])?;
    if kind == RecordKind::Pad {
        let size = REC_HEADER.checked_add(len)?;
        if off.checked_add(size)? > buf.len() {
            return None;
        }
        return Some(Record { off, seq, kind, payload: Vec::new(), size });
    }
    let size = record_size(len);
    let end = off.checked_add(size)?;
    if end > buf.len() {
        return None;
    }
    let body = &buf[off..off + REC_HEADER + len];
    let want = fnv1a32(body);
    let at = off + REC_HEADER + len;
    let got = u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
    if want != got {
        return None;
    }
    Some(Record {
        off,
        seq,
        kind,
        payload: buf[off + REC_HEADER..off + REC_HEADER + len].to_vec(),
        size,
    })
}

/// Forward-scan `[start, end)` for records, skipping pads, stopping at
/// the first offset that does not validate (torn tail, garbage, or the
/// end of the window). Returns the fully-written records in order.
pub fn scan(buf: &[u8], start: usize, end: usize) -> Vec<Record> {
    let end = end.min(buf.len());
    let mut out = Vec::new();
    let mut off = start;
    while off + REC_HEADER <= end {
        match decode_at(buf, off) {
            Some(r) if r.off + r.size <= end => {
                let size = r.size;
                if r.kind != RecordKind::Pad {
                    out.push(r);
                }
                off += size;
            }
            _ => break,
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_and_alignment() {
        for len in [0usize, 1, 7, 8, 63, 64, 100, 513] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let rec = encode_record(42, RecordKind::Blob, &payload);
            assert_eq!(rec.len(), record_size(len));
            assert_eq!(rec.len() % 8, 0, "records must stay 8-byte aligned");
            let d = decode_at(&rec, 0).unwrap();
            assert_eq!(d.seq, 42);
            assert_eq!(d.kind, RecordKind::Blob);
            assert_eq!(d.payload, payload);
            assert_eq!(d.size, rec.len());
        }
    }

    #[test]
    fn corrupt_any_byte_fails_checksum() {
        let payload = b"log structured".to_vec();
        let rec = encode_record(7, RecordKind::Commit, &payload);
        // Flip each byte of header+payload+trailer in turn; every flip
        // must be detected (magic, kind, length, or checksum).
        for i in 0..REC_HEADER + payload.len() + REC_TRAILER {
            let mut bad = rec.clone();
            bad[i] ^= 0xFF;
            let d = decode_at(&bad, 0);
            // A corrupted length can still decode iff the checksum were
            // right — it never is, because the checksum covers the
            // length field.
            assert!(d.is_none(), "flip at {i} must not validate");
        }
    }

    /// Satellite: torn write at every tail byte → clean truncation.
    /// Mirrors `nvbm::recorder`'s torn-slot test shape: build a log of
    /// records, truncate at *every* byte position, and require that the
    /// scan recovers exactly the records fully written before the cut.
    #[test]
    fn torn_tail_at_every_byte_truncates_cleanly() {
        let mut buf = Vec::new();
        // Content end of each record (through the checksum trailer): a
        // cut inside the trailing alignment padding loses only zeros the
        // blank media already holds, so such a record still recovers.
        let mut ends = Vec::new();
        for i in 0..6u64 {
            let payload: Vec<u8> =
                (0..(i as usize * 13 + 5)).map(|j| (j + i as usize) as u8).collect();
            ends.push(buf.len() + REC_HEADER + payload.len() + REC_TRAILER);
            buf.extend_from_slice(&encode_record(i, RecordKind::Blob, &payload));
        }
        for cut in 0..=buf.len() {
            let mut torn = buf[..cut].to_vec();
            // Zero-fill the rest of the window, as unwritten media.
            torn.resize(buf.len(), 0);
            let got = scan(&torn, 0, torn.len());
            let want = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(got.len(), want, "cut at byte {cut}");
            for (i, r) in got.iter().enumerate() {
                assert_eq!(r.seq, i as u64, "recovered prefix must be in order");
            }
        }
    }

    /// Satellite: wraparound at arbitrary capacities. Emulate a ring of
    /// every capacity in a range: append records until the head would
    /// pass the top, place a pad over the wrap gap, continue from the
    /// base, and require the scanner to walk the whole lap.
    #[test]
    fn wraparound_at_arbitrary_capacities() {
        for cap in (96..512).step_by(8) {
            let mut buf = vec![0u8; cap];
            let mut head = 0usize;
            let mut appended = Vec::new();
            let mut seq = 0u64;
            // Fill one lap: append until the next record no longer fits
            // before the top, then pad out the wrap gap.
            loop {
                let payload: Vec<u8> = (0..(seq as usize % 40)).map(|j| j as u8).collect();
                let rec = encode_record(seq, RecordKind::Blob, &payload);
                if head + rec.len() > cap {
                    let gap = cap - head;
                    if gap >= REC_HEADER {
                        let pad = encode_pad(seq, gap - REC_HEADER);
                        buf[head..head + REC_HEADER].copy_from_slice(&pad);
                    }
                    break;
                }
                buf[head..head + rec.len()].copy_from_slice(&rec);
                appended.push((head, seq, payload));
                head += rec.len();
                seq += 1;
            }
            let got = scan(&buf, 0, cap);
            assert_eq!(got.len(), appended.len(), "cap {cap}");
            for (r, (off, s, payload)) in got.iter().zip(&appended) {
                assert_eq!(r.off, *off);
                assert_eq!(r.seq, *s);
                assert_eq!(&r.payload, payload);
            }
        }
    }

    #[test]
    fn pad_header_skips_gap_and_scan_continues() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_record(0, RecordKind::Blob, b"a"));
        let pad_off = buf.len();
        buf.extend_from_slice(&encode_pad(1, 40));
        buf.resize(pad_off + REC_HEADER + 40, 0xEE); // dead gap bytes
        buf.extend_from_slice(&encode_record(2, RecordKind::Commit, b"bb"));
        let got = scan(&buf, 0, buf.len());
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind, RecordKind::Blob);
        assert_eq!(got[1].kind, RecordKind::Commit);
        assert_eq!(got[1].off, pad_off + REC_HEADER + 40);
    }

    #[test]
    fn torn_pad_header_ends_scan() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_record(0, RecordKind::Blob, b"x"));
        let mut pad = encode_pad(1, 64).to_vec();
        pad[16] = 0; // kind word never reached the media
        buf.extend_from_slice(&pad);
        buf.resize(buf.len() + 64, 0);
        let got = scan(&buf, 0, buf.len());
        assert_eq!(got.len(), 1);
    }
}
