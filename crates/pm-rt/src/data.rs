//! Byte codec for persistent objects.
//!
//! The runtime persists anything implementing [`PmData`] — an explicit
//! little-endian byte codec rather than a serde derive, because decode
//! runs against post-crash media: every read must be bounds-checked and
//! return `Err`, never panic. [`ByteWriter`] / [`ByteReader`] make
//! hand-written impls three lines per field.

use crate::rt::RtError;

/// A value the runtime can persist: encodes to / decodes from a
/// self-contained byte string. Decoding must tolerate arbitrary
/// (truncated, corrupted) input by returning `Err`.
pub trait PmData {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode a value from exactly the bytes `encode` produced.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError>
    where
        Self: Sized;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decode from a whole buffer, requiring that every byte
    /// is consumed (trailing garbage is corruption, not padding).
    fn from_bytes(bytes: &[u8]) -> Result<Self, RtError>
    where
        Self: Sized,
    {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(RtError::Corrupt(format!("{} trailing bytes after decode", r.remaining())));
        }
        Ok(v)
    }
}

/// Appends little-endian fields to a byte buffer.
pub struct ByteWriter<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> ByteWriter<'a> {
    /// Write into `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        ByteWriter { out }
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64`.
    pub fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.out.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian reader over a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RtError> {
        if self.remaining() < n {
            return Err(RtError::Corrupt(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, RtError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, RtError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().map_err(|_| RtError::Corrupt("u32".into()))?))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, RtError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().map_err(|_| RtError::Corrupt("u64".into()))?))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, RtError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().map_err(|_| RtError::Corrupt("f64".into()))?))
    }

    /// Read a length-prefixed byte string (length capped by the buffer
    /// itself, so a corrupt huge length cannot allocate unbounded memory).
    pub fn bytes(&mut self) -> Result<&'a [u8], RtError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(RtError::Corrupt(format!(
                "byte-string length {n} exceeds {} remaining",
                self.remaining()
            )));
        }
        self.take(n as usize)
    }
}

impl PmData for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        ByteWriter::new(out).u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        r.u64()
    }
}

impl PmData for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        ByteWriter::new(out).u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        r.u32()
    }
}

impl PmData for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        ByteWriter::new(out).f64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        r.f64()
    }
}

impl PmData for String {
    fn encode(&self, out: &mut Vec<u8>) {
        ByteWriter::new(out).bytes(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        let b = r.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| RtError::Corrupt(format!("utf8: {e}")))
    }
}

impl PmData for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        ByteWriter::new(out).bytes(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        Ok(r.bytes()?.to_vec())
    }
}

impl<T: PmData> PmData for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        ByteWriter::new(out).u64(self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        let n = r.u64()?;
        // Each element consumes ≥1 byte, so `n` can never legitimately
        // exceed the remaining input; reject before reserving memory.
        if n > r.remaining() as u64 {
            return Err(RtError::Corrupt(format!("vec length {n} exceeds remaining input")));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut out = Vec::new();
        7u64.encode(&mut out);
        1.5f64.encode(&mut out);
        "droplet".to_string().encode(&mut out);
        vec![1u32, 2, 3].encode(&mut out);
        let mut r = ByteReader::new(&out);
        assert_eq!(u64::decode(&mut r).unwrap(), 7);
        assert_eq!(f64::decode(&mut r).unwrap(), 1.5);
        assert_eq!(String::decode(&mut r).unwrap(), "droplet");
        assert_eq!(Vec::<u32>::decode(&mut r).unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_err_not_panic() {
        let full = vec![1u64, 2, 3].to_bytes();
        for cut in 0..full.len() {
            assert!(Vec::<u64>::from_bytes(&full[..cut]).is_err());
        }
    }

    #[test]
    fn huge_length_rejected_without_alloc() {
        let mut bad = Vec::new();
        ByteWriter::new(&mut bad).u64(u64::MAX);
        assert!(Vec::<u64>::from_bytes(&bad).is_err());
        assert!(String::from_bytes(&bad).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = 9u64.to_bytes();
        b.push(0);
        assert!(u64::from_bytes(&b).is_err());
    }
}
