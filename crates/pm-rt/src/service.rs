//! The multi-tenant versioned state service: a batched front-end over
//! [`PmRt`] where each tenant is an isolated namespace of named roots
//! with its own quota and commit lineage.
//!
//! Clients enqueue [`ServiceCmd`]s; [`StateService::flush_batch`]
//! applies them in submission order and publishes **one root-table swap
//! for the whole batch** — the `left-curve/grug` shape, where a block of
//! writes commits generationally. Because durability is a single atomic
//! 8-byte store, a crash anywhere in a batch is all-or-nothing for
//! *every* tenant: either the whole batch's table is reachable or none
//! of it is (the `svc::commit_batch` failpoint puts this under the
//! crash-point sweep).
//!
//! Per-tenant byte **quotas** are enforced against the live allocator
//! edges: a `Put` is charged the class-rounded heap footprint its blob
//! will occupy (Circ-Tree's bytes-written currency), projected against
//! the tenant's staged usage, and rejected with
//! [`PmError::QuotaExceeded`] *before* touching media — a tenant hitting
//! its quota can never corrupt (or even slow) a neighbour.
//!
//! Exclusive access is a **lease**: [`StateService::checkout`] makes the
//! service reject queued commands for that tenant with
//! [`PmError::TenantBusy`] until [`StateService::release`], while the
//! holder works through a typed [`TenantHandle`].

use std::collections::{BTreeMap, BTreeSet};

use pm_octree::PmError;
use pmoctree_nvbm::{NvbmArena, RecKind};

use crate::data::{ByteReader, PmData};
use crate::log::record_size;
use crate::mvcc::Snapshot;
use crate::rt::{PmRt, RtError, OBJ_HEADER};
use crate::tenant::{validate_component, TenantHandle};

/// The unqualified registry root. Tenant data always lives under
/// `{tenant}/…` and tenant names cannot contain `/`, so this name is
/// collision-free by construction.
const REG_ROOT: &str = "svc::tenants";

/// Service configuration. Build with [`ServiceConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Maximum number of registered tenants.
    pub max_tenants: usize,
    /// Byte quota assigned to tenants created without an explicit one.
    pub default_quota: u64,
    /// Queue length at which [`StateService::submit`] flushes on its own.
    pub batch_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { max_tenants: 1024, default_quota: 1 << 20, batch_capacity: 256 }
    }
}

impl ServiceConfig {
    /// A validating builder (mirrors `PmConfig::builder`).
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder { cfg: ServiceConfig::default() }
    }
}

/// Builder for [`ServiceConfig`]; `build` rejects invalid fields with
/// [`PmError::Recovery`] instead of letting a nonsensical service run.
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Maximum number of registered tenants (≥ 1).
    pub fn max_tenants(mut self, n: usize) -> Self {
        self.cfg.max_tenants = n;
        self
    }

    /// Default per-tenant byte quota (> 0).
    pub fn default_quota(mut self, bytes: u64) -> Self {
        self.cfg.default_quota = bytes;
        self
    }

    /// Auto-flush threshold for the command queue (≥ 1).
    pub fn batch_capacity(mut self, n: usize) -> Self {
        self.cfg.batch_capacity = n;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServiceConfig, PmError> {
        let c = &self.cfg;
        if c.max_tenants == 0 {
            return Err(PmError::Recovery("service: max_tenants must be >= 1".into()));
        }
        if c.default_quota == 0 {
            return Err(PmError::Recovery("service: default_quota must be > 0".into()));
        }
        if c.batch_capacity == 0 {
            return Err(PmError::Recovery("service: batch_capacity must be >= 1".into()));
        }
        Ok(self.cfg)
    }
}

/// One client command, addressed to a tenant by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceCmd {
    /// Register a tenant (optional quota; default from config).
    Create {
        /// Tenant name (validated: non-empty, no `/`, no control chars).
        tenant: String,
        /// Byte quota; `None` uses the config default.
        quota: Option<u64>,
    },
    /// Stage an opaque value under `tenant/root`.
    Put {
        /// Target tenant.
        tenant: String,
        /// Bare root name.
        root: String,
        /// Encoded payload bytes.
        bytes: Vec<u8>,
    },
    /// Advance the tenant's commit lineage (durability itself is the
    /// batch's single root swap).
    Commit {
        /// Target tenant.
        tenant: String,
    },
    /// Revert the tenant's writes staged earlier in this batch.
    Restore {
        /// Target tenant.
        tenant: String,
    },
    /// Read the current value of `tenant/root`.
    Query {
        /// Target tenant.
        tenant: String,
        /// Bare root name.
        root: String,
    },
    /// Unregister the tenant and drop all its roots.
    Destroy {
        /// Target tenant.
        tenant: String,
    },
}

impl ServiceCmd {
    /// The tenant a command addresses.
    pub fn tenant(&self) -> &str {
        match self {
            ServiceCmd::Create { tenant, .. }
            | ServiceCmd::Put { tenant, .. }
            | ServiceCmd::Commit { tenant }
            | ServiceCmd::Restore { tenant }
            | ServiceCmd::Query { tenant, .. }
            | ServiceCmd::Destroy { tenant } => tenant,
        }
    }
}

/// Per-command success reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceReply {
    /// Tenant registered.
    Created,
    /// Value staged.
    Put,
    /// Lineage advanced; carries the tenant's commit count.
    Committed {
        /// Commits this tenant has issued over its lifetime.
        lineage: u64,
    },
    /// Staged writes reverted; carries the number of roots restored.
    Restored {
        /// Roots whose staged modification was undone.
        reverted: usize,
    },
    /// Query result (`None` = no such root).
    Value(Option<Vec<u8>>),
    /// Tenant unregistered.
    Destroyed,
}

/// Per-command outcome within a batch.
pub type CmdResult = Result<ServiceReply, PmError>;

/// What one [`StateService::flush_batch`] did.
#[derive(Debug)]
pub struct BatchReport {
    /// Outcomes, aligned with submission order.
    pub replies: Vec<CmdResult>,
    /// Committed epoch after the batch.
    pub epoch: u64,
    /// Bytes written by the batch's root swap (blobs + table).
    pub bytes_written: u64,
    /// Did the batch publish a root swap?
    pub committed: bool,
}

/// Exclusive access token for one tenant (see [`StateService::checkout`]).
#[derive(Debug)]
pub struct TenantLease {
    tenant: String,
}

impl TenantLease {
    /// The leased tenant.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

/// Counters the Zipf service benchmark reports from.
#[derive(Debug, Default, Clone)]
pub struct ServiceStats {
    /// Batches flushed.
    pub batches: u64,
    /// Commands applied (all kinds).
    pub cmds: u64,
    /// Root-table swaps published.
    pub commits: u64,
    /// Bytes written across all swaps.
    pub bytes_written: u64,
    /// Puts rejected by quota.
    pub quota_rejections: u64,
}

impl ServiceStats {
    /// Mean bytes written per published root swap.
    pub fn bytes_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.bytes_written as f64 / self.commits as f64
        }
    }
}

/// Persisted per-tenant record.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TenantRec {
    name: String,
    quota: u64,
    commits: u64,
}

impl PmData for TenantRec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.quota.encode(out);
        self.commits.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        Ok(TenantRec { name: String::decode(r)?, quota: u64::decode(r)?, commits: u64::decode(r)? })
    }
}

/// Volatile per-tenant bookkeeping.
#[derive(Debug, Clone)]
struct TenantMeta {
    quota: u64,
    commits: u64,
}

/// The multi-tenant front-end. Owns the runtime; borrows the arena per
/// call like every other subsystem sharing the device.
pub struct StateService {
    cfg: ServiceConfig,
    rt: PmRt,
    tenants: BTreeMap<String, TenantMeta>,
    queue: Vec<ServiceCmd>,
    leased: BTreeSet<String>,
    stats: ServiceStats,
}

impl StateService {
    /// Initialize a fresh service on a formatted arena: creates the
    /// runtime and commits an empty tenant registry.
    pub fn create(arena: &mut NvbmArena, cfg: ServiceConfig) -> Result<Self, PmError> {
        let mut rt = PmRt::create(arena)?;
        rt.stage::<Vec<TenantRec>>(arena, REG_ROOT, &Vec::new())?;
        rt.commit(arena)?;
        Ok(StateService {
            cfg,
            rt,
            tenants: BTreeMap::new(),
            queue: Vec::new(),
            leased: BTreeSet::new(),
            stats: ServiceStats::default(),
        })
    }

    /// Reattach to a service registry committed earlier (post-crash or
    /// handover). Leases and queued commands are volatile and start
    /// empty.
    pub fn restore(arena: &mut NvbmArena, cfg: ServiceConfig) -> Result<Self, PmError> {
        let mut rt = PmRt::restore(arena)?;
        let recs: Vec<TenantRec> = rt
            .load(arena, REG_ROOT)?
            .ok_or_else(|| PmError::Corrupt("service: tenant registry root missing".into()))?;
        let tenants = recs
            .into_iter()
            .map(|r| (r.name, TenantMeta { quota: r.quota, commits: r.commits }))
            .collect();
        Ok(StateService {
            cfg,
            rt,
            tenants,
            queue: Vec::new(),
            leased: BTreeSet::new(),
            stats: ServiceStats::default(),
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Counters since this instance was created/restored.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> impl Iterator<Item = &str> {
        self.tenants.keys().map(String::as_str)
    }

    /// A tenant's byte quota, if registered.
    pub fn quota(&self, tenant: &str) -> Option<u64> {
        self.tenants.get(tenant).map(|m| m.quota)
    }

    /// A tenant's current class-rounded heap usage (staged view).
    pub fn usage(&self, tenant: &str) -> u64 {
        self.rt.prefix_usage(&format!("{tenant}/"))
    }

    /// Committed epoch of the underlying runtime.
    pub fn epoch(&self) -> u64 {
        self.rt.epoch()
    }

    /// Commands waiting for the next flush.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue a command. When the queue reaches
    /// [`ServiceConfig::batch_capacity`] the batch flushes immediately
    /// and its report is returned.
    pub fn submit(
        &mut self,
        arena: &mut NvbmArena,
        cmd: ServiceCmd,
    ) -> Result<Option<BatchReport>, PmError> {
        self.queue.push(cmd);
        if self.queue.len() >= self.cfg.batch_capacity {
            return self.flush_batch(arena).map(Some);
        }
        Ok(None)
    }

    /// Apply every queued command in submission order, then publish one
    /// root-table swap for the whole batch. Per-command failures (quota,
    /// unknown tenant, lease conflicts) land in the report's `replies`;
    /// only a failed swap is a batch-level error.
    pub fn flush_batch(&mut self, arena: &mut NvbmArena) -> Result<BatchReport, PmError> {
        let _s = arena.span("svc::flush_batch");
        let cmds = std::mem::take(&mut self.queue);
        if cmds.is_empty() {
            return Ok(BatchReport {
                replies: Vec::new(),
                epoch: self.rt.epoch(),
                bytes_written: 0,
                committed: false,
            });
        }
        self.stats.batches += 1;
        let t0_ns = arena.clock.now_ns();
        // Distinct tenants with commands in this batch, for the
        // per-tenant flush-latency histogram below.
        let batch_tenants: BTreeSet<String> = cmds.iter().map(|c| c.tenant().to_string()).collect();
        let mut registry_dirty = false;
        let mut mutated = false;
        let mut replies = Vec::with_capacity(cmds.len());
        for cmd in cmds {
            self.stats.cmds += 1;
            let r = self.apply(arena, cmd, &mut registry_dirty);
            if matches!(
                r,
                Ok(ServiceReply::Created
                    | ServiceReply::Put
                    | ServiceReply::Committed { .. }
                    | ServiceReply::Restored { .. }
                    | ServiceReply::Destroyed)
            ) {
                mutated = true;
            }
            replies.push(r);
        }
        if !mutated {
            return Ok(BatchReport {
                replies,
                epoch: self.rt.epoch(),
                bytes_written: 0,
                committed: false,
            });
        }
        if registry_dirty {
            self.stage_registry(arena)?;
        }
        // Flight-recorder note *before* the commit point: a crash during
        // the swap still shows which batch was in flight.
        arena.rec_mark(RecKind::Note, "svc::flush_batch", replies.len() as u64);
        // Crash here = the whole batch vanishes; crash after = the whole
        // batch is durable. Nothing in between is reachable.
        arena.failpoint("svc::commit_batch");
        let regions = self.rt.commit(arena)?;
        let bytes: u64 = regions.iter().map(|&(_, l)| u64::from(l)).sum();
        self.stats.commits += 1;
        self.stats.bytes_written += bytes;
        let dt_ns = arena.clock.now_ns().saturating_sub(t0_ns);
        for tenant in &batch_tenants {
            arena.tracer.observe_labeled("svc.flush_ns", &format!("tenant=\"{tenant}\""), dt_ns);
        }
        Ok(BatchReport { replies, epoch: self.rt.epoch(), bytes_written: bytes, committed: true })
    }

    fn apply(
        &mut self,
        arena: &mut NvbmArena,
        cmd: ServiceCmd,
        registry_dirty: &mut bool,
    ) -> CmdResult {
        if self.leased.contains(cmd.tenant()) {
            return Err(PmError::TenantBusy(format!("tenant {:?} is checked out", cmd.tenant())));
        }
        match cmd {
            ServiceCmd::Create { tenant, quota } => {
                validate_component("tenant", &tenant)?;
                if self.tenants.contains_key(&tenant) {
                    return Err(PmError::Recovery(format!("tenant {tenant:?} already exists")));
                }
                if self.tenants.len() >= self.cfg.max_tenants {
                    return Err(PmError::Recovery(format!(
                        "tenant limit {} reached",
                        self.cfg.max_tenants
                    )));
                }
                let quota = quota.unwrap_or(self.cfg.default_quota);
                if quota == 0 {
                    return Err(PmError::Recovery("tenant quota must be > 0".into()));
                }
                self.tenants.insert(tenant, TenantMeta { quota, commits: 0 });
                *registry_dirty = true;
                Ok(ServiceReply::Created)
            }
            ServiceCmd::Put { tenant, root, bytes } => {
                let quota = self
                    .tenants
                    .get(&tenant)
                    .map(|m| m.quota)
                    .ok_or_else(|| PmError::NotFound(format!("tenant {tenant:?}")))?;
                validate_component("root", &root)?;
                let qualified = format!("{tenant}/{root}");
                // Charge the full log-record footprint the blob will
                // occupy in the ring (record header + object header +
                // u64 length prefix + payload + checksum trailer), net
                // of the record it replaces.
                let new_fp = record_size(OBJ_HEADER + 8 + bytes.len()) as u64;
                let projected = self.usage(&tenant) - self.rt.entry_footprint(&qualified) + new_fp;
                if projected > quota {
                    self.stats.quota_rejections += 1;
                    arena.tracer.counter_add_labeled(
                        "svc.quota_rejections",
                        &format!("tenant=\"{tenant}\""),
                        1,
                    );
                    return Err(PmError::QuotaExceeded(format!(
                        "tenant {tenant:?}: {projected} B projected > quota {quota} B"
                    )));
                }
                self.rt.stage(arena, &qualified, &bytes)?;
                arena.tracer.observe_labeled(
                    "svc.write_bytes",
                    &format!("tenant=\"{tenant}\""),
                    new_fp,
                );
                Ok(ServiceReply::Put)
            }
            ServiceCmd::Commit { tenant } => {
                let meta = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| PmError::NotFound(format!("tenant {tenant:?}")))?;
                meta.commits += 1;
                *registry_dirty = true;
                Ok(ServiceReply::Committed { lineage: meta.commits })
            }
            ServiceCmd::Restore { tenant } => {
                if !self.tenants.contains_key(&tenant) {
                    return Err(PmError::NotFound(format!("tenant {tenant:?}")));
                }
                let reverted = self.rt.revert_staged_prefix(&format!("{tenant}/"));
                Ok(ServiceReply::Restored { reverted })
            }
            ServiceCmd::Query { tenant, root } => {
                if !self.tenants.contains_key(&tenant) {
                    return Err(PmError::NotFound(format!("tenant {tenant:?}")));
                }
                let v = self.rt.load::<Vec<u8>>(arena, &format!("{tenant}/{root}"))?;
                Ok(ServiceReply::Value(v))
            }
            ServiceCmd::Destroy { tenant } => {
                if self.tenants.remove(&tenant).is_none() {
                    return Err(PmError::NotFound(format!("tenant {tenant:?}")));
                }
                let names: Vec<String> =
                    self.rt.names_with_prefix(&format!("{tenant}/")).map(str::to_string).collect();
                for n in names {
                    self.rt.unregister(&n);
                }
                *registry_dirty = true;
                Ok(ServiceReply::Destroyed)
            }
        }
    }

    fn stage_registry(&mut self, arena: &mut NvbmArena) -> Result<(), PmError> {
        let recs: Vec<TenantRec> = self
            .tenants
            .iter()
            .map(|(n, m)| TenantRec { name: n.clone(), quota: m.quota, commits: m.commits })
            .collect();
        self.rt.stage(arena, REG_ROOT, &recs)?;
        Ok(())
    }

    /// Take exclusive access to a tenant. While leased, queued commands
    /// for it fail with [`PmError::TenantBusy`]; work through
    /// [`StateService::handle`] instead.
    pub fn checkout(&mut self, tenant: &str) -> Result<TenantLease, PmError> {
        if !self.tenants.contains_key(tenant) {
            return Err(PmError::NotFound(format!("tenant {tenant:?}")));
        }
        if !self.leased.insert(tenant.to_string()) {
            return Err(PmError::TenantBusy(format!("tenant {tenant:?} already checked out")));
        }
        Ok(TenantLease { tenant: tenant.to_string() })
    }

    /// Return a lease; queued commands for the tenant flow again.
    pub fn release(&mut self, lease: TenantLease) {
        self.leased.remove(&lease.tenant);
    }

    /// A typed handle for the leased tenant.
    pub fn handle<'s>(
        &'s mut self,
        lease: &TenantLease,
        arena: &'s mut NvbmArena,
    ) -> Result<TenantHandle<'s>, PmError> {
        self.rt.session(arena).tenant(&lease.tenant)
    }

    /// Pin an MVCC snapshot of a tenant's committed roots (bare names).
    pub fn snapshot(&self, arena: &mut NvbmArena, tenant: &str) -> Result<Snapshot, PmError> {
        if !self.tenants.contains_key(tenant) {
            return Err(PmError::NotFound(format!("tenant {tenant:?}")));
        }
        Ok(self.rt.snapshot_prefix(arena, &format!("{tenant}/")))
    }

    /// GC pass over blobs deferred for snapshot readers; returns how
    /// many were reclaimed.
    pub fn collect(&mut self, arena: &mut NvbmArena) -> usize {
        self.rt.collect(arena)
    }

    /// Audit a committed service image: restore the runtime, decode the
    /// registry and every tenant root, and reject orphan roots (a
    /// qualified name whose tenant is not registered). Returns
    /// tenant → root → payload bytes; the crash sweep compares this
    /// against the set of valid batch states.
    pub fn audit(
        arena: &mut NvbmArena,
    ) -> Result<BTreeMap<String, BTreeMap<String, Vec<u8>>>, PmError> {
        let mut rt = PmRt::restore(arena)?;
        let recs: Vec<TenantRec> = rt
            .load(arena, REG_ROOT)?
            .ok_or_else(|| PmError::Corrupt("service: tenant registry root missing".into()))?;
        let mut out: BTreeMap<String, BTreeMap<String, Vec<u8>>> =
            recs.iter().map(|r| (r.name.clone(), BTreeMap::new())).collect();
        let names: Vec<String> = rt.names().map(str::to_string).collect();
        for name in names {
            let Some((tenant, root)) = name.split_once('/') else {
                continue; // unqualified service-internal root
            };
            let bytes: Vec<u8> = rt
                .load(arena, &name)?
                .ok_or_else(|| PmError::Corrupt(format!("root {name:?} vanished mid-audit")))?;
            match out.get_mut(tenant) {
                Some(roots) => {
                    roots.insert(root.to_string(), bytes);
                }
                None => {
                    return Err(PmError::Corrupt(format!(
                        "orphan root {name:?}: tenant not in registry"
                    )));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pmoctree_nvbm::{CrashMode, DeviceModel, FailPlan};

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 20, DeviceModel::default())
    }

    fn svc(a: &mut NvbmArena) -> StateService {
        StateService::create(a, ServiceConfig::default()).unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(ServiceConfig::builder().build().is_ok());
        assert!(matches!(
            ServiceConfig::builder().max_tenants(0).build(),
            Err(PmError::Recovery(_))
        ));
        assert!(matches!(
            ServiceConfig::builder().default_quota(0).build(),
            Err(PmError::Recovery(_))
        ));
        assert!(matches!(
            ServiceConfig::builder().batch_capacity(0).build(),
            Err(PmError::Recovery(_))
        ));
    }

    #[test]
    fn batch_roundtrip_and_restart() {
        let mut a = arena();
        let mut s = svc(&mut a);
        s.submit(&mut a, ServiceCmd::Create { tenant: "t1".into(), quota: None }).unwrap();
        s.submit(&mut a, ServiceCmd::Create { tenant: "t2".into(), quota: None }).unwrap();
        s.submit(
            &mut a,
            ServiceCmd::Put { tenant: "t1".into(), root: "x".into(), bytes: vec![1, 2, 3] },
        )
        .unwrap();
        s.submit(&mut a, ServiceCmd::Commit { tenant: "t1".into() }).unwrap();
        let report = s.flush_batch(&mut a).unwrap();
        assert!(report.committed);
        assert!(report.bytes_written > 0);
        assert!(report.replies.iter().all(Result::is_ok));
        a.crash(CrashMode::LoseDirty);
        let mut r = StateService::restore(&mut a, ServiceConfig::default()).unwrap();
        assert_eq!(r.tenants().collect::<Vec<_>>(), vec!["t1", "t2"]);
        r.submit(&mut a, ServiceCmd::Query { tenant: "t1".into(), root: "x".into() }).unwrap();
        let rep = r.flush_batch(&mut a).unwrap();
        assert_eq!(rep.replies[0], Ok(ServiceReply::Value(Some(vec![1, 2, 3]))));
        assert!(!rep.committed, "a read-only batch publishes nothing");
    }

    #[test]
    fn one_swap_per_batch() {
        let mut a = arena();
        let mut s = svc(&mut a);
        for i in 0..8 {
            s.submit(&mut a, ServiceCmd::Create { tenant: format!("t{i}"), quota: None }).unwrap();
        }
        s.flush_batch(&mut a).unwrap();
        let epoch = s.epoch();
        for i in 0..8 {
            s.submit(
                &mut a,
                ServiceCmd::Put { tenant: format!("t{i}"), root: "x".into(), bytes: vec![i as u8] },
            )
            .unwrap();
        }
        s.flush_batch(&mut a).unwrap();
        assert_eq!(s.epoch(), epoch + 1, "eight tenants' writes coalesced into one swap");
    }

    #[test]
    fn quota_rejects_before_media_and_spares_neighbours() {
        let mut a = arena();
        let mut s = svc(&mut a);
        s.submit(&mut a, ServiceCmd::Create { tenant: "small".into(), quota: Some(256) }).unwrap();
        s.submit(&mut a, ServiceCmd::Create { tenant: "big".into(), quota: None }).unwrap();
        s.flush_batch(&mut a).unwrap();
        s.submit(
            &mut a,
            ServiceCmd::Put { tenant: "small".into(), root: "a".into(), bytes: vec![0; 100] },
        )
        .unwrap();
        s.submit(
            &mut a,
            ServiceCmd::Put { tenant: "small".into(), root: "b".into(), bytes: vec![0; 200] },
        )
        .unwrap();
        s.submit(
            &mut a,
            ServiceCmd::Put { tenant: "big".into(), root: "a".into(), bytes: vec![7; 500] },
        )
        .unwrap();
        let rep = s.flush_batch(&mut a).unwrap();
        assert_eq!(rep.replies[0], Ok(ServiceReply::Put));
        assert!(matches!(rep.replies[1], Err(PmError::QuotaExceeded(_))));
        assert_eq!(rep.replies[2], Ok(ServiceReply::Put));
        assert_eq!(s.stats().quota_rejections, 1);
        // The neighbour's write and the accepted write both landed.
        a.crash(CrashMode::LoseDirty);
        let audit = StateService::audit(&mut a).unwrap();
        assert_eq!(audit["small"]["a"], vec![0; 100]);
        assert!(!audit["small"].contains_key("b"));
        assert_eq!(audit["big"]["a"], vec![7; 500]);
    }

    #[test]
    fn rewrite_within_quota_is_not_double_charged() {
        let mut a = arena();
        let mut s = svc(&mut a);
        s.submit(&mut a, ServiceCmd::Create { tenant: "t".into(), quota: Some(1024) }).unwrap();
        s.flush_batch(&mut a).unwrap();
        // 900 B fits; rewriting the same root must charge the *net*
        // footprint, not old + new.
        for _ in 0..5 {
            s.submit(
                &mut a,
                ServiceCmd::Put { tenant: "t".into(), root: "x".into(), bytes: vec![1; 900] },
            )
            .unwrap();
            let rep = s.flush_batch(&mut a).unwrap();
            assert_eq!(rep.replies[0], Ok(ServiceReply::Put));
        }
    }

    #[test]
    fn restore_cmd_reverts_only_that_tenant_in_batch() {
        let mut a = arena();
        let mut s = svc(&mut a);
        s.submit(&mut a, ServiceCmd::Create { tenant: "t1".into(), quota: None }).unwrap();
        s.submit(&mut a, ServiceCmd::Create { tenant: "t2".into(), quota: None }).unwrap();
        s.flush_batch(&mut a).unwrap();
        s.submit(&mut a, ServiceCmd::Put { tenant: "t1".into(), root: "x".into(), bytes: vec![1] })
            .unwrap();
        s.submit(&mut a, ServiceCmd::Put { tenant: "t2".into(), root: "x".into(), bytes: vec![2] })
            .unwrap();
        s.submit(&mut a, ServiceCmd::Restore { tenant: "t1".into() }).unwrap();
        let rep = s.flush_batch(&mut a).unwrap();
        assert_eq!(rep.replies[2], Ok(ServiceReply::Restored { reverted: 1 }));
        let audit = StateService::audit(&mut a).unwrap();
        assert!(!audit["t1"].contains_key("x"), "t1's put was reverted");
        assert_eq!(audit["t2"]["x"], vec![2]);
    }

    #[test]
    fn lease_makes_queued_cmds_busy() {
        let mut a = arena();
        let mut s = svc(&mut a);
        s.submit(&mut a, ServiceCmd::Create { tenant: "t".into(), quota: None }).unwrap();
        s.flush_batch(&mut a).unwrap();
        let lease = s.checkout("t").unwrap();
        assert!(matches!(s.checkout("t"), Err(PmError::TenantBusy(_))));
        s.submit(&mut a, ServiceCmd::Put { tenant: "t".into(), root: "x".into(), bytes: vec![1] })
            .unwrap();
        let rep = s.flush_batch(&mut a).unwrap();
        assert!(matches!(rep.replies[0], Err(PmError::TenantBusy(_))));
        // The lease holder works through the typed handle.
        {
            let mut h = s.handle(&lease, &mut a).unwrap();
            h.put("x", &vec![9u8]).unwrap();
            h.commit().unwrap();
        }
        s.release(lease);
        s.submit(&mut a, ServiceCmd::Query { tenant: "t".into(), root: "x".into() }).unwrap();
        let rep = s.flush_batch(&mut a).unwrap();
        assert_eq!(rep.replies[0], Ok(ServiceReply::Value(Some(vec![9u8]))));
    }

    #[test]
    fn snapshot_survives_batches_and_gc() {
        let mut a = arena();
        let mut s = svc(&mut a);
        s.submit(&mut a, ServiceCmd::Create { tenant: "t".into(), quota: None }).unwrap();
        s.submit(&mut a, ServiceCmd::Put { tenant: "t".into(), root: "x".into(), bytes: vec![1] })
            .unwrap();
        s.flush_batch(&mut a).unwrap();
        let snap = s.snapshot(&mut a, "t").unwrap();
        let v0 = snap.get_bytes(&mut a, "x").unwrap().unwrap();
        for i in 0..12u8 {
            s.submit(
                &mut a,
                ServiceCmd::Put { tenant: "t".into(), root: "x".into(), bytes: vec![i] },
            )
            .unwrap();
            s.flush_batch(&mut a).unwrap();
            s.collect(&mut a);
        }
        assert_eq!(snap.get_bytes(&mut a, "x").unwrap().unwrap(), v0);
        drop(snap);
        assert!(s.collect(&mut a) > 0);
    }

    #[test]
    fn auto_flush_at_batch_capacity() {
        let mut a = arena();
        let cfg = ServiceConfig::builder().batch_capacity(3).build().unwrap();
        let mut s = StateService::create(&mut a, cfg).unwrap();
        assert!(s
            .submit(&mut a, ServiceCmd::Create { tenant: "t".into(), quota: None })
            .unwrap()
            .is_none());
        assert!(s
            .submit(
                &mut a,
                ServiceCmd::Put { tenant: "t".into(), root: "x".into(), bytes: vec![1] }
            )
            .unwrap()
            .is_none());
        let rep = s
            .submit(&mut a, ServiceCmd::Commit { tenant: "t".into() })
            .unwrap()
            .expect("third submit hits capacity and flushes");
        assert_eq!(rep.replies.len(), 3);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn commit_batch_failpoint_fires() {
        let mut a = arena();
        let mut s = svc(&mut a);
        a.set_fail_plan(FailPlan::count());
        s.submit(&mut a, ServiceCmd::Create { tenant: "t".into(), quota: None }).unwrap();
        s.flush_batch(&mut a).unwrap();
        let plan = a.take_fail_plan().expect("plan");
        assert!(plan.labels().iter().any(|(_, l)| *l == "svc::commit_batch"));
    }

    #[test]
    fn snapshot_pin_failpoint_fires() {
        let mut a = arena();
        let mut s = svc(&mut a);
        s.submit(&mut a, ServiceCmd::Create { tenant: "t".into(), quota: None }).unwrap();
        s.flush_batch(&mut a).unwrap();
        a.set_fail_plan(FailPlan::count());
        let _snap = s.snapshot(&mut a, "t").unwrap();
        let plan = a.take_fail_plan().expect("plan");
        assert!(plan.labels().iter().any(|(_, l)| *l == "svc::snapshot_pin"));
    }
}
