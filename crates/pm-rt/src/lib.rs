//! Orthogonal-persistence runtime (`pm-rt`): the paper's §4 programming
//! interface for *any* serializable object, not just octants.
//!
//! The paper presents four verbs — `pm_create`, `pm_persistent`,
//! `pm_restore`, `pm_delete` — with "automatic persistent-pointer
//! management". `pm-octree` implements them for the octree; this crate
//! generalizes the same discipline to arbitrary application state, so a
//! crashed simulation resumes the *run* (config, step index, timing
//! breakdowns), not merely the mesh:
//!
//! * a **typed persistent root registry**: named roots map to entries in
//!   an epoch-versioned object table;
//! * [`PPtr<T>`] **persistent pointers**: arena-relative offsets, never
//!   raw addresses, re-validated ("swizzled") against the arena base on
//!   every restore;
//! * **copy-on-write updates**: a `put` writes a fresh object blob and a
//!   fresh table; nothing committed is ever modified in place;
//! * **one atomic commit point**: publishing the new table is a single
//!   8-byte flushed header store ([`NvbmArena::set_rt_root`]
//!   (pmoctree_nvbm::NvbmArena::set_rt_root)) — exactly the root-swap
//!   `pm-octree` already proves crash-consistent, so no new consistency
//!   argument is needed (see DESIGN.md). The commit and swizzle points
//!   register as `FailPlan` failpoints `rt::commit` / `rt::swizzle` and
//!   are covered by the crash-point sweep.
//!
//! Objects live in a downward-growing heap carved from the **top** of the
//! same arena the octree bump-allocates from the bottom, so one crash,
//! one image, and one replica ship cover both subsystems.
//!
//! On top of the runtime sit three service-era layers (see DESIGN.md
//! "Multi-tenant service & MVCC snapshots"):
//!
//! * [`tenant`] — the typed-handle API ([`Session`] → [`TenantHandle`] →
//!   [`RootHandle`]) replacing the stringly `put::<T>(arena, name, v)`
//!   surface;
//! * [`mvcc`] — pinned [`Snapshot`] readers over retained COW root-table
//!   versions, with refcounted GC deferral;
//! * [`service`] — the batched multi-tenant front-end ([`StateService`])
//!   with per-tenant quotas, leases, and one root swap per batch.
//!
//! All public verbs report the workspace [`PmError`] taxonomy.
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod data;
pub mod heap;
pub mod log;
pub mod mvcc;
pub mod rt;
pub mod service;
pub mod tenant;

pub use data::{ByteReader, ByteWriter, PmData};
pub use heap::LogHeap;
pub use log::{Record, RecordKind};
pub use mvcc::Snapshot;
pub use pm_octree::PmError;
pub use rt::{PPtr, PmRt, RtError, CHECKPOINT_EVERY, COMPACT_WATERMARK};
pub use service::{
    BatchReport, CmdResult, ServiceCmd, ServiceConfig, ServiceConfigBuilder, ServiceReply,
    ServiceStats, StateService, TenantLease,
};
pub use tenant::{RootHandle, Session, TenantHandle};
