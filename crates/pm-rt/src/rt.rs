//! The runtime: named persistent roots, `PPtr<T>`, copy-on-write commit.
//!
//! Since the multi-tenant service redesign the public verbs return the
//! workspace [`PmError`] taxonomy; [`RtError`] survives as the low-level
//! codec error (what [`PmData`](crate::data::PmData) decoding reports)
//! and converts losslessly via `From`.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use pm_octree::PmError;
use pmoctree_nvbm::{NvbmArena, POffset, HEADER_SIZE};

use crate::data::{ByteReader, ByteWriter, PmData};
use crate::heap::{class_of, RtHeap};

/// Codec-layer errors. Every decode/validation failure is reported,
/// never panicked — the input is post-crash media. Public runtime verbs
/// fold these into [`PmError`]; only [`PmData`](crate::data::PmData)
/// implementations still speak `RtError` directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// On-media bytes failed validation (bad magic, truncation, overlap).
    Corrupt(String),
    /// The runtime heap cannot satisfy an allocation.
    Full(String),
    /// No committed object table / no such named root.
    Missing(String),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Corrupt(m) => write!(f, "corrupt rt state: {m}"),
            RtError::Full(m) => write!(f, "rt heap full: {m}"),
            RtError::Missing(m) => write!(f, "missing: {m}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<RtError> for PmError {
    fn from(e: RtError) -> Self {
        match e {
            RtError::Corrupt(m) => PmError::Corrupt(m),
            RtError::Missing(m) => PmError::NotFound(m),
            RtError::Full(m) => PmError::Recovery(m),
        }
    }
}

/// A typed persistent pointer: an arena-relative offset plus the payload
/// length, never a raw address. Obtained from [`PmRt::stage`] or
/// [`PmRt::resolve`]; resolved (and re-validated) against the arena on
/// every use, so a restore "swizzles" automatically — there is nothing
/// absolute to fix up.
pub struct PPtr<T> {
    off: u64,
    len: u32,
    _t: PhantomData<fn() -> T>,
}

// Manual impls: `derive` would bound them on `T`, but a PPtr is Copy/Eq
// regardless of the pointee.
impl<T> Clone for PPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PPtr<T> {}
impl<T> PartialEq for PPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.off == other.off && self.len == other.len
    }
}
impl<T> Eq for PPtr<T> {}
impl<T> std::fmt::Debug for PPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PPtr({:#x}+{})", self.off, self.len)
    }
}

impl<T> PPtr<T> {
    /// Arena-relative offset of the object blob.
    pub fn offset(&self) -> u64 {
        self.off
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Is the payload empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn from_entry(e: Entry) -> Self {
        PPtr { off: e.off, len: e.len, _t: PhantomData }
    }
}

/// Magic tag at the head of every object blob (including the table).
pub(crate) const OBJ_MAGIC: u32 = 0x504d_5254; // "PMRT"
/// Magic at the head of the table *payload*.
const TABLE_MAGIC: u64 = 0x5254_5441_424c_4531; // "RTTABLE1"
/// Object blob header: `[u32 magic][u32 payload len]`.
pub(crate) const OBJ_HEADER: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    pub(crate) off: u64,
    pub(crate) len: u32,
}

impl Entry {
    /// The blob's full heap footprint (header + payload, class-rounded).
    pub(crate) fn footprint(&self) -> usize {
        class_of(OBJ_HEADER + self.len as usize)
    }
}

/// The orthogonal-persistence runtime.
///
/// The runtime does not own the arena — verbs borrow it, so the octree
/// and the runtime share one device. The volatile side is a name → entry
/// map plus the heap; the persistent side is the committed object table
/// named by the `rt_root` header slot.
///
/// Two views of the registry coexist: the **staged** table (what the next
/// commit will publish) and the **committed** table (what the current
/// `rt_root` names). MVCC [`Snapshot`](crate::mvcc::Snapshot) handles pin
/// the committed view at an epoch: blobs a later commit supersedes are
/// *deferred*, not freed, until no snapshot older than their retirement
/// epoch remains (see [`PmRt::collect`]).
pub struct PmRt {
    /// Staged view: name → entry as of the next commit.
    table: BTreeMap<String, Entry>,
    /// Committed view: name → entry as published by `rt_root`.
    committed: BTreeMap<String, Entry>,
    heap: RtHeap,
    epoch: u64,
    /// Committed blobs superseded since the last commit. They back the
    /// *committed* table until the next root swap, so they are freed (or
    /// deferred, if pinned) only after it.
    retired: Vec<(POffset, usize)>,
    /// Blobs retired by the commit that produced epoch `e` — still
    /// reachable from pinned root-table versions older than `e`. Freed by
    /// [`PmRt::collect`] once `min_pinned >= e` (or no pins remain).
    deferred: Vec<(u64, POffset, usize)>,
    /// The committed table blob (freed after the next commit supersedes it).
    table_blob: Option<(POffset, usize)>,
    /// Regions written since the last commit, for replica delta shipping.
    staged: Vec<(u64, u32)>,
    /// For every name modified since the last commit: the committed-time
    /// entry it had (`None` = name did not exist). Lets
    /// [`PmRt::revert_staged_prefix`] undo a tenant's staged writes with
    /// exact bookkeeping, and is cleared at every commit.
    staged_origin: BTreeMap<String, Option<Entry>>,
}

impl PmRt {
    /// `pm_create` for the runtime: initialize an empty registry on a
    /// formatted arena and commit it, so a crash at any later point can
    /// [`PmRt::restore`]. The heap floor starts at the arena top.
    pub fn create(arena: &mut NvbmArena) -> Result<Self, PmError> {
        let _s = arena.span("rt::create");
        let top = arena.rt_heap_top();
        let limit = arena.live_bump().max(HEADER_SIZE);
        let mut rt = PmRt {
            table: BTreeMap::new(),
            committed: BTreeMap::new(),
            heap: RtHeap::new(limit, top),
            epoch: 0,
            retired: Vec::new(),
            deferred: Vec::new(),
            table_blob: None,
            staged: Vec::new(),
            staged_origin: BTreeMap::new(),
        };
        arena.publish_rt_floor(rt.heap.floor());
        rt.commit(arena)?;
        Ok(rt)
    }

    /// `pm_restore` for the runtime: read the committed object table,
    /// validate ("swizzle") every entry against the arena, and rebuild
    /// the volatile heap from the live blobs. Fails with
    /// [`PmError::NotFound`] if no table was ever committed.
    pub fn restore(arena: &mut NvbmArena) -> Result<Self, PmError> {
        Self::restore_inner(arena).map_err(PmError::from)
    }

    fn restore_inner(arena: &mut NvbmArena) -> Result<Self, RtError> {
        let _s = arena.span("rt::swizzle");
        let root = arena.rt_root();
        if root.is_null() {
            return Err(RtError::Missing("no committed rt object table".into()));
        }
        let table_bytes = read_blob(arena, root.0, None)?;
        let mut r = ByteReader::new(&table_bytes);
        if r.u64()? != TABLE_MAGIC {
            return Err(RtError::Corrupt("bad table magic".into()));
        }
        let epoch = r.u64()?;
        let count = r.u64()?;
        let mut table = BTreeMap::new();
        for _ in 0..count {
            let name = String::decode(&mut r)?;
            let off = r.u64()?;
            let len = r.u32()?;
            if table.insert(name.clone(), Entry { off, len }).is_some() {
                return Err(RtError::Corrupt(format!("duplicate root name {name:?}")));
            }
        }
        if !r.is_empty() {
            return Err(RtError::Corrupt("trailing bytes after table".into()));
        }
        // Swizzle pass: every persistent pointer must name a well-formed
        // blob before anything dereferences it. Heap blobs live strictly
        // below the flight-recorder ring, so bounds-check against the
        // heap top, not the raw device capacity.
        let cap = arena.rt_heap_top();
        for (name, e) in &table {
            check_bounds(cap, e.off, e.len)
                .map_err(|m| RtError::Corrupt(format!("root {name:?}: {m}")))?;
            validate_blob_header(arena, e.off, e.len)
                .map_err(|m| RtError::Corrupt(format!("root {name:?}: {m}")))?;
        }
        arena.failpoint("rt::swizzle");

        let table_len = table_bytes.len() as u32;
        check_bounds(cap, root.0, table_len)?;
        let limit = arena.live_bump().max(HEADER_SIZE);
        let floor_hint = arena.rt_bump_hint();
        let live = table
            .values()
            .map(|e| (POffset(e.off), OBJ_HEADER + e.len as usize))
            .chain(std::iter::once((root, OBJ_HEADER + table_len as usize)));
        let heap = RtHeap::rebuild(limit, cap, floor_hint, live)?;
        arena.publish_rt_floor(heap.floor());
        Ok(PmRt {
            committed: table.clone(),
            table,
            heap,
            epoch,
            retired: Vec::new(),
            deferred: Vec::new(),
            table_blob: Some((root, OBJ_HEADER + table_len as usize)),
            staged: Vec::new(),
            staged_origin: BTreeMap::new(),
        })
    }

    /// `pm_delete` for the runtime: clear the persistent registry (the
    /// header slots; blob space is reclaimed implicitly, nothing is
    /// scrubbed). Outstanding MVCC snapshots are invalidated — their
    /// epochs no longer exist.
    pub fn destroy(arena: &mut NvbmArena) {
        arena.set_rt_root(POffset(0));
        arena.set_rt_bump_hint(0);
        arena.publish_rt_floor(arena.rt_heap_top());
        arena.rt_pins().invalidate();
    }

    /// Allocate heap space against the *live* octree bump: the octree
    /// grows its territory between runtime calls, so the boundary is
    /// refreshed on every allocation and the new floor published back —
    /// the two allocators sharing the arena can fail, never overlap.
    fn heap_alloc(&mut self, arena: &mut NvbmArena, size: usize) -> Result<POffset, RtError> {
        self.heap.set_limit(arena.live_bump().max(HEADER_SIZE));
        let p = self.heap.alloc(size)?;
        arena.publish_rt_floor(self.heap.floor());
        Ok(p)
    }

    /// Stage `value` under `name` (copy-on-write: a fresh blob, never an
    /// in-place update). Durable only after the next [`PmRt::commit`].
    pub fn stage<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        name: &str,
        value: &T,
    ) -> Result<PPtr<T>, PmError> {
        self.stage_inner(arena, name, value).map_err(PmError::from)
    }

    fn stage_inner<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        name: &str,
        value: &T,
    ) -> Result<PPtr<T>, RtError> {
        let payload = value.to_bytes();
        let len = u32::try_from(payload.len())
            .map_err(|_| RtError::Full(format!("object {name:?} over 4 GiB")))?;
        let blob_len = OBJ_HEADER + payload.len();
        let p = self.heap_alloc(arena, blob_len)?;
        let mut bytes = Vec::with_capacity(blob_len);
        let mut w = ByteWriter::new(&mut bytes);
        w.u32(OBJ_MAGIC);
        w.u32(len);
        bytes.extend_from_slice(&payload);
        arena.write(p.0, &bytes);
        self.staged.push((p.0, class_of(blob_len) as u32));
        self.note_origin(name);
        if let Some(old) = self.table.insert(name.to_string(), Entry { off: p.0, len }) {
            self.supersede(name, old);
        }
        Ok(PPtr { off: p.0, len, _t: PhantomData })
    }

    /// Read the current value of a named root (staged or committed).
    /// `Ok(None)` if the name is not registered.
    pub fn load<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        name: &str,
    ) -> Result<Option<T>, PmError> {
        let Some(&e) = self.table.get(name) else {
            return Ok(None);
        };
        self.load_ptr(arena, PPtr::from_entry(e)).map(Some)
    }

    /// The persistent pointer currently registered under `name`.
    pub fn resolve<T: PmData>(&self, name: &str) -> Option<PPtr<T>> {
        self.table.get(name).map(|&e| PPtr::from_entry(e))
    }

    /// Dereference a persistent pointer: validate the blob header, read
    /// the payload, decode.
    pub fn load_ptr<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        ptr: PPtr<T>,
    ) -> Result<T, PmError> {
        self.load_ptr_inner(arena, ptr).map_err(PmError::from)
    }

    fn load_ptr_inner<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        ptr: PPtr<T>,
    ) -> Result<T, RtError> {
        check_bounds(arena.rt_heap_top(), ptr.off, ptr.len)?;
        let payload = read_blob(arena, ptr.off, Some(ptr.len))?;
        T::from_bytes(&payload)
    }

    /// Unregister a named root. A committed blob is reclaimed after the
    /// next commit (or deferred while snapshots pin it); a blob staged in
    /// this window is reclaimed immediately. Returns whether the name
    /// existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        match self.table.remove(name) {
            Some(e) => {
                self.note_origin(name);
                self.supersede(name, e);
                true
            }
            None => false,
        }
    }

    /// Record the committed-time entry for `name` on its first
    /// modification in this commit window.
    fn note_origin(&mut self, name: &str) {
        if !self.staged_origin.contains_key(name) {
            self.staged_origin.insert(name.to_string(), self.committed.get(name).copied());
        }
    }

    /// A staged or committed blob under `name` was replaced or removed.
    /// Committed blobs retire (snapshot readers may still need them);
    /// blobs staged in this window were never snapshot-visible and are
    /// reclaimed on the spot.
    fn supersede(&mut self, name: &str, old: Entry) {
        if self.committed.get(name) == Some(&old) {
            self.retired.push((POffset(old.off), OBJ_HEADER + old.len as usize));
        } else {
            self.heap.free(POffset(old.off), OBJ_HEADER + old.len as usize);
        }
    }

    /// `pm_persistent` for the runtime: write a fresh object table, flush
    /// everything staged, and publish the table with one atomic 8-byte
    /// header store — the same root-swap commit point as the octree's
    /// persist, firing the `rt::commit` failpoint. Returns the regions
    /// written since the previous commit (blobs + new table), for replica
    /// delta shipping.
    ///
    /// Blobs the new table supersedes are reclaimed immediately when no
    /// MVCC snapshot pins an older epoch, and deferred to
    /// [`PmRt::collect`] otherwise.
    pub fn commit(&mut self, arena: &mut NvbmArena) -> Result<Vec<(u64, u32)>, PmError> {
        // Committed bytes (table blob, flushed staged blobs) are charged
        // to the `rt::commit` phase; restore the caller's phase on every
        // exit, including errors.
        let prev_phase = arena.set_phase("rt::commit");
        let r = self.commit_inner(arena).map_err(PmError::from);
        arena.set_phase(prev_phase);
        r
    }

    fn commit_inner(&mut self, arena: &mut NvbmArena) -> Result<Vec<(u64, u32)>, RtError> {
        let _s = arena.span("rt::commit");
        self.epoch += 1;
        let mut payload = Vec::new();
        let mut w = ByteWriter::new(&mut payload);
        w.u64(TABLE_MAGIC);
        w.u64(self.epoch);
        w.u64(self.table.len() as u64);
        for (name, e) in &self.table {
            name.encode(&mut payload);
            let mut w = ByteWriter::new(&mut payload);
            w.u64(e.off);
            w.u32(e.len);
        }
        let blob_len = OBJ_HEADER + payload.len();
        let p = self.heap_alloc(arena, blob_len)?;
        let mut bytes = Vec::with_capacity(blob_len);
        let mut w = ByteWriter::new(&mut bytes);
        w.u32(OBJ_MAGIC);
        w.u32(payload.len() as u32);
        bytes.extend_from_slice(&payload);
        arena.write(p.0, &bytes);
        self.staged.push((p.0, class_of(blob_len) as u32));
        // Persist the heap floor *before* the swap: a stale floor after a
        // crash wastes space below the clamped floor, never corrupts.
        arena.set_rt_bump_hint(self.heap.floor());
        // Destination matters: table and blobs must be on media before
        // anything names them.
        arena.flush_all();
        arena.set_rt_root(p); // THE commit point (atomic 8-byte store)
        arena.failpoint("rt::commit");
        // The previous version is unreachable from the *committed* table,
        // but pinned snapshot readers may still hold it: defer, then free
        // whatever no pin protects.
        let retired_at = self.epoch;
        if let Some((old, size)) = self.table_blob.replace((p, blob_len)) {
            self.deferred.push((retired_at, old, size));
        }
        for (off, size) in self.retired.drain(..) {
            self.deferred.push((retired_at, off, size));
        }
        self.collect_inner(arena.rt_pins().min_pinned());
        self.committed = self.table.clone();
        self.staged_origin.clear();
        Ok(std::mem::take(&mut self.staged))
    }

    /// GC pass over deferred frees: reclaim every blob whose retirement
    /// epoch is no longer protected by a snapshot pin. Runs implicitly at
    /// every commit; call explicitly after dropping snapshots to recover
    /// space without committing. Returns the number of blobs freed.
    pub fn collect(&mut self, arena: &mut NvbmArena) -> usize {
        let n = self.collect_inner(arena.rt_pins().min_pinned());
        arena.publish_rt_floor(self.heap.floor());
        n
    }

    /// A blob retired by the commit that produced epoch `e` is still live
    /// in every table version `< e`; a pin at snapshot epoch `s` protects
    /// exactly the blobs with `e > s`. So `(e, blob)` is freeable iff no
    /// pin `s < e` remains — i.e. `min_pinned` is absent or `e <= min`.
    fn collect_inner(&mut self, min_pinned: Option<u64>) -> usize {
        let deferred = std::mem::take(&mut self.deferred);
        let mut freed = 0;
        for (e, off, size) in deferred {
            if min_pinned.is_none_or(|m| e <= m) {
                self.heap.free(off, size);
                freed += 1;
            } else {
                self.deferred.push((e, off, size));
            }
        }
        freed
    }

    /// Undo every staged (uncommitted) modification whose root name
    /// starts with `prefix`: staged blobs are reclaimed, replaced or
    /// removed committed entries are reinstated, and their pending
    /// retirements cancelled. The service layer uses this to make a
    /// tenant's batch all-or-nothing. Returns the number of roots
    /// reverted.
    pub fn revert_staged_prefix(&mut self, prefix: &str) -> usize {
        let names: Vec<String> =
            self.staged_origin.keys().filter(|n| n.starts_with(prefix)).cloned().collect();
        for name in &names {
            let origin = self.staged_origin.remove(name).flatten();
            // Reclaim the blob currently staged under the name (if the
            // name still resolves and it is not the committed blob).
            if let Some(&cur) = self.table.get(name) {
                if self.committed.get(name) != Some(&cur) {
                    self.heap.free(POffset(cur.off), OBJ_HEADER + cur.len as usize);
                }
            }
            match origin {
                Some(e) => {
                    self.table.insert(name.clone(), e);
                    // Cancel the pending retirement: the committed blob
                    // is reachable again.
                    if let Some(i) = self.retired.iter().position(|&(o, _)| o.0 == e.off) {
                        self.retired.swap_remove(i);
                    }
                }
                None => {
                    self.table.remove(name);
                }
            }
        }
        names.len()
    }

    /// Heap bytes (class-rounded, header included) currently charged to
    /// roots whose name starts with `prefix` — the staged view, so a
    /// quota check sees writes from the current batch. This is the
    /// service layer's quota currency.
    pub fn prefix_usage(&self, prefix: &str) -> u64 {
        self.table
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, e)| e.footprint() as u64)
            .sum()
    }

    /// The staged entry's heap footprint for one name (0 if absent).
    pub(crate) fn entry_footprint(&self, name: &str) -> u64 {
        self.table.get(name).map_or(0, |e| e.footprint() as u64)
    }

    /// Committed table entries whose name starts with `prefix` (what an
    /// MVCC snapshot captures).
    pub(crate) fn committed_with_prefix(&self, prefix: &str) -> BTreeMap<String, Entry> {
        self.committed
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, e)| (n.clone(), *e))
            .collect()
    }

    /// Committed table epoch (increments at every commit).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of named roots (staged view).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Registered root names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.table.keys().map(String::as_str)
    }

    /// Registered root names starting with `prefix`, sorted.
    pub fn names_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.table.keys().map(String::as_str).filter(move |n| n.starts_with(prefix))
    }

    /// The runtime heap floor (lowest arena byte the runtime owns).
    pub fn heap_floor(&self) -> u64 {
        self.heap.floor()
    }

    /// Blobs awaiting a pin release before they can be reclaimed.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }
}

fn check_bounds(cap: u64, off: u64, len: u32) -> Result<(), RtError> {
    let end = off
        .checked_add(OBJ_HEADER as u64 + len as u64)
        .ok_or_else(|| RtError::Corrupt(format!("blob at {off:#x} wraps the address space")))?;
    if off < HEADER_SIZE || end > cap {
        return Err(RtError::Corrupt(format!("blob [{off:#x}, {end:#x}) outside arena")));
    }
    Ok(())
}

/// Validate an object blob header without reading the payload (the cheap
/// swizzle check: one cacheline).
fn validate_blob_header(arena: &mut NvbmArena, off: u64, want_len: u32) -> Result<(), String> {
    let mut h = [0u8; OBJ_HEADER];
    arena.read(off, &mut h);
    let magic = u32::from_le_bytes(h[0..4].try_into().map_err(|_| "header")?);
    let len = u32::from_le_bytes(h[4..8].try_into().map_err(|_| "header")?);
    if magic != OBJ_MAGIC {
        return Err(format!("bad object magic {magic:#x} at {off:#x}"));
    }
    if len != want_len {
        return Err(format!("length mismatch at {off:#x}: blob says {len}, table says {want_len}"));
    }
    Ok(())
}

/// Read an object blob's payload, validating the header. `want_len`
/// cross-checks a table entry when available.
pub(crate) fn read_blob(
    arena: &mut NvbmArena,
    off: u64,
    want_len: Option<u32>,
) -> Result<Vec<u8>, RtError> {
    let cap = arena.rt_heap_top();
    // Checked add: a corrupted root near u64::MAX must report, not wrap
    // past the bound and panic inside the arena read.
    if off.checked_add(OBJ_HEADER as u64).is_none_or(|end| end > cap) {
        return Err(RtError::Corrupt(format!("blob header at {off:#x} outside arena")));
    }
    let mut h = [0u8; OBJ_HEADER];
    arena.read(off, &mut h);
    let magic = u32::from_le_bytes(h[0..4].try_into().unwrap_or([0; 4]));
    let len = u32::from_le_bytes(h[4..8].try_into().unwrap_or([0; 4]));
    if magic != OBJ_MAGIC {
        return Err(RtError::Corrupt(format!("bad object magic {magic:#x} at {off:#x}")));
    }
    if let Some(want) = want_len {
        if len != want {
            return Err(RtError::Corrupt(format!(
                "length mismatch at {off:#x}: blob says {len}, pointer says {want}"
            )));
        }
    }
    check_bounds(cap, off, len)?;
    let mut payload = vec![0u8; len as usize];
    arena.read(off + OBJ_HEADER as u64, &mut payload);
    Ok(payload)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::data::PmData;
    use pmoctree_nvbm::{CrashMode, DeviceModel, FailPlan};

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 20, DeviceModel::default())
    }

    /// A little application-state struct, as a non-octree PmData example.
    #[derive(Debug, Clone, PartialEq)]
    struct RunState {
        step: u64,
        t: f64,
        tag: String,
    }

    impl PmData for RunState {
        fn encode(&self, out: &mut Vec<u8>) {
            self.step.encode(out);
            self.t.encode(out);
            self.tag.encode(out);
        }
        fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
            Ok(RunState { step: u64::decode(r)?, t: f64::decode(r)?, tag: String::decode(r)? })
        }
    }

    #[test]
    fn stage_commit_restore_roundtrip() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let st = RunState { step: 12, t: 0.25, tag: "droplet".into() };
        rt.stage(&mut a, "run", &st).unwrap();
        rt.stage(&mut a, "answer", &42u64).unwrap();
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<RunState>(&mut a, "run").unwrap(), Some(st));
        assert_eq!(r.load::<u64>(&mut a, "answer").unwrap(), Some(42));
        assert_eq!(r.load::<u64>(&mut a, "nope").unwrap(), None);
    }

    #[test]
    fn uncommitted_stage_is_lost_committed_survives() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        rt.stage(&mut a, "x", &2u64).unwrap(); // staged, not committed
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "x").unwrap(), Some(1));
    }

    #[test]
    fn crash_armed_at_every_opportunity_recovers_old_or_new() {
        // Count the opportunities of one stage+commit, then crash at each
        // one under every mode: restore must see x == 1 or x == 2, and
        // the rt::commit failpoint must be among the opportunities.
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        let before = a.clone_media();
        a.set_fail_plan(FailPlan::count());
        rt.stage(&mut a, "x", &2u64).unwrap();
        rt.commit(&mut a).unwrap();
        let plan = a.take_fail_plan().expect("plan installed");
        let n = plan.opportunities();
        assert!(n > 0);
        assert!(
            plan.labels().iter().any(|(_, l)| *l == "rt::commit"),
            "commit point must be a labelled opportunity"
        );
        for mode in [
            CrashMode::LoseDirty,
            CrashMode::CommitRandom { p: 0.5, seed: 7 },
            CrashMode::TornWrite { seed: 7 },
        ] {
            for at in 1..=n {
                let mut b = NvbmArena::new(1 << 20, DeviceModel::default());
                b.restore_media(&before);
                let mut rtb = PmRt::restore(&mut b).unwrap();
                b.set_fail_plan(FailPlan::armed(at, mode));
                rtb.stage(&mut b, "x", &2u64).unwrap();
                let _ = rtb.commit(&mut b);
                if let Some(cap) = b.take_fail_plan().and_then(|mut p| p.take_capture()) {
                    let mut c = NvbmArena::from_media(cap.media, DeviceModel::default());
                    let mut rec = PmRt::restore(&mut c).unwrap();
                    let x = rec.load::<u64>(&mut c, "x").unwrap();
                    assert!(
                        x == Some(1) || x == Some(2),
                        "crash at {at}/{n} under {mode:?} saw {x:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn restore_fires_swizzle_failpoint() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        a.set_fail_plan(FailPlan::count());
        let _ = PmRt::restore(&mut a).unwrap();
        let plan = a.take_fail_plan().expect("plan");
        assert!(plan.labels().iter().any(|(_, l)| *l == "rt::swizzle"));
    }

    #[test]
    fn restore_on_blank_arena_is_not_found() {
        let mut a = arena();
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::NotFound(_))));
    }

    #[test]
    fn corrupt_table_pointer_is_err_not_panic() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        // Point rt_root into the weeds.
        a.set_rt_root(POffset(a.capacity() as u64 - 8));
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::Corrupt(_))));
        a.set_rt_root(POffset(HEADER_SIZE));
        assert!(PmRt::restore(&mut a).is_err());
    }

    #[test]
    fn corrupt_root_near_u64_max_is_err_not_panic() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        // A torn header write can leave rt_root near u64::MAX; the bound
        // check must not wrap around and panic inside the arena read.
        a.set_rt_root(POffset(u64::MAX - 4));
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::Corrupt(_))));
    }

    #[test]
    fn octree_bump_cannot_cross_committed_rt_blobs() {
        use pm_octree::{CellData, OctAccess, Octant, PmConfig, PmOctree, OCTANT_SIZE};
        use pmoctree_morton::OctKey;

        // A tight shared device: the octree must report full at the
        // runtime's live floor instead of bump-allocating over it.
        let a = NvbmArena::new(16 << 10, DeviceModel::default());
        let mut t = PmOctree::create(a, PmConfig::default());
        let mut rt = PmRt::create(&mut t.store.arena).unwrap();
        let tag = "A".repeat(512);
        rt.stage(&mut t.store.arena, "tag", &tag).unwrap();
        rt.commit(&mut t.store.arena).unwrap();
        let floor = rt.heap_floor();
        let mut n = 0u64;
        loop {
            let o = Octant::leaf(OctKey::root(), POffset::NULL, 1, CellData::default());
            match t.store.alloc_octant(&o) {
                Ok(p) => {
                    assert!(
                        p.0 + OCTANT_SIZE as u64 <= floor,
                        "octant at {:#x} crosses the rt floor {floor:#x}",
                        p.0
                    );
                    n += 1;
                }
                Err(_) => break,
            }
        }
        assert!(n > 0, "the device has room below the floor");
        // The committed runtime state survived the octree filling the
        // device to the boundary.
        t.store.arena.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut t.store.arena).unwrap();
        assert_eq!(r.load::<String>(&mut t.store.arena, "tag").unwrap(), Some(tag));
        // And the other direction: with the device full of octants, an
        // oversized runtime allocation fails cleanly.
        let big = "B".repeat(12 << 10);
        assert!(matches!(r.stage(&mut t.store.arena, "big", &big), Err(PmError::Recovery(_))));
    }

    #[test]
    fn rt_heap_respects_live_octree_bump() {
        use pm_octree::{PmConfig, PmOctree};
        use pmoctree_morton::OctKey;

        // The octree grows long after the runtime was created: the heap
        // limit must track the *live* bump, not a create-time snapshot
        // (which would let a big blob land on live octants).
        let a = NvbmArena::new(64 << 10, DeviceModel::default());
        let mut t = PmOctree::create(a, PmConfig::default());
        let mut rt = PmRt::create(&mut t.store.arena).unwrap();
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            t.refine(OctKey::root().child(i)).unwrap();
        }
        t.persist();
        let leaves = t.leaves_sorted();
        let bump = t.store.arena.live_bump();
        assert!(bump > 8 << 10, "tree must have grown past the create-time bump");
        // Sized to fit under the heap top (just below the flight-recorder
        // ring) but not above the live bump.
        let top = t.store.arena.rt_heap_top();
        let big = "B".repeat((top as usize - (8 << 10)) - 64);
        match rt.stage(&mut t.store.arena, "big", &big) {
            Err(PmError::Recovery(m)) => assert!(m.contains("cross"), "wrong full cause: {m}"),
            other => panic!("expected Recovery(cross), got {other:?}"),
        }
        assert!(rt.heap_floor() >= bump);
        // Nothing was written: the persisted tree is untouched.
        let mut arena = {
            let PmOctree { store, .. } = t;
            store.arena
        };
        arena.crash(CrashMode::LoseDirty);
        let mut r = PmOctree::restore(arena, PmConfig::default()).unwrap();
        assert_eq!(r.leaves_sorted(), leaves);
    }

    #[test]
    fn unregister_drops_root_after_commit() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        assert!(rt.unregister("x"));
        assert!(!rt.unregister("x"));
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "x").unwrap(), None);
    }

    #[test]
    fn heap_space_is_recycled_across_commits() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        for i in 0..200u64 {
            rt.stage(&mut a, "x", &i).unwrap();
            rt.commit(&mut a).unwrap();
        }
        // 200 rewrites of one small root must not consume 200 blobs of
        // fresh space: floor stays within a few blocks of the top (which
        // sits just below the flight-recorder ring).
        assert!(a.rt_heap_top() - rt.heap_floor() < 1024);
        assert_eq!(rt.deferred_len(), 0, "no pins, nothing deferred");
    }

    #[test]
    fn staged_over_staged_reclaims_immediately() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        let floor = rt.heap_floor();
        // Rewrite the same staged root many times without committing: the
        // superseded staged blobs recycle, so the floor cannot sink.
        for i in 0..100u64 {
            rt.stage(&mut a, "x", &i).unwrap();
        }
        assert!(floor - rt.heap_floor() < 256, "staged rewrites must recycle");
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "x").unwrap(), Some(99));
    }

    #[test]
    fn revert_staged_prefix_restores_committed_view() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "t1/x", &1u64).unwrap();
        rt.stage(&mut a, "t2/y", &10u64).unwrap();
        rt.commit(&mut a).unwrap();
        // Tenant t1 stages a rewrite, a new root, and a removal; t2 also
        // stages. Reverting t1 must not disturb t2's staged write.
        rt.stage(&mut a, "t1/x", &2u64).unwrap();
        rt.stage(&mut a, "t1/z", &3u64).unwrap();
        rt.stage(&mut a, "t2/y", &20u64).unwrap();
        assert_eq!(rt.revert_staged_prefix("t1/"), 2);
        assert_eq!(rt.load::<u64>(&mut a, "t1/x").unwrap(), Some(1));
        assert_eq!(rt.load::<u64>(&mut a, "t1/z").unwrap(), None);
        assert_eq!(rt.load::<u64>(&mut a, "t2/y").unwrap(), Some(20));
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "t1/x").unwrap(), Some(1));
        assert_eq!(r.load::<u64>(&mut a, "t1/z").unwrap(), None);
        assert_eq!(r.load::<u64>(&mut a, "t2/y").unwrap(), Some(20));
    }

    #[test]
    fn revert_after_unregister_reinstates_root() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "t/x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        rt.stage(&mut a, "t/x", &6u64).unwrap();
        assert!(rt.unregister("t/x"));
        assert_eq!(rt.revert_staged_prefix("t/"), 1);
        assert_eq!(rt.load::<u64>(&mut a, "t/x").unwrap(), Some(5));
        rt.commit(&mut a).unwrap();
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "t/x").unwrap(), Some(5));
    }

    #[test]
    fn prefix_usage_tracks_staged_view() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        assert_eq!(rt.prefix_usage("t/"), 0);
        rt.stage(&mut a, "t/x", &vec![0u8; 100]).unwrap();
        let one = rt.prefix_usage("t/");
        assert!(one >= 100);
        rt.stage(&mut a, "t/y", &vec![0u8; 100]).unwrap();
        assert!(rt.prefix_usage("t/") > one);
        rt.unregister("t/y");
        assert_eq!(rt.prefix_usage("t/"), one);
        assert_eq!(rt.prefix_usage("u/"), 0);
    }

    #[test]
    fn pptr_is_stable_across_restore() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let p = rt.stage(&mut a, "x", &77u64).unwrap();
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        let q: PPtr<u64> = r.resolve("x").expect("swizzled pointer");
        assert_eq!(p, q, "offsets are arena-relative, nothing to fix up");
        assert_eq!(r.load_ptr(&mut a, q).unwrap(), 77);
    }

    #[test]
    fn destroy_clears_registry() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        PmRt::destroy(&mut a);
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::NotFound(_))));
    }
}
