//! The runtime: named persistent roots, `PPtr<T>`, log-structured commit.
//!
//! Since the log-structured region rework, a commit no longer rewrites
//! the whole object table: it appends one checksummed **commit record**
//! (a table *delta* plus a pointer to the previous commit record) to the
//! circular log the blobs themselves live in, and publishes it with the
//! same single atomic 8-byte root store as before. Every
//! [`CHECKPOINT_EVERY`] commits a full-table checkpoint record cuts the
//! chain so recovery walks a bounded number of records.
//!
//! Since the multi-tenant service redesign the public verbs return the
//! workspace [`PmError`] taxonomy; [`RtError`] survives as the low-level
//! codec error (what [`PmData`](crate::data::PmData) decoding reports)
//! and converts losslessly via `From`.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;

use pm_octree::PmError;
use pmoctree_nvbm::{NvbmArena, POffset, HEADER_SIZE};

use crate::data::{ByteReader, ByteWriter, PmData};
use crate::heap::LogHeap;
use crate::log::{
    encode_pad, encode_record, fnv1a32, record_size, RecordKind, LOG_MAGIC, REC_HEADER, REC_TRAILER,
};

/// A full-table checkpoint record is written every this many commits,
/// bounding both the recovery chain walk and the lifetime of chain
/// records in the ring.
pub const CHECKPOINT_EVERY: usize = 8;

/// Hard ceiling on the recovery chain walk — far above any chain a
/// healthy log can produce, so a corrupted `prev` loop reports instead
/// of spinning.
const MAX_CHAIN: usize = 64;

/// Ring occupancy above which the commit-time compaction pass keeps
/// relocating tail blobs (below it, one rotation per commit suffices).
pub const COMPACT_WATERMARK: f64 = 0.5;

/// Upper bound on blobs the compaction pass relocates per commit.
const MAX_COMPACT: usize = 8;

/// Codec-layer errors. Every decode/validation failure is reported,
/// never panicked — the input is post-crash media. Public runtime verbs
/// fold these into [`PmError`]; only [`PmData`](crate::data::PmData)
/// implementations still speak `RtError` directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// On-media bytes failed validation (bad magic, truncation, overlap).
    Corrupt(String),
    /// The runtime heap cannot satisfy an allocation.
    Full(String),
    /// No committed object table / no such named root.
    Missing(String),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Corrupt(m) => write!(f, "corrupt rt state: {m}"),
            RtError::Full(m) => write!(f, "rt heap full: {m}"),
            RtError::Missing(m) => write!(f, "missing: {m}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<RtError> for PmError {
    fn from(e: RtError) -> Self {
        match e {
            RtError::Corrupt(m) => PmError::Corrupt(m),
            RtError::Missing(m) => PmError::NotFound(m),
            RtError::Full(m) => PmError::Recovery(m),
        }
    }
}

/// A typed persistent pointer: an arena-relative offset plus the payload
/// length, never a raw address. Obtained from [`PmRt::stage`] or
/// [`PmRt::resolve`]; resolved (and re-validated) against the arena on
/// every use, so a restore "swizzles" automatically — there is nothing
/// absolute to fix up.
pub struct PPtr<T> {
    off: u64,
    len: u32,
    _t: PhantomData<fn() -> T>,
}

// Manual impls: `derive` would bound them on `T`, but a PPtr is Copy/Eq
// regardless of the pointee.
impl<T> Clone for PPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PPtr<T> {}
impl<T> PartialEq for PPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.off == other.off && self.len == other.len
    }
}
impl<T> Eq for PPtr<T> {}
impl<T> std::fmt::Debug for PPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PPtr({:#x}+{})", self.off, self.len)
    }
}

impl<T> PPtr<T> {
    /// Arena-relative offset of the object blob.
    pub fn offset(&self) -> u64 {
        self.off
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Is the payload empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn from_entry(e: Entry) -> Self {
        PPtr { off: e.off, len: e.len, _t: PhantomData }
    }
}

/// Magic tag at the head of every object blob.
pub(crate) const OBJ_MAGIC: u32 = 0x504d_5254; // "PMRT"
/// Object blob header: `[u32 magic][u32 payload len]`.
pub(crate) const OBJ_HEADER: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    pub(crate) off: u64,
    pub(crate) len: u32,
}

impl Entry {
    /// The blob's full ring footprint: log record header + object blob
    /// (header + payload) + checksum trailer, 8-byte aligned.
    pub(crate) fn footprint(&self) -> usize {
        record_size(OBJ_HEADER + self.len as usize)
    }

    /// Offset of the log record wrapping this blob (`off` points at the
    /// object header *inside* the record, one record header below).
    pub(crate) fn record_off(&self) -> u64 {
        self.off - REC_HEADER as u64
    }
}

/// The blob record footprint a payload of `encoded_len` bytes will
/// occupy in the ring — the quota currency (Circ-Tree's bytes-written).
pub fn blob_footprint(encoded_len: usize) -> usize {
    record_size(OBJ_HEADER + encoded_len)
}

/// The orthogonal-persistence runtime.
///
/// The runtime does not own the arena — verbs borrow it, so the octree
/// and the runtime share one device. The volatile side is a name → entry
/// map plus the ring bookkeeping; the persistent side is the commit
/// chain named by the `rt_root` header slot.
///
/// Two views of the registry coexist: the **staged** table (what the next
/// commit will publish) and the **committed** table (what the current
/// `rt_root` names). MVCC [`Snapshot`](crate::mvcc::Snapshot) handles pin
/// the committed view at an epoch: blobs a later commit supersedes are
/// *deferred*, not freed, until no snapshot older than their retirement
/// epoch remains (see [`PmRt::collect`]) — a pinned blob is never
/// relocated out from under its readers, because relocation writes a
/// *new* copy and retires the old one through exactly this deferral.
pub struct PmRt {
    /// Staged view: name → entry as of the next commit.
    table: BTreeMap<String, Entry>,
    /// Committed view: name → entry as published by `rt_root`.
    committed: BTreeMap<String, Entry>,
    heap: LogHeap,
    epoch: u64,
    /// Record offsets of committed blobs superseded since the last
    /// commit. They back the *committed* table until the next root swap,
    /// so they are deferred (then freed) only after it.
    retired: Vec<u64>,
    /// Records retired by the commit that produced epoch `e` — still
    /// reachable from pinned root-table versions older than `e`. Freed by
    /// [`PmRt::collect`] once `min_pinned >= e` (or no pins remain).
    deferred: Vec<(u64, u64)>,
    /// Offsets of the live commit-record chain, oldest (the checkpoint)
    /// first. Retired wholesale when the next checkpoint cuts a new
    /// chain.
    chain: Vec<u64>,
    /// Regions written since the last commit, for replica delta shipping.
    staged: Vec<(u64, u32)>,
    /// For every name modified since the last commit: the committed-time
    /// entry it had (`None` = name did not exist). Drives both
    /// [`PmRt::revert_staged_prefix`] and the commit record's delta.
    staged_origin: BTreeMap<String, Option<Entry>>,
}

impl PmRt {
    /// `pm_create` for the runtime: initialize an empty registry on a
    /// formatted arena and commit it (a checkpoint record), so a crash at
    /// any later point can [`PmRt::restore`]. The ring starts empty at
    /// the arena top and grows downward on demand.
    pub fn create(arena: &mut NvbmArena) -> Result<Self, PmError> {
        let _s = arena.span("rt::create");
        let top = arena.rt_heap_top();
        let limit = arena.live_bump().max(HEADER_SIZE);
        let mut rt = PmRt {
            table: BTreeMap::new(),
            committed: BTreeMap::new(),
            heap: LogHeap::new(limit, top),
            epoch: 0,
            retired: Vec::new(),
            deferred: Vec::new(),
            chain: Vec::new(),
            staged: Vec::new(),
            staged_origin: BTreeMap::new(),
        };
        arena.publish_rt_floor(rt.heap.floor());
        // Carry the bootstrap commit's regions forward instead of
        // dropping them: the caller never saw this commit, and a replica
        // shipping per-commit deltas must not end up with a hole where
        // the chain's first checkpoint record lives.
        let bootstrap = rt.commit(arena)?;
        rt.staged = bootstrap;
        Ok(rt)
    }

    /// `pm_restore` for the runtime: walk the commit-record chain from
    /// the durable root pointer (every record checksum-validated), replay
    /// the deltas oldest→newest, validate ("swizzle") every surviving
    /// entry against the arena, and re-seat the ring around the live
    /// records. Fails with [`PmError::NotFound`] if no chain was ever
    /// committed.
    pub fn restore(arena: &mut NvbmArena) -> Result<Self, PmError> {
        Self::restore_inner(arena).map_err(PmError::from)
    }

    fn restore_inner(arena: &mut NvbmArena) -> Result<Self, RtError> {
        let _s = arena.span("rt::swizzle");
        let root = arena.rt_root();
        if root.is_null() {
            return Err(RtError::Missing("no committed rt commit chain".into()));
        }
        let top = arena.rt_heap_top();
        // Chain walk, newest → oldest. Torn appends past the last durable
        // root swap are simply never reached: the chain only names
        // records that were flushed before their root swap.
        let mut walked: Vec<(u64, CommitPayload, usize)> = Vec::new();
        let mut off = root.0;
        let mut newer_epoch = u64::MAX;
        loop {
            let (payload, size) = read_commit_record(arena, off, top)?;
            let rec = parse_commit_payload(&payload)?;
            if rec.epoch >= newer_epoch {
                return Err(RtError::Corrupt(format!(
                    "commit chain epoch {} does not decrease at {off:#x}",
                    rec.epoch
                )));
            }
            newer_epoch = rec.epoch;
            let prev = rec.prev;
            walked.push((off, rec, size));
            if prev == 0 {
                break;
            }
            if walked.len() >= MAX_CHAIN {
                return Err(RtError::Corrupt(format!("commit chain longer than {MAX_CHAIN}")));
            }
            off = prev;
        }
        let epoch = walked[0].1.epoch;
        // Replay oldest → newest.
        let mut table: BTreeMap<String, Entry> = BTreeMap::new();
        for (_, rec, _) in walked.iter().rev() {
            for (name, e) in &rec.upserts {
                table.insert(name.clone(), *e);
            }
            for name in &rec.removes {
                table.remove(name);
            }
        }
        // Swizzle pass: every persistent pointer must name a well-formed
        // blob before anything dereferences it. Heap blobs live strictly
        // below the flight-recorder ring, so bounds-check against the
        // heap top, not the raw device capacity.
        for (name, e) in &table {
            if e.off < REC_HEADER as u64 {
                return Err(RtError::Corrupt(format!("root {name:?}: blob below record header")));
            }
            check_bounds(top, e.off, e.len)
                .map_err(|m| RtError::Corrupt(format!("root {name:?}: {m}")))?;
            validate_blob_header(arena, e.off, e.len)
                .map_err(|m| RtError::Corrupt(format!("root {name:?}: {m}")))?;
        }
        arena.failpoint("rt::swizzle");

        let limit = arena.live_bump().max(HEADER_SIZE);
        let floor_hint = arena.rt_bump_hint();
        let live = table
            .values()
            .map(|e| (POffset(e.record_off()), e.footprint() as u64))
            .chain(walked.iter().map(|(o, _, size)| (POffset(*o), *size as u64)));
        let heap = LogHeap::rebuild(limit, top, floor_hint, live)?;
        arena.publish_rt_floor(heap.floor());
        let chain: Vec<u64> = walked.iter().rev().map(|(o, _, _)| *o).collect();
        Ok(PmRt {
            committed: table.clone(),
            table,
            heap,
            epoch,
            retired: Vec::new(),
            deferred: Vec::new(),
            chain,
            staged: Vec::new(),
            staged_origin: BTreeMap::new(),
        })
    }

    /// `pm_delete` for the runtime: clear the persistent registry (the
    /// header slots; log space is reclaimed implicitly, nothing is
    /// scrubbed). Outstanding MVCC snapshots are invalidated — their
    /// epochs no longer exist.
    pub fn destroy(arena: &mut NvbmArena) {
        arena.set_rt_root(POffset(0));
        arena.set_rt_bump_hint(0);
        arena.publish_rt_floor(arena.rt_heap_top());
        arena.rt_pins().invalidate();
    }

    /// Append a record to the ring against the *live* octree bump: the
    /// octree grows its territory between runtime calls, so the boundary
    /// is refreshed on every allocation and the new floor published back
    /// — the two allocators sharing the arena can fail, never overlap.
    /// Writes the wrap-gap pad header when the head wraps.
    fn append_record(
        &mut self,
        arena: &mut NvbmArena,
        kind: RecordKind,
        payload: &[u8],
    ) -> Result<(u64, usize), RtError> {
        let size = record_size(payload.len());
        self.heap.set_limit(arena.live_bump().max(HEADER_SIZE));
        let p = self.heap.alloc(size)?;
        if let Some((pad_off, skip)) = self.heap.take_pending_pad() {
            arena.write(pad_off, &encode_pad(self.heap.next_seq(), skip as usize));
            self.staged.push((pad_off, REC_HEADER as u32));
        }
        let seq = self.heap.next_seq();
        arena.write(p.0, &encode_record(seq, kind, payload));
        arena.publish_rt_floor(self.heap.floor());
        Ok((p.0, size))
    }

    /// Stage `value` under `name` (copy-on-write: a fresh blob record,
    /// never an in-place update of anything durable). Durable only after
    /// the next [`PmRt::commit`].
    pub fn stage<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        name: &str,
        value: &T,
    ) -> Result<PPtr<T>, PmError> {
        self.stage_inner(arena, name, value).map_err(PmError::from)
    }

    fn stage_inner<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        name: &str,
        value: &T,
    ) -> Result<PPtr<T>, RtError> {
        let payload = value.to_bytes();
        let e = self.stage_bytes(arena, name, &payload)?;
        Ok(PPtr { off: e.off, len: e.len, _t: PhantomData })
    }

    /// Stage raw payload bytes under `name`. A rewrite of a root already
    /// staged in this window reuses its record slot in place when the
    /// footprint matches — an uncommitted record is invisible to both
    /// snapshots and crash recovery, so nothing durable is updated in
    /// place, and staged churn does not eat ring space.
    fn stage_bytes(
        &mut self,
        arena: &mut NvbmArena,
        name: &str,
        payload: &[u8],
    ) -> Result<Entry, RtError> {
        let len = u32::try_from(payload.len())
            .map_err(|_| RtError::Full(format!("object {name:?} over 4 GiB")))?;
        let blob_len = OBJ_HEADER + payload.len();
        let mut blob = Vec::with_capacity(blob_len);
        let mut w = ByteWriter::new(&mut blob);
        w.u32(OBJ_MAGIC);
        w.u32(len);
        blob.extend_from_slice(payload);
        if let Some(&cur) = self.table.get(name) {
            let staged_only = self.committed.get(name) != Some(&cur);
            if staged_only && cur.footprint() == record_size(blob.len()) {
                let seq = self.heap.next_seq();
                arena.write(cur.record_off(), &encode_record(seq, RecordKind::Blob, &blob));
                let e = Entry { off: cur.off, len };
                self.note_origin(name);
                self.table.insert(name.to_string(), e);
                return Ok(e);
            }
        }
        let (rec_off, size) = self.append_record(arena, RecordKind::Blob, &blob)?;
        self.staged.push((rec_off, size as u32));
        self.note_origin(name);
        let e = Entry { off: rec_off + REC_HEADER as u64, len };
        if let Some(old) = self.table.insert(name.to_string(), e) {
            self.supersede(name, old);
        }
        Ok(e)
    }

    /// Read the current value of a named root (staged or committed).
    /// `Ok(None)` if the name is not registered.
    pub fn load<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        name: &str,
    ) -> Result<Option<T>, PmError> {
        let Some(&e) = self.table.get(name) else {
            return Ok(None);
        };
        self.load_ptr(arena, PPtr::from_entry(e)).map(Some)
    }

    /// The persistent pointer currently registered under `name`.
    pub fn resolve<T: PmData>(&self, name: &str) -> Option<PPtr<T>> {
        self.table.get(name).map(|&e| PPtr::from_entry(e))
    }

    /// Dereference a persistent pointer: validate the blob header, read
    /// the payload, decode.
    pub fn load_ptr<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        ptr: PPtr<T>,
    ) -> Result<T, PmError> {
        self.load_ptr_inner(arena, ptr).map_err(PmError::from)
    }

    fn load_ptr_inner<T: PmData>(
        &mut self,
        arena: &mut NvbmArena,
        ptr: PPtr<T>,
    ) -> Result<T, RtError> {
        check_bounds(arena.rt_heap_top(), ptr.off, ptr.len)?;
        let payload = read_blob(arena, ptr.off, Some(ptr.len))?;
        T::from_bytes(&payload)
    }

    /// Unregister a named root. A committed blob is reclaimed after the
    /// next commit (or deferred while snapshots pin it); a blob staged in
    /// this window is reclaimed immediately. Returns whether the name
    /// existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        match self.table.remove(name) {
            Some(e) => {
                self.note_origin(name);
                self.supersede(name, e);
                true
            }
            None => false,
        }
    }

    /// Record the committed-time entry for `name` on its first
    /// modification in this commit window.
    fn note_origin(&mut self, name: &str) {
        if !self.staged_origin.contains_key(name) {
            self.staged_origin.insert(name.to_string(), self.committed.get(name).copied());
        }
    }

    /// A staged or committed blob under `name` was replaced or removed.
    /// Committed blobs retire (snapshot readers may still need them);
    /// blobs staged in this window were never snapshot-visible and die on
    /// the spot, letting the ring tail sweep them.
    fn supersede(&mut self, name: &str, old: Entry) {
        if self.committed.get(name) == Some(&old) {
            self.retired.push(old.record_off());
        } else {
            self.heap.mark_dead(old.record_off());
        }
    }

    /// `pm_persistent` for the runtime: append one commit record (a table
    /// delta chained to the previous commit, or a full checkpoint every
    /// [`CHECKPOINT_EVERY`] commits), flush everything staged, and
    /// publish the record with one atomic 8-byte header store — the same
    /// root-swap commit point as the octree's persist, firing the
    /// `rt::commit` failpoint. The wear-leveling and compaction passes
    /// run first (failpoints `wear::relocate` / `heap::compact`), and the
    /// record append fires `heap::append`. Returns the regions written
    /// since the previous commit (blobs, pads, the commit record), for
    /// replica delta shipping.
    ///
    /// Blobs the new commit supersedes are reclaimed immediately when no
    /// MVCC snapshot pins an older epoch, and deferred to
    /// [`PmRt::collect`] otherwise.
    pub fn commit(&mut self, arena: &mut NvbmArena) -> Result<Vec<(u64, u32)>, PmError> {
        // Committed bytes (commit record, flushed staged blobs) are
        // charged to the `rt::commit` phase; restore the caller's phase on
        // every exit, including errors.
        let prev_phase = arena.set_phase("rt::commit");
        let r = self.commit_inner(arena).map_err(PmError::from);
        arena.set_phase(prev_phase);
        r
    }

    fn commit_inner(&mut self, arena: &mut NvbmArena) -> Result<Vec<(u64, u32)>, RtError> {
        let _s = arena.span("rt::commit");
        self.wear_pass(arena)?;
        self.compact_pass(arena)?;
        self.epoch += 1;
        // Checkpoint on schedule. Old chain records left behind by the
        // cut are dead islands the next-fit allocator walks over, so a
        // wrapped log needs no early cut — the delta chain keeps paying
        // off in steady state.
        let checkpoint = self.chain.is_empty() || self.chain.len() >= CHECKPOINT_EVERY;
        let prev = if checkpoint { 0 } else { *self.chain.last().expect("chain non-empty") };
        let payload = self.build_commit_payload(checkpoint, prev);
        arena.failpoint("heap::append");
        let (rec_off, size) = self.append_record(arena, RecordKind::Commit, &payload)?;
        self.staged.push((rec_off, size as u32));
        // Persist the ring floor *before* the swap: a stale floor after a
        // crash wastes space below the clamped floor, never corrupts.
        arena.set_rt_bump_hint(self.heap.floor());
        // Destination matters: the record and blobs must be on media
        // before anything names them.
        arena.flush_all();
        arena.set_rt_root(POffset(rec_off)); // THE commit point (atomic 8-byte store)
        arena.failpoint("rt::commit");
        // Post-swap bookkeeping. A checkpoint makes the old chain
        // unreachable from the durable root: those records die now (no
        // snapshot ever dereferences a chain record — pins only protect
        // blobs). Superseded committed blobs defer until unpinned.
        if checkpoint {
            for off in self.chain.drain(..) {
                self.heap.mark_dead(off);
            }
        }
        self.chain.push(rec_off);
        let retired_at = self.epoch;
        for off in self.retired.drain(..) {
            self.deferred.push((retired_at, off));
        }
        self.collect_inner(arena.rt_pins().min_pinned());
        self.committed = self.table.clone();
        self.staged_origin.clear();
        arena.publish_rt_floor(self.heap.floor());
        Ok(std::mem::take(&mut self.staged))
    }

    /// Serialize the commit record payload: epoch, previous-record
    /// pointer, then either the full table (checkpoint) or the delta the
    /// staged window produced.
    fn build_commit_payload(&self, checkpoint: bool, prev: u64) -> Vec<u8> {
        let mut upserts: Vec<(&str, Entry)> = Vec::new();
        let mut removes: Vec<&str> = Vec::new();
        if checkpoint {
            upserts.extend(self.table.iter().map(|(n, e)| (n.as_str(), *e)));
        } else {
            for name in self.staged_origin.keys() {
                match self.table.get(name) {
                    Some(e) => upserts.push((name.as_str(), *e)),
                    None => {
                        if self.committed.contains_key(name) {
                            removes.push(name.as_str());
                        }
                    }
                }
            }
        }
        let mut payload = Vec::new();
        let mut w = ByteWriter::new(&mut payload);
        w.u64(self.epoch);
        w.u64(prev);
        w.u64(upserts.len() as u64);
        w.u64(removes.len() as u64);
        for (name, e) in &upserts {
            name.to_string().encode(&mut payload);
            let mut w = ByteWriter::new(&mut payload);
            w.u64(e.off);
            w.u32(e.len);
        }
        for name in &removes {
            name.to_string().encode(&mut payload);
        }
        payload
    }

    /// Wear-leveling pass: relocate the committed, un-restaged blob whose
    /// record sits on the hottest (highest effective-wear) block toward
    /// the log head — the coldest place by construction, since appends
    /// spread over the whole ring. Runs at every commit so the sweep
    /// always exercises the `wear::relocate` opportunity.
    fn wear_pass(&mut self, arena: &mut NvbmArena) -> Result<(), RtError> {
        let _s = arena.span("wear::relocate");
        arena.failpoint("wear::relocate");
        let mut best: Option<(u32, String)> = None;
        for (name, e) in &self.committed {
            if self.table.get(name) != Some(e) {
                continue; // modified this window; its old blob retires anyway
            }
            let w = arena.stats.block_wear(e.record_off());
            if best.as_ref().is_none_or(|(bw, _)| w > *bw) {
                best = Some((w, name.clone()));
            }
        }
        if let Some((w, name)) = best {
            if w > 0 {
                match self.relocate(arena, &name) {
                    // A full ring just means no headroom to level into;
                    // the commit itself must not fail over optional GC.
                    Err(RtError::Full(_)) => {}
                    other => other?,
                }
            }
        }
        Ok(())
    }

    /// Compaction pass: rotate the ring by relocating the oldest
    /// committed, un-restaged blob to the head (freeing the tail to sweep
    /// over dead records behind it), and keep going while occupancy stays
    /// above [`COMPACT_WATERMARK`], up to [`MAX_COMPACT`] blobs.
    fn compact_pass(&mut self, arena: &mut NvbmArena) -> Result<(), RtError> {
        let _s = arena.span("heap::compact");
        arena.failpoint("heap::compact");
        let mut moved = 0usize;
        while moved < MAX_COMPACT {
            if moved > 0 && self.heap.occupancy() < COMPACT_WATERMARK {
                break;
            }
            let Some(name) = self.oldest_relocatable() else { break };
            match self.relocate(arena, &name) {
                Err(RtError::Full(_)) => break,
                other => other?,
            }
            moved += 1;
        }
        if moved > 0 {
            arena.tracer.counter_add("rt.compact.relocated", moved as u64);
        }
        Ok(())
    }

    /// The committed, un-restaged blob closest to the ring tail, if any.
    fn oldest_relocatable(&self) -> Option<String> {
        let by_rec: BTreeMap<u64, &String> = self
            .committed
            .iter()
            .filter(|(n, e)| self.table.get(*n) == Some(*e))
            .map(|(n, e)| (e.record_off(), n))
            .collect();
        if by_rec.is_empty() {
            return None;
        }
        self.heap.ring_live().find_map(|off| by_rec.get(&off).map(|n| (*n).clone()))
    }

    /// Relocate a committed blob: re-stage a byte-identical copy at the
    /// log head and retire the old record through the standard
    /// supersede → defer → collect path, so pinned snapshots keep reading
    /// the original bytes until their pins drop.
    fn relocate(&mut self, arena: &mut NvbmArena, name: &str) -> Result<(), RtError> {
        let Some(&e) = self.table.get(name) else {
            return Ok(());
        };
        let payload = read_blob(arena, e.off, Some(e.len))?;
        let old_rec = e.record_off();
        self.stage_bytes(arena, name, &payload)?;
        arena.stats.note_relocation(old_rec, e.footprint());
        arena.tracer.counter_add("rt.wear.relocations", 1);
        Ok(())
    }

    /// GC pass over deferred frees: reclaim every record whose retirement
    /// epoch is no longer protected by a snapshot pin. Runs implicitly at
    /// every commit; call explicitly after dropping snapshots to recover
    /// space without committing. Returns the number of records freed.
    pub fn collect(&mut self, arena: &mut NvbmArena) -> usize {
        let n = self.collect_inner(arena.rt_pins().min_pinned());
        arena.publish_rt_floor(self.heap.floor());
        n
    }

    /// A blob retired by the commit that produced epoch `e` is still live
    /// in every table version `< e`; a pin at snapshot epoch `s` protects
    /// exactly the blobs with `e > s`. So `(e, blob)` is freeable iff no
    /// pin `s < e` remains — i.e. `min_pinned` is absent or `e <= min`.
    fn collect_inner(&mut self, min_pinned: Option<u64>) -> usize {
        let deferred = std::mem::take(&mut self.deferred);
        let mut freed = 0;
        for (e, off) in deferred {
            if min_pinned.is_none_or(|m| e <= m) {
                self.heap.mark_dead(off);
                freed += 1;
            } else {
                self.deferred.push((e, off));
            }
        }
        freed
    }

    /// Undo every staged (uncommitted) modification whose root name
    /// starts with `prefix`: staged records are reclaimed, replaced or
    /// removed committed entries are reinstated, and their pending
    /// retirements cancelled. The service layer uses this to make a
    /// tenant's batch all-or-nothing. Returns the number of roots
    /// reverted.
    pub fn revert_staged_prefix(&mut self, prefix: &str) -> usize {
        let names: Vec<String> =
            self.staged_origin.keys().filter(|n| n.starts_with(prefix)).cloned().collect();
        for name in &names {
            let origin = self.staged_origin.remove(name).flatten();
            // Reclaim the record currently staged under the name (if the
            // name still resolves and it is not the committed blob).
            if let Some(&cur) = self.table.get(name) {
                if self.committed.get(name) != Some(&cur) {
                    self.heap.mark_dead(cur.record_off());
                }
            }
            match origin {
                Some(e) => {
                    self.table.insert(name.clone(), e);
                    // Cancel the pending retirement: the committed blob
                    // is reachable again.
                    if let Some(i) = self.retired.iter().position(|&o| o == e.record_off()) {
                        self.retired.swap_remove(i);
                    }
                }
                None => {
                    self.table.remove(name);
                }
            }
        }
        names.len()
    }

    /// Ring bytes (full record footprints) currently charged to roots
    /// whose name starts with `prefix` — the staged view, so a quota
    /// check sees writes from the current batch. This is the service
    /// layer's quota currency.
    pub fn prefix_usage(&self, prefix: &str) -> u64 {
        self.table
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, e)| e.footprint() as u64)
            .sum()
    }

    /// The staged entry's ring footprint for one name (0 if absent).
    pub(crate) fn entry_footprint(&self, name: &str) -> u64 {
        self.table.get(name).map_or(0, |e| e.footprint() as u64)
    }

    /// Committed table entries whose name starts with `prefix` (what an
    /// MVCC snapshot captures).
    pub(crate) fn committed_with_prefix(&self, prefix: &str) -> BTreeMap<String, Entry> {
        self.committed
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, e)| (n.clone(), *e))
            .collect()
    }

    /// Committed table epoch (increments at every commit).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of named roots (staged view).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Registered root names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.table.keys().map(String::as_str)
    }

    /// Registered root names starting with `prefix`, sorted.
    pub fn names_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.table.keys().map(String::as_str).filter(move |n| n.starts_with(prefix))
    }

    /// The runtime ring floor (lowest arena byte the runtime owns).
    pub fn heap_floor(&self) -> u64 {
        self.heap.floor()
    }

    /// Records awaiting a pin release before they can be reclaimed.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Live commit-chain length (1 right after a checkpoint).
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Ring occupancy (live bytes over window) — the compaction
    /// watermark input, surfaced for the wear-leveling bench.
    pub fn log_occupancy(&self) -> f64 {
        self.heap.occupancy()
    }

    /// Current ring window size in bytes.
    pub fn log_window(&self) -> u64 {
        self.heap.window()
    }

    /// Number of times the ring head has wrapped.
    pub fn log_laps(&self) -> u64 {
        self.heap.laps()
    }
}

/// A parsed commit record payload.
struct CommitPayload {
    epoch: u64,
    prev: u64,
    upserts: Vec<(String, Entry)>,
    removes: Vec<String>,
}

/// Read and checksum-validate the commit record at `off` (bounds-checked
/// against the rt heap top). Returns the payload and the record's ring
/// footprint.
fn read_commit_record(
    arena: &mut NvbmArena,
    off: u64,
    top: u64,
) -> Result<(Vec<u8>, usize), RtError> {
    let hdr_end = off.checked_add(REC_HEADER as u64).ok_or_else(|| {
        RtError::Corrupt(format!("commit record at {off:#x} wraps the address space"))
    })?;
    if off < HEADER_SIZE || hdr_end > top {
        return Err(RtError::Corrupt(format!(
            "commit record header at {off:#x} outside the rt region"
        )));
    }
    let mut h = [0u8; REC_HEADER];
    arena.read(off, &mut h);
    let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
    if magic != LOG_MAGIC {
        return Err(RtError::Corrupt(format!("bad log record magic {magic:#x} at {off:#x}")));
    }
    let len = u32::from_le_bytes([h[4], h[5], h[6], h[7]]) as usize;
    match RecordKind::from_u8(h[16]) {
        Some(RecordKind::Commit) => {}
        k => {
            return Err(RtError::Corrupt(format!(
                "record at {off:#x} is {k:?}, expected a commit record"
            )))
        }
    }
    let size = record_size(len);
    if off.checked_add(size as u64).is_none_or(|end| end > top) {
        return Err(RtError::Corrupt(format!(
            "commit record at {off:#x} ({size} bytes) past the rt region top {top:#x}"
        )));
    }
    let mut body = vec![0u8; len + REC_TRAILER];
    arena.read(off + REC_HEADER as u64, &mut body);
    let mut hp = Vec::with_capacity(REC_HEADER + len);
    hp.extend_from_slice(&h);
    hp.extend_from_slice(&body[..len]);
    let want = fnv1a32(&hp);
    let got = u32::from_le_bytes([body[len], body[len + 1], body[len + 2], body[len + 3]]);
    if want != got {
        return Err(RtError::Corrupt(format!("commit record checksum mismatch at {off:#x}")));
    }
    body.truncate(len);
    Ok((body, size))
}

/// Parse a commit record payload (bounds-checked; duplicate names within
/// one record are corruption).
fn parse_commit_payload(payload: &[u8]) -> Result<CommitPayload, RtError> {
    let mut r = ByteReader::new(payload);
    let epoch = r.u64()?;
    let prev = r.u64()?;
    let nup = r.u64()?;
    let nrm = r.u64()?;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut upserts = Vec::new();
    for _ in 0..nup {
        let name = String::decode(&mut r)?;
        let off = r.u64()?;
        let len = r.u32()?;
        if !seen.insert(name.clone()) {
            return Err(RtError::Corrupt(format!("duplicate root name {name:?} in commit record")));
        }
        upserts.push((name, Entry { off, len }));
    }
    let mut removes = Vec::new();
    for _ in 0..nrm {
        let name = String::decode(&mut r)?;
        if !seen.insert(name.clone()) {
            return Err(RtError::Corrupt(format!("duplicate root name {name:?} in commit record")));
        }
        removes.push(name);
    }
    if !r.is_empty() {
        return Err(RtError::Corrupt("trailing bytes after commit record payload".into()));
    }
    Ok(CommitPayload { epoch, prev, upserts, removes })
}

fn check_bounds(cap: u64, off: u64, len: u32) -> Result<(), RtError> {
    let end = off
        .checked_add(OBJ_HEADER as u64 + len as u64)
        .ok_or_else(|| RtError::Corrupt(format!("blob at {off:#x} wraps the address space")))?;
    if off < HEADER_SIZE || end > cap {
        return Err(RtError::Corrupt(format!("blob [{off:#x}, {end:#x}) outside arena")));
    }
    Ok(())
}

/// Validate an object blob header without reading the payload (the cheap
/// swizzle check: one cacheline).
fn validate_blob_header(arena: &mut NvbmArena, off: u64, want_len: u32) -> Result<(), String> {
    let mut h = [0u8; OBJ_HEADER];
    arena.read(off, &mut h);
    let magic = u32::from_le_bytes(h[0..4].try_into().map_err(|_| "header")?);
    let len = u32::from_le_bytes(h[4..8].try_into().map_err(|_| "header")?);
    if magic != OBJ_MAGIC {
        return Err(format!("bad object magic {magic:#x} at {off:#x}"));
    }
    if len != want_len {
        return Err(format!("length mismatch at {off:#x}: blob says {len}, table says {want_len}"));
    }
    Ok(())
}

/// Read an object blob's payload, validating the header. `want_len`
/// cross-checks a table entry when available.
pub(crate) fn read_blob(
    arena: &mut NvbmArena,
    off: u64,
    want_len: Option<u32>,
) -> Result<Vec<u8>, RtError> {
    let cap = arena.rt_heap_top();
    // Checked add: a corrupted root near u64::MAX must report, not wrap
    // past the bound and panic inside the arena read.
    if off.checked_add(OBJ_HEADER as u64).is_none_or(|end| end > cap) {
        return Err(RtError::Corrupt(format!("blob header at {off:#x} outside arena")));
    }
    let mut h = [0u8; OBJ_HEADER];
    arena.read(off, &mut h);
    let magic = u32::from_le_bytes(h[0..4].try_into().unwrap_or([0; 4]));
    let len = u32::from_le_bytes(h[4..8].try_into().unwrap_or([0; 4]));
    if magic != OBJ_MAGIC {
        return Err(RtError::Corrupt(format!("bad object magic {magic:#x} at {off:#x}")));
    }
    if let Some(want) = want_len {
        if len != want {
            return Err(RtError::Corrupt(format!(
                "length mismatch at {off:#x}: blob says {len}, pointer says {want}"
            )));
        }
    }
    check_bounds(cap, off, len)?;
    let mut payload = vec![0u8; len as usize];
    arena.read(off + OBJ_HEADER as u64, &mut payload);
    Ok(payload)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::data::PmData;
    use pmoctree_nvbm::{CrashMode, DeviceModel, FailPlan};

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 20, DeviceModel::default())
    }

    /// A little application-state struct, as a non-octree PmData example.
    #[derive(Debug, Clone, PartialEq)]
    struct RunState {
        step: u64,
        t: f64,
        tag: String,
    }

    impl PmData for RunState {
        fn encode(&self, out: &mut Vec<u8>) {
            self.step.encode(out);
            self.t.encode(out);
            self.tag.encode(out);
        }
        fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
            Ok(RunState { step: u64::decode(r)?, t: f64::decode(r)?, tag: String::decode(r)? })
        }
    }

    #[test]
    fn stage_commit_restore_roundtrip() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let st = RunState { step: 12, t: 0.25, tag: "droplet".into() };
        rt.stage(&mut a, "run", &st).unwrap();
        rt.stage(&mut a, "answer", &42u64).unwrap();
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<RunState>(&mut a, "run").unwrap(), Some(st));
        assert_eq!(r.load::<u64>(&mut a, "answer").unwrap(), Some(42));
        assert_eq!(r.load::<u64>(&mut a, "nope").unwrap(), None);
    }

    #[test]
    fn uncommitted_stage_is_lost_committed_survives() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        rt.stage(&mut a, "x", &2u64).unwrap(); // staged, not committed
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "x").unwrap(), Some(1));
    }

    #[test]
    fn crash_armed_at_every_opportunity_recovers_old_or_new() {
        // Count the opportunities of one stage+commit, then crash at each
        // one under every mode: restore must see x == 1 or x == 2, and
        // the commit, append, compaction and wear failpoints must all be
        // among the opportunities.
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        let before = a.clone_media();
        a.set_fail_plan(FailPlan::count());
        rt.stage(&mut a, "x", &2u64).unwrap();
        rt.commit(&mut a).unwrap();
        let plan = a.take_fail_plan().expect("plan installed");
        let n = plan.opportunities();
        assert!(n > 0);
        for want in ["rt::commit", "heap::append", "heap::compact", "wear::relocate"] {
            assert!(
                plan.labels().iter().any(|(_, l)| *l == want),
                "{want} must be a labelled opportunity"
            );
        }
        for mode in [
            CrashMode::LoseDirty,
            CrashMode::CommitRandom { p: 0.5, seed: 7 },
            CrashMode::TornWrite { seed: 7 },
        ] {
            for at in 1..=n {
                let mut b = NvbmArena::new(1 << 20, DeviceModel::default());
                b.restore_media(&before);
                let mut rtb = PmRt::restore(&mut b).unwrap();
                b.set_fail_plan(FailPlan::armed(at, mode));
                rtb.stage(&mut b, "x", &2u64).unwrap();
                let _ = rtb.commit(&mut b);
                if let Some(cap) = b.take_fail_plan().and_then(|mut p| p.take_capture()) {
                    let mut c = NvbmArena::from_media(cap.media, DeviceModel::default());
                    let mut rec = PmRt::restore(&mut c).unwrap();
                    let x = rec.load::<u64>(&mut c, "x").unwrap();
                    assert!(
                        x == Some(1) || x == Some(2),
                        "crash at {at}/{n} under {mode:?} saw {x:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn restore_fires_swizzle_failpoint() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        a.set_fail_plan(FailPlan::count());
        let _ = PmRt::restore(&mut a).unwrap();
        let plan = a.take_fail_plan().expect("plan");
        assert!(plan.labels().iter().any(|(_, l)| *l == "rt::swizzle"));
    }

    #[test]
    fn restore_on_blank_arena_is_not_found() {
        let mut a = arena();
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::NotFound(_))));
    }

    #[test]
    fn corrupt_table_pointer_is_err_not_panic() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        // Point rt_root into the weeds.
        a.set_rt_root(POffset(a.capacity() as u64 - 8));
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::Corrupt(_))));
        a.set_rt_root(POffset(HEADER_SIZE));
        assert!(PmRt::restore(&mut a).is_err());
    }

    #[test]
    fn corrupt_root_near_u64_max_is_err_not_panic() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        // A torn header write can leave rt_root near u64::MAX; the bound
        // check must not wrap around and panic inside the arena read.
        a.set_rt_root(POffset(u64::MAX - 4));
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::Corrupt(_))));
    }

    #[test]
    fn root_pointing_at_blob_record_is_corrupt() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let p = rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        // A blob record is checksummed too, but it is not a commit
        // record: the kind check must reject it.
        a.set_rt_root(POffset(p.offset() - REC_HEADER as u64));
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::Corrupt(_))));
    }

    #[test]
    fn octree_bump_cannot_cross_committed_rt_blobs() {
        use pm_octree::{CellData, OctAccess, Octant, PmConfig, PmOctree, OCTANT_SIZE};
        use pmoctree_morton::OctKey;

        // A tight shared device: the octree must report full at the
        // runtime's live floor instead of bump-allocating over it.
        let a = NvbmArena::new(16 << 10, DeviceModel::default());
        let mut t = PmOctree::create(a, PmConfig::default());
        let mut rt = PmRt::create(&mut t.store.arena).unwrap();
        let tag = "A".repeat(512);
        rt.stage(&mut t.store.arena, "tag", &tag).unwrap();
        rt.commit(&mut t.store.arena).unwrap();
        let floor = rt.heap_floor();
        let mut n = 0u64;
        loop {
            let o = Octant::leaf(OctKey::root(), POffset::NULL, 1, CellData::default());
            match t.store.alloc_octant(&o) {
                Ok(p) => {
                    assert!(
                        p.0 + OCTANT_SIZE as u64 <= floor,
                        "octant at {:#x} crosses the rt floor {floor:#x}",
                        p.0
                    );
                    n += 1;
                }
                Err(_) => break,
            }
        }
        assert!(n > 0, "the device has room below the floor");
        // The committed runtime state survived the octree filling the
        // device to the boundary.
        t.store.arena.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut t.store.arena).unwrap();
        assert_eq!(r.load::<String>(&mut t.store.arena, "tag").unwrap(), Some(tag));
        // And the other direction: with the device full of octants, an
        // oversized runtime allocation fails cleanly.
        let big = "B".repeat(12 << 10);
        assert!(matches!(r.stage(&mut t.store.arena, "big", &big), Err(PmError::Recovery(_))));
    }

    #[test]
    fn rt_heap_respects_live_octree_bump() {
        use pm_octree::{PmConfig, PmOctree};
        use pmoctree_morton::OctKey;

        // The octree grows long after the runtime was created: the ring
        // limit must track the *live* bump, not a create-time snapshot
        // (which would let a big blob land on live octants).
        let a = NvbmArena::new(64 << 10, DeviceModel::default());
        let mut t = PmOctree::create(a, PmConfig::default());
        let mut rt = PmRt::create(&mut t.store.arena).unwrap();
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            t.refine(OctKey::root().child(i)).unwrap();
        }
        t.persist();
        let leaves = t.leaves_sorted();
        let bump = t.store.arena.live_bump();
        assert!(bump > 8 << 10, "tree must have grown past the create-time bump");
        // Sized to fit under the heap top (just below the flight-recorder
        // ring) but not above the live bump.
        let top = t.store.arena.rt_heap_top();
        let big = "B".repeat((top as usize - (8 << 10)) - 64);
        match rt.stage(&mut t.store.arena, "big", &big) {
            Err(PmError::Recovery(m)) => assert!(m.contains("cross"), "wrong full cause: {m}"),
            other => panic!("expected Recovery(cross), got {other:?}"),
        }
        assert!(rt.heap_floor() >= bump);
        // Nothing was written: the persisted tree is untouched.
        let mut arena = {
            let PmOctree { store, .. } = t;
            store.arena
        };
        arena.crash(CrashMode::LoseDirty);
        let mut r = PmOctree::restore(arena, PmConfig::default()).unwrap();
        assert_eq!(r.leaves_sorted(), leaves);
    }

    #[test]
    fn unregister_drops_root_after_commit() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        assert!(rt.unregister("x"));
        assert!(!rt.unregister("x"));
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "x").unwrap(), None);
    }

    #[test]
    fn removal_survives_checkpoint_chain_cut() {
        // Deltas record removals explicitly; a checkpoint then bakes the
        // absence into the full table. Exercise both paths across enough
        // commits to cross a checkpoint boundary.
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "keep", &1u64).unwrap();
        rt.stage(&mut a, "drop", &2u64).unwrap();
        rt.commit(&mut a).unwrap();
        rt.unregister("drop");
        rt.commit(&mut a).unwrap();
        for i in 0..(CHECKPOINT_EVERY as u64 + 2) {
            rt.stage(&mut a, "keep", &i).unwrap();
            rt.commit(&mut a).unwrap();
        }
        assert!(
            rt.chain_len() <= CHECKPOINT_EVERY,
            "checkpoint must have cut the chain (len {})",
            rt.chain_len()
        );
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "keep").unwrap(), Some(CHECKPOINT_EVERY as u64 + 1));
        assert_eq!(r.load::<u64>(&mut a, "drop").unwrap(), None);
    }

    #[test]
    fn heap_space_is_recycled_across_commits() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        for i in 0..200u64 {
            rt.stage(&mut a, "x", &i).unwrap();
            rt.commit(&mut a).unwrap();
        }
        // 200 rewrites of one small root must not consume 200 records of
        // fresh space: the ring head wraps over swept tail space, so the
        // window stays within a few growth chunks of the top (which sits
        // just below the flight-recorder ring).
        assert!(
            a.rt_heap_top() - rt.heap_floor() <= 4096,
            "ring window grew to {} bytes",
            a.rt_heap_top() - rt.heap_floor()
        );
        assert!(rt.log_laps() > 0, "the ring must actually wrap");
        assert_eq!(rt.deferred_len(), 0, "no pins, nothing deferred");
    }

    #[test]
    fn staged_over_staged_reclaims_immediately() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        let floor = rt.heap_floor();
        // Rewrite the same staged root many times without committing: the
        // same-footprint record slot is reused in place, so the floor
        // cannot sink.
        for i in 0..100u64 {
            rt.stage(&mut a, "x", &i).unwrap();
        }
        assert!(floor - rt.heap_floor() < 256, "staged rewrites must recycle");
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "x").unwrap(), Some(99));
    }

    #[test]
    fn relocation_tracks_wear_and_moves_hot_blobs() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "cold", &vec![7u8; 200]).unwrap();
        rt.commit(&mut a).unwrap();
        let before = rt.resolve::<Vec<u8>>("cold").unwrap();
        // Churn an unrelated root: every commit runs the wear pass, which
        // relocates the hottest unmodified blob — "cold" — and charges
        // the move to the stats relocation counters.
        for i in 0..4u64 {
            rt.stage(&mut a, "hot", &i).unwrap();
            rt.commit(&mut a).unwrap();
        }
        let after = rt.resolve::<Vec<u8>>("cold").unwrap();
        assert_ne!(before, after, "the blob must have been relocated");
        assert!(a.stats.relocations() > 0);
        assert!(a.stats.relocated_bytes() > 0);
        // Byte identity across relocation, including after a crash.
        assert_eq!(rt.load::<Vec<u8>>(&mut a, "cold").unwrap(), Some(vec![7u8; 200]));
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<Vec<u8>>(&mut a, "cold").unwrap(), Some(vec![7u8; 200]));
    }

    /// Satellite property test: compaction preserves byte-identity of
    /// all live blobs under random put/remove/commit interleavings
    /// (deterministic LCG, shadow-model oracle, final crash+restore).
    #[test]
    fn log_compaction_preserves_byte_identity_under_random_interleavings() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let mut shadow: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let mut committed_shadow: BTreeMap<String, Vec<u8>>;
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut step = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for op in 0..600 {
            let name = format!("r{}", step() % 12);
            match step() % 10 {
                0..=5 => {
                    let len = step() % 300;
                    let payload: Vec<u8> = (0..len).map(|i| (i + op) as u8).collect();
                    rt.stage(&mut a, &name, &payload).unwrap();
                    shadow.insert(name, payload);
                }
                6..=7 => {
                    assert_eq!(rt.unregister(&name), shadow.remove(&name).is_some());
                }
                _ => {
                    rt.commit(&mut a).unwrap();
                    committed_shadow = shadow.clone();
                    for (n, want) in &committed_shadow {
                        assert_eq!(
                            rt.load::<Vec<u8>>(&mut a, n).unwrap().as_ref(),
                            Some(want),
                            "root {n} diverged at op {op}"
                        );
                    }
                }
            }
        }
        rt.commit(&mut a).unwrap();
        committed_shadow = shadow.clone();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.len(), committed_shadow.len());
        for (n, want) in &committed_shadow {
            assert_eq!(r.load::<Vec<u8>>(&mut a, n).unwrap().as_ref(), Some(want));
        }
    }

    #[test]
    fn revert_staged_prefix_restores_committed_view() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "t1/x", &1u64).unwrap();
        rt.stage(&mut a, "t2/y", &10u64).unwrap();
        rt.commit(&mut a).unwrap();
        // Tenant t1 stages a rewrite, a new root, and a removal; t2 also
        // stages. Reverting t1 must not disturb t2's staged write.
        rt.stage(&mut a, "t1/x", &2u64).unwrap();
        rt.stage(&mut a, "t1/z", &3u64).unwrap();
        rt.stage(&mut a, "t2/y", &20u64).unwrap();
        assert_eq!(rt.revert_staged_prefix("t1/"), 2);
        assert_eq!(rt.load::<u64>(&mut a, "t1/x").unwrap(), Some(1));
        assert_eq!(rt.load::<u64>(&mut a, "t1/z").unwrap(), None);
        assert_eq!(rt.load::<u64>(&mut a, "t2/y").unwrap(), Some(20));
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "t1/x").unwrap(), Some(1));
        assert_eq!(r.load::<u64>(&mut a, "t1/z").unwrap(), None);
        assert_eq!(r.load::<u64>(&mut a, "t2/y").unwrap(), Some(20));
    }

    #[test]
    fn revert_after_unregister_reinstates_root() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "t/x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        rt.stage(&mut a, "t/x", &6u64).unwrap();
        assert!(rt.unregister("t/x"));
        assert_eq!(rt.revert_staged_prefix("t/"), 1);
        assert_eq!(rt.load::<u64>(&mut a, "t/x").unwrap(), Some(5));
        rt.commit(&mut a).unwrap();
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "t/x").unwrap(), Some(5));
    }

    #[test]
    fn prefix_usage_tracks_staged_view() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        assert_eq!(rt.prefix_usage("t/"), 0);
        rt.stage(&mut a, "t/x", &vec![0u8; 100]).unwrap();
        let one = rt.prefix_usage("t/");
        assert!(one >= 100);
        rt.stage(&mut a, "t/y", &vec![0u8; 100]).unwrap();
        assert!(rt.prefix_usage("t/") > one);
        rt.unregister("t/y");
        assert_eq!(rt.prefix_usage("t/"), one);
        assert_eq!(rt.prefix_usage("u/"), 0);
    }

    #[test]
    fn pptr_is_stable_across_restore() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let p = rt.stage(&mut a, "x", &77u64).unwrap();
        rt.commit(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        let q: PPtr<u64> = r.resolve("x").expect("swizzled pointer");
        assert_eq!(p, q, "offsets are arena-relative, nothing to fix up");
        assert_eq!(r.load_ptr(&mut a, q).unwrap(), 77);
    }

    #[test]
    fn destroy_clears_registry() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &5u64).unwrap();
        rt.commit(&mut a).unwrap();
        PmRt::destroy(&mut a);
        assert!(matches!(PmRt::restore(&mut a), Err(PmError::NotFound(_))));
    }
}
