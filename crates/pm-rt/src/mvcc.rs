//! MVCC snapshot reads: pin a committed root-table version and keep
//! reading it while later commits move the world forward.
//!
//! COW commits make this nearly free — a committed blob is never
//! modified in place, so a snapshot only has to (1) copy the committed
//! name → entry map (volatile, small) and (2) *pin* its epoch in the
//! device's [`EpochPins`](pmoctree_nvbm::EpochPins) registry so the
//! runtime's GC defers every blob retired by a later commit
//! ([`PmRt::collect`] frees a blob retired at epoch `e` only once no pin
//! `< e` remains). Dropping the [`Snapshot`] releases the pin; the next
//! collect (or commit) reclaims whatever it was protecting.
//!
//! A snapshot never observes in-flight state: it is built from the
//! *committed* table only, so staged writes — even ones already sitting
//! in NVBM — are invisible until their root swap. If the media is
//! replaced under a live snapshot (replica restore, registry destroy)
//! the pin registry is invalidated and every read reports
//! [`PmError::SnapshotGone`] instead of touching reused blobs.

use std::collections::BTreeMap;

use pm_octree::PmError;
use pmoctree_nvbm::{NvbmArena, PinGuard};

use crate::data::PmData;
use crate::rt::{read_blob, Entry, PmRt};

/// A pinned, immutable view of the committed registry at one epoch.
///
/// Obtained from [`PmRt::snapshot`] / [`PmRt::snapshot_prefix`] (or
/// `TenantHandle::snapshot`, which scopes it to the tenant's namespace
/// and strips the prefix from names). Reads are byte-identical for the
/// snapshot's whole lifetime, regardless of commits and GC passes that
/// happen after it was taken.
pub struct Snapshot {
    epoch: u64,
    /// Names (prefix-stripped) → committed entries at `epoch`.
    entries: BTreeMap<String, Entry>,
    pin: PinGuard,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("roots", &self.entries.len())
            .field("live", &self.pin.is_live())
            .finish()
    }
}

impl Snapshot {
    /// The committed epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Is the pin still protecting the epoch? `false` after the media
    /// was replaced or the registry destroyed — reads then fail with
    /// [`PmError::SnapshotGone`].
    pub fn is_live(&self) -> bool {
        self.pin.is_live()
    }

    /// Number of roots captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Does the snapshot capture no roots?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Captured root names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Read a root's raw payload bytes as of the pinned epoch. `Ok(None)`
    /// if the name was not registered at that epoch.
    pub fn get_bytes(&self, arena: &mut NvbmArena, name: &str) -> Result<Option<Vec<u8>>, PmError> {
        if !self.pin.is_live() {
            return Err(PmError::SnapshotGone(format!(
                "snapshot of epoch {} outlived its lineage",
                self.epoch
            )));
        }
        let Some(&e) = self.entries.get(name) else {
            return Ok(None);
        };
        read_blob(arena, e.off, Some(e.len)).map(Some).map_err(PmError::from)
    }

    /// Read and decode a root as of the pinned epoch. `Ok(None)` if the
    /// name was not registered at that epoch.
    pub fn get<T: PmData>(&self, arena: &mut NvbmArena, name: &str) -> Result<Option<T>, PmError> {
        match self.get_bytes(arena, name)? {
            Some(payload) => T::from_bytes(&payload).map(Some).map_err(PmError::from),
            None => Ok(None),
        }
    }
}

impl PmRt {
    /// Pin the entire committed registry at the current epoch. The
    /// returned [`Snapshot`] rereads byte-identical values until dropped,
    /// deferring GC of everything it can still reach.
    pub fn snapshot(&self, arena: &mut NvbmArena) -> Snapshot {
        self.snapshot_prefix(arena, "")
    }

    /// Pin the committed roots whose name starts with `prefix`, stored
    /// with the prefix stripped (so a tenant snapshot is addressed by
    /// bare root names). Fires the `svc::snapshot_pin` failpoint — the
    /// pin itself is volatile, but the sweep proves that crashing at the
    /// moment a reader attaches never perturbs recovery.
    pub fn snapshot_prefix(&self, arena: &mut NvbmArena, prefix: &str) -> Snapshot {
        let _s = arena.span("svc::snapshot_pin");
        let entries = self
            .committed_with_prefix(prefix)
            .into_iter()
            .map(|(n, e)| (n[prefix.len()..].to_string(), e))
            .collect();
        let pin = arena.rt_pins().pin(self.epoch());
        arena.failpoint("svc::snapshot_pin");
        Snapshot { epoch: self.epoch(), entries, pin }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pmoctree_nvbm::{CrashMode, DeviceModel};

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 20, DeviceModel::default())
    }

    #[test]
    fn snapshot_rereads_byte_identical_across_commits_and_gc() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "t/x", &0xAABBu64).unwrap();
        rt.stage(&mut a, "t/y", &"hello".to_string()).unwrap();
        rt.commit(&mut a).unwrap();
        let snap = rt.snapshot_prefix(&mut a, "t/");
        let e = snap.epoch();
        let x0 = snap.get_bytes(&mut a, "x").unwrap().unwrap();
        let y0 = snap.get_bytes(&mut a, "y").unwrap().unwrap();
        // ≥10 subsequent commits rewriting both roots, plus GC passes.
        for i in 0..12u64 {
            rt.stage(&mut a, "t/x", &i).unwrap();
            rt.stage(&mut a, "t/y", &format!("v{i}")).unwrap();
            rt.commit(&mut a).unwrap();
            rt.collect(&mut a);
        }
        assert!(rt.deferred_len() > 0, "pin must defer frees");
        assert_eq!(snap.get_bytes(&mut a, "x").unwrap().unwrap(), x0);
        assert_eq!(snap.get_bytes(&mut a, "y").unwrap().unwrap(), y0);
        assert_eq!(snap.get::<u64>(&mut a, "x").unwrap(), Some(0xAABB));
        assert_eq!(snap.epoch(), e);
        // Dropping the snapshot lets collect reclaim the old versions.
        drop(snap);
        assert!(rt.collect(&mut a) > 0);
        assert_eq!(rt.deferred_len(), 0);
    }

    #[test]
    fn snapshot_never_observes_staged_writes() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        rt.stage(&mut a, "x", &2u64).unwrap(); // in-flight, not committed
        rt.stage(&mut a, "new", &3u64).unwrap();
        let snap = rt.snapshot(&mut a);
        assert_eq!(snap.get::<u64>(&mut a, "x").unwrap(), Some(1));
        assert_eq!(snap.get::<u64>(&mut a, "new").unwrap(), None);
    }

    #[test]
    fn snapshot_gone_after_media_restore() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &1u64).unwrap();
        rt.commit(&mut a).unwrap();
        let image = a.clone_media();
        let snap = rt.snapshot(&mut a);
        assert!(snap.is_live());
        a.restore_media(&image);
        assert!(!snap.is_live());
        assert!(matches!(snap.get::<u64>(&mut a, "x"), Err(PmError::SnapshotGone(_))));
    }

    /// Acceptance property: a blob a pinned snapshot references is never
    /// relocated or reclaimed until the pin drops — the wear/compaction
    /// GC only ever *copies* live blobs and defers the original, so the
    /// snapshot rereads byte-identical data at the original offset all
    /// along.
    #[test]
    fn pinned_blob_survives_relocation_until_pin_drops() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let cold: Vec<u8> = (0..300).map(|i| (i * 31 + 5) as u8).collect();
        rt.stage(&mut a, "cold", &cold).unwrap();
        rt.commit(&mut a).unwrap();
        let snap = rt.snapshot(&mut a);
        let ptr = rt.resolve::<Vec<u8>>("cold").unwrap();
        let raw0 = snap.get_bytes(&mut a, "cold").unwrap().unwrap();
        // Churn other roots until the GC relocates "cold" (the hottest
        // unmodified blob from the wear pass's viewpoint, and the oldest
        // from compaction's).
        let mut churned = 0u64;
        while rt.resolve::<Vec<u8>>("cold").unwrap() == ptr {
            rt.stage(&mut a, "hot", &churned).unwrap();
            rt.commit(&mut a).unwrap();
            churned += 1;
            assert!(churned < 64, "GC never relocated the cold blob");
        }
        assert!(a.stats.relocations() > 0);
        // The snapshot still reads the *original* bytes at the original
        // offset: the pinned record was copied, not moved.
        assert_eq!(snap.get_bytes(&mut a, "cold").unwrap().unwrap(), raw0);
        assert_eq!(snap.get::<Vec<u8>>(&mut a, "cold").unwrap(), Some(cold.clone()));
        assert!(rt.deferred_len() > 0, "old record must sit deferred, not freed");
        // More churn while pinned: still byte-identical.
        for i in 0..40u64 {
            rt.stage(&mut a, "hot", &i).unwrap();
            rt.commit(&mut a).unwrap();
        }
        assert_eq!(snap.get_bytes(&mut a, "cold").unwrap().unwrap(), raw0);
        // Only once the pin drops does collect reclaim the original.
        drop(snap);
        assert!(rt.collect(&mut a) > 0);
        assert_eq!(rt.deferred_len(), 0);
        assert_eq!(rt.load::<Vec<u8>>(&mut a, "cold").unwrap(), Some(cold));
    }

    #[test]
    fn heap_recovers_fully_once_pins_drop() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        rt.stage(&mut a, "x", &0u64).unwrap();
        rt.commit(&mut a).unwrap();
        let snap = rt.snapshot(&mut a);
        for i in 0..200u64 {
            rt.stage(&mut a, "x", &i).unwrap();
            rt.commit(&mut a).unwrap();
        }
        drop(snap);
        assert!(rt.collect(&mut a) > 0, "deferred blobs reclaimed");
        // The reclaimed blocks feed the free lists: another burst of
        // commits reuses them instead of sinking the floor further.
        let floor = rt.heap_floor();
        for i in 0..200u64 {
            rt.stage(&mut a, "x", &i).unwrap();
            rt.commit(&mut a).unwrap();
        }
        assert!(floor - rt.heap_floor() < 1024, "recycled space must be reused");
        // And the committed state is intact.
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        assert_eq!(r.load::<u64>(&mut a, "x").unwrap(), Some(199));
    }
}
