//! Typed handles: the redesigned pm-rt surface.
//!
//! The original API was stringly typed — `rt.put::<T>(arena, "name", v)`
//! — and every call site threaded the runtime and the arena separately.
//! The redesign binds them once into a [`Session`], scopes it to a
//! namespace with [`TenantHandle`], and hands back typed
//! [`RootHandle<T>`]s, so the name↔type association is carried by a
//! value instead of re-asserted (or mis-asserted) at each call:
//!
//! ```
//! # use pm_rt::PmRt;
//! # use pmoctree_nvbm::{DeviceModel, NvbmArena};
//! # let mut arena = NvbmArena::new(1 << 20, DeviceModel::default());
//! let mut rt = PmRt::create(&mut arena).unwrap();
//! let mut t = rt.session(&mut arena).tenant("solver").unwrap();
//! let h = t.put("run", &42u64).unwrap();
//! t.commit().unwrap();
//! assert_eq!(t.read(&h).unwrap(), 42);
//! ```
//!
//! Tenants are prefixes in the shared root table (`{tenant}/{root}`);
//! `/` is reserved as the separator, so unqualified service-internal
//! roots (like the tenant registry) can never collide with tenant data.

use pm_octree::PmError;
use pmoctree_nvbm::NvbmArena;

use crate::data::PmData;
use crate::mvcc::Snapshot;
use crate::rt::{PPtr, PmRt};

/// Reject empty names, the `/` separator, and control characters —
/// shared by tenant and root components so a qualified name parses
/// unambiguously.
pub(crate) fn validate_component(kind: &str, s: &str) -> Result<(), PmError> {
    if s.is_empty() {
        return Err(PmError::Recovery(format!("{kind} name must not be empty")));
    }
    if s.contains('/') {
        return Err(PmError::Recovery(format!("{kind} name {s:?} contains reserved '/'")));
    }
    if s.chars().any(char::is_control) {
        return Err(PmError::Recovery(format!("{kind} name {s:?} contains control characters")));
    }
    Ok(())
}

/// A runtime bound to its arena for a sequence of verbs. Created by
/// [`PmRt::session`]; scope it to a namespace with [`Session::tenant`].
pub struct Session<'s> {
    pub(crate) rt: &'s mut PmRt,
    pub(crate) arena: &'s mut NvbmArena,
}

impl PmRt {
    /// Bind this runtime and `arena` into a [`Session`] — the entry
    /// point of the typed-handle API.
    pub fn session<'s>(&'s mut self, arena: &'s mut NvbmArena) -> Session<'s> {
        Session { rt: self, arena }
    }
}

impl<'s> Session<'s> {
    /// Scope the session to tenant `name`'s namespace. Validates the
    /// name (non-empty, no `/`, no control characters).
    pub fn tenant(self, name: &str) -> Result<TenantHandle<'s>, PmError> {
        validate_component("tenant", name)?;
        Ok(TenantHandle { prefix: format!("{name}/"), name: name.to_string(), s: self })
    }
}

/// A tenant-scoped view of the registry: every verb addresses roots by
/// their bare name and reads/writes only inside the tenant's prefix.
pub struct TenantHandle<'s> {
    s: Session<'s>,
    name: String,
    prefix: String,
}

/// A typed, named reference to one of a tenant's roots. Carries the
/// bare root name plus the [`PPtr`] it staged or resolved to; read it
/// back through the tenant that issued it ([`TenantHandle::read`]).
pub struct RootHandle<T> {
    name: String,
    ptr: PPtr<T>,
}

impl<T> RootHandle<T> {
    /// The bare (unqualified) root name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The typed persistent pointer behind the handle.
    pub fn ptr(&self) -> PPtr<T> {
        self.ptr
    }
}

impl<'s> TenantHandle<'s> {
    /// The tenant name this handle is scoped to.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn qualified(&self, root: &str) -> Result<String, PmError> {
        validate_component("root", root)?;
        Ok(format!("{}{root}", self.prefix))
    }

    /// Stage `value` under `root` (copy-on-write; durable after the next
    /// [`TenantHandle::commit`]).
    pub fn put<T: PmData>(&mut self, root: &str, value: &T) -> Result<RootHandle<T>, PmError> {
        let q = self.qualified(root)?;
        let ptr = self.s.rt.stage(self.s.arena, &q, value)?;
        Ok(RootHandle { name: root.to_string(), ptr })
    }

    /// Read the current value of `root` (staged or committed); `Ok(None)`
    /// if the tenant has no such root.
    pub fn get<T: PmData>(&mut self, root: &str) -> Result<Option<T>, PmError> {
        let q = self.qualified(root)?;
        self.s.rt.load(self.s.arena, &q)
    }

    /// A typed handle for an existing root, if registered.
    pub fn root<T: PmData>(&self, root: &str) -> Option<RootHandle<T>> {
        let q = self.qualified(root).ok()?;
        let ptr = self.s.rt.resolve(&q)?;
        Some(RootHandle { name: root.to_string(), ptr })
    }

    /// Dereference a handle issued by this tenant.
    pub fn read<T: PmData>(&mut self, h: &RootHandle<T>) -> Result<T, PmError> {
        self.s.rt.load_ptr(self.s.arena, h.ptr)
    }

    /// Unregister `root`; returns whether it existed.
    pub fn remove(&mut self, root: &str) -> bool {
        match self.qualified(root) {
            Ok(q) => self.s.rt.unregister(&q),
            Err(_) => false,
        }
    }

    /// Commit the registry (one atomic root-table swap — tenant writes
    /// are isolated by namespace, not by table). Returns the regions
    /// written since the previous commit.
    pub fn commit(&mut self) -> Result<Vec<(u64, u32)>, PmError> {
        self.s.rt.commit(self.s.arena)
    }

    /// Undo this tenant's staged (uncommitted) writes; returns the
    /// number of roots reverted.
    pub fn revert(&mut self) -> usize {
        self.s.rt.revert_staged_prefix(&self.prefix)
    }

    /// Heap bytes currently charged to this tenant (class-rounded,
    /// staged view) — the service layer's quota currency.
    pub fn usage(&self) -> u64 {
        self.s.rt.prefix_usage(&self.prefix)
    }

    /// Bare names of this tenant's roots, sorted.
    pub fn roots(&self) -> Vec<String> {
        self.s
            .rt
            .names_with_prefix(&self.prefix)
            .map(|n| n[self.prefix.len()..].to_string())
            .collect()
    }

    /// Pin an MVCC snapshot of this tenant's *committed* roots (bare
    /// names). See [`Snapshot`].
    pub fn snapshot(&mut self) -> Snapshot {
        self.s.rt.snapshot_prefix(self.s.arena, &self.prefix)
    }

    /// Committed table epoch.
    pub fn epoch(&self) -> u64 {
        self.s.rt.epoch()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pmoctree_nvbm::{CrashMode, DeviceModel};

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 20, DeviceModel::default())
    }

    #[test]
    fn typed_handles_roundtrip_and_isolate_tenants() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        {
            let mut t = rt.session(&mut a).tenant("alpha").unwrap();
            let h = t.put("x", &7u64).unwrap();
            assert_eq!(t.read(&h).unwrap(), 7);
            t.commit().unwrap();
        }
        {
            let mut u = rt.session(&mut a).tenant("beta").unwrap();
            assert_eq!(u.get::<u64>("x").unwrap(), None, "namespaces are disjoint");
            u.put("x", &9u64).unwrap();
            u.commit().unwrap();
        }
        a.crash(CrashMode::LoseDirty);
        let mut r = PmRt::restore(&mut a).unwrap();
        let mut t = r.session(&mut a).tenant("alpha").unwrap();
        assert_eq!(t.get::<u64>("x").unwrap(), Some(7));
        assert_eq!(t.roots(), vec!["x".to_string()]);
    }

    #[test]
    fn names_are_validated() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        assert!(matches!(rt.session(&mut a).tenant(""), Err(PmError::Recovery(_))));
        assert!(matches!(rt.session(&mut a).tenant("a/b"), Err(PmError::Recovery(_))));
        assert!(matches!(rt.session(&mut a).tenant("a\nb"), Err(PmError::Recovery(_))));
        let mut t = rt.session(&mut a).tenant("ok").unwrap();
        assert!(matches!(t.put("bad/name", &1u64), Err(PmError::Recovery(_))));
        assert!(matches!(t.put("", &1u64), Err(PmError::Recovery(_))));
        assert!(t.put("fine", &1u64).is_ok());
    }

    #[test]
    fn revert_scopes_to_the_handle_tenant() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let mut t = rt.session(&mut a).tenant("t").unwrap();
        t.put("x", &1u64).unwrap();
        t.commit().unwrap();
        t.put("x", &2u64).unwrap();
        assert_eq!(t.revert(), 1);
        assert_eq!(t.get::<u64>("x").unwrap(), Some(1));
    }

    #[test]
    fn tenant_snapshot_uses_bare_names() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let mut t = rt.session(&mut a).tenant("t").unwrap();
        t.put("x", &5u64).unwrap();
        t.commit().unwrap();
        let snap = t.snapshot();
        t.put("x", &6u64).unwrap();
        t.commit().unwrap();
        assert_eq!(snap.get::<u64>(&mut a, "x").unwrap(), Some(5));
        assert_eq!(snap.names().collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn usage_counts_only_own_prefix() {
        let mut a = arena();
        let mut rt = PmRt::create(&mut a).unwrap();
        let mut t = rt.session(&mut a).tenant("t").unwrap();
        t.put("x", &vec![0u8; 500]).unwrap();
        let usage = t.usage();
        assert!(usage >= 500);
        let u = rt.session(&mut a).tenant("u").unwrap();
        assert_eq!(u.usage(), 0);
    }
}
