//! Property tests for the multi-tenant state service, plus the
//! workspace-wide error-taxonomy contract.
//!
//! * **Snapshot isolation** — whatever interleaving of tenant writes,
//!   batch flushes, and GC runs after a snapshot is pinned, rereading
//!   the snapshot is byte-identical to the capture taken at pin time.
//! * **Quota isolation** — a tenant exhausting its quota is rejected
//!   *before* touching media and never perturbs any other tenant: the
//!   final audited state equals a shadow model driven purely by the
//!   service's own accept/reject replies.
//! * **Error taxonomy** — the service front-end, the typed-handle API,
//!   and all three octree backends report rejections through the same
//!   [`PmError`] arms (mirrors `amr::backend`'s
//!   `all_backends_agree_on_error_taxonomy`).

use std::collections::BTreeMap;

use pm_rt::{PmError, PmRt, ServiceCmd, ServiceConfig, ServiceReply, StateService};
use pmoctree_nvbm::{DeviceModel, NvbmArena};
use proptest::prelude::*;

fn tname(i: usize) -> String {
    format!("t{i}")
}

fn service(arena: &mut NvbmArena, tenants: usize, quota: u64) -> StateService {
    let cfg = ServiceConfig::builder()
        .max_tenants(tenants)
        .default_quota(quota)
        .batch_capacity(1024)
        .build()
        .expect("valid config");
    let mut svc = StateService::create(arena, cfg).expect("create service");
    for i in 0..tenants {
        svc.submit(arena, ServiceCmd::Create { tenant: tname(i), quota: None })
            .expect("enqueue create");
    }
    svc.flush_batch(arena).expect("seed flush");
    svc
}

/// One step of the generated workload: a write, or a batch boundary.
#[derive(Debug, Clone)]
enum Step {
    Put { tenant: usize, root: usize, bytes: Vec<u8> },
    Flush,
}

fn arb_steps(tenants: usize, max_len: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0..tenants, 0usize..3, prop::collection::vec(any::<u8>(), 0..max_len))
                .prop_map(|(tenant, root, bytes)| Step::Put { tenant, root, bytes }),
            1 => Just(Step::Flush),
        ],
        1..48,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pin a snapshot of tenant 0 mid-workload; apply the rest of the
    /// interleaving (writes to all tenants, flushes, a final GC); the
    /// snapshot must reread byte-identical to its pin-time capture.
    #[test]
    fn pinned_snapshot_rereads_byte_identical(
        warmup in arb_steps(4, 96),
        after in arb_steps(4, 96),
    ) {
        let mut arena = NvbmArena::new(4 << 20, DeviceModel::default());
        let mut svc = service(&mut arena, 4, 64 << 10);
        for s in warmup {
            match s {
                Step::Put { tenant, root, bytes } => {
                    svc.submit(&mut arena, ServiceCmd::Put {
                        tenant: tname(tenant), root: format!("r{root}"), bytes,
                    }).expect("submit");
                }
                Step::Flush => { svc.flush_batch(&mut arena).expect("flush"); }
            }
        }
        svc.flush_batch(&mut arena).expect("pre-pin flush");

        let snap = svc.snapshot(&mut arena, "t0").expect("snapshot");
        let captured: Vec<(String, Option<Vec<u8>>)> = snap
            .names().map(str::to_string).collect::<Vec<_>>()
            .into_iter()
            .map(|n| { let v = snap.get_bytes(&mut arena, &n).expect("capture"); (n, v) })
            .collect();

        for s in after {
            match s {
                Step::Put { tenant, root, bytes } => {
                    svc.submit(&mut arena, ServiceCmd::Put {
                        tenant: tname(tenant), root: format!("r{root}"), bytes,
                    }).expect("submit");
                }
                Step::Flush => { svc.flush_batch(&mut arena).expect("flush"); }
            }
        }
        svc.flush_batch(&mut arena).expect("post flush");
        svc.collect(&mut arena);

        prop_assert!(snap.is_live());
        for (name, want) in &captured {
            let got = snap.get_bytes(&mut arena, name).expect("reread");
            prop_assert_eq!(&got, want, "snapshot drifted for root {}", name);
        }
    }

    /// Drive three tenants against a tight quota; the shadow model is
    /// updated only when the service *accepted* a write, and every
    /// rejection must be `QuotaExceeded`. The audited end state must
    /// equal the shadow exactly — an over-quota tenant can never corrupt
    /// (or even touch) a neighbour's roots.
    #[test]
    fn quota_exhaustion_never_corrupts_neighbours(
        steps in arb_steps(3, 700),
    ) {
        let mut arena = NvbmArena::new(4 << 20, DeviceModel::default());
        let mut svc = service(&mut arena, 3, 512);
        let mut shadow: BTreeMap<String, BTreeMap<String, Vec<u8>>> =
            (0..3).map(|i| (tname(i), BTreeMap::new())).collect();
        let mut staged: Vec<(String, String, Vec<u8>)> = Vec::new();
        let mut rejections = 0u64;

        for s in steps {
            match s {
                Step::Put { tenant, root, bytes } => {
                    let (t, r) = (tname(tenant), format!("r{root}"));
                    let reply = svc.submit(&mut arena, ServiceCmd::Put {
                        tenant: t.clone(), root: r.clone(), bytes: bytes.clone(),
                    }).expect("submit");
                    // batch_capacity is large, so nothing auto-flushed:
                    // replies arrive at the explicit flush below.
                    prop_assert!(reply.is_none());
                    staged.push((t, r, bytes));
                }
                Step::Flush => {
                    let report = svc.flush_batch(&mut arena).expect("flush");
                    prop_assert_eq!(report.replies.len(), staged.len());
                    for ((t, r, bytes), reply) in staged.drain(..).zip(report.replies) {
                        match reply {
                            Ok(ServiceReply::Put) => {
                                shadow.get_mut(&t).expect("tenant").insert(r, bytes);
                            }
                            Err(PmError::QuotaExceeded(_)) => rejections += 1,
                            other => prop_assert!(
                                false, "unexpected reply for {t}/{r}: {other:?}"
                            ),
                        }
                    }
                }
            }
        }
        // Flush whatever is still queued the same way.
        let report = svc.flush_batch(&mut arena).expect("final flush");
        for ((t, r, bytes), reply) in staged.drain(..).zip(report.replies) {
            match reply {
                Ok(ServiceReply::Put) => {
                    shadow.get_mut(&t).expect("tenant").insert(r, bytes);
                }
                Err(PmError::QuotaExceeded(_)) => rejections += 1,
                other => prop_assert!(false, "unexpected reply for {t}/{r}: {other:?}"),
            }
        }

        let audit = StateService::audit(&mut arena).expect("audit");
        prop_assert_eq!(audit, shadow);
        // The generator's 700-byte ceiling overshoots the 512-byte quota
        // often; absent rejections would mean the quota never bound.
        let _ = rejections;
    }
}

/// The service front-end, the typed-handle API, and all three octree
/// backends classify rejections through the same [`PmError`] taxonomy.
#[test]
fn service_runtime_and_backends_agree_on_error_taxonomy() {
    use pmoctree_amr::{EtreeBackend, InCoreBackend, OctreeBackend, PmBackend};
    use pmoctree_morton::OctKey;

    // --- octree backends (mirrors amr::backend's taxonomy test) ---
    let backends: Vec<Box<dyn OctreeBackend>> = vec![
        Box::new(PmBackend::new(pm_octree::PmOctree::create(
            NvbmArena::new(16 << 20, DeviceModel::default()),
            pm_octree::PmConfig { dynamic_transform: false, ..pm_octree::PmConfig::default() },
        ))),
        Box::new(InCoreBackend::new()),
        Box::new(EtreeBackend::on_nvbm()),
    ];
    for mut b in backends {
        b.refine(OctKey::root()).expect("refine root");
        let name = b.name();
        let missing = OctKey::root().child(0).child(0);
        assert!(matches!(b.refine(missing), Err(PmError::NotFound(_))), "{name}: refine missing");
        assert!(
            matches!(b.refine(OctKey::root()), Err(PmError::NotALeaf(_))),
            "{name}: refine internal"
        );
        assert!(
            matches!(b.set_data(missing, [0.0; 4]), Err(PmError::NotFound(_))),
            "{name}: set_data missing"
        );
    }

    // --- pm-rt service + handles: the new arms of the same taxonomy ---
    let mut arena = NvbmArena::new(2 << 20, DeviceModel::default());

    // NotFound: restoring a device that was never formatted.
    assert!(matches!(PmRt::restore(&mut arena), Err(PmError::NotFound(_))));

    let mut svc = service(&mut arena, 2, 256);

    // NotFound: commands addressed to an unregistered tenant.
    svc.submit(&mut arena, ServiceCmd::Commit { tenant: "ghost".into() }).expect("enqueue");
    let report = svc.flush_batch(&mut arena).expect("flush");
    assert!(matches!(report.replies[0], Err(PmError::NotFound(_))), "unknown tenant");

    // QuotaExceeded: an oversized write against a 256-byte quota.
    svc.submit(
        &mut arena,
        ServiceCmd::Put { tenant: tname(0), root: "big".into(), bytes: vec![0; 4096] },
    )
    .expect("enqueue");
    let report = svc.flush_batch(&mut arena).expect("flush");
    assert!(matches!(report.replies[0], Err(PmError::QuotaExceeded(_))), "oversized write");

    // TenantBusy: queued commands for a checked-out tenant.
    let lease = svc.checkout(&tname(0)).expect("checkout");
    svc.submit(&mut arena, ServiceCmd::Put { tenant: tname(0), root: "r".into(), bytes: vec![1] })
        .expect("enqueue");
    let report = svc.flush_batch(&mut arena).expect("flush");
    assert!(matches!(report.replies[0], Err(PmError::TenantBusy(_))), "leased tenant");
    svc.release(lease);

    // Recovery: malformed names are rejected by the typed-handle layer.
    let mut rt = PmRt::create(&mut NvbmArena::new(1 << 20, DeviceModel::default())).expect("rt");
    let mut scratch = NvbmArena::new(1 << 20, DeviceModel::default());
    assert!(matches!(rt.session(&mut scratch).tenant("a/b"), Err(PmError::Recovery(_))));

    // SnapshotGone: a pinned snapshot outliving its runtime's media.
    let snap = svc.snapshot(&mut arena, &tname(1)).expect("snapshot");
    PmRt::destroy(&mut arena);
    assert!(!snap.is_live());
    assert!(matches!(snap.get_bytes(&mut arena, "r"), Err(PmError::SnapshotGone(_))));
}
