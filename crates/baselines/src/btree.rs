//! A disk-backed B-tree, as used by the Etree library to index octant
//! pages.
//!
//! Nodes are serialized into 4 KiB pages of a [`SimFs`] file; a small LRU
//! page cache stands in for Etree's buffer pool. Every cache miss charges
//! a page read, every dirty eviction a page write — this is the "extra
//! memory latency" the paper attributes to index-based out-of-core
//! designs running on NVBM.
//!
//! Deletion removes keys from leaves without rebalancing (underfull
//! leaves are permitted); Etree workloads shrink pages only on
//! coarsening, where slots are soon reused.

use std::collections::HashMap;

use pmoctree_nvbm::PAGE;
use pmoctree_simfs::SimFs;

/// Maximum keys per node (fits a 4 KiB page with 16-byte entries).
const MAX_KEYS: usize = 128;

#[derive(Debug, Clone, PartialEq)]
enum BNode {
    Leaf { keys: Vec<u64>, vals: Vec<u64> },
    Internal { keys: Vec<u64>, kids: Vec<u32> },
}

impl BNode {
    fn serialize(&self) -> Vec<u8> {
        let mut out = vec![0u8; PAGE];
        match self {
            BNode::Leaf { keys, vals } => {
                out[0] = 0;
                out[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                for (i, (k, v)) in keys.iter().zip(vals).enumerate() {
                    out[16 + i * 16..24 + i * 16].copy_from_slice(&k.to_le_bytes());
                    out[24 + i * 16..32 + i * 16].copy_from_slice(&v.to_le_bytes());
                }
            }
            BNode::Internal { keys, kids } => {
                out[0] = 1;
                out[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                for (i, k) in keys.iter().enumerate() {
                    out[16 + i * 16..24 + i * 16].copy_from_slice(&k.to_le_bytes());
                }
                for (i, c) in kids.iter().enumerate() {
                    out[24 + i * 16..28 + i * 16].copy_from_slice(&c.to_le_bytes());
                }
            }
        }
        out
    }

    fn deserialize(b: &[u8]) -> BNode {
        let n = u16::from_le_bytes(b[1..3].try_into().expect("2")) as usize;
        if b[0] == 0 {
            let mut keys = Vec::with_capacity(n);
            let mut vals = Vec::with_capacity(n);
            for i in 0..n {
                keys.push(u64::from_le_bytes(b[16 + i * 16..24 + i * 16].try_into().expect("8")));
                vals.push(u64::from_le_bytes(b[24 + i * 16..32 + i * 16].try_into().expect("8")));
            }
            BNode::Leaf { keys, vals }
        } else {
            let mut keys = Vec::with_capacity(n);
            let mut kids = Vec::with_capacity(n + 1);
            for i in 0..n {
                keys.push(u64::from_le_bytes(b[16 + i * 16..24 + i * 16].try_into().expect("8")));
            }
            for i in 0..=n {
                kids.push(u32::from_le_bytes(b[24 + i * 16..28 + i * 16].try_into().expect("4")));
            }
            BNode::Internal { keys, kids }
        }
    }
}

struct CacheSlot {
    node: BNode,
    dirty: bool,
    last_use: u64,
}

/// Disk-backed B-tree mapping `u64 → u64`.
pub struct DiskBTree {
    file: String,
    root: u32,
    next_page: u32,
    cache: HashMap<u32, CacheSlot>,
    cache_cap: usize,
    tick: u64,
    len: usize,
}

impl DiskBTree {
    /// Create a new tree stored in `file` on `fs`.
    pub fn create(fs: &mut SimFs, file: &str) -> Self {
        fs.create(file);
        let mut t = DiskBTree {
            file: file.to_string(),
            root: 0,
            next_page: 1,
            cache: HashMap::new(),
            cache_cap: 32,
            tick: 0,
            len: 0,
        };
        t.put(fs, 0, BNode::Leaf { keys: Vec::new(), vals: Vec::new() });
        t
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the cache capacity in pages.
    pub fn set_cache_pages(&mut self, fs: &mut SimFs, pages: usize) {
        self.cache_cap = pages.max(1);
        self.evict_over_cap(fs);
    }

    fn touch(&mut self, page: u32) {
        self.tick += 1;
        if let Some(s) = self.cache.get_mut(&page) {
            s.last_use = self.tick;
        }
    }

    fn get_node(&mut self, fs: &mut SimFs, page: u32) -> BNode {
        if self.cache.contains_key(&page) {
            self.touch(page);
            return self.cache[&page].node.clone();
        }
        let mut buf = vec![0u8; PAGE];
        fs.read_at(&self.file, page as usize * PAGE, &mut buf).expect("index page read");
        let node = BNode::deserialize(&buf);
        self.tick += 1;
        self.cache
            .insert(page, CacheSlot { node: node.clone(), dirty: false, last_use: self.tick });
        self.evict_over_cap(fs);
        node
    }

    fn put(&mut self, fs: &mut SimFs, page: u32, node: BNode) {
        self.tick += 1;
        self.cache.insert(page, CacheSlot { node, dirty: true, last_use: self.tick });
        self.evict_over_cap(fs);
    }

    fn evict_over_cap(&mut self, fs: &mut SimFs) {
        while self.cache.len() > self.cache_cap {
            let victim = self
                .cache
                .iter()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(&p, _)| p)
                .expect("cache non-empty");
            let slot = self.cache.remove(&victim).expect("present");
            if slot.dirty {
                fs.write_at(&self.file, victim as usize * PAGE, &slot.node.serialize())
                    .expect("index page write");
            }
        }
    }

    /// Write every dirty cached page back to the file.
    pub fn flush(&mut self, fs: &mut SimFs) {
        let pages: Vec<u32> = self.cache.iter().filter(|(_, s)| s.dirty).map(|(&p, _)| p).collect();
        for p in pages {
            let node = self.cache[&p].node.clone();
            fs.write_at(&self.file, p as usize * PAGE, &node.serialize()).expect("flush");
            self.cache.get_mut(&p).expect("present").dirty = false;
        }
    }

    fn alloc_page(&mut self) -> u32 {
        let p = self.next_page;
        self.next_page += 1;
        p
    }

    /// Exact lookup.
    pub fn get(&mut self, fs: &mut SimFs, key: u64) -> Option<u64> {
        let mut page = self.root;
        loop {
            match self.get_node(fs, page) {
                BNode::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
                BNode::Internal { keys, kids } => {
                    let i = keys.partition_point(|&k| k <= key);
                    page = kids[i];
                }
            }
        }
    }

    /// Greatest entry with key ≤ `key` (the "which page owns this anchor"
    /// query of the Etree page index).
    pub fn get_le(&mut self, fs: &mut SimFs, key: u64) -> Option<(u64, u64)> {
        let mut page = self.root;
        let mut best: Option<(u64, u64)> = None;
        loop {
            match self.get_node(fs, page) {
                BNode::Leaf { keys, vals } => {
                    let i = keys.partition_point(|&k| k <= key);
                    if i > 0 {
                        let cand = (keys[i - 1], vals[i - 1]);
                        best = Some(match best {
                            Some(b) if b.0 > cand.0 => b,
                            _ => cand,
                        });
                    }
                    return best;
                }
                BNode::Internal { keys, kids } => {
                    let i = keys.partition_point(|&k| k <= key);
                    // Keys in internal nodes are copies of leaf keys
                    // (split separators); remember the floor on the way
                    // down in case the chosen subtree has nothing ≤ key.
                    if i > 0 {
                        // All keys in subtree i-1..: the separator itself
                        // exists in the right subtree's leftmost leaf, so
                        // no update needed here; descending kids[i] keeps
                        // every candidate ≤ key reachable… except when the
                        // subtree's smallest key > key, which cannot
                        // happen for i ≥ 1 since separator keys ≤ key sit
                        // in that subtree.
                    }
                    page = kids[i];
                }
            }
        }
    }

    /// Insert or replace. Returns the previous value if the key existed.
    pub fn insert(&mut self, fs: &mut SimFs, key: u64, val: u64) -> Option<u64> {
        let root = self.root;
        let (old, split) = self.insert_rec(fs, root, key, val);
        if let Some((sep, right)) = split {
            let new_root = self.alloc_page();
            let node = BNode::Internal { keys: vec![sep], kids: vec![self.root, right] };
            self.put(fs, new_root, node);
            self.root = new_root;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns (old value, optional (separator, new right page)).
    fn insert_rec(
        &mut self,
        fs: &mut SimFs,
        page: u32,
        key: u64,
        val: u64,
    ) -> (Option<u64>, Option<(u64, u32)>) {
        match self.get_node(fs, page) {
            BNode::Leaf { mut keys, mut vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = vals[i];
                    vals[i] = val;
                    self.put(fs, page, BNode::Leaf { keys, vals });
                    (Some(old), None)
                }
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, val);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let rk = keys.split_off(mid);
                        let rv = vals.split_off(mid);
                        let sep = rk[0];
                        let right = self.alloc_page();
                        self.put(fs, right, BNode::Leaf { keys: rk, vals: rv });
                        self.put(fs, page, BNode::Leaf { keys, vals });
                        (None, Some((sep, right)))
                    } else {
                        self.put(fs, page, BNode::Leaf { keys, vals });
                        (None, None)
                    }
                }
            },
            BNode::Internal { mut keys, mut kids } => {
                let i = keys.partition_point(|&k| k <= key);
                let (old, split) = self.insert_rec(fs, kids[i], key, val);
                if let Some((sep, right)) = split {
                    keys.insert(i, sep);
                    kids.insert(i + 1, right);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid];
                        let rk = keys.split_off(mid + 1);
                        keys.pop(); // sep_up moves up
                        let rkids = kids.split_off(mid + 1);
                        let right_page = self.alloc_page();
                        self.put(fs, right_page, BNode::Internal { keys: rk, kids: rkids });
                        self.put(fs, page, BNode::Internal { keys, kids });
                        return (old, Some((sep_up, right_page)));
                    }
                }
                self.put(fs, page, BNode::Internal { keys, kids });
                (old, None)
            }
        }
    }

    /// Remove a key (leaves may underflow; no rebalancing). Returns the
    /// removed value.
    pub fn remove(&mut self, fs: &mut SimFs, key: u64) -> Option<u64> {
        let mut page = self.root;
        loop {
            match self.get_node(fs, page) {
                BNode::Leaf { mut keys, mut vals } => {
                    return match keys.binary_search(&key) {
                        Ok(i) => {
                            keys.remove(i);
                            let v = vals.remove(i);
                            self.put(fs, page, BNode::Leaf { keys, vals });
                            self.len -= 1;
                            Some(v)
                        }
                        Err(_) => None,
                    };
                }
                BNode::Internal { keys, kids } => {
                    let i = keys.partition_point(|&k| k <= key);
                    page = kids[i];
                }
            }
        }
    }

    /// In-order key/value pairs (test/diagnostic helper; scans every page).
    pub fn items(&mut self, fs: &mut SimFs) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let root = self.root;
        self.items_rec(fs, root, &mut out);
        out
    }

    fn items_rec(&mut self, fs: &mut SimFs, page: u32, out: &mut Vec<(u64, u64)>) {
        match self.get_node(fs, page) {
            BNode::Leaf { keys, vals } => out.extend(keys.into_iter().zip(vals)),
            BNode::Internal { kids, .. } => {
                for k in kids {
                    self.items_rec(fs, k, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fsys() -> SimFs {
        SimFs::on_nvbm()
    }

    #[test]
    fn insert_get_small() {
        let mut fs = fsys();
        let mut t = DiskBTree::create(&mut fs, "idx");
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.insert(&mut fs, k, k * 10), None);
        }
        assert_eq!(t.len(), 5);
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.get(&mut fs, k), Some(k * 10));
        }
        assert_eq!(t.get(&mut fs, 2), None);
    }

    #[test]
    fn insert_replace() {
        let mut fs = fsys();
        let mut t = DiskBTree::create(&mut fs, "idx");
        assert_eq!(t.insert(&mut fs, 42, 1), None);
        assert_eq!(t.insert(&mut fs, 42, 2), Some(1));
        assert_eq!(t.get(&mut fs, 42), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_keys_force_splits() {
        let mut fs = fsys();
        let mut t = DiskBTree::create(&mut fs, "idx");
        let n = 5000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 2_654_435_761) % (n * 4);
            t.insert(&mut fs, k, k + 1);
        }
        let items = t.items(&mut fs);
        assert_eq!(items.len(), t.len());
        // Sorted and consistent.
        for w in items.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(k, v) in &items {
            assert_eq!(v, k + 1);
            assert_eq!(t.get(&mut fs, k), Some(v));
        }
    }

    #[test]
    fn get_le_finds_floor() {
        let mut fs = fsys();
        let mut t = DiskBTree::create(&mut fs, "idx");
        for k in (0..2000u64).map(|i| i * 10) {
            t.insert(&mut fs, k, k);
        }
        assert_eq!(t.get_le(&mut fs, 55), Some((50, 50)));
        assert_eq!(t.get_le(&mut fs, 50), Some((50, 50)));
        assert_eq!(t.get_le(&mut fs, 0), Some((0, 0)));
        assert_eq!(t.get_le(&mut fs, 19_995), Some((19_990, 19_990)));
    }

    #[test]
    fn remove_deletes() {
        let mut fs = fsys();
        let mut t = DiskBTree::create(&mut fs, "idx");
        for k in 0..300u64 {
            t.insert(&mut fs, k, k);
        }
        for k in (0..300u64).step_by(2) {
            assert_eq!(t.remove(&mut fs, k), Some(k));
        }
        assert_eq!(t.len(), 150);
        for k in 0..300u64 {
            assert_eq!(t.get(&mut fs, k), (k % 2 == 1).then_some(k));
        }
        assert_eq!(t.remove(&mut fs, 0), None);
    }

    #[test]
    fn cache_misses_charge_io() {
        let mut fs = fsys();
        let mut t = DiskBTree::create(&mut fs, "idx");
        for k in 0..20_000u64 {
            t.insert(&mut fs, k, k);
        }
        t.set_cache_pages(&mut fs, 2); // almost no cache
        t.flush(&mut fs);
        let ops0 = fs.stats.ops;
        for k in (0..20_000u64).step_by(997) {
            t.get(&mut fs, k);
        }
        assert!(fs.stats.ops > ops0, "uncached lookups must issue page reads");
    }

    #[test]
    fn survives_tiny_cache() {
        let mut fs = fsys();
        let mut t = DiskBTree::create(&mut fs, "idx");
        t.set_cache_pages(&mut fs, 1);
        for k in 0..2000u64 {
            t.insert(&mut fs, k * 3, k);
        }
        for k in 0..2000u64 {
            assert_eq!(t.get(&mut fs, k * 3), Some(k), "key {k}");
        }
    }
}
