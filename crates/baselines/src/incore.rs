//! The *in-core-octree* baseline: Gerris' ephemeral pointer octree.
//!
//! All octants live in DRAM; there is no persistence in the data
//! structure itself. Durability comes from whole-tree **snapshot files**
//! written through the file-system interface every N time steps (the
//! paper snapshots every 10). On failure, the entire snapshot is read
//! back — that file I/O is exactly what makes this baseline slow to
//! recover (42.9 s vs PM-octree's 2.1 s in §5.6).

use pmoctree_morton::{LeafIndex, OctKey};
use pmoctree_nvbm::{MemStats, VirtualClock};
use pmoctree_simfs::SimFs;

use crate::snapshot::{decode_octants, encode_octants, OctantRecord};

const NIL: u32 = u32::MAX;
/// Bytes per node charged to the DRAM model (same record size as the
/// PM-octree octant so comparisons are fair).
const NODE_BYTES: usize = 128;
const NODE_LINES: u64 = (NODE_BYTES / 64) as u64;

/// DRAM latency (matches `DeviceModel::default().dram`).
const DRAM_READ_NS: u64 = 60;
const DRAM_WRITE_NS: u64 = 60;

#[derive(Clone, Debug)]
struct Node {
    key: OctKey,
    children: [u32; 8],
    data: [f64; 4],
    live: bool,
}

/// Gerris-style in-core octree: slab-allocated, DRAM-only, with
/// snapshot-file persistence.
pub struct InCoreOctree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    leaves: usize,
    depth: u8,
    /// Virtual clock charged with DRAM latencies and (via [`SimFs`]) I/O.
    pub clock: VirtualClock,
    /// Access statistics (DRAM tier only).
    pub stats: MemStats,
    /// Morton-sorted leaf view (DRAM): slot = node slab index. Maintained
    /// incrementally by `refine`/`coarsen`, rebuilt lazily on first use.
    index: LeafIndex<3>,
}

impl Default for InCoreOctree {
    fn default() -> Self {
        Self::new()
    }
}

impl InCoreOctree {
    /// A tree holding the single root cell.
    pub fn new() -> Self {
        InCoreOctree {
            nodes: vec![Node {
                key: OctKey::root(),
                children: [NIL; 8],
                data: [0.0; 4],
                live: true,
            }],
            free: Vec::new(),
            root: 0,
            leaves: 1,
            depth: 0,
            clock: VirtualClock::new(),
            stats: MemStats::new(0),
            index: LeafIndex::new(),
        }
    }

    /// Charge the DRAM clock/stats for touching `entries` leaf-index
    /// entries (the index lives in DRAM; it never costs NVBM accesses).
    fn charge_index_entries(&mut self, entries: usize) {
        let lines = LeafIndex::<3>::lines_for_entries(entries);
        self.clock.advance(lines * DRAM_READ_NS);
        self.stats.dram_read(entries * pmoctree_morton::index::ENTRY_BYTES, lines);
    }

    /// Rebuild the leaf index if a wholesale change invalidated it. The
    /// rebuild enumerates every node once and charges that DRAM traversal.
    fn ensure_index(&mut self) {
        if self.index.is_valid() {
            return;
        }
        let mut entries = Vec::with_capacity(self.leaves);
        let mut stack = vec![self.root];
        let mut hops = 0u64;
        while let Some(i) = stack.pop() {
            hops += 1;
            let n = &self.nodes[i as usize];
            if n.children.iter().all(|&c| c == NIL) {
                entries.push((n.key, i as u64));
            } else {
                for &c in n.children.iter().rev() {
                    if c != NIL {
                        stack.push(c);
                    }
                }
            }
        }
        self.charge_read(hops);
        let n = self.index.rebuild(entries);
        self.stats.index_rebuild(n as u64);
    }

    /// Z-order-sorted leaf keys, answered from the DRAM leaf index.
    pub fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        self.ensure_index();
        self.charge_index_entries(self.index.len());
        self.index.entries().iter().map(|e| e.0).collect()
    }

    /// Resolve a batch of containment queries against the sorted leaf
    /// index in one merge-scan. Input order is arbitrary; results match
    /// input order. Each query costs DRAM index reads only.
    pub fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        self.ensure_index();
        let order = pmoctree_morton::simd::zorder_argsort(keys);
        let sorted: Vec<OctKey> = order.iter().map(|&i| keys[i]).collect();
        let (resolved, touched) = self.index.resolve_sorted(&sorted);
        self.charge_index_entries(touched);
        self.stats.index_hits(keys.len() as u64);
        let mut out = vec![None; keys.len()];
        for (slot, r) in order.into_iter().zip(resolved) {
            out[slot] = r.map(|e| self.index.entries()[e].0);
        }
        out
    }

    /// Batched leaf payload reads: index probes (DRAM) locate each leaf's
    /// slab slot, then exactly one destination node read is charged per
    /// resolved key — no per-key root descent. Keys that are not current
    /// leaves fall back to [`InCoreOctree::get_data`].
    pub fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<[f64; 4]>> {
        self.ensure_index();
        let order = pmoctree_morton::simd::zorder_argsort(keys);
        let sorted: Vec<OctKey> = order.iter().map(|&i| keys[i]).collect();
        let (resolved, touched) = self.index.resolve_sorted(&sorted);
        self.charge_index_entries(touched);
        self.stats.index_hits(keys.len() as u64);
        let mut out = vec![None; keys.len()];
        let mut payload_reads = 0u64;
        let mut fallbacks = Vec::new();
        for (pos, r) in order.iter().zip(resolved) {
            match r {
                Some(e) if self.index.entries()[e].0 == keys[*pos] => {
                    let slot = self.index.entries()[e].1 as usize;
                    out[*pos] = Some(self.nodes[slot].data);
                    payload_reads += 1;
                }
                _ => fallbacks.push(*pos),
            }
        }
        self.charge_read(payload_reads);
        for pos in fallbacks {
            out[pos] = self.get_data(keys[pos]);
        }
        out
    }

    fn charge_read(&mut self, nodes: u64) {
        self.clock.advance(nodes * NODE_LINES * DRAM_READ_NS);
        self.stats.dram_read(nodes as usize * NODE_BYTES, nodes * NODE_LINES);
    }

    fn charge_write(&mut self, nodes: u64) {
        self.clock.advance(nodes * NODE_LINES * DRAM_WRITE_NS);
        self.stats.dram_write(nodes as usize * NODE_BYTES, nodes * NODE_LINES);
    }

    fn alloc(&mut self, n: Node) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = n;
            i
        } else {
            self.nodes.push(n);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Number of leaf octants (mesh elements).
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Deepest level seen.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Total live octants.
    pub fn octant_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn find(&mut self, key: OctKey) -> Option<u32> {
        let mut cur = self.root;
        let mut hops = 1u64;
        for l in 0..key.level() {
            let idx = key.ancestor_at(l + 1).sibling_index();
            let next = self.nodes[cur as usize].children[idx];
            if next == NIL {
                self.charge_read(hops);
                return None;
            }
            cur = next;
            hops += 1;
        }
        self.charge_read(hops);
        Some(cur)
    }

    fn is_leaf_idx(&self, i: u32) -> bool {
        self.nodes[i as usize].children.iter().all(|&c| c == NIL)
    }

    /// Does the octant exist, and is it a leaf?
    pub fn is_leaf(&mut self, key: OctKey) -> Option<bool> {
        self.find(key).map(|i| self.is_leaf_idx(i))
    }

    /// The leaf containing `key`'s region, or `None` if `key` is internal.
    pub fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey> {
        let before = self.stats.total_lines_snapshot();
        let out = self.containing_leaf_inner(key);
        let lines = self.stats.total_lines_snapshot() - before;
        self.stats.descent_lines(lines);
        out
    }

    fn containing_leaf_inner(&mut self, key: OctKey) -> Option<OctKey> {
        self.stats.root_descent();
        let mut cur = self.root;
        let mut cur_key = OctKey::root();
        let mut hops = 1u64;
        for l in 0..key.level() {
            if self.is_leaf_idx(cur) {
                self.charge_read(hops);
                return Some(cur_key);
            }
            let idx = key.ancestor_at(l + 1).sibling_index();
            let next = self.nodes[cur as usize].children[idx];
            if next == NIL {
                self.charge_read(hops);
                return Some(cur_key);
            }
            cur = next;
            cur_key = key.ancestor_at(l + 1);
            hops += 1;
        }
        self.charge_read(hops);
        if self.is_leaf_idx(cur) {
            Some(cur_key)
        } else {
            None
        }
    }

    /// Read a cell payload.
    pub fn get_data(&mut self, key: OctKey) -> Option<[f64; 4]> {
        let i = self.find(key)?;
        self.charge_read(1);
        Some(self.nodes[i as usize].data)
    }

    /// Write a cell payload.
    pub fn set_data(&mut self, key: OctKey, data: [f64; 4]) -> bool {
        match self.find(key) {
            Some(i) => {
                self.charge_write(1);
                self.nodes[i as usize].data = data;
                true
            }
            None => false,
        }
    }

    /// Split the leaf at `key` into 8 children inheriting its payload.
    pub fn refine(&mut self, key: OctKey) -> bool {
        let Some(i) = self.find(key) else {
            return false;
        };
        if !self.is_leaf_idx(i) {
            return false;
        }
        let (k, data) = {
            let n = &self.nodes[i as usize];
            (n.key, n.data)
        };
        let mut kids = [NIL; 8];
        for (c, slot) in kids.iter_mut().enumerate() {
            *slot = self.alloc(Node { key: k.child(c), children: [NIL; 8], data, live: true });
        }
        self.nodes[i as usize].children = kids;
        self.charge_write(9);
        self.leaves += 7;
        self.depth = self.depth.max(key.level() + 1);
        let slots: Vec<u64> = kids.iter().map(|&c| c as u64).collect();
        self.index.on_refine(key, &slots);
        true
    }

    /// Remove the (all-leaf) children of `key`.
    pub fn coarsen(&mut self, key: OctKey) -> bool {
        let Some(i) = self.find(key) else {
            return false;
        };
        if self.is_leaf_idx(i) {
            return false;
        }
        let children = self.nodes[i as usize].children;
        if children.iter().any(|&c| c != NIL && !self.is_leaf_idx(c)) {
            return false;
        }
        let mut mean = [0.0f64; 4];
        for &c in &children {
            if c != NIL {
                for (m, v) in mean.iter_mut().zip(self.nodes[c as usize].data) {
                    *m += v / 8.0;
                }
                self.nodes[c as usize].live = false;
                self.free.push(c);
            }
        }
        // Restriction: the surviving leaf takes the mean of its children.
        self.nodes[i as usize].data = mean;
        self.nodes[i as usize].children = [NIL; 8];
        self.charge_write(1);
        self.leaves -= 7;
        self.index.on_coarsen(key, i as u64);
        true
    }

    /// Visit every leaf in pre-order.
    pub fn for_each_leaf(&mut self, mut f: impl FnMut(OctKey, &[f64; 4])) {
        let mut stack = vec![self.root];
        let mut hops = 0u64;
        while let Some(i) = stack.pop() {
            hops += 1;
            let n = &self.nodes[i as usize];
            if n.children.iter().all(|&c| c == NIL) {
                f(n.key, &n.data);
            } else {
                for &c in n.children.iter().rev() {
                    if c != NIL {
                        stack.push(c);
                    }
                }
            }
        }
        self.charge_read(hops);
    }

    /// Solver sweep: `f` returns `Some(new_data)` to update a leaf.
    pub fn update_leaves(&mut self, mut f: impl FnMut(OctKey, &[f64; 4]) -> Option<[f64; 4]>) {
        let mut stack = vec![self.root];
        let mut reads = 0u64;
        let mut writes = 0u64;
        while let Some(i) = stack.pop() {
            reads += 1;
            let leaf = self.nodes[i as usize].children.iter().all(|&c| c == NIL);
            if leaf {
                let n = &self.nodes[i as usize];
                if let Some(nd) = f(n.key, &n.data) {
                    self.nodes[i as usize].data = nd;
                    writes += 1;
                }
            } else {
                for &c in self.nodes[i as usize].children.iter().rev() {
                    if c != NIL {
                        stack.push(c);
                    }
                }
            }
        }
        self.charge_read(reads);
        self.charge_write(writes);
    }

    /// Collect all leaves sorted by Z-order.
    pub fn leaves_sorted(&mut self) -> Vec<(OctKey, [f64; 4])> {
        let mut out = Vec::with_capacity(self.leaves);
        self.for_each_leaf(|k, d| out.push((k, *d)));
        out.sort_by_key(|a| a.0);
        out
    }

    // ---- snapshots (gfs_output_write / gfs_output_read analogues) -------

    /// Serialize the whole tree into a snapshot file. Cost: one DRAM read
    /// per octant plus the FS write of every byte.
    pub fn snapshot(&mut self, fs: &mut SimFs, name: &str) {
        let mut records = Vec::with_capacity(self.octant_count());
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i as usize];
            let leaf = n.children.iter().all(|&c| c == NIL);
            records.push(OctantRecord { key: n.key, data: n.data, is_leaf: leaf });
            for &c in n.children.iter().rev() {
                if c != NIL {
                    stack.push(c);
                }
            }
        }
        self.charge_read(records.len() as u64);
        let bytes = encode_octants(&records);
        fs.write_all(name, &bytes);
        // A checkpoint that may still sit in the device write cache is no
        // checkpoint: pay the durability barrier, like fsync after
        // gfs_output_write.
        fs.sync();
        // The snapshot stall is part of this tree's execution time.
        self.clock.advance_to(self.clock.now_ns());
    }

    /// Rebuild a tree from a snapshot file.
    pub fn restore(fs: &mut SimFs, name: &str) -> Result<Self, String> {
        let bytes = fs.read_all(name)?;
        let records = decode_octants(&bytes)?;
        let mut t = InCoreOctree::new();
        // Pre-order: parents precede children; refine on demand.
        for r in &records[1..] {
            let parent = r.key.parent().expect("non-root record");
            // Ensure the parent has been refined.
            if t.is_leaf(parent) == Some(true) {
                t.refine(parent);
            }
        }
        for r in &records {
            t.set_data(r.key, r.data);
        }
        t.charge_write(records.len() as u64);
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refine_coarsen_roundtrip() {
        let mut t = InCoreOctree::new();
        assert!(t.refine(OctKey::root()));
        assert!(t.refine(OctKey::root().child(3)));
        assert_eq!(t.leaf_count(), 15);
        assert_eq!(t.octant_count(), 17);
        assert!(t.coarsen(OctKey::root().child(3)));
        assert_eq!(t.leaf_count(), 8);
        assert!(!t.coarsen(OctKey::root().child(3)), "now a leaf");
        assert!(!t.refine(OctKey::root()), "not a leaf");
    }

    #[test]
    fn data_roundtrip() {
        let mut t = InCoreOctree::new();
        t.refine(OctKey::root());
        let k = OctKey::root().child(6);
        assert!(t.set_data(k, [1.0, 2.0, 3.0, 4.0]));
        assert_eq!(t.get_data(k), Some([1.0, 2.0, 3.0, 4.0]));
        assert_eq!(t.get_data(k.child(0)), None);
    }

    #[test]
    fn containing_leaf_descends() {
        let mut t = InCoreOctree::new();
        t.refine(OctKey::root());
        t.refine(OctKey::root().child(0));
        let deep = OctKey::root().child(0).child(3).child(5);
        assert_eq!(t.containing_leaf(deep), Some(OctKey::root().child(0).child(3)));
        assert_eq!(
            t.containing_leaf(OctKey::root().child(1).child(0)),
            Some(OctKey::root().child(1))
        );
        assert_eq!(t.containing_leaf(OctKey::root()), None, "root is internal");
    }

    #[test]
    fn snapshot_restore_identical() {
        let mut fs = SimFs::on_nvbm();
        let mut t = InCoreOctree::new();
        t.refine(OctKey::root());
        t.refine(OctKey::root().child(2));
        t.set_data(OctKey::root().child(2).child(7), [9.0, 0.0, 0.5, 0.0]);
        t.snapshot(&mut fs, "snap.gfs");
        let before = t.leaves_sorted();
        let mut r = InCoreOctree::restore(&mut fs, "snap.gfs").unwrap();
        assert_eq!(r.leaves_sorted(), before);
        assert_eq!(r.leaf_count(), t.leaf_count());
    }

    #[test]
    fn snapshot_cost_scales_with_tree() {
        let mut fs = SimFs::on_nvbm();
        let mut t = InCoreOctree::new();
        t.refine(OctKey::root());
        t.snapshot(&mut fs, "small");
        let small = fs.clock.now_ns();
        for i in 0..8 {
            t.refine(OctKey::root().child(i));
        }
        let t0 = fs.clock.now_ns();
        t.snapshot(&mut fs, "big");
        assert!(fs.clock.now_ns() - t0 >= small, "bigger tree, costlier snapshot");
        assert!(fs.len("big").unwrap() > fs.len("small").unwrap());
    }

    #[test]
    fn snapshot_cost_strictly_increases_with_fsync() {
        use pmoctree_simfs::BlockDeviceModel;
        let barrier = BlockDeviceModel::nvbm_fs();
        assert!(barrier.sync_ns > 0, "model must charge a durability barrier");
        let mut no_barrier = barrier;
        no_barrier.sync_ns = 0;
        let cost = |model: BlockDeviceModel| {
            let mut fs = SimFs::new(model);
            let mut t = InCoreOctree::new();
            t.refine(OctKey::root());
            t.snapshot(&mut fs, "snap.gfs");
            fs.clock.now_ns()
        };
        assert!(
            cost(barrier) > cost(no_barrier),
            "fsync-charged checkpoint must cost strictly more than an unsynced one"
        );
    }

    #[test]
    fn update_leaves_only_touches_leaves() {
        let mut t = InCoreOctree::new();
        t.refine(OctKey::root());
        t.update_leaves(|_, d| Some([d[0] + 1.0, d[1], d[2], d[3]]));
        t.for_each_leaf(|_, d| assert_eq!(d[0], 1.0));
        assert_eq!(t.get_data(OctKey::root()).unwrap()[0], 0.0);
    }

    #[test]
    fn dram_accounting() {
        let mut t = InCoreOctree::new();
        t.refine(OctKey::root());
        assert!(t.stats.dram.write_lines > 0);
        assert!(t.stats.nvbm.write_lines == 0);
        assert!(t.clock.now_ns() > 0);
    }
}
