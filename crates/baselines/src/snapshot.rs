//! Snapshot serialization: the on-file format shared by the in-core
//! baseline's snapshot files and the Etree data pages.
//!
//! One record is 48 bytes: locational code (8) + level (1) + leaf flag (1)
//! + padding (6) + four f64 payload fields (32).

use pmoctree_morton::OctKey;

/// Serialized size of one octant record.
pub const RECORD_SIZE: usize = 48;

/// One serialized octant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OctantRecord {
    /// Locational code.
    pub key: OctKey,
    /// Payload (phi, pressure, vof, work).
    pub data: [f64; 4],
    /// Is this a leaf octant?
    pub is_leaf: bool,
}

/// Encode a record into its 48-byte wire form.
pub fn encode_record(r: &OctantRecord, out: &mut [u8]) {
    assert!(out.len() >= RECORD_SIZE);
    out[0..8].copy_from_slice(&r.key.raw().to_le_bytes());
    out[8] = r.key.level();
    out[9] = r.is_leaf as u8;
    out[10..16].fill(0);
    for (i, v) in r.data.iter().enumerate() {
        out[16 + i * 8..24 + i * 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// Decode a 48-byte wire record.
pub fn decode_record(b: &[u8]) -> Result<OctantRecord, String> {
    if b.len() < RECORD_SIZE {
        return Err(format!("short record: {} bytes", b.len()));
    }
    let code = u64::from_le_bytes(b[0..8].try_into().expect("8"));
    let level = b[8];
    if level > OctKey::MAX_LEVEL {
        return Err(format!("corrupt record: level {level}"));
    }
    // `OctKey::from_raw` panics on codes with bits above the level; a
    // corrupted record must surface as an error instead.
    let shift = level as u32 * 3;
    if shift < 64 && code >> shift != 0 {
        return Err(format!("corrupt record: code {code:#x} has bits above level {level}"));
    }
    let mut data = [0.0f64; 4];
    for (i, v) in data.iter_mut().enumerate() {
        *v = f64::from_le_bytes(b[16 + i * 8..24 + i * 8].try_into().expect("8"));
    }
    Ok(OctantRecord { key: OctKey::from_raw(code, level), data, is_leaf: b[9] != 0 })
}

/// Encode a whole octant list (8-byte count header + records).
pub fn encode_octants(records: &[OctantRecord]) -> Vec<u8> {
    let mut out = vec![0u8; 8 + records.len() * RECORD_SIZE];
    out[0..8].copy_from_slice(&(records.len() as u64).to_le_bytes());
    for (i, r) in records.iter().enumerate() {
        encode_record(r, &mut out[8 + i * RECORD_SIZE..8 + (i + 1) * RECORD_SIZE]);
    }
    out
}

/// Decode an octant list.
pub fn decode_octants(bytes: &[u8]) -> Result<Vec<OctantRecord>, String> {
    if bytes.len() < 8 {
        return Err("snapshot too short".into());
    }
    let n = u64::from_le_bytes(bytes[0..8].try_into().expect("8")) as usize;
    // Checked arithmetic: a corrupted count must yield an error, not an
    // overflow panic.
    let need = n.checked_mul(RECORD_SIZE).and_then(|b| b.checked_add(8));
    match need {
        Some(need) if bytes.len() >= need => {}
        _ => return Err(format!("snapshot truncated: {n} records claimed")),
    }
    (0..n).map(|i| decode_record(&bytes[8 + i * RECORD_SIZE..8 + (i + 1) * RECORD_SIZE])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let r = OctantRecord {
            key: OctKey::root().child(3).child(7),
            data: [1.5, -2.0, 0.25, 1e9],
            is_leaf: true,
        };
        let mut buf = [0u8; RECORD_SIZE];
        encode_record(&r, &mut buf);
        assert_eq!(decode_record(&buf).unwrap(), r);
    }

    #[test]
    fn list_roundtrip() {
        let records: Vec<OctantRecord> = (0..8)
            .map(|i| OctantRecord {
                key: OctKey::root().child(i),
                data: [i as f64; 4],
                is_leaf: i % 2 == 0,
            })
            .collect();
        let bytes = encode_octants(&records);
        assert_eq!(decode_octants(&bytes).unwrap(), records);
    }

    #[test]
    fn corrupt_level_rejected() {
        let mut buf = [0u8; RECORD_SIZE];
        buf[8] = 99;
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn truncation_detected() {
        let records = vec![OctantRecord { key: OctKey::root(), data: [0.0; 4], is_leaf: true }];
        let mut bytes = encode_octants(&records);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_octants(&bytes).is_err());
    }
}
