//! Baseline octree implementations from the paper's evaluation (§5.1).
//!
//! * [`incore::InCoreOctree`] — Gerris' ephemeral in-core pointer octree:
//!   all octants in DRAM, persistence via whole-tree snapshot files on an
//!   NVBM-backed file system every N steps.
//! * [`etree::EtreeOctree`] — the Etree-style out-of-core linear octree:
//!   octants in 4 KiB pages behind a disk-backed B-tree index
//!   ([`btree::DiskBTree`]), every access through the file-system
//!   interface.
//!
//! Both charge the same virtual-clock cost models as PM-octree, so the
//! three implementations can be compared head-to-head by the `cluster`
//! and `bench` crates.
#![warn(missing_docs)]

pub mod btree;
pub mod etree;
pub mod incore;
pub mod snapshot;

pub use btree::DiskBTree;
pub use etree::{EtreeOctree, RECORDS_PER_PAGE};
pub use incore::InCoreOctree;
pub use snapshot::{decode_octants, encode_octants, OctantRecord, RECORD_SIZE};
