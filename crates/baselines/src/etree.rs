//! The *out-of-core-octree* baseline: an Etree-style linear octree.
//!
//! Octants (leaves only — a linear octree stores no internal nodes and no
//! neighbor pointers) are packed into 4 KiB data pages sorted by Morton
//! anchor; a [`DiskBTree`] maps each page's first anchor to its page
//! number. Every access goes through the file-system interface at page
//! granularity, even when the backing device is NVBM — reproducing the
//! three costs the paper calls out in §5.4: page-granularity I/O, index
//! lookups, and (in the `amr` crate) 26-neighbor searches for balancing.
//!
//! Like the real Etree ("essentially an octant database"), every mutation
//! is written through to the file system, so recovery after a failure is
//! immediate: re-open the metadata, no replay needed.

use pmoctree_morton::{anchor, LeafIndex, OctKey};
use pmoctree_nvbm::{MemStats, PAGE};
use pmoctree_simfs::SimFs;

use crate::btree::DiskBTree;
use crate::snapshot::{decode_record, encode_record, OctantRecord, RECORD_SIZE};

/// Records per data page: (4096 - 16-byte header) / 48.
pub const RECORDS_PER_PAGE: usize = (PAGE - 16) / RECORD_SIZE;

const DATA_FILE: &str = "etree.dat";
const META_FILE: &str = "etree.meta";
const INDEX_FILE: &str = "etree.idx";

/// Etree-style out-of-core linear octree over a simulated file system.
pub struct EtreeOctree {
    /// The backing file system (owns the virtual clock and I/O stats).
    pub fs: SimFs,
    index: DiskBTree,
    next_page: u32,
    leaves: usize,
    depth: u8,
    /// DRAM-side accounting: leaf-index probe costs and traversal
    /// counters. Page and B-tree I/O stays on `fs`.
    pub stats: MemStats,
    /// Morton-sorted DRAM view of the leaf set, maintained incrementally
    /// by `refine`/`coarsen` and rebuilt lazily after `reopen`.
    leaf_view: LeafIndex<3>,
}

/// DRAM read latency charged for leaf-index probes (matches the in-core
/// baseline and `DeviceModel::default().dram`).
const DRAM_READ_NS: u64 = 60;

fn page_decode(buf: &[u8]) -> Vec<OctantRecord> {
    let n = u16::from_le_bytes(buf[0..2].try_into().expect("2")) as usize;
    (0..n)
        .map(|i| {
            decode_record(&buf[16 + i * RECORD_SIZE..16 + (i + 1) * RECORD_SIZE]).expect("record")
        })
        .collect()
}

fn page_encode(records: &[OctantRecord]) -> Vec<u8> {
    assert!(records.len() <= RECORDS_PER_PAGE);
    let mut buf = vec![0u8; PAGE];
    buf[0..2].copy_from_slice(&(records.len() as u16).to_le_bytes());
    for (i, r) in records.iter().enumerate() {
        encode_record(r, &mut buf[16 + i * RECORD_SIZE..16 + (i + 1) * RECORD_SIZE]);
    }
    buf
}

impl EtreeOctree {
    /// Create a new octree holding the single root leaf, on `fs`.
    pub fn create(mut fs: SimFs) -> Self {
        fs.create(DATA_FILE);
        let mut index = DiskBTree::create(&mut fs, INDEX_FILE);
        let root = OctantRecord { key: OctKey::root(), data: [0.0; 4], is_leaf: true };
        let page0 = page_encode(&[root]);
        fs.write_at(DATA_FILE, 0, &page0).expect("page 0");
        index.insert(&mut fs, anchor::<3>(&OctKey::root()), 0);
        let mut t = EtreeOctree {
            fs,
            index,
            next_page: 1,
            leaves: 1,
            depth: 0,
            stats: MemStats::new(0),
            leaf_view: LeafIndex::new(),
        };
        t.save_meta();
        t
    }

    /// Re-open an existing octree after a failure: read the metadata
    /// superblock; no octant data needs to be touched (the paper's
    /// "can immediately access octants" recovery).
    pub fn reopen(mut fs: SimFs, index: DiskBTree) -> Result<Self, String> {
        let meta = fs.read_all(META_FILE)?;
        if meta.len() < 24 {
            return Err("corrupt etree metadata".into());
        }
        let next_page = u32::from_le_bytes(meta[0..4].try_into().expect("4"));
        let leaves = u64::from_le_bytes(meta[8..16].try_into().expect("8")) as usize;
        let depth = meta[16];
        // The leaf view starts invalid after a reopen: the first batched
        // query rebuilds it from a full page sweep.
        Ok(EtreeOctree {
            fs,
            index,
            next_page,
            leaves,
            depth,
            stats: MemStats::new(0),
            leaf_view: LeafIndex::new(),
        })
    }

    /// Charge DRAM costs for touching `entries` leaf-view entries.
    fn charge_index_entries(&mut self, entries: usize) {
        let lines = LeafIndex::<3>::lines_for_entries(entries);
        self.fs.clock.advance(lines * DRAM_READ_NS);
        self.stats.dram_read(entries * pmoctree_morton::index::ENTRY_BYTES, lines);
    }

    /// Rebuild the DRAM leaf view from a full page sweep (the sweep's page
    /// I/O is charged through `fs` by `read_page`).
    fn ensure_index(&mut self) {
        if self.leaf_view.is_valid() {
            return;
        }
        let pages: Vec<u32> =
            self.index.items(&mut self.fs).iter().map(|&(_, p)| p as u32).collect();
        let mut entries = Vec::with_capacity(self.leaves);
        for page in pages {
            for r in self.read_page(page) {
                entries.push((r.key, page as u64));
            }
        }
        let n = self.leaf_view.rebuild(entries);
        self.stats.index_rebuild(n as u64);
    }

    /// Z-order-sorted leaf keys from the DRAM leaf view (no page I/O once
    /// the view is built).
    pub fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        self.ensure_index();
        self.charge_index_entries(self.leaf_view.len());
        self.leaf_view.entries().iter().map(|e| e.0).collect()
    }

    /// Resolve a batch of containment queries against the DRAM leaf view
    /// in one merge-scan — no per-key B-tree lookups or page reads.
    /// Input order is arbitrary; results match input order.
    pub fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        self.ensure_index();
        let order = pmoctree_morton::simd::zorder_argsort(keys);
        let sorted: Vec<OctKey> = order.iter().map(|&i| keys[i]).collect();
        let (resolved, touched) = self.leaf_view.resolve_sorted(&sorted);
        self.charge_index_entries(touched);
        self.stats.index_hits(keys.len() as u64);
        let mut out = vec![None; keys.len()];
        for (slot, r) in order.into_iter().zip(resolved) {
            out[slot] = r.map(|e| self.leaf_view.entries()[e].0);
        }
        out
    }

    /// Batched leaf payload reads: queries resolve against the DRAM leaf
    /// view, then every data page holding at least one queried leaf is
    /// read exactly once (instead of one B-tree lookup + page read per
    /// key). Keys that are not current leaves fall back to
    /// [`EtreeOctree::get_data`].
    pub fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<[f64; 4]>> {
        self.ensure_index();
        let resolved = self.containing_leaf_many(keys);
        let mut out = vec![None; keys.len()];
        // Exact leaf hits, grouped by anchor for the page merge below.
        let mut wanted: Vec<(u64, usize)> = Vec::new();
        let mut fallbacks = Vec::new();
        for (pos, r) in resolved.iter().enumerate() {
            match r {
                Some(k) if *k == keys[pos] => wanted.push((anchor::<3>(k), pos)),
                _ => fallbacks.push(pos),
            }
        }
        wanted.sort_unstable();
        if !wanted.is_empty() {
            let items = self.index.items(&mut self.fs);
            let mut w = 0usize;
            for (pi, &(first, page)) in items.iter().enumerate() {
                if w >= wanted.len() {
                    break;
                }
                let next_first = items.get(pi + 1).map(|&(a, _)| a).unwrap_or(u64::MAX);
                if wanted[w].0 >= next_first {
                    continue;
                }
                // At least one wanted anchor lives in [first, next_first).
                debug_assert!(wanted[w].0 >= first || pi == 0);
                let records = self.read_page(page as u32);
                while w < wanted.len() && wanted[w].0 < next_first {
                    let (a, pos) = wanted[w];
                    let ri = records.partition_point(|r| anchor::<3>(&r.key) < a);
                    if ri < records.len() && records[ri].key == keys[pos] {
                        out[pos] = Some(records[ri].data);
                    } else {
                        fallbacks.push(pos);
                    }
                    w += 1;
                }
            }
        }
        for pos in fallbacks {
            out[pos] = self.get_data(keys[pos]);
        }
        out
    }

    fn save_meta(&mut self) {
        let mut meta = vec![0u8; 24];
        meta[0..4].copy_from_slice(&self.next_page.to_le_bytes());
        meta[8..16].copy_from_slice(&(self.leaves as u64).to_le_bytes());
        meta[16] = self.depth;
        self.fs.write_all(META_FILE, &meta);
    }

    /// Decompose into the surviving persistent parts (file system +
    /// index handle) — what a process restart hands to [`Self::reopen`].
    pub fn into_parts(self) -> (SimFs, DiskBTree) {
        (self.fs, self.index)
    }

    /// Persist dirty index pages and metadata (end-of-step flush).
    pub fn flush(&mut self) {
        self.index.flush(&mut self.fs);
        self.save_meta();
    }

    /// Number of leaf octants.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Deepest level seen.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    fn read_page(&mut self, page: u32) -> Vec<OctantRecord> {
        let mut buf = vec![0u8; PAGE];
        self.fs.read_at(DATA_FILE, page as usize * PAGE, &mut buf).expect("data page read");
        page_decode(&buf)
    }

    fn write_page(&mut self, page: u32, records: &[OctantRecord]) {
        let buf = page_encode(records);
        self.fs.write_at(DATA_FILE, page as usize * PAGE, &buf).expect("data page write");
    }

    /// Page owning `a` (greatest first-anchor ≤ a, else the first page).
    fn page_for(&mut self, a: u64) -> Option<u32> {
        if let Some((_, p)) = self.index.get_le(&mut self.fs, a) {
            return Some(p as u32);
        }
        // a precedes every page: use the overall first page.
        self.index.items(&mut self.fs).first().map(|&(_, p)| p as u32)
    }

    /// The leaf record containing `key`'s region: the record with the
    /// greatest anchor ≤ anchor(key) (leaves tile the domain, so it is an
    /// ancestor-or-self of `key` whenever key addresses an existing or
    /// coarser region).
    pub fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey> {
        let before = self.stats.total_lines_snapshot();
        let out = self.containing_leaf_inner(key);
        let lines = self.stats.total_lines_snapshot() - before;
        self.stats.descent_lines(lines);
        out
    }

    fn containing_leaf_inner(&mut self, key: OctKey) -> Option<OctKey> {
        // Counted as a root descent: a full B-tree + page lookup, the
        // per-key slow path the batched leaf-view queries avoid.
        self.stats.root_descent();
        let a = anchor::<3>(&key);
        let page = self.page_for(a)?;
        let records = self.read_page(page);
        let i = records.partition_point(|r| anchor::<3>(&r.key) <= a);
        let rec = if i > 0 { &records[i - 1] } else { records.first()? };
        if rec.key.contains(&key) || key.contains(&rec.key) {
            if rec.key.level() <= key.level() {
                Some(rec.key)
            } else {
                None // key names an internal (refined-deeper) region
            }
        } else {
            None
        }
    }

    /// Does a leaf exist exactly at `key`?
    pub fn is_leaf(&mut self, key: OctKey) -> Option<bool> {
        match self.containing_leaf(key) {
            Some(k) if k == key => Some(true),
            Some(_) => None,     // a coarser leaf covers it: key itself absent
            None => Some(false), // key region is refined deeper → internal
        }
    }

    fn find_record(&mut self, key: OctKey) -> Option<(u32, usize, OctantRecord)> {
        let a = anchor::<3>(&key);
        let page = self.page_for(a)?;
        let records = self.read_page(page);
        let i = records.partition_point(|r| anchor::<3>(&r.key) < a);
        if i < records.len() && records[i].key == key {
            let r = records[i];
            Some((page, i, r))
        } else {
            None
        }
    }

    /// Read a leaf payload.
    pub fn get_data(&mut self, key: OctKey) -> Option<[f64; 4]> {
        self.find_record(key).map(|(_, _, r)| r.data)
    }

    /// Write a leaf payload (read-modify-write of its page).
    pub fn set_data(&mut self, key: OctKey, data: [f64; 4]) -> bool {
        match self.find_record(key) {
            Some((page, i, _)) => {
                let mut records = self.read_page(page);
                records[i].data = data;
                self.write_page(page, &records);
                true
            }
            None => false,
        }
    }

    fn insert_record(&mut self, rec: OctantRecord) {
        let a = anchor::<3>(&rec.key);
        let page = self.page_for(a).expect("tree never empty");
        let mut records = self.read_page(page);
        let old_first = records.first().map(|r| anchor::<3>(&r.key));
        let i = records.partition_point(|r| anchor::<3>(&r.key) < a);
        debug_assert!(
            i >= records.len() || records[i].key != rec.key,
            "duplicate leaf insert at {:?}",
            rec.key
        );
        records.insert(i, rec);
        if i == 0 {
            // Page's first anchor changed: re-key the index entry. An
            // empty page carries the placeholder key 0 (see
            // remove_record's last-page path).
            match old_first {
                Some(of) if of != a => {
                    self.index.remove(&mut self.fs, of);
                    self.index.insert(&mut self.fs, a, page as u64);
                }
                None => {
                    self.index.remove(&mut self.fs, 0);
                    self.index.insert(&mut self.fs, a, page as u64);
                }
                _ => {}
            }
        }
        if records.len() > RECORDS_PER_PAGE {
            let right: Vec<OctantRecord> = records.split_off(records.len() / 2);
            let right_page = self.next_page;
            self.next_page += 1;
            self.index.insert(&mut self.fs, anchor::<3>(&right[0].key), right_page as u64);
            self.write_page(right_page, &right);
        }
        self.write_page(page, &records);
    }

    fn remove_record(&mut self, key: OctKey) -> Option<OctantRecord> {
        let (page, i, rec) = self.find_record(key)?;
        let mut records = self.read_page(page);
        records.remove(i);
        if records.is_empty() {
            // Page dead: drop its index entry (page becomes garbage).
            self.index.remove(&mut self.fs, anchor::<3>(&rec.key));
            // Never drop the last page of the tree: keep it under the
            // placeholder key 0 so the next insert can find and re-key it.
            if self.index.is_empty() {
                self.index.insert(&mut self.fs, 0, page as u64);
                self.write_page(page, &records);
                return Some(rec);
            }
        } else if i == 0 {
            self.index.remove(&mut self.fs, anchor::<3>(&rec.key));
            self.index.insert(&mut self.fs, anchor::<3>(&records[0].key), page as u64);
        }
        self.write_page(page, &records);
        Some(rec)
    }

    /// Refine the leaf at `key`: replace it with its 8 children.
    pub fn refine(&mut self, key: OctKey) -> bool {
        let Some(rec) = self.remove_record(key) else {
            return false;
        };
        for c in 0..8 {
            self.insert_record(OctantRecord { key: key.child(c), data: rec.data, is_leaf: true });
        }
        self.leaves += 7;
        self.depth = self.depth.max(key.level() + 1);
        // Slot is unused for this backend (pages shift on splits); payload
        // batches re-group by page at query time.
        self.leaf_view.on_refine_uniform(key, 0);
        true
    }

    /// Coarsen: replace the 8 child leaves of `key` by `key` itself
    /// (payload taken from child 0). Fails if any child is missing
    /// (i.e. refined deeper or never created).
    pub fn coarsen(&mut self, key: OctKey) -> bool {
        // Verify all 8 children exist as leaves before mutating.
        for c in 0..8 {
            if self.find_record(key.child(c)).is_none() {
                return false;
            }
        }
        // Restriction: the new leaf takes the mean of its children.
        let mut data = [0.0f64; 4];
        for c in 0..8 {
            let rec = self.remove_record(key.child(c)).expect("verified above");
            for (m, v) in data.iter_mut().zip(rec.data) {
                *m += v / 8.0;
            }
        }
        self.insert_record(OctantRecord { key, data, is_leaf: true });
        self.leaves -= 7;
        self.leaf_view.on_coarsen(key, 0);
        true
    }

    /// Visit all leaves in Z-order.
    pub fn for_each_leaf(&mut self, mut f: impl FnMut(OctKey, &[f64; 4])) {
        let pages: Vec<u32> =
            self.index.items(&mut self.fs).iter().map(|&(_, p)| p as u32).collect();
        for page in pages {
            for r in self.read_page(page) {
                f(r.key, &r.data);
            }
        }
    }

    /// Solver sweep with read-modify-write page I/O.
    pub fn update_leaves(&mut self, mut f: impl FnMut(OctKey, &[f64; 4]) -> Option<[f64; 4]>) {
        let pages: Vec<u32> =
            self.index.items(&mut self.fs).iter().map(|&(_, p)| p as u32).collect();
        for page in pages {
            let mut records = self.read_page(page);
            let mut dirty = false;
            for r in &mut records {
                if let Some(nd) = f(r.key, &r.data) {
                    r.data = nd;
                    dirty = true;
                }
            }
            if dirty {
                self.write_page(page, &records);
            }
        }
    }

    /// All leaves sorted by Z-order.
    pub fn leaves_sorted(&mut self) -> Vec<(OctKey, [f64; 4])> {
        let mut out = Vec::with_capacity(self.leaves);
        self.for_each_leaf(|k, d| out.push((k, *d)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> EtreeOctree {
        EtreeOctree::create(SimFs::on_nvbm())
    }

    #[test]
    fn create_single_root() {
        let mut t = tree();
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.is_leaf(OctKey::root()), Some(true));
        assert_eq!(t.containing_leaf(OctKey::root().child(3)), Some(OctKey::root()));
    }

    #[test]
    fn refine_replaces_leaf() {
        let mut t = tree();
        assert!(t.refine(OctKey::root()));
        assert_eq!(t.leaf_count(), 8);
        assert_eq!(t.is_leaf(OctKey::root()), Some(false), "root now internal");
        for c in 0..8 {
            assert_eq!(t.is_leaf(OctKey::root().child(c)), Some(true));
        }
        assert!(!t.refine(OctKey::root()), "cannot refine an internal region");
    }

    #[test]
    fn coarsen_restores() {
        let mut t = tree();
        t.refine(OctKey::root());
        t.refine(OctKey::root().child(4));
        assert!(!t.coarsen(OctKey::root()), "child 4 is refined deeper");
        assert!(t.coarsen(OctKey::root().child(4)));
        assert!(t.coarsen(OctKey::root()));
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn data_roundtrip() {
        let mut t = tree();
        t.refine(OctKey::root());
        let k = OctKey::root().child(5);
        assert!(t.set_data(k, [4.0, 3.0, 2.0, 1.0]));
        assert_eq!(t.get_data(k), Some([4.0, 3.0, 2.0, 1.0]));
        assert!(!t.set_data(k.child(1), [0.0; 4]));
    }

    #[test]
    fn deep_refinement_spans_pages() {
        let mut t = tree();
        t.refine(OctKey::root());
        // Refine to get > RECORDS_PER_PAGE leaves (1 + 7*n growth).
        let mut frontier = std::collections::VecDeque::from(vec![OctKey::root().child(0)]);
        let mut count = 8;
        while count <= 2 * RECORDS_PER_PAGE {
            let k = frontier.pop_front().expect("frontier");
            assert!(t.refine(k), "refine {k:?}");
            count += 7;
            frontier.extend((0..8).map(|c| k.child(c)));
        }
        assert_eq!(t.leaf_count(), count);
        let leaves = t.leaves_sorted();
        assert_eq!(leaves.len(), count);
        for w in leaves.windows(2) {
            assert!(w[0].0 < w[1].0, "Z-order maintained across pages");
        }
        // Every leaf individually findable through the index.
        for (k, _) in leaves.iter().step_by(17) {
            assert_eq!(t.is_leaf(*k), Some(true));
        }
    }

    #[test]
    fn containing_leaf_linear_search() {
        let mut t = tree();
        t.refine(OctKey::root());
        t.refine(OctKey::root().child(2));
        let probe = OctKey::root().child(2).child(3).child(1);
        assert_eq!(t.containing_leaf(probe), Some(OctKey::root().child(2).child(3)));
        let probe2 = OctKey::root().child(6).child(0);
        assert_eq!(t.containing_leaf(probe2), Some(OctKey::root().child(6)));
    }

    #[test]
    fn update_leaves_sweep() {
        let mut t = tree();
        t.refine(OctKey::root());
        t.update_leaves(|_, d| Some([d[0] + 5.0, d[1], d[2], d[3]]));
        t.for_each_leaf(|_, d| assert_eq!(d[0], 5.0));
    }

    #[test]
    fn io_charged_for_everything() {
        let mut t = tree();
        let ops0 = t.fs.stats.ops;
        t.refine(OctKey::root());
        assert!(t.fs.stats.ops > ops0, "refinement must do file I/O");
        let c0 = t.fs.clock.now_ns();
        t.set_data(OctKey::root().child(1), [1.0; 4]);
        assert!(t.fs.clock.now_ns() > c0);
    }

    #[test]
    fn reopen_after_flush_preserves_tree() {
        let mut t = tree();
        t.refine(OctKey::root());
        t.refine(OctKey::root().child(7));
        t.set_data(OctKey::root().child(7).child(7), [7.0; 4]);
        t.flush();
        let before = t.leaves_sorted();
        let EtreeOctree { fs, index, .. } = t;
        let mut r = EtreeOctree::reopen(fs, index).unwrap();
        assert_eq!(r.leaves_sorted(), before);
        assert_eq!(r.leaf_count(), before.len());
    }

    #[test]
    fn disk_device_is_much_slower() {
        let mut nv = EtreeOctree::create(SimFs::on_nvbm());
        let mut hd = EtreeOctree::create(SimFs::on_disk());
        for t in [&mut nv, &mut hd] {
            t.refine(OctKey::root());
            t.refine(OctKey::root().child(0));
        }
        assert!(hd.fs.clock.now_ns() > 10 * nv.fs.clock.now_ns());
    }
}
