//! Property tests for the baseline substrates: the disk-backed B-tree
//! behaves like a sorted map, and the Etree linear octree maintains the
//! leaf-tiling invariant under arbitrary refine/coarsen sequences.

use pmoctree_baselines::{
    decode_octants, encode_octants, DiskBTree, EtreeOctree, OctantRecord, RECORD_SIZE,
};
use pmoctree_morton::{anchor, anchor_end, OctKey};
use pmoctree_simfs::SimFs;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    GetLe(u64),
}

fn arb_map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u64..5000, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            1 => (0u64..5000).prop_map(MapOp::Remove),
            1 => (0u64..6000).prop_map(MapOp::GetLe),
        ],
        1..300,
    )
}

fn arb_record() -> impl Strategy<Value = OctantRecord> {
    (
        prop::collection::vec(0usize..8, 0..6),
        prop::collection::vec(-1e12f64..1e12, 4),
        any::<bool>(),
    )
        .prop_map(|(path, data, is_leaf)| {
            let mut k = OctKey::root();
            for c in path {
                k = k.child(c);
            }
            let data = [data[0], data[1], data[2], data[3]];
            OctantRecord { key: k, data, is_leaf }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot wire format: encode → decode is the identity for any
    /// octant list.
    #[test]
    fn snapshot_roundtrips(records in prop::collection::vec(arb_record(), 0..64)) {
        let bytes = encode_octants(&records);
        prop_assert_eq!(bytes.len(), 8 + records.len() * RECORD_SIZE);
        prop_assert_eq!(decode_octants(&bytes).expect("roundtrip"), records);
    }

    /// Any strict prefix of a valid snapshot is rejected with an error —
    /// never a panic, never a silently shortened list.
    #[test]
    fn snapshot_truncation_is_an_error(
        records in prop::collection::vec(arb_record(), 1..32),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = encode_octants(&records);
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(decode_octants(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
    }

    /// Arbitrary byte corruption (including of the count header) either
    /// decodes to *some* list or errors out — it must never panic.
    #[test]
    fn snapshot_corruption_never_panics(
        records in prop::collection::vec(arb_record(), 0..16),
        pos_fraction in 0.0f64..1.0,
        val in any::<u8>(),
    ) {
        let mut bytes = encode_octants(&records);
        let pos = ((bytes.len() - 1) as f64 * pos_fraction) as usize;
        bytes[pos] = val;
        let _ = decode_octants(&bytes);
        // A count header claiming u64::MAX records must error, not
        // overflow the size computation.
        bytes[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        prop_assert!(decode_octants(&bytes).is_err());
    }

    /// The disk-backed B-tree agrees with std's BTreeMap on every
    /// operation, including floor queries, under any op sequence.
    #[test]
    fn btree_matches_std_map(ops in arb_map_ops(), cache in 1usize..16) {
        let mut fs = SimFs::on_nvbm();
        let mut t = DiskBTree::create(&mut fs, "idx");
        t.set_cache_pages(&mut fs, cache);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(t.insert(&mut fs, *k, *v), model.insert(*k, *v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(t.remove(&mut fs, *k), model.remove(k));
                }
                MapOp::GetLe(k) => {
                    let want = model.range(..=*k).next_back().map(|(a, b)| (*a, *b));
                    prop_assert_eq!(t.get_le(&mut fs, *k), want);
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
        // Full scan agrees.
        let items = t.items(&mut fs);
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(items, want);
    }

    /// Etree leaves always tile the domain exactly: sorted anchors are
    /// gap-free and cover the full curve after any refine/coarsen mix.
    #[test]
    fn etree_leaves_tile_domain(paths in prop::collection::vec((prop::collection::vec(0usize..8, 0..3), any::<bool>()), 1..40)) {
        let mut t = EtreeOctree::create(SimFs::on_nvbm());
        for (path, coarsen) in &paths {
            let mut k = OctKey::root();
            for &i in path {
                k = k.child(i);
            }
            if *coarsen {
                t.coarsen(k);
            } else {
                t.refine(k);
            }
        }
        let leaves = t.leaves_sorted();
        prop_assert_eq!(leaves.len(), t.leaf_count());
        let mut cursor = 0u64;
        for (k, _) in &leaves {
            prop_assert_eq!(anchor::<3>(k), cursor, "gap before {:?}", k);
            cursor = anchor_end::<3>(k);
        }
        prop_assert_eq!(cursor, anchor_end::<3>(&OctKey::root()));
        // containing_leaf agrees with the sorted table for random probes.
        for (k, _) in leaves.iter().step_by(7) {
            if k.level() < OctKey::MAX_LEVEL {
                let probe = k.child(3);
                prop_assert_eq!(t.containing_leaf(probe), Some(*k));
            }
        }
    }

    /// Etree flush + reopen preserves every leaf and payload.
    #[test]
    fn etree_reopen_is_lossless(paths in prop::collection::vec(prop::collection::vec(0usize..8, 0..3), 1..20)) {
        let mut t = EtreeOctree::create(SimFs::on_nvbm());
        for (i, path) in paths.iter().enumerate() {
            let mut k = OctKey::root();
            for &c in path {
                k = k.child(c);
            }
            t.refine(k);
            t.set_data(k.child(0).min(k), [i as f64, 0.0, 0.0, 0.0]);
        }
        t.flush();
        let before = t.leaves_sorted();
        let (fs, index) = t.into_parts();
        let mut r = EtreeOctree::reopen(fs, index).expect("reopen");
        prop_assert_eq!(r.leaves_sorted(), before);
    }
}
