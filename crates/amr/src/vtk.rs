//! Legacy-VTK export of extracted meshes.
//!
//! The `Extract` routine exists to feed "data analytics and
//! visualization" (§2); this writer emits the extracted unstructured
//! hexahedral mesh as an ASCII legacy `.vtk` file loadable by
//! ParaView/VisIt, with the refinement level and the anchored/dangling
//! classification as cell/point data.

use std::fmt::Write as _;

use crate::backend::{Cell, OctreeBackend};
use crate::extract::Mesh;

/// VTK_HEXAHEDRON connectivity expects the corner order
/// (x,y,z): 000, 100, 110, 010, 001, 101, 111, 011 — a permutation of
/// our Morton corner order 000, 100, 010, 110, 001, 101, 011, 111.
const VTK_CORNER_ORDER: [usize; 8] = [0, 1, 3, 2, 4, 5, 7, 6];

impl Mesh {
    /// Render the mesh as an ASCII legacy VTK unstructured grid.
    ///
    /// Cell data: `level` (refinement depth). Point data: `anchored`
    /// (1 = anchored mesh node, 0 = dangling/hanging node).
    pub fn to_vtk(&self) -> String {
        let mut out = String::with_capacity(64 * self.vertices.len());
        out.push_str("# vtk DataFile Version 3.0\n");
        out.push_str("pm-octree extracted mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n");
        let _ = writeln!(out, "POINTS {} double", self.vertices.len());
        for v in &self.vertices {
            let _ = writeln!(out, "{} {} {}", v[0], v[1], v[2]);
        }
        let _ = writeln!(out, "CELLS {} {}", self.cells.len(), self.cells.len() * 9);
        for c in &self.cells {
            out.push('8');
            for &i in &VTK_CORNER_ORDER {
                let _ = write!(out, " {}", c[i]);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "CELL_TYPES {}", self.cells.len());
        for _ in &self.cells {
            out.push_str("12\n"); // VTK_HEXAHEDRON
        }
        let _ = writeln!(out, "CELL_DATA {}", self.cells.len());
        out.push_str("SCALARS level int 1\nLOOKUP_TABLE default\n");
        for k in &self.keys {
            let _ = writeln!(out, "{}", k.level());
        }
        let _ = writeln!(out, "POINT_DATA {}", self.vertices.len());
        out.push_str("SCALARS anchored int 1\nLOOKUP_TABLE default\n");
        for &a in &self.anchored {
            let _ = writeln!(out, "{}", a as u8);
        }
        out
    }
}

/// Extract a mesh with per-cell field data and render it as VTK with the
/// payload fields (`phi`, `pressure`, `vof`) attached as cell scalars.
pub fn export_vtk_with_fields(b: &mut dyn OctreeBackend) -> String {
    let mesh = crate::extract::extract(b);
    let mut fields: std::collections::HashMap<pmoctree_morton::OctKey, Cell> =
        std::collections::HashMap::with_capacity(mesh.cells.len());
    b.for_each_leaf(&mut |k, d| {
        fields.insert(k, *d);
    });
    let mut out = mesh.to_vtk();
    for (name, idx) in [("phi", 0usize), ("pressure", 1), ("vof", 2)] {
        let _ = writeln!(out, "SCALARS {name} double 1");
        out.push_str("LOOKUP_TABLE default\n");
        for k in &mesh.keys {
            let v = fields.get(k).map(|d| d[idx]).unwrap_or(0.0);
            let _ = writeln!(out, "{v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InCoreBackend;
    use crate::construct::construct_uniform;
    use crate::extract::extract;
    use pmoctree_morton::OctKey;

    fn lines_with<'a>(s: &'a str, prefix: &str) -> Vec<&'a str> {
        s.lines().filter(|l| l.starts_with(prefix)).collect()
    }

    #[test]
    fn vtk_structure_is_well_formed() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 1);
        let m = extract(&mut b);
        let vtk = m.to_vtk();
        assert!(vtk.starts_with("# vtk DataFile"));
        assert!(vtk.contains("POINTS 27 double"));
        assert!(vtk.contains("CELLS 8 72"));
        assert_eq!(lines_with(&vtk, "12").len(), 8, "8 hexahedra");
        assert!(vtk.contains("CELL_DATA 8"));
        assert!(vtk.contains("POINT_DATA 27"));
    }

    #[test]
    fn vtk_connectivity_indices_in_range() {
        let mut b = InCoreBackend::new();
        b.refine(OctKey::root()).unwrap();
        b.refine(OctKey::root().child(0)).unwrap();
        let m = extract(&mut b);
        let vtk = m.to_vtk();
        let cells_at = vtk.lines().position(|l| l.starts_with("CELLS")).unwrap();
        for line in vtk.lines().skip(cells_at + 1).take(m.cells.len()) {
            let nums: Vec<usize> = line.split_whitespace().map(|t| t.parse().unwrap()).collect();
            assert_eq!(nums[0], 8);
            assert_eq!(nums.len(), 9);
            for &i in &nums[1..] {
                assert!(i < m.vertices.len());
            }
        }
    }

    #[test]
    fn vtk_corner_order_is_right_handed() {
        // VTK hexahedron: corners 0-3 form the bottom quad (counter-
        // clockwise when viewed from +z), 4-7 the top. Check on a cube.
        let mut b = InCoreBackend::new();
        let m = extract(&mut b);
        let vtk = m.to_vtk();
        let cells_at = vtk.lines().position(|l| l.starts_with("CELLS")).unwrap();
        let line = vtk.lines().nth(cells_at + 1).unwrap();
        let ids: Vec<usize> = line.split_whitespace().skip(1).map(|t| t.parse().unwrap()).collect();
        let p = |i: usize| m.vertices[ids[i]];
        // Bottom quad all at z = 0, top at z = 1.
        for i in 0..4 {
            assert_eq!(p(i)[2], 0.0);
            assert_eq!(p(i + 4)[2], 1.0);
        }
        // 0→1 along +x, 1→2 along +y, 2→3 along −x (counter-clockwise).
        assert!(p(1)[0] > p(0)[0]);
        assert!(p(2)[1] > p(1)[1]);
        assert!(p(3)[0] < p(2)[0]);
    }

    #[test]
    fn fields_are_attached() {
        let mut b = InCoreBackend::new();
        b.refine(OctKey::root()).unwrap();
        b.set_data(OctKey::root().child(3), [1.5, 2.5, 0.5, 0.0]).unwrap();
        let vtk = export_vtk_with_fields(&mut b);
        assert!(vtk.contains("SCALARS phi double 1"));
        assert!(vtk.contains("SCALARS pressure double 1"));
        assert!(vtk.contains("SCALARS vof double 1"));
        assert!(vtk.contains("1.5"));
        assert!(vtk.contains("2.5"));
    }

    #[test]
    fn hanging_nodes_marked_in_point_data() {
        let mut b = InCoreBackend::new();
        b.refine(OctKey::root()).unwrap();
        b.refine(OctKey::root().child(0)).unwrap();
        let m = extract(&mut b);
        let vtk = m.to_vtk();
        let pd = vtk.split("SCALARS anchored int 1").nth(1).unwrap();
        let zeros = pd.lines().filter(|l| *l == "0").count();
        assert_eq!(zeros, m.dangling_count());
    }
}
