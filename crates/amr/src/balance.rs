//! `Balance`: enforce the 2:1 constraint — two face-adjacent leaves may
//! differ by at most one refinement level.
//!
//! For pointer-based trees (`PM-octree`, in-core) a violated neighbor is
//! found with one root descent. For the Etree baseline the same
//! [`OctreeBackend::containing_leaf`] call costs a B-tree lookup plus a
//! page read — and the paper notes that balancing a *linear* octree must
//! interrogate all neighbors per octant, which is exactly why the
//! out-of-core baseline struggles on this routine (§5.4).

use pmoctree_morton::OctKey;

use crate::backend::OctreeBackend;

/// Refine the leaf at `key` while preserving the 2:1 constraint: coarser
/// face neighbors are recursively refined first (the classic refinement
/// "ripple"). Returns `false` if `key` is not a leaf.
pub fn refine_balanced(b: &mut dyn OctreeBackend, key: OctKey) -> bool {
    if b.is_leaf(key) != Some(true) {
        return false;
    }
    // After splitting `key` (level L → children at L+1), any face-adjacent
    // leaf must be at level ≥ L. Pull them up first, repeating until the
    // neighbor's containing leaf is deep enough (each recursion deepens
    // it by one level, so this terminates).
    for axis in 0..3 {
        for dir in [-1i8, 1] {
            if let Some(nk) = key.face_neighbor(axis, dir) {
                while let Some(leaf) = b.containing_leaf(nk) {
                    if leaf.level() >= key.level() {
                        break;
                    }
                    if !refine_balanced(b, leaf) {
                        break;
                    }
                }
            }
        }
    }
    b.refine(key).is_ok()
}

/// Is it legal (2:1-wise) to coarsen the children of `key` away? All face
/// neighbors of the would-be leaf must have leaves at level ≤ `key`+1,
/// which, given the children are leaves at `key`+1, reduces to: no leaf
/// adjacent to any child is deeper than `key`+1.
pub fn can_coarsen(b: &mut dyn OctreeBackend, key: OctKey) -> bool {
    if b.is_leaf(key) != Some(false) {
        return false;
    }
    for c in 0..8 {
        let child = key.child(c);
        if b.is_leaf(child) != Some(true) {
            return false;
        }
        for axis in 0..3 {
            for dir in [-1i8, 1] {
                if let Some(nk) = child.face_neighbor(axis, dir) {
                    if key.contains(&nk) {
                        continue; // sibling: removed together
                    }
                    // The neighbor region must not be refined deeper than
                    // the child level (key.level()+1).
                    if b.containing_leaf(nk).is_none() {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Coarsen with a 2:1 legality check. Returns whether it happened.
pub fn coarsen_balanced(b: &mut dyn OctreeBackend, key: OctKey) -> bool {
    can_coarsen(b, key) && b.coarsen(key).is_ok()
}

/// Worklist-driven 2:1 balancing over the face (6) or full (26)
/// adjacency, built on the backends' batched leaf-index kernels.
///
/// Violations are only *observable* from the fine side (the coarse side
/// sees `containing_leaf → None` for a refined-deeper neighbor), so the
/// worklist holds fine-side *source* leaves. The worklist is seeded once
/// from the sorted leaf set; after each round it contains exactly
/// (a) the children of every octant refined this round (new fine leaves
/// that may now out-level their neighbors) and (b) the sources that still
/// observed a violation (a 3-levels-coarser neighbor closes by one level
/// per round and must be re-checked). Refining can never introduce a
/// violation anywhere else, so no full-tree re-snapshot is needed.
///
/// The 2:1 closure of a tree is unique and independent of refinement
/// order, so the resulting leaf set is identical to the former
/// sweep-until-fixed-point implementation.
fn balance_worklist(b: &mut dyn OctreeBackend, mut worklist: Vec<OctKey>, full: bool) -> usize {
    let mut total = 0usize;
    while !worklist.is_empty() {
        worklist.sort_unstable();
        worklist.dedup();
        let neighborhoods = b.neighbor_leaves_many(&worklist, full);
        let mut targets: Vec<OctKey> = Vec::new();
        let mut next: Vec<OctKey> = Vec::new();
        for (k, neighbors) in worklist.iter().zip(&neighborhoods) {
            let mut violated = false;
            for leaf in neighbors {
                if leaf.level() + 1 < k.level() {
                    violated = true;
                    targets.push(*leaf);
                }
            }
            if violated {
                next.push(*k);
            }
        }
        targets.sort_unstable();
        targets.dedup();
        // Violating coarse leaves are disjoint, so the whole round splits
        // in one batched call (domain-parallel on backends that shard).
        let ok = b.refine_many(&targets);
        for (t, s) in targets.iter().zip(ok) {
            if s {
                total += 1;
                next.extend(t.children());
            }
        }
        worklist = next;
    }
    total
}

/// Restore face 2:1 after a *batch* of refinements: seed the worklist
/// with only the new fine leaves (the children of `refined`) instead of
/// re-snapshotting the whole leaf set. Splitting a leaf can only create
/// violations observable from its own children, so this reaches the same
/// unique closure as a full [`balance`]. Returns the number of ripple
/// refinements.
pub fn balance_from(b: &mut dyn OctreeBackend, refined: &[OctKey]) -> usize {
    let seed: Vec<OctKey> = refined.iter().flat_map(|k| k.children()).collect();
    balance_worklist(b, seed, false)
}

/// One full balancing sweep over the tree: refine any leaf that violates
/// 2:1 with a face neighbor. Runs the batched worklist algorithm to a
/// fixed point; returns the number of refinements performed.
pub fn balance(b: &mut dyn OctreeBackend) -> usize {
    let seed = b.leaf_keys_sorted();
    balance_worklist(b, seed, false)
}

/// Full-adjacency 2:1 balance: like [`balance`] but across **all 26
/// neighbors** (faces, edges, corners), the constraint linear-octree
/// codes like Etree must enforce — and the reason the paper calls its
/// balancing "very time-consuming ... it needs to search all its 26
/// neighbors" (§5.4). Returns the number of refinements.
pub fn balance26(b: &mut dyn OctreeBackend) -> usize {
    let seed = b.leaf_keys_sorted();
    balance_worklist(b, seed, true)
}

/// Batched constraint check shared by [`check_balance`] /
/// [`check_balance26`]: one neighbor-resolution pass over the sorted leaf
/// set, returning the first (fine, coarse) violating pair in Z-order.
fn check_with(b: &mut dyn OctreeBackend, full: bool) -> Option<(OctKey, OctKey)> {
    let leaves = b.leaf_keys_sorted();
    let neighborhoods = b.neighbor_leaves_many(&leaves, full);
    for (k, neighbors) in leaves.iter().zip(&neighborhoods) {
        for leaf in neighbors {
            if leaf.level() + 1 < k.level() {
                return Some((*k, *leaf));
            }
        }
    }
    None
}

/// Verify the full 26-neighbor 2:1 constraint.
pub fn check_balance26(b: &mut dyn OctreeBackend) -> Option<(OctKey, OctKey)> {
    check_with(b, true)
}

/// Balance restricted to a set of recently-changed leaves ("enforced on
/// the fly", §2): checks only the given keys' neighborhoods and refines
/// coarse neighbors, propagating through the same worklist scheme as
/// [`balance`] (children of refined octants plus still-violating
/// sources). Far cheaper than a full sweep when the change set is a thin
/// band. Returns refinements performed.
pub fn balance_subset(b: &mut dyn OctreeBackend, keys: &[OctKey]) -> usize {
    balance_worklist(b, keys.to_vec(), false)
}

/// Verify the 2:1 constraint across all face-adjacent leaves. Returns the
/// violating pair if any.
pub fn check_balance(b: &mut dyn OctreeBackend) -> Option<(OctKey, OctKey)> {
    check_with(b, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EtreeBackend, InCoreBackend, OctreeBackend, PmBackend};
    use crate::construct::construct_path;
    use pm_octree::{PmConfig, PmOctree};
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn backends() -> Vec<Box<dyn OctreeBackend>> {
        vec![
            Box::new(PmBackend::new(PmOctree::create(
                NvbmArena::new(32 << 20, DeviceModel::default()),
                PmConfig { dynamic_transform: false, ..PmConfig::default() },
            ))),
            Box::new(InCoreBackend::new()),
            Box::new(EtreeBackend::on_nvbm()),
        ]
    }

    #[test]
    fn deep_path_then_balance_fixes_everything() {
        for mut b in backends() {
            // Deep block at the far corner of child 0: its finest leaves
            // are face-adjacent to the untouched level-1 leaves of
            // children 1/2/4, violating 2:1 by several levels.
            let deep = OctKey::root().child(0).child(7).child(7).child(7);
            construct_path(b.as_mut(), deep);
            // A straight path badly violates 2:1.
            assert!(check_balance(b.as_mut()).is_some(), "{}", b.name());
            let n = balance(b.as_mut());
            assert!(n > 0, "{}", b.name());
            assert!(check_balance(b.as_mut()).is_none(), "{} still unbalanced", b.name());
        }
    }

    #[test]
    fn refine_balanced_ripples() {
        for mut b in backends() {
            // Refine one corner deeply with the balanced primitive; at
            // every step the tree stays 2:1.
            let mut k = OctKey::root();
            for _ in 0..4 {
                assert!(refine_balanced(b.as_mut(), k), "{}", b.name());
                k = k.child(7);
            }
            assert!(check_balance(b.as_mut()).is_none(), "{}", b.name());
        }
    }

    #[test]
    fn can_coarsen_respects_neighbors() {
        for mut b in backends() {
            b.refine(OctKey::root()).unwrap();
            b.refine(OctKey::root().child(0)).unwrap();
            b.refine(OctKey::root().child(0).child(7)).unwrap(); // deep center
                                                                 // Coarsening child 0 would leave a level-1 leaf next to
                                                                 // level-3 leaves: forbidden.
            assert!(!can_coarsen(b.as_mut(), OctKey::root().child(0)), "{}", b.name());
            // Coarsening the deep corner itself is fine.
            assert!(can_coarsen(b.as_mut(), OctKey::root().child(0).child(7)), "{}", b.name());
            assert!(coarsen_balanced(b.as_mut(), OctKey::root().child(0).child(7)));
            assert!(check_balance(b.as_mut()).is_none(), "{}", b.name());
        }
    }

    #[test]
    fn balance26_is_stricter_than_face_balance() {
        for mut b in backends() {
            // A deep block touching a coarse region only diagonally:
            // face-balance accepts it, 26-balance refines further.
            let deep = OctKey::root().child(0).child(7).child(7).child(7);
            construct_path(b.as_mut(), deep);
            balance(b.as_mut());
            assert!(check_balance(b.as_mut()).is_none(), "{}", b.name());
            let extra = balance26(b.as_mut());
            assert!(extra > 0, "{}: edge/corner neighbors should force refinement", b.name());
            assert!(check_balance26(b.as_mut()).is_none(), "{}", b.name());
            // Full balance implies face balance.
            assert!(check_balance(b.as_mut()).is_none(), "{}", b.name());
        }
    }

    #[test]
    fn balance26_costs_more_neighbor_lookups() {
        // The §5.4 claim in miniature: 26-neighbor balancing on the
        // out-of-core backend costs far more virtual time than
        // face-balancing, because every lookup is an index+page access.
        let mk = || {
            let mut b = EtreeBackend::on_nvbm();
            construct_path(&mut b, OctKey::root().child(0).child(7).child(7));
            b
        };
        let mut face = mk();
        let t0 = face.elapsed_ns();
        balance(&mut face);
        let face_cost = face.elapsed_ns() - t0;
        let mut full = mk();
        let t0 = full.elapsed_ns();
        balance26(&mut full);
        let full_cost = full.elapsed_ns() - t0;
        assert!(full_cost > 2 * face_cost, "26-neighbor {full_cost} vs face {face_cost}");
    }

    #[test]
    fn balance_is_idempotent() {
        for mut b in backends() {
            construct_path(b.as_mut(), OctKey::root().child(3).child(3).child(3));
            balance(b.as_mut());
            assert_eq!(balance(b.as_mut()), 0, "{}", b.name());
        }
    }
}
