//! `Construct`: build the initial octree on each processor.

use pmoctree_morton::OctKey;

use crate::backend::OctreeBackend;

/// Uniformly refine the tree until every leaf is at `level`.
///
/// This is the usual starting point of a simulation: a regular base grid
/// that the criterion-driven adaptation then deepens near features.
pub fn construct_uniform(b: &mut dyn OctreeBackend, level: u8) {
    for l in 0..level {
        let mut to_refine = Vec::new();
        b.for_each_leaf(&mut |k, _| {
            if k.level() == l {
                to_refine.push(k);
            }
        });
        for k in to_refine {
            let _ = b.refine(k);
        }
    }
}

/// Refine along a path to create one deep leaf at `key` (plus the sibling
/// leaves the splits create). Useful to build skewed test trees.
pub fn construct_path(b: &mut dyn OctreeBackend, key: OctKey) {
    for l in 0..key.level() {
        let anc = key.ancestor_at(l);
        if b.is_leaf(anc) == Some(true) {
            let _ = b.refine(anc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InCoreBackend;

    #[test]
    fn uniform_levels() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 3);
        assert_eq!(b.leaf_count(), 512);
        let mut levels = std::collections::HashSet::new();
        b.for_each_leaf(&mut |k, _| {
            levels.insert(k.level());
        });
        assert_eq!(levels.len(), 1);
        assert!(levels.contains(&3));
    }

    #[test]
    fn path_reaches_target() {
        let mut b = InCoreBackend::new();
        let key = OctKey::root().child(1).child(2).child(3);
        construct_path(&mut b, key);
        assert_eq!(b.is_leaf(key), Some(true));
        assert_eq!(b.leaf_count(), 1 + 7 * 3);
    }
}
