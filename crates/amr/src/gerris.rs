//! Gerris-compatible function veneer (§4 of the paper).
//!
//! The paper integrates PM-octree into Gerris by having the flow solver's
//! internal routines — `ftt_cell_traverse()`, `ftt_cell_neighbor()`,
//! `ftt_cell_refine()`, `ftt_cell_write()`, `ftt_cell_read()` — call the
//! PM-octree operations, and by replacing the snapshot functions
//! `gfs_output_write()` / `gfs_output_read()` with `pm_persistent()` /
//! `pm_restore()`. This module provides the same names over
//! [`OctreeBackend`], so code written against Gerris' cell API ports
//! with a search-and-replace, exactly as the paper claims.
//!
//! Naming follows Gerris (C style) rather than Rust convention on
//! purpose; each function documents its Gerris counterpart.

#![allow(non_snake_case)]

use pm_octree::{PmConfig, PmOctree};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::NvbmArena;

use crate::backend::{Cell, OctreeBackend, PmBackend};

/// Traversal order flag (Gerris' `FttTraverseType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FttTraverseType {
    /// Visit leaf cells only (`FTT_TRAVERSE_LEAFS`).
    Leafs,
    /// Visit every cell, parents before children (`FTT_PRE_ORDER`).
    PreOrder,
}

/// `ftt_cell_traverse()`: walk the tree, invoking `f` per visited cell.
///
/// `PreOrder` visits internal cells with their (restriction-averaged or
/// stored) payload where the backend keeps one; the linear out-of-core
/// backend stores leaves only, so `PreOrder` degrades to leaves there —
/// matching Etree's own behavior.
pub fn ftt_cell_traverse(
    b: &mut dyn OctreeBackend,
    order: FttTraverseType,
    f: &mut dyn FnMut(OctKey, &Cell),
) {
    match order {
        FttTraverseType::Leafs => b.for_each_leaf(f),
        FttTraverseType::PreOrder => {
            // Generic pre-order from leaves: emit each distinct ancestor
            // the first time it is seen (leaves arrive in Z-order per
            // part, so parents precede their later children).
            let mut leaves = Vec::with_capacity(b.leaf_count());
            b.for_each_leaf(&mut |k, d| leaves.push((k, *d)));
            leaves.sort_by_key(|a| a.0);
            let mut seen = std::collections::HashSet::new();
            for (k, d) in &leaves {
                for anc in k.path_from_root() {
                    if seen.insert(anc) {
                        if anc == *k {
                            f(*k, d);
                        } else if let Some(ad) = b.get_data(anc) {
                            f(anc, &ad);
                        } else {
                            f(anc, &[0.0; 4]);
                        }
                    }
                }
            }
        }
    }
}

/// `ftt_cell_neighbor()`: the cell adjacent to `cell` across face
/// `direction` (0..6: −x, +x, −y, +y, −z, +z), at the same or coarser
/// level — `None` at the domain boundary.
pub fn ftt_cell_neighbor(
    b: &mut dyn OctreeBackend,
    cell: OctKey,
    direction: usize,
) -> Option<OctKey> {
    assert!(direction < 6, "face direction out of range");
    let axis = direction / 2;
    let dir = if direction.is_multiple_of(2) { -1 } else { 1 };
    let nk = cell.face_neighbor(axis, dir)?;
    b.containing_leaf(nk)
}

/// `ftt_cell_refine()`: split a leaf cell (2:1 ripple included).
pub fn ftt_cell_refine(b: &mut dyn OctreeBackend, cell: OctKey) -> bool {
    crate::balance::refine_balanced(b, cell)
}

/// `ftt_cell_destroy()` on a family: coarsen the children of `cell`
/// (2:1-checked).
pub fn ftt_cell_coarsen(b: &mut dyn OctreeBackend, cell: OctKey) -> bool {
    crate::balance::coarsen_balanced(b, cell)
}

/// `ftt_cell_write()`: store the cell payload.
pub fn ftt_cell_write(b: &mut dyn OctreeBackend, cell: OctKey, data: &Cell) -> bool {
    b.set_data(cell, *data).is_ok()
}

/// `ftt_cell_read()`: load the cell payload.
pub fn ftt_cell_read(b: &mut dyn OctreeBackend, cell: OctKey) -> Option<Cell> {
    b.get_data(cell)
}

/// `pm_create()` (Table 1): build a PM-octree-backed tree on an NVBM
/// arena — the drop-in replacement for Gerris' in-core tree creation.
pub fn pm_create(arena: NvbmArena, cfg: PmConfig) -> PmBackend {
    PmBackend::new(PmOctree::create(arena, cfg))
}

/// `pm_persistent()` (replaces `gfs_output_write()`): make the current
/// state durable at memory speed — no snapshot file.
pub fn pm_persistent(b: &mut PmBackend) {
    b.tree.persist();
}

/// `pm_restore()` (replaces `gfs_output_read()` at restart): reopen the
/// last persistent version from the NVBM device.
///
/// # Panics
///
/// Aborts (like the C original) if the device does not hold a
/// recoverable PM-octree; call [`PmOctree::restore`] directly for
/// fallible recovery.
pub fn pm_restore(arena: NvbmArena, cfg: PmConfig) -> PmBackend {
    match PmOctree::restore(arena, cfg) {
        Ok(t) => PmBackend::new(t),
        Err(e) => panic!("pm_restore: {e}"),
    }
}

/// `pm_delete()` (Table 1): drop all octants and release the device.
pub fn pm_delete(b: PmBackend) -> NvbmArena {
    b.tree.delete()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmoctree_nvbm::{CrashMode, DeviceModel};

    fn backend() -> PmBackend {
        pm_create(
            NvbmArena::new(32 << 20, DeviceModel::default()),
            PmConfig { dynamic_transform: false, ..PmConfig::default() },
        )
    }

    #[test]
    fn gerris_style_meshing_loop() {
        let mut b = backend();
        assert!(ftt_cell_refine(&mut b, OctKey::root()));
        assert!(ftt_cell_refine(&mut b, OctKey::root().child(2)));
        assert!(ftt_cell_write(&mut b, OctKey::root().child(2).child(1), &[3.0, 0.0, 1.0, 0.0]));
        assert_eq!(
            ftt_cell_read(&mut b, OctKey::root().child(2).child(1)),
            Some([3.0, 0.0, 1.0, 0.0])
        );
        let mut leaves = 0;
        ftt_cell_traverse(&mut b, FttTraverseType::Leafs, &mut |_, _| leaves += 1);
        assert_eq!(leaves, 15);
        assert!(ftt_cell_coarsen(&mut b, OctKey::root().child(2)));
    }

    #[test]
    fn neighbor_follows_gerris_direction_encoding() {
        let mut b = backend();
        ftt_cell_refine(&mut b, OctKey::root());
        let c = OctKey::root().child(0); // (0,0,0)
        assert_eq!(ftt_cell_neighbor(&mut b, c, 1), Some(OctKey::root().child(1))); // +x
        assert_eq!(ftt_cell_neighbor(&mut b, c, 3), Some(OctKey::root().child(2))); // +y
        assert_eq!(ftt_cell_neighbor(&mut b, c, 5), Some(OctKey::root().child(4))); // +z
        assert_eq!(ftt_cell_neighbor(&mut b, c, 0), None, "-x hits the wall");
        // Across a level difference: neighbor is the coarser leaf.
        ftt_cell_refine(&mut b, c);
        assert_eq!(
            ftt_cell_neighbor(&mut b, c.child(1), 1),
            Some(OctKey::root().child(1)),
            "coarse neighbor across the face"
        );
    }

    #[test]
    fn preorder_visits_parents_first() {
        let mut b = backend();
        ftt_cell_refine(&mut b, OctKey::root());
        ftt_cell_refine(&mut b, OctKey::root().child(0));
        let mut order = Vec::new();
        ftt_cell_traverse(&mut b, FttTraverseType::PreOrder, &mut |k, _| order.push(k));
        assert_eq!(order.len(), 17, "root + 8 + 8");
        assert_eq!(order[0], OctKey::root());
        let pos = |k: OctKey| order.iter().position(|&x| x == k).unwrap();
        for k in &order {
            if let Some(p) = k.parent() {
                assert!(pos(p) < pos(*k), "parent before child");
            }
        }
    }

    #[test]
    fn snapshot_replacement_roundtrip() {
        let mut b = backend();
        ftt_cell_refine(&mut b, OctKey::root());
        ftt_cell_write(&mut b, OctKey::root().child(5), &[7.0, 0.0, 0.0, 0.0]);
        pm_persistent(&mut b); // instead of gfs_output_write()
                               // Crash the node.
        let arena = {
            let mut a = pm_delete_keep_media(b);
            a.crash(CrashMode::LoseDirty);
            a
        };
        let mut r = pm_restore(arena, PmConfig::default()); // instead of gfs_output_read()
        assert_eq!(ftt_cell_read(&mut r, OctKey::root().child(5)), Some([7.0, 0.0, 0.0, 0.0]));
    }

    /// Test helper: take the arena without clearing the roots (a crash,
    /// not a pm_delete).
    fn pm_delete_keep_media(b: PmBackend) -> NvbmArena {
        let PmBackend { tree } = b;
        tree.store.arena
    }

    #[test]
    fn pm_delete_clears() {
        let mut b = backend();
        ftt_cell_refine(&mut b, OctKey::root());
        pm_persistent(&mut b);
        let mut arena = pm_delete(b);
        assert!(arena.root(1).is_null());
    }
}
