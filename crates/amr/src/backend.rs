//! The common interface the meshing routines drive.
//!
//! The paper runs the same droplet-ejection simulation over three octree
//! implementations (§5.1); [`OctreeBackend`] is the seam that makes that
//! possible here. Adapters wrap each implementation together with its
//! persistence mechanism:
//!
//! * [`PmBackend`] — PM-octree; `end_of_step` calls `pm_persistent`.
//! * [`InCoreBackend`] — Gerris-style in-core tree; `end_of_step` writes a
//!   snapshot file every `snapshot_interval` steps (10 in the paper).
//! * [`EtreeBackend`] — Etree out-of-core tree; every op is already
//!   write-through, `end_of_step` flushes index pages.

use pm_octree::{CellData, PmError, PmOctree};
use pmoctree_baselines::{EtreeOctree, InCoreOctree};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{MemStats, Tracer};
use pmoctree_simfs::SimFs;

/// Cell payload as a plain array: `[phi, pressure, vof, work]`.
pub type Cell = [f64; 4];

/// Uniform interface over the three octree implementations.
///
/// Mutators are fallible and report *why* they were rejected via
/// [`PmError`] (`NotFound` / `NotALeaf` / `NotCoarsenable`), so meshing
/// drivers can distinguish "that cell doesn't exist" from "that cell
/// can't legally change". Baseline adapters classify their trees' boolean
/// rejections through the same taxonomy. The Gerris-style boolean shims
/// live in [`crate::gerris`].
pub trait OctreeBackend {
    /// Split the leaf at `key` into 8 children.
    fn refine(&mut self, key: OctKey) -> Result<(), PmError>;
    /// Remove the (all-leaf) children of `key`.
    fn coarsen(&mut self, key: OctKey) -> Result<(), PmError>;
    /// `Some(true)` leaf, `Some(false)` internal, `None` absent.
    fn is_leaf(&mut self, key: OctKey) -> Option<bool>;
    /// The leaf whose region contains `key` (None if `key` is internal).
    fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey>;
    /// Read a leaf/octant payload.
    fn get_data(&mut self, key: OctKey) -> Option<Cell>;
    /// Write a leaf payload (payloads live on leaves only).
    fn set_data(&mut self, key: OctKey, data: Cell) -> Result<(), PmError>;
    /// Visit every leaf.
    fn for_each_leaf(&mut self, f: &mut dyn FnMut(OctKey, &Cell));
    /// Sweep: return `Some(new)` from `f` to update a leaf.
    fn update_leaves(&mut self, f: &mut dyn FnMut(OctKey, &Cell) -> Option<Cell>);
    /// Number of leaves (mesh elements).
    fn leaf_count(&self) -> usize;
    /// Deepest refinement level.
    fn depth(&self) -> u8;
    /// Virtual nanoseconds consumed so far (all cost models combined).
    fn elapsed_ns(&self) -> u64;
    /// Charge externally-modeled time (network transfers, barriers) onto
    /// this backend's clock.
    fn charge_external(&mut self, ns: u64);
    /// Synchronize to a barrier: the clock jumps to at least `t_ns`.
    fn barrier_to(&mut self, t_ns: u64);
    /// End-of-time-step hook: persistence according to the scheme.
    fn end_of_step(&mut self, step: usize);
    /// Short scheme name for reports.
    fn name(&self) -> &'static str;

    /// Aggregated memory-tier and traversal statistics. File-system-backed
    /// persistence traffic (snapshots, Etree pages) is folded into the
    /// NVBM tier at cacheline granularity so schemes stay comparable.
    fn mem_stats(&self) -> MemStats {
        MemStats::new(0)
    }

    /// Attach a tracing journal. The PM adapter routes it into the arena
    /// (so the internal `persist::*`/`gc`/`c0` spans land in the same
    /// journal); baselines keep it for their persistence hooks. The
    /// default ignores it, keeping the trait drop-in for simple backends.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// The attached tracer (disabled unless [`OctreeBackend::set_tracer`]
    /// was called). Drivers use it to emit spans around phases they time
    /// themselves, stamped with this backend's [`OctreeBackend::elapsed_ns`].
    fn tracer(&self) -> Tracer {
        Tracer::default()
    }

    // ---- batched queries (leaf-index fast paths) -------------------------
    //
    // Backends override these with their Morton-sorted leaf-index kernels;
    // the defaults fall back to the per-key entry points so the trait stays
    // drop-in for simple implementations.

    /// All leaf keys in Z-order.
    fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.for_each_leaf(&mut |k, _| out.push(k));
        out.sort_unstable();
        out
    }

    /// Batched [`OctreeBackend::containing_leaf`]: results match input
    /// order; input order is arbitrary.
    fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        keys.iter().map(|&k| self.containing_leaf(k)).collect()
    }

    /// Batched [`OctreeBackend::get_data`] for leaf keys.
    fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<Cell>> {
        keys.iter().map(|&k| self.get_data(k)).collect()
    }

    /// Batched [`OctreeBackend::refine`]: one success flag per key, in
    /// input order. Backends with concurrent write domains (PM-octree)
    /// override this to run the batch domain-parallel; the default keeps
    /// the trait drop-in by looping the per-key entry point.
    fn refine_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        keys.iter().map(|&k| self.refine(k).is_ok()).collect()
    }

    /// Batched [`OctreeBackend::coarsen`]; see
    /// [`OctreeBackend::refine_many`] for the contract.
    fn coarsen_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        keys.iter().map(|&k| self.coarsen(k).is_ok()).collect()
    }

    /// Neighbor-resolution kernel: resolve the face (6) or full (26)
    /// same-level neighborhood of every source leaf in one batched query.
    /// Returns, per source, the distinct containing leaves of its neighbor
    /// keys (sorted, deduplicated; unresolved/internal neighbors omitted).
    fn neighbor_leaves_many(&mut self, sources: &[OctKey], full: bool) -> Vec<Vec<OctKey>> {
        let (queries, spans) = neighbor_queries(sources, full);
        let resolved = self.containing_leaf_many(&queries);
        spans
            .iter()
            .map(|&(s, e)| {
                let mut v: Vec<OctKey> = resolved[s..e].iter().flatten().copied().collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    }
}

/// Mutable references forward to the referent, so drivers generic over
/// `B: OctreeBackend` (e.g. `Simulation::step_core`) also accept a
/// `&mut dyn OctreeBackend`. Every method forwards — including the
/// default-bodied ones, so a backend's batched fast paths survive the
/// indirection.
impl<T: OctreeBackend + ?Sized> OctreeBackend for &mut T {
    fn refine(&mut self, key: OctKey) -> Result<(), PmError> {
        (**self).refine(key)
    }
    fn coarsen(&mut self, key: OctKey) -> Result<(), PmError> {
        (**self).coarsen(key)
    }
    fn is_leaf(&mut self, key: OctKey) -> Option<bool> {
        (**self).is_leaf(key)
    }
    fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey> {
        (**self).containing_leaf(key)
    }
    fn get_data(&mut self, key: OctKey) -> Option<Cell> {
        (**self).get_data(key)
    }
    fn set_data(&mut self, key: OctKey, data: Cell) -> Result<(), PmError> {
        (**self).set_data(key, data)
    }
    fn for_each_leaf(&mut self, f: &mut dyn FnMut(OctKey, &Cell)) {
        (**self).for_each_leaf(f)
    }
    fn update_leaves(&mut self, f: &mut dyn FnMut(OctKey, &Cell) -> Option<Cell>) {
        (**self).update_leaves(f)
    }
    fn leaf_count(&self) -> usize {
        (**self).leaf_count()
    }
    fn depth(&self) -> u8 {
        (**self).depth()
    }
    fn elapsed_ns(&self) -> u64 {
        (**self).elapsed_ns()
    }
    fn charge_external(&mut self, ns: u64) {
        (**self).charge_external(ns)
    }
    fn barrier_to(&mut self, t_ns: u64) {
        (**self).barrier_to(t_ns)
    }
    fn end_of_step(&mut self, step: usize) {
        (**self).end_of_step(step)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn mem_stats(&self) -> MemStats {
        (**self).mem_stats()
    }
    fn set_tracer(&mut self, tracer: Tracer) {
        (**self).set_tracer(tracer)
    }
    fn tracer(&self) -> Tracer {
        (**self).tracer()
    }
    fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        (**self).leaf_keys_sorted()
    }
    fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        (**self).containing_leaf_many(keys)
    }
    fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<Cell>> {
        (**self).get_data_many(keys)
    }
    fn refine_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        (**self).refine_many(keys)
    }
    fn coarsen_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        (**self).coarsen_many(keys)
    }
    fn neighbor_leaves_many(&mut self, sources: &[OctKey], full: bool) -> Vec<Vec<OctKey>> {
        (**self).neighbor_leaves_many(sources, full)
    }
}

/// Generate the flat neighbor-key query batch for `sources` plus the
/// per-source `[start, end)` spans into it. Delegates to the batched
/// Morton kernels (BMI2 decode / re-encode where the CPU reports it),
/// which emit neighbors in the same per-key order the scalar
/// `face_neighbor` / `all_neighbors` calculus uses.
pub fn neighbor_queries(sources: &[OctKey], full: bool) -> (Vec<OctKey>, Vec<(usize, usize)>) {
    pmoctree_morton::simd::neighbors_many(sources, full)
}

// ---------------------------------------------------------------- PM-octree

/// PM-octree adapter.
pub struct PmBackend {
    /// The wrapped tree.
    pub tree: PmOctree,
}

impl PmBackend {
    /// Wrap a PM-octree.
    pub fn new(tree: PmOctree) -> Self {
        PmBackend { tree }
    }
}

fn to_cell(d: &CellData) -> Cell {
    [d.phi, d.pressure, d.vof, d.work]
}

fn from_cell(c: &Cell) -> CellData {
    CellData { phi: c[0], pressure: c[1], vof: c[2], work: c[3] }
}

fn not_found(key: OctKey) -> PmError {
    PmError::NotFound(format!("{key:?}"))
}

fn not_a_leaf(key: OctKey) -> PmError {
    PmError::NotALeaf(format!("{key:?}"))
}

/// Classify a baseline tree's boolean `refine` rejection: the trees only
/// say *no*; the `is_leaf` probe recovers *why*.
fn classify_refine(exists: Option<bool>, key: OctKey) -> PmError {
    match exists {
        None => not_found(key),
        _ => not_a_leaf(key),
    }
}

/// Classify a baseline tree's boolean `coarsen` rejection.
fn classify_coarsen(exists: Option<bool>, key: OctKey) -> PmError {
    match exists {
        None => not_found(key),
        Some(true) => not_a_leaf(key), // a leaf has no children to remove
        Some(false) => PmError::NotCoarsenable(format!("{key:?}")),
    }
}

impl OctreeBackend for PmBackend {
    fn refine(&mut self, key: OctKey) -> Result<(), PmError> {
        self.tree.refine(key)
    }

    fn coarsen(&mut self, key: OctKey) -> Result<(), PmError> {
        self.tree.coarsen(key)
    }

    fn refine_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        self.tree.refine_many(keys)
    }

    fn coarsen_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        self.tree.coarsen_many(keys)
    }

    fn is_leaf(&mut self, key: OctKey) -> Option<bool> {
        self.tree.is_leaf(key)
    }

    fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey> {
        self.tree.containing_leaf(key)
    }

    fn get_data(&mut self, key: OctKey) -> Option<Cell> {
        self.tree.get_data(key).map(|d| to_cell(&d))
    }

    fn set_data(&mut self, key: OctKey, data: Cell) -> Result<(), PmError> {
        // Trait semantics: payloads live on leaves (a linear octree has
        // no internal payload, so the common interface exposes none).
        match self.tree.is_leaf(key) {
            None => Err(not_found(key)),
            Some(false) => Err(not_a_leaf(key)),
            Some(true) => self.tree.set_data(key, from_cell(&data)),
        }
    }

    fn for_each_leaf(&mut self, f: &mut dyn FnMut(OctKey, &Cell)) {
        self.tree.for_each_leaf(|k, d| f(k, &to_cell(d)));
    }

    fn update_leaves(&mut self, f: &mut dyn FnMut(OctKey, &Cell) -> Option<Cell>) {
        self.tree.update_leaves(|k, d| f(k, &to_cell(d)).map(|c| from_cell(&c)));
    }

    fn leaf_count(&self) -> usize {
        self.tree.leaf_count()
    }

    fn depth(&self) -> u8 {
        self.tree.depth()
    }

    fn elapsed_ns(&self) -> u64 {
        self.tree.store.arena.clock.now_ns()
    }

    fn charge_external(&mut self, ns: u64) {
        self.tree.store.arena.clock.advance(ns);
    }

    fn barrier_to(&mut self, t_ns: u64) {
        self.tree.store.arena.clock.advance_to(t_ns);
    }

    fn end_of_step(&mut self, _step: usize) {
        self.tree.persist();
    }

    fn name(&self) -> &'static str {
        "pm-octree"
    }

    fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        self.tree.leaf_keys_sorted()
    }

    fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        self.tree.containing_leaf_many(keys)
    }

    fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<Cell>> {
        self.tree.get_data_many(keys).into_iter().map(|r| r.map(|d| to_cell(&d))).collect()
    }

    fn mem_stats(&self) -> MemStats {
        self.tree.store.arena.stats.clone()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tree.store.arena.tracer = tracer;
    }

    fn tracer(&self) -> Tracer {
        self.tree.store.arena.tracer.clone()
    }
}

// ---------------------------------------------------------------- in-core

/// In-core baseline adapter: tree in DRAM + snapshot files on NVBM.
pub struct InCoreBackend {
    /// The wrapped tree.
    pub tree: InCoreOctree,
    /// Snapshot target file system (NVBM via FS interface).
    pub fs: SimFs,
    /// Snapshot every N steps (paper: 10).
    pub snapshot_interval: usize,
    /// Tracing journal for the snapshot phase.
    pub tracer: Tracer,
}

impl InCoreBackend {
    /// Wrap a fresh in-core tree with the paper's 10-step snapshots.
    pub fn new() -> Self {
        InCoreBackend {
            tree: InCoreOctree::new(),
            fs: SimFs::on_nvbm(),
            snapshot_interval: 10,
            tracer: Tracer::default(),
        }
    }
}

impl Default for InCoreBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl OctreeBackend for InCoreBackend {
    fn refine(&mut self, key: OctKey) -> Result<(), PmError> {
        let exists = self.tree.is_leaf(key);
        if self.tree.refine(key) {
            Ok(())
        } else {
            Err(classify_refine(exists, key))
        }
    }

    fn coarsen(&mut self, key: OctKey) -> Result<(), PmError> {
        let exists = self.tree.is_leaf(key);
        if self.tree.coarsen(key) {
            Ok(())
        } else {
            Err(classify_coarsen(exists, key))
        }
    }

    fn is_leaf(&mut self, key: OctKey) -> Option<bool> {
        self.tree.is_leaf(key)
    }

    fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey> {
        self.tree.containing_leaf(key)
    }

    fn get_data(&mut self, key: OctKey) -> Option<Cell> {
        self.tree.get_data(key)
    }

    fn set_data(&mut self, key: OctKey, data: Cell) -> Result<(), PmError> {
        // Leaves only — see the PmBackend note.
        match self.tree.is_leaf(key) {
            None => Err(not_found(key)),
            Some(false) => Err(not_a_leaf(key)),
            Some(true) => {
                if self.tree.set_data(key, data) {
                    Ok(())
                } else {
                    Err(not_found(key))
                }
            }
        }
    }

    fn for_each_leaf(&mut self, f: &mut dyn FnMut(OctKey, &Cell)) {
        self.tree.for_each_leaf(f);
    }

    fn update_leaves(&mut self, f: &mut dyn FnMut(OctKey, &Cell) -> Option<Cell>) {
        self.tree.update_leaves(f);
    }

    fn leaf_count(&self) -> usize {
        self.tree.leaf_count()
    }

    fn depth(&self) -> u8 {
        self.tree.depth()
    }

    fn elapsed_ns(&self) -> u64 {
        self.tree.clock.now_ns() + self.fs.clock.now_ns()
    }

    fn charge_external(&mut self, ns: u64) {
        self.tree.clock.advance(ns);
    }

    fn barrier_to(&mut self, t_ns: u64) {
        let now = self.elapsed_ns();
        if t_ns > now {
            self.tree.clock.advance(t_ns - now);
        }
    }

    fn end_of_step(&mut self, step: usize) {
        if self.snapshot_interval > 0 && step.is_multiple_of(self.snapshot_interval) {
            self.tracer.begin("snapshot", self.elapsed_ns(), Some(step as u64));
            self.tree.snapshot(&mut self.fs, &format!("snapshot-{step}.gfs"));
            self.tracer.end("snapshot", self.elapsed_ns());
        }
    }

    fn name(&self) -> &'static str {
        "in-core"
    }

    fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        self.tree.leaf_keys_sorted()
    }

    fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        self.tree.containing_leaf_many(keys)
    }

    fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<Cell>> {
        self.tree.get_data_many(keys)
    }

    fn mem_stats(&self) -> MemStats {
        let mut s = self.tree.stats.clone();
        let fs = &self.fs.stats;
        s.nvbm_read(fs.bytes_read as usize, fs.bytes_read.div_ceil(64));
        s.nvbm_write(fs.bytes_written as usize, fs.bytes_written.div_ceil(64));
        s
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }
}

// ---------------------------------------------------------------- etree

/// Etree out-of-core baseline adapter.
pub struct EtreeBackend {
    /// The wrapped tree (owns its file system).
    pub tree: EtreeOctree,
    /// Tracing journal for the flush phase.
    pub tracer: Tracer,
}

impl EtreeBackend {
    /// Etree on NVBM accessed through the FS interface (the paper's
    /// configuration for §5.2–5.4).
    pub fn on_nvbm() -> Self {
        EtreeBackend { tree: EtreeOctree::create(SimFs::on_nvbm()), tracer: Tracer::default() }
    }

    /// Etree on a rotating disk (its original habitat).
    pub fn on_disk() -> Self {
        EtreeBackend { tree: EtreeOctree::create(SimFs::on_disk()), tracer: Tracer::default() }
    }
}

impl OctreeBackend for EtreeBackend {
    fn refine(&mut self, key: OctKey) -> Result<(), PmError> {
        let exists = self.tree.is_leaf(key);
        if self.tree.refine(key) {
            Ok(())
        } else {
            Err(classify_refine(exists, key))
        }
    }

    fn coarsen(&mut self, key: OctKey) -> Result<(), PmError> {
        let exists = self.tree.is_leaf(key);
        if self.tree.coarsen(key) {
            Ok(())
        } else {
            Err(classify_coarsen(exists, key))
        }
    }

    fn is_leaf(&mut self, key: OctKey) -> Option<bool> {
        match self.tree.is_leaf(key) {
            Some(true) => Some(true),
            Some(false) => Some(false),
            None => None,
        }
    }

    fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey> {
        self.tree.containing_leaf(key)
    }

    fn get_data(&mut self, key: OctKey) -> Option<Cell> {
        self.tree.get_data(key)
    }

    fn set_data(&mut self, key: OctKey, data: Cell) -> Result<(), PmError> {
        match self.tree.is_leaf(key) {
            None => Err(not_found(key)),
            Some(false) => Err(not_a_leaf(key)),
            Some(true) => {
                if self.tree.set_data(key, data) {
                    Ok(())
                } else {
                    Err(not_found(key))
                }
            }
        }
    }

    fn for_each_leaf(&mut self, f: &mut dyn FnMut(OctKey, &Cell)) {
        self.tree.for_each_leaf(f);
    }

    fn update_leaves(&mut self, f: &mut dyn FnMut(OctKey, &Cell) -> Option<Cell>) {
        self.tree.update_leaves(f);
    }

    fn leaf_count(&self) -> usize {
        self.tree.leaf_count()
    }

    fn depth(&self) -> u8 {
        self.tree.depth()
    }

    fn elapsed_ns(&self) -> u64 {
        self.tree.fs.clock.now_ns()
    }

    fn charge_external(&mut self, ns: u64) {
        self.tree.fs.clock.advance(ns);
    }

    fn barrier_to(&mut self, t_ns: u64) {
        self.tree.fs.clock.advance_to(t_ns);
    }

    fn end_of_step(&mut self, step: usize) {
        self.tracer.begin("flush", self.elapsed_ns(), Some(step as u64));
        self.tree.flush();
        self.tracer.end("flush", self.elapsed_ns());
    }

    fn name(&self) -> &'static str {
        "out-of-core"
    }

    fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        self.tree.leaf_keys_sorted()
    }

    fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        self.tree.containing_leaf_many(keys)
    }

    fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<Cell>> {
        self.tree.get_data_many(keys)
    }

    fn mem_stats(&self) -> MemStats {
        let mut s = self.tree.stats.clone();
        let fs = &self.tree.fs.stats;
        s.nvbm_read(fs.bytes_read as usize, fs.bytes_read.div_ceil(64));
        s.nvbm_write(fs.bytes_written as usize, fs.bytes_written.div_ceil(64));
        s
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_octree::PmConfig;
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn backends() -> Vec<Box<dyn OctreeBackend>> {
        vec![
            Box::new(PmBackend::new(PmOctree::create(
                NvbmArena::new(16 << 20, DeviceModel::default()),
                PmConfig { dynamic_transform: false, ..PmConfig::default() },
            ))),
            Box::new(InCoreBackend::new()),
            Box::new(EtreeBackend::on_nvbm()),
        ]
    }

    #[test]
    fn all_backends_agree_on_basic_meshing() {
        for mut b in backends() {
            assert_eq!(b.leaf_count(), 1, "{}", b.name());
            b.refine(OctKey::root()).unwrap();
            b.refine(OctKey::root().child(2)).unwrap();
            assert_eq!(b.leaf_count(), 15, "{}", b.name());
            assert_eq!(b.is_leaf(OctKey::root().child(2)), Some(false), "{}", b.name());
            assert_eq!(b.is_leaf(OctKey::root().child(3)), Some(true), "{}", b.name());
            assert_eq!(
                b.containing_leaf(OctKey::root().child(3).child(1)),
                Some(OctKey::root().child(3)),
                "{}",
                b.name()
            );
            b.set_data(OctKey::root().child(3), [1.0, 2.0, 3.0, 4.0]).unwrap();
            assert_eq!(b.get_data(OctKey::root().child(3)), Some([1.0, 2.0, 3.0, 4.0]));
            b.coarsen(OctKey::root().child(2)).unwrap();
            assert_eq!(b.leaf_count(), 8, "{}", b.name());
            let mut n = 0;
            b.for_each_leaf(&mut |_, _| n += 1);
            assert_eq!(n, 8, "{}", b.name());
            b.end_of_step(10);
            assert!(b.elapsed_ns() > 0, "{}", b.name());
        }
    }

    #[test]
    fn all_backends_agree_on_error_taxonomy() {
        for mut b in backends() {
            b.refine(OctKey::root()).unwrap();
            let name = b.name();
            let missing = OctKey::root().child(0).child(0);
            assert!(
                matches!(b.refine(missing), Err(PmError::NotFound(_))),
                "{name}: refine on a missing key"
            );
            assert!(
                matches!(b.refine(OctKey::root()), Err(PmError::NotALeaf(_))),
                "{name}: refine on an internal octant"
            );
            assert!(
                matches!(b.coarsen(OctKey::root().child(1)), Err(PmError::NotALeaf(_))),
                "{name}: coarsen on a leaf"
            );
            assert!(
                matches!(b.coarsen(missing), Err(PmError::NotFound(_))),
                "{name}: coarsen on a missing key"
            );
            assert!(
                matches!(b.set_data(missing, [0.0; 4]), Err(PmError::NotFound(_))),
                "{name}: set_data on a missing key"
            );
            assert!(
                matches!(b.set_data(OctKey::root(), [0.0; 4]), Err(PmError::NotALeaf(_))),
                "{name}: set_data on an internal octant"
            );
        }
    }

    #[test]
    fn update_leaves_consistent_across_backends() {
        for mut b in backends() {
            b.refine(OctKey::root()).unwrap();
            b.update_leaves(&mut |_, d| Some([d[0] + 1.0, d[1], d[2], d[3]]));
            let name = b.name();
            b.for_each_leaf(&mut |_, d| assert_eq!(d[0], 1.0, "{name}"));
        }
    }
}
