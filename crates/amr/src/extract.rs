//! `Extract`: turn the octree into an unstructured mesh for analysis and
//! visualization — vertices, hexahedral cells, and the anchored/dangling
//! (hanging-node) classification from the paper's Figure 1.

use std::collections::HashMap;

use pmoctree_morton::OctKey;

use crate::backend::OctreeBackend;

/// Integer vertex coordinate at the finest representable resolution.
type VCoord = [u64; 3];

/// An extracted unstructured hexahedral mesh.
#[derive(Debug, Default, Clone)]
pub struct Mesh {
    /// Vertex positions in the unit cube.
    pub vertices: Vec<[f64; 3]>,
    /// Hex cells as 8 vertex indices (Morton corner order).
    pub cells: Vec<[u32; 8]>,
    /// Per-vertex: `true` = anchored node, `false` = dangling (hanging)
    /// node sitting on a coarser neighbor's face or edge.
    pub anchored: Vec<bool>,
    /// Per-cell leaf keys (same order as `cells`).
    pub keys: Vec<OctKey>,
}

const MAXL: u8 = OctKey::MAX_LEVEL;

fn corner_coord(key: &OctKey, corner: usize) -> VCoord {
    let c = key.coords();
    let span = 1u64 << (MAXL - key.level());
    let mut v = [0u64; 3];
    for (a, slot) in v.iter_mut().enumerate() {
        *slot = (c[a] + ((corner >> a) & 1) as u64) * span;
    }
    v
}

/// Extract the mesh from a backend.
///
/// A vertex is **anchored** when it is a corner of *every* leaf incident
/// to it; otherwise it lies strictly inside a coarser leaf's face or edge
/// and is **dangling** — its field value must be interpolated rather than
/// solved (Gerris treats these as constrained nodes).
pub fn extract(b: &mut dyn OctreeBackend) -> Mesh {
    let leaves = b.leaf_keys_sorted();

    let mut vid: HashMap<VCoord, u32> = HashMap::new();
    let mut mesh = Mesh::default();
    let side = 1u64 << MAXL;
    for k in &leaves {
        let mut cell = [0u32; 8];
        for (corner, slot) in cell.iter_mut().enumerate() {
            let vc = corner_coord(k, corner);
            let id = *vid.entry(vc).or_insert_with(|| {
                mesh.vertices.push([
                    vc[0] as f64 / side as f64,
                    vc[1] as f64 / side as f64,
                    vc[2] as f64 / side as f64,
                ]);
                u32::try_from(mesh.vertices.len() - 1).expect("vertex count fits u32")
            });
            *slot = id;
        }
        mesh.cells.push(cell);
        mesh.keys.push(*k);
    }

    // Classification: for each vertex, check the (up to 8) leaves
    // incident to it; the vertex must be a corner of each.
    mesh.anchored = vec![true; mesh.vertices.len()];
    let coords: Vec<VCoord> = {
        let mut v = vec![[0u64; 3]; mesh.vertices.len()];
        for (vc, &id) in &vid {
            v[id as usize] = *vc;
        }
        v
    };
    // Gather every vertex's (up to 8) diagonal finest-grid probes, then
    // resolve the whole batch through the backend's sorted leaf index in
    // one pass instead of one root descent per probe.
    let mut probe_keys: Vec<OctKey> = Vec::new();
    let mut probe_owner: Vec<u32> = Vec::new();
    for (id, vc) in coords.iter().enumerate() {
        'octants: for oct in 0..8usize {
            // The cell of the finest grid diagonally adjacent to the
            // vertex in direction `oct` (bit a set = positive side).
            let mut probe = [0u64; 3];
            for a in 0..3 {
                if (oct >> a) & 1 == 1 {
                    if vc[a] >= side {
                        continue 'octants;
                    }
                    probe[a] = vc[a];
                } else {
                    if vc[a] == 0 {
                        continue 'octants;
                    }
                    probe[a] = vc[a] - 1;
                }
            }
            probe_keys.push(OctKey::from_coords(probe, MAXL));
            probe_owner.push(id as u32);
        }
    }
    let resolved = b.containing_leaf_many(&probe_keys);
    for (owner, leaf) in probe_owner.iter().zip(&resolved) {
        let id = *owner as usize;
        if !mesh.anchored[id] {
            continue;
        }
        let Some(leaf) = leaf else { continue };
        // Is the vertex one of the containing leaf's corners?
        let vc = coords[id];
        let is_corner = (0..8).any(|c| corner_coord(leaf, c) == vc);
        if !is_corner {
            mesh.anchored[id] = false;
        }
    }
    mesh
}

impl Mesh {
    /// Number of dangling (hanging) nodes.
    pub fn dangling_count(&self) -> usize {
        self.anchored.iter().filter(|&&a| !a).count()
    }

    /// Total mesh nodes.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of elements.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InCoreBackend;
    use crate::construct::construct_uniform;

    #[test]
    fn uniform_mesh_has_no_dangling_nodes() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 2); // 4x4x4 cells
        let m = extract(&mut b);
        assert_eq!(m.cell_count(), 64);
        assert_eq!(m.vertex_count(), 125); // 5^3
        assert_eq!(m.dangling_count(), 0);
    }

    #[test]
    fn single_cell() {
        let mut b = InCoreBackend::new();
        let m = extract(&mut b);
        assert_eq!(m.cell_count(), 1);
        assert_eq!(m.vertex_count(), 8);
        assert_eq!(m.dangling_count(), 0);
    }

    #[test]
    fn one_refined_cell_creates_hanging_nodes() {
        let mut b = InCoreBackend::new();
        b.refine(pmoctree_morton::OctKey::root()).unwrap();
        b.refine(pmoctree_morton::OctKey::root().child(0)).unwrap();
        let m = extract(&mut b);
        assert_eq!(m.cell_count(), 15);
        // The refined octant adds face/edge midpoints that hang on the
        // three coarse neighbors sharing its outer faces.
        assert!(m.dangling_count() > 0);
        // Hanging nodes sit strictly inside the domain boundary faces of
        // the fine block (x, y or z = 0.25 plane crossings at 0.25 steps).
        for (i, v) in m.vertices.iter().enumerate() {
            if !m.anchored[i] {
                assert!(v.iter().all(|&x| x <= 0.5 + 1e-12), "hanging node at {v:?}");
            }
        }
    }

    #[test]
    fn vertex_positions_are_cell_corners() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 1);
        let m = extract(&mut b);
        for (ci, cell) in m.cells.iter().enumerate() {
            let k = m.keys[ci];
            let lo = k.min_corner();
            let h = k.extent();
            for (corner, &vi) in cell.iter().enumerate() {
                let v = m.vertices[vi as usize];
                for a in 0..3 {
                    let want = lo[a] + h * ((corner >> a) & 1) as f64;
                    assert!((v[a] - want).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn counts_match_euler_style_sanity() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 3);
        let m = extract(&mut b);
        assert_eq!(m.cell_count(), 512);
        assert_eq!(m.vertex_count(), 9 * 9 * 9);
        assert_eq!(m.keys.len(), m.cells.len());
        assert_eq!(m.anchored.len(), m.vertices.len());
    }
}
