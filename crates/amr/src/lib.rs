//! Adaptive-mesh-refinement meshing routines over octree backends.
//!
//! §2 of the paper decomposes octree meshing into five routines; this
//! crate implements each one generically over [`OctreeBackend`], so the
//! identical simulation code runs against PM-octree, the in-core
//! baseline, and the Etree out-of-core baseline:
//!
//! | routine            | module        |
//! |---------------------|--------------|
//! | Construct           | [`construct`] |
//! | Refine & Coarsen    | [`refine`]    |
//! | Balance (2:1)       | [`mod@balance`]   |
//! | Partition           | [`mod@partition`] |
//! | Extract             | [`mod@extract`]   |
#![warn(missing_docs)]

pub mod backend;
pub mod balance;
pub mod construct;
pub mod extract;
pub mod gerris;
pub mod partition;
pub mod refine;
pub mod vtk;

pub use backend::{neighbor_queries, Cell, EtreeBackend, InCoreBackend, OctreeBackend, PmBackend};
pub use balance::{
    balance, balance26, balance_subset, can_coarsen, check_balance, check_balance26,
    coarsen_balanced, refine_balanced,
};
pub use construct::{construct_path, construct_uniform};
pub use extract::{extract, Mesh};
pub use partition::{migration_plan, partition, weighted_leaves, Migration};
pub use refine::{adapt, AdaptCriterion, AdaptReport, BandCriterion, Target};
pub use vtk::export_vtk_with_fields;
