//! `Partition`: split the global mesh across processors along the Morton
//! curve, weighted by per-octant work.

use pmoctree_morton::{partition_by_weight, OctKey, ZRange};

use crate::backend::OctreeBackend;

/// Collect the leaves of a backend as Z-sorted weighted partition input.
/// The weight is the `work` payload field (falling back to 1.0 when the
/// solver has not recorded anything).
pub fn weighted_leaves(b: &mut dyn OctreeBackend) -> Vec<(OctKey, f64)> {
    let mut out = Vec::with_capacity(b.leaf_count());
    b.for_each_leaf(&mut |k, d| {
        let w = if d[3] > 0.0 { d[3] } else { 1.0 };
        out.push((k, w));
    });
    out.sort_by_key(|a| a.0);
    out
}

/// Compute `parts` Morton ranges balancing the leaf weights.
pub fn partition(b: &mut dyn OctreeBackend, parts: usize) -> Vec<ZRange<3>> {
    let leaves = weighted_leaves(b);
    partition_by_weight(&leaves, parts)
}

/// Migration plan entry: octants moving from `from` to `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// Source rank.
    pub from: usize,
    /// Destination rank.
    pub to: usize,
    /// Leaves to move.
    pub keys: Vec<OctKey>,
}

/// Given the old ownership (rank per leaf) and the new ranges, compute
/// which leaves each rank must ship where. The returned volume feeds the
/// network model.
pub fn migration_plan(
    leaves: &[(OctKey, f64)],
    old_owner: &dyn Fn(&OctKey) -> usize,
    new_ranges: &[ZRange<3>],
) -> Vec<Migration> {
    let mut map: std::collections::HashMap<(usize, usize), Vec<OctKey>> =
        std::collections::HashMap::new();
    for (k, _) in leaves {
        let from = old_owner(k);
        let to = new_ranges.iter().position(|r| r.owns(k)).expect("ranges cover the curve");
        if from != to {
            map.entry((from, to)).or_default().push(*k);
        }
    }
    let mut out: Vec<Migration> =
        map.into_iter().map(|((from, to), keys)| Migration { from, to, keys }).collect();
    out.sort_by_key(|m| (m.from, m.to));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InCoreBackend;
    use crate::construct::construct_uniform;

    #[test]
    fn partition_balances_uniform_mesh() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 3); // 512 leaves
        let ranges = partition(&mut b, 8);
        assert_eq!(ranges.len(), 8);
        let leaves = weighted_leaves(&mut b);
        for r in &ranges {
            let n = leaves.iter().filter(|(k, _)| r.owns(k)).count();
            assert!((60..=68).contains(&n), "unbalanced: {n}");
        }
    }

    #[test]
    fn partition_honors_work_weights() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 2); // 64 leaves
                                      // The Z-order-first leaf carries huge work.
        let leaves = weighted_leaves(&mut b);
        let first = leaves[0].0;
        b.set_data(first, [0.0, 0.0, 0.0, 63.0]).unwrap();
        let ranges = partition(&mut b, 2);
        let leaves = weighted_leaves(&mut b);
        let n0 = leaves.iter().filter(|(k, _)| ranges[0].owns(k)).count();
        assert!(n0 <= 2, "heavy leaf should sit almost alone: {n0}");
    }

    #[test]
    fn migration_plan_moves_only_changed_owners() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 2);
        let leaves = weighted_leaves(&mut b);
        let old_ranges = partition(&mut b, 4);
        // New partition with different weighting: all leaves same rank 0.
        let new_ranges = partition(&mut b, 1);
        let old_ranges2 = old_ranges.clone();
        let owner = move |k: &OctKey| old_ranges2.iter().position(|r| r.owns(k)).expect("owner");
        let plan = migration_plan(&leaves, &owner, &new_ranges);
        // Everything owned by old ranks 1..3 moves to 0.
        let moved: usize = plan.iter().map(|m| m.keys.len()).sum();
        let expected: usize = leaves
            .iter()
            .filter(|(k, _)| old_ranges.iter().position(|r| r.owns(k)).expect("o") != 0)
            .count();
        assert_eq!(moved, expected);
        assert!(plan.iter().all(|m| m.to == 0 && m.from != 0));
    }

    #[test]
    fn same_partition_no_migration() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 2);
        let leaves = weighted_leaves(&mut b);
        let ranges = partition(&mut b, 4);
        let r2 = ranges.clone();
        let owner = move |k: &OctKey| r2.iter().position(|r| r.owns(k)).expect("owner");
        assert!(migration_plan(&leaves, &owner, &ranges).is_empty());
    }
}
