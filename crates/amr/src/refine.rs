//! `Refine & Coarsen`: criterion-driven mesh adaptation.
//!
//! The application supplies an [`AdaptCriterion`] (in Gerris terms, the
//! refinement condition of the simulation file); one [`adapt`] pass
//! refines interesting leaves up to `max_level` and coarsens
//! uninteresting families, keeping the 2:1 constraint throughout.

use pmoctree_morton::OctKey;

use crate::backend::{Cell, OctreeBackend};
use crate::balance::{balance_from, can_coarsen};

/// What adaptation wants for one leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Split the leaf (if below the level cap).
    Refine,
    /// Merge the leaf's family (if all siblings agree and it is legal).
    Coarsen,
    /// Leave as is.
    Keep,
}

/// A refinement criterion: inspects a leaf and votes.
pub trait AdaptCriterion {
    /// Vote for one leaf.
    fn target(&self, key: &OctKey, data: &Cell) -> Target;
    /// Hard cap on refinement depth.
    fn max_level(&self) -> u8;
}

/// Statistics of one adaptation pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AdaptReport {
    /// Leaves refined (including 2:1 ripple refinements).
    pub refined: usize,
    /// Families coarsened.
    pub coarsened: usize,
}

/// One adaptation pass: refine every leaf voting [`Target::Refine`]
/// (below the cap), then coarsen every family whose 8 children all vote
/// [`Target::Coarsen`] and whose merge is 2:1-legal.
///
/// Both phases run through the backend's batched mutators
/// ([`OctreeBackend::refine_many`] / [`OctreeBackend::coarsen_many`]), so
/// a sharded backend adapts its voted cells domain-parallel. The mesh is
/// the same as the former one-key-at-a-time pass: the 2:1 closure of a
/// refinement set is unique, and same-level coarsen families are
/// 2:1-independent of each other.
pub fn adapt(b: &mut dyn OctreeBackend, criterion: &dyn AdaptCriterion) -> AdaptReport {
    let mut report = AdaptReport::default();
    // --- refinement phase ---
    let mut to_refine = Vec::new();
    b.for_each_leaf(&mut |k, d| {
        if k.level() < criterion.max_level() && criterion.target(&k, d) == Target::Refine {
            to_refine.push(k);
        }
    });
    to_refine.sort_unstable();
    // One batched split of every voted leaf, then one incremental balance
    // sweep seeded from the new fine leaves to restore 2:1.
    let ok = b.refine_many(&to_refine);
    let refined: Vec<OctKey> =
        to_refine.iter().zip(&ok).filter(|&(_, &s)| s).map(|(&k, _)| k).collect();
    report.refined += refined.len();
    balance_from(b, &refined);
    // --- coarsening phase ---
    // Group coarsen votes by parent; a family merges only unanimously.
    let mut votes: std::collections::HashMap<OctKey, u8> = std::collections::HashMap::new();
    b.for_each_leaf(&mut |k, d| {
        if k.level() > 0 && criterion.target(&k, d) == Target::Coarsen {
            if let Some(p) = k.parent() {
                *votes.entry(p).or_insert(0) += 1;
            }
        }
    });
    let mut parents: Vec<OctKey> = votes.iter().filter(|(_, &n)| n == 8).map(|(k, _)| *k).collect();
    // Deepest first, so nested coarsening cascades within one pass.
    // Families at one level cannot affect each other's 2:1 legality
    // (coarsening only makes regions shallower), so each level's legal
    // set merges as one batch.
    parents.sort_by(|a, b| b.level().cmp(&a.level()).then(a.cmp(b)));
    let mut i = 0;
    while i < parents.len() {
        let lvl = parents[i].level();
        let mut batch = Vec::new();
        while i < parents.len() && parents[i].level() == lvl {
            if can_coarsen(b, parents[i]) {
                batch.push(parents[i]);
            }
            i += 1;
        }
        report.coarsened += b.coarsen_many(&batch).into_iter().filter(|&s| s).count();
    }
    report
}

/// A band criterion: refine where `|phi| < width · h(level)`, coarsen
/// where `|phi| > 2 · width · h(level)` — the classic interface-band
/// refinement of multiphase solvers (h = cell size at the leaf's level).
pub struct BandCriterion {
    /// Band half-width in units of the local cell size.
    pub width: f64,
    /// Maximum refinement level.
    pub max_level: u8,
}

impl AdaptCriterion for BandCriterion {
    fn target(&self, key: &OctKey, data: &Cell) -> Target {
        let h = key.extent();
        let phi = data[0].abs();
        if phi < self.width * h {
            Target::Refine
        } else if phi > 2.0 * self.width * h {
            Target::Coarsen
        } else {
            Target::Keep
        }
    }

    fn max_level(&self) -> u8 {
        self.max_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InCoreBackend;
    use crate::balance::check_balance;
    use crate::construct::construct_uniform;

    struct CornerCriterion {
        max: u8,
    }

    impl AdaptCriterion for CornerCriterion {
        fn target(&self, key: &OctKey, _d: &Cell) -> Target {
            // Interesting region: the corner cell at the origin.
            let c = key.center();
            if c.iter().all(|&x| x < 0.26) {
                Target::Refine
            } else {
                Target::Coarsen
            }
        }

        fn max_level(&self) -> u8 {
            self.max
        }
    }

    #[test]
    fn adapt_refines_corner_only() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 2);
        let crit = CornerCriterion { max: 4 };
        let r1 = adapt(&mut b, &crit);
        assert!(r1.refined > 0);
        assert!(check_balance(&mut b).is_none(), "2:1 after adapt");
        // Depth grows only near the corner.
        let mut max_far = 0u8;
        let mut max_near = 0u8;
        b.for_each_leaf(&mut |k, _| {
            let c = k.center();
            if c.iter().all(|&x| x < 0.25) {
                max_near = max_near.max(k.level());
            }
            if c.iter().all(|&x| x > 0.75) {
                max_far = max_far.max(k.level());
            }
        });
        assert!(max_near > max_far);
    }

    #[test]
    fn adapt_respects_level_cap() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 1);
        let crit = CornerCriterion { max: 3 };
        for _ in 0..6 {
            adapt(&mut b, &crit);
        }
        assert!(b.depth() <= 3);
    }

    #[test]
    fn unanimous_coarsening_shrinks_mesh() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 3);
        let n0 = b.leaf_count();
        // Everything is uninteresting except the corner: repeated passes
        // coarsen distant families (bounded by 2:1 against corner depth).
        let crit = CornerCriterion { max: 3 };
        for _ in 0..4 {
            adapt(&mut b, &crit);
        }
        assert!(b.leaf_count() < n0, "coarsening must shrink the mesh");
        assert!(check_balance(&mut b).is_none());
    }

    #[test]
    fn band_criterion_tracks_interface() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 2);
        // phi = signed distance to the plane x = 0.5.
        let set_phi = |b: &mut InCoreBackend| {
            b.update_leaves(&mut |k: OctKey, d: &Cell| {
                let mut nd = *d;
                nd[0] = k.center()[0] - 0.5;
                Some(nd)
            });
        };
        set_phi(&mut b);
        let crit = BandCriterion { width: 1.0, max_level: 4 };
        for _ in 0..3 {
            adapt(&mut b, &crit);
            set_phi(&mut b);
        }
        // Cells on the interface are at max level; far cells are not.
        let mut at_interface = 0u8;
        let mut far = 0u8;
        b.for_each_leaf(&mut |k, _| {
            let x = k.center()[0];
            if (x - 0.5).abs() < 0.05 {
                at_interface = at_interface.max(k.level());
            }
            if x < 0.1 {
                far = far.max(k.level());
            }
        });
        assert_eq!(at_interface, 4);
        assert!(far < 4);
    }
}
