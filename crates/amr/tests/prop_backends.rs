//! Cross-backend equivalence: the three octree implementations must be
//! observationally identical under any meshing sequence, and 2:1 balance
//! must hold after the balanced primitives, whichever backend ran them.

use pm_octree::{PmConfig, PmOctree};
use pmoctree_amr::{
    adapt, check_balance, coarsen_balanced, refine_balanced, AdaptCriterion, Cell, EtreeBackend,
    InCoreBackend, OctreeBackend, PmBackend, Target,
};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{DeviceModel, NvbmArena};
use proptest::prelude::*;

fn pm_backend() -> PmBackend {
    PmBackend::new(PmOctree::create(
        NvbmArena::new(64 << 20, DeviceModel::default()),
        PmConfig { dynamic_transform: false, c0_capacity_octants: 128, ..PmConfig::default() },
    ))
}

#[derive(Debug, Clone)]
enum MeshOp {
    RefineBalanced(Vec<usize>),
    CoarsenBalanced(Vec<usize>),
    SetData(Vec<usize>, f64),
}

fn arb_ops() -> impl Strategy<Value = Vec<MeshOp>> {
    let path = prop::collection::vec(0usize..8, 0..4);
    prop::collection::vec(
        prop_oneof![
            4 => path.clone().prop_map(MeshOp::RefineBalanced),
            2 => path.clone().prop_map(MeshOp::CoarsenBalanced),
            2 => (path, -5.0f64..5.0).prop_map(|(p, v)| MeshOp::SetData(p, v)),
        ],
        1..25,
    )
}

fn key_of(path: &[usize]) -> OctKey {
    let mut k = OctKey::root();
    for &i in path {
        k = k.child(i);
    }
    k
}

fn apply(b: &mut dyn OctreeBackend, op: &MeshOp) {
    match op {
        MeshOp::RefineBalanced(p) => {
            refine_balanced(b, key_of(p));
        }
        MeshOp::CoarsenBalanced(p) => {
            coarsen_balanced(b, key_of(p));
        }
        MeshOp::SetData(p, v) => {
            let _ = b.set_data(key_of(p), [*v, 0.0, 0.0, 0.0]);
        }
    }
}

fn leaves(b: &mut dyn OctreeBackend) -> Vec<(OctKey, Cell)> {
    let mut out = Vec::new();
    b.for_each_leaf(&mut |k, d| out.push((k, *d)));
    out.sort_by_key(|a| a.0);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn three_backends_observationally_equal(ops in arb_ops()) {
        let mut pm = pm_backend();
        let mut ic = InCoreBackend::new();
        let mut et = EtreeBackend::on_nvbm();
        for op in &ops {
            apply(&mut pm, op);
            apply(&mut ic, op);
            apply(&mut et, op);
        }
        let lp = leaves(&mut pm);
        let li = leaves(&mut ic);
        let le = leaves(&mut et);
        prop_assert_eq!(&lp, &li, "pm vs in-core diverged");
        prop_assert_eq!(&lp, &le, "pm vs etree diverged");
        prop_assert_eq!(pm.leaf_count(), lp.len());
        prop_assert_eq!(ic.leaf_count(), lp.len());
        prop_assert_eq!(et.leaf_count(), lp.len());
    }

    #[test]
    fn balanced_primitives_preserve_two_to_one(ops in arb_ops()) {
        let mut pm = pm_backend();
        for op in &ops {
            apply(&mut pm, op);
            prop_assert!(
                check_balance(&mut pm).is_none(),
                "2:1 violated after {op:?}"
            );
        }
    }

    #[test]
    fn leaves_always_tile_domain(ops in arb_ops()) {
        // The leaves of a well-formed octree partition the domain: anchor
        // ranges are disjoint and cover [0, 8^21).
        let mut pm = pm_backend();
        for op in &ops {
            apply(&mut pm, op);
        }
        let ls = leaves(&mut pm);
        let mut cursor = 0u64;
        for (k, _) in &ls {
            prop_assert_eq!(pmoctree_morton::anchor::<3>(k), cursor, "gap before {:?}", k);
            cursor = pmoctree_morton::anchor_end::<3>(k);
        }
        prop_assert_eq!(cursor, pmoctree_morton::anchor_end::<3>(&OctKey::root()));
    }
}

/// Adaptation with a moving band criterion keeps all backends in lock
/// step over multiple "time steps" including their persistence hooks.
#[test]
fn adapt_with_persistence_stays_in_lockstep() {
    struct Band {
        x0: f64,
    }
    impl AdaptCriterion for Band {
        fn target(&self, key: &OctKey, _d: &Cell) -> Target {
            let d = (key.center()[0] - self.x0).abs();
            if d < key.extent() {
                Target::Refine
            } else if d > 3.0 * key.extent() {
                Target::Coarsen
            } else {
                Target::Keep
            }
        }
        fn max_level(&self) -> u8 {
            4
        }
    }

    let mut pm = pm_backend();
    let mut ic = InCoreBackend::new();
    let mut et = EtreeBackend::on_nvbm();
    for step in 0..6 {
        let crit = Band { x0: 0.1 + 0.15 * step as f64 };
        adapt(&mut pm, &crit);
        adapt(&mut ic, &crit);
        adapt(&mut et, &crit);
        pm.end_of_step(step);
        ic.end_of_step(step);
        et.end_of_step(step);
        let lp = leaves(&mut pm);
        assert_eq!(lp, leaves(&mut ic), "step {step}: pm vs in-core");
        assert_eq!(lp, leaves(&mut et), "step {step}: pm vs etree");
        assert!(check_balance(&mut pm).is_none(), "step {step}");
    }
    // The PM tree saw real sharing across persists.
    assert!(pm.tree.events.persists >= 6);
    assert!(pm.tree.events.overlap_ratio() > 0.0);
}
