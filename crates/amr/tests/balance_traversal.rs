//! Acceptance check for the batched-neighbor balance path: on a ~10^5
//! octant tree, `balance26` must locate neighbors through the sorted
//! leaf index (one merge-scan per worklist) instead of per-key root
//! descents. The traversal counters make the reduction observable:
//! every index hit stands for a lookup that the scan-based
//! implementation answered with a full root descent.

use pmoctree_amr::{balance26, check_balance26, InCoreBackend, OctreeBackend};

#[test]
fn balance26_uses_index_not_root_descents_at_1e5_octants() {
    let mut b = InCoreBackend::new();
    // Uniform refine to level 5 (32768 leaves), then deepen a Morton
    // prefix to level 6 to cross 10^5 leaves. A contiguous prefix keeps
    // every adjacent pair within one level, so the mesh is 26-balanced
    // and the pass measures pure lookup traffic.
    for _ in 0..5 {
        for k in b.leaf_keys_sorted() {
            let _ = b.refine(k);
        }
    }
    for k in b.leaf_keys_sorted().into_iter().take(9728) {
        let _ = b.refine(k);
    }
    assert!(b.leaf_count() >= 100_000, "setup too small: {}", b.leaf_count());

    let before = b.mem_stats().trav;
    let refined = balance26(&mut b);
    let after = b.mem_stats().trav;
    assert_eq!(refined, 0, "prefix-deepened mesh must already be 26-balanced");
    assert!(check_balance26(&mut b).is_none());

    let descents = after.root_descents - before.root_descents;
    let hits = after.index_hits - before.index_hits;
    // Every leaf contributes up to 26 neighbor lookups (fewer on the
    // domain boundary, where out-of-range directions are clipped); all
    // must be index hits. The seed implementation performed one root
    // descent per lookup, so `hits` is the seed's descent count.
    assert!(hits >= 24 * 100_000, "expected >=2.4M batched lookups, got {hits}");
    assert!(
        5 * descents <= hits,
        "root descents not reduced >=5x: {descents} descents vs {hits} batched lookups"
    );
}
