//! Leaf-index consistency: the lazily maintained Morton-sorted leaf
//! index behind `leaf_keys_sorted` / `containing_leaf_many` must stay
//! observationally equal to the authoritative tree walk on every
//! backend, under arbitrary interleavings of mutation, persistence, and
//! batched queries — and on PM-octree, across crash + restore.

use pm_octree::{PmConfig, PmOctree};
use pmoctree_amr::{EtreeBackend, InCoreBackend, OctreeBackend, PmBackend};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{CrashMode, DeviceModel, NvbmArena};
use proptest::prelude::*;

fn pm_tree() -> PmOctree {
    PmOctree::create(
        NvbmArena::new(64 << 20, DeviceModel::default()),
        PmConfig { c0_capacity_octants: 128, ..PmConfig::default() },
    )
}

fn key_of(path: &[usize]) -> OctKey {
    let mut k = OctKey::root();
    for &i in path {
        k = k.child(i);
    }
    k
}

#[derive(Debug, Clone)]
enum Op {
    Refine(Vec<usize>),
    Coarsen(Vec<usize>),
    SetData(Vec<usize>, f64),
    /// End-of-step hook: persist (pm) / snapshot (in-core) / flush (etree).
    Step,
    /// Batched lookup whose result must agree with per-key lookups.
    QueryBatch(Vec<Vec<usize>>),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let path = prop::collection::vec(0usize..8, 0..4);
    prop::collection::vec(
        prop_oneof![
            4 => path.clone().prop_map(Op::Refine),
            2 => path.clone().prop_map(Op::Coarsen),
            2 => (path.clone(), -5.0f64..5.0).prop_map(|(p, v)| Op::SetData(p, v)),
            1 => Just(Op::Step),
            2 => prop::collection::vec(prop::collection::vec(0usize..8, 0..5), 1..6)
                .prop_map(Op::QueryBatch),
        ],
        1..30,
    )
}

/// Authoritative leaf enumeration: tree walk, sorted by Morton order.
fn walk_keys(b: &mut dyn OctreeBackend) -> Vec<OctKey> {
    let mut out = Vec::new();
    b.for_each_leaf(&mut |k, _| out.push(k));
    out.sort_unstable();
    out
}

fn apply_and_check(b: &mut dyn OctreeBackend, op: &Op, step: &mut usize) -> Result<(), String> {
    match op {
        Op::Refine(p) => {
            let _ = b.refine(key_of(p));
        }
        Op::Coarsen(p) => {
            let _ = b.coarsen(key_of(p));
        }
        Op::SetData(p, v) => {
            let _ = b.set_data(key_of(p), [*v, 0.0, 0.0, 0.0]);
        }
        Op::Step => {
            b.end_of_step(*step);
            *step += 1;
        }
        Op::QueryBatch(paths) => {
            let keys: Vec<OctKey> = paths.iter().map(|p| key_of(p)).collect();
            let batched = b.containing_leaf_many(&keys);
            for (k, got) in keys.iter().zip(&batched) {
                let want = b.containing_leaf(*k);
                if *got != want {
                    return Err(format!(
                        "{}: containing_leaf_many({k:?}) = {got:?}, containing_leaf = {want:?}",
                        b.name()
                    ));
                }
            }
        }
    }
    let want = walk_keys(b);
    let got = b.leaf_keys_sorted();
    if got != want {
        return Err(format!("{}: index diverged after {op:?}", b.name()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three backends: after every operation the index view equals
    /// the tree walk, and batched lookups equal per-key lookups.
    #[test]
    fn index_matches_walk_on_all_backends(ops in arb_ops()) {
        let mut backends: Vec<Box<dyn OctreeBackend>> = vec![
            Box::new(PmBackend::new(pm_tree())),
            Box::new(InCoreBackend::new()),
            Box::new(EtreeBackend::on_nvbm()),
        ];
        for b in &mut backends {
            let mut step = 0usize;
            for op in &ops {
                if let Err(msg) = apply_and_check(b.as_mut(), op, &mut step) {
                    prop_assert!(false, "{}", msg);
                }
            }
        }
    }

    /// PM-octree: the index stays correct across a crash that drops all
    /// unflushed NVBM writes followed by recovery, both when the crash
    /// lands after a clean persist and mid-sequence.
    #[test]
    fn pm_index_survives_crash_restore(
        ops in arb_ops(),
        crash_at in 0usize..30,
        persist_first in any::<bool>(),
    ) {
        let mut t = pm_tree();
        let mut step = 0usize;
        let crash_at = crash_at % ops.len().max(1);
        for (i, op) in ops.iter().enumerate() {
            if i == crash_at {
                if persist_first {
                    t.persist();
                }
                let cfg = t.cfg;
                let PmOctree { store, .. } = t;
                let mut arena = store.arena;
                arena.crash(CrashMode::LoseDirty);
                t = PmOctree::restore(arena, cfg).unwrap();
                // Fresh recovery: the index starts invalid and must
                // rebuild to exactly the recovered version's leaves.
                let keys: Vec<OctKey> =
                    t.leaves_sorted().into_iter().map(|(k, _)| k).collect();
                prop_assert_eq!(t.leaf_keys_sorted(), keys);
            }
            let mut b = PmBackend::new(t);
            if let Err(msg) = apply_and_check(&mut b, op, &mut step) {
                prop_assert!(false, "{}", msg);
            }
            t = b.tree;
        }
        // Final agreement including a batched probe of every leaf plus
        // keys one level below each leaf (all must resolve to the leaf).
        let leaves = t.leaf_keys_sorted();
        let mut probes = leaves.clone();
        probes.extend(leaves.iter().filter(|k| k.level() < 20).map(|k| k.child(3)));
        let batched = t.containing_leaf_many(&probes);
        for (k, got) in probes.iter().zip(&batched) {
            prop_assert_eq!(*got, t.containing_leaf(*k), "probe {:?}", k);
        }
    }
}
