//! Attribution: turning the flat event journal back into a span tree and
//! summing virtual time per phase.
//!
//! Everything here is derived from [`build_tree`], so the three consumers
//! (the `repro` attribution table, the coverage acceptance check, and the
//! per-timestep table) agree on one parse of the journal.

use crate::trace::{Event, EventKind};

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span label.
    pub name: &'static str,
    /// Begin timestamp (virtual ns).
    pub t0: u64,
    /// End timestamp (virtual ns).
    pub t1: u64,
    /// Optional numeric argument from the Begin event.
    pub arg: Option<u64>,
    /// Child spans in journal order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Inclusive duration.
    pub fn dur_ns(&self) -> u64 {
        self.t1 - self.t0
    }
}

/// Rebuild the span forest from a journal. Instant events are dropped;
/// imbalanced or time-crossing journals are an error.
pub fn build_tree(events: &[Event]) -> Result<Vec<SpanNode>, String> {
    crate::chrome::validate_events(events)?;
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => stack.push(SpanNode {
                name: e.name,
                t0: e.t_ns,
                t1: e.t_ns,
                arg: e.arg,
                children: Vec::new(),
            }),
            EventKind::End => {
                let mut node = stack.pop().expect("validated journal");
                node.t1 = e.t_ns;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
            EventKind::Instant => {}
        }
    }
    Ok(roots)
}

/// One row of the flat attribution table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRow {
    /// Span label.
    pub name: &'static str,
    /// Total inclusive virtual time over all *outermost* occurrences
    /// (an occurrence nested under a same-named ancestor is not counted
    /// again, so rows never double-count recursion).
    pub total_ns: u64,
    /// Number of outermost occurrences.
    pub count: u64,
}

fn walk_totals(node: &SpanNode, active: &mut Vec<&'static str>, rows: &mut Vec<AttrRow>) {
    let outermost = !active.contains(&node.name);
    if outermost {
        match rows.iter_mut().find(|r| r.name == node.name) {
            Some(r) => {
                r.total_ns += node.dur_ns();
                r.count += 1;
            }
            None => rows.push(AttrRow { name: node.name, total_ns: node.dur_ns(), count: 1 }),
        }
        active.push(node.name);
    }
    for c in &node.children {
        walk_totals(c, active, rows);
    }
    if outermost {
        active.pop();
    }
}

/// Inclusive virtual time per span name, counting only outermost
/// occurrences, sorted by descending total.
pub fn inclusive_totals(events: &[Event]) -> Result<Vec<AttrRow>, String> {
    let roots = build_tree(events)?;
    let mut rows = Vec::new();
    let mut active = Vec::new();
    for r in &roots {
        walk_totals(r, &mut active, &mut rows);
    }
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
    Ok(rows)
}

fn collect_named<'t>(nodes: &'t [SpanNode], name: &str, out: &mut Vec<&'t SpanNode>) {
    for n in nodes {
        if n.name == name {
            out.push(n);
        } else {
            collect_named(&n.children, name, out);
        }
    }
}

/// Coverage of a parent phase by its direct children: returns
/// `(parent_total_ns, direct_children_total_ns)` summed over every
/// occurrence of `parent` in the journal. The acceptance criterion
/// "`persist::*` spans sum to within 3% of total persist cost" is
/// `children_total >= 0.97 * parent_total` on `coverage(ev, "persist")`.
pub fn coverage(events: &[Event], parent: &str) -> Result<(u64, u64), String> {
    let roots = build_tree(events)?;
    let mut parents = Vec::new();
    collect_named(&roots, parent, &mut parents);
    let parent_total = parents.iter().map(|n| n.dur_ns()).sum();
    let child_total =
        parents.iter().map(|n| n.children.iter().map(|c| c.dur_ns()).sum::<u64>()).sum();
    Ok((parent_total, child_total))
}

/// Attribution of one solver step: the step's span plus inclusive totals
/// of its direct children (`step::refine`, `step::solve`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepAttr {
    /// Step index (the `arg` stamped on the `step` span).
    pub step: u64,
    /// Inclusive duration of the whole step.
    pub total_ns: u64,
    /// `(child name, summed inclusive ns)` for direct children, in first-
    /// appearance order.
    pub phases: Vec<(&'static str, u64)>,
}

/// Per-timestep attribution table: one [`StepAttr`] per `step` span.
pub fn step_table(events: &[Event]) -> Result<Vec<StepAttr>, String> {
    let roots = build_tree(events)?;
    let mut steps = Vec::new();
    collect_named(&roots, "step", &mut steps);
    Ok(steps
        .iter()
        .map(|s| {
            let mut phases: Vec<(&'static str, u64)> = Vec::new();
            for c in &s.children {
                match phases.iter_mut().find(|(n, _)| *n == c.name) {
                    Some((_, ns)) => *ns += c.dur_ns(),
                    None => phases.push((c.name, c.dur_ns())),
                }
            }
            StepAttr { step: s.arg.unwrap_or(0), total_ns: s.dur_ns(), phases }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(t: u64, name: &'static str, arg: Option<u64>) -> Event {
        Event { t_ns: t, kind: EventKind::Begin, name, arg }
    }
    fn e(t: u64, name: &'static str) -> Event {
        Event { t_ns: t, kind: EventKind::End, name, arg: None }
    }

    fn sample() -> Vec<Event> {
        vec![
            b(0, "step", Some(0)),
            b(10, "step::persist", None),
            b(20, "persist", None),
            b(20, "persist::merge", None),
            e(50, "persist::merge"),
            b(50, "gc::sweep", None),
            e(80, "gc::sweep"),
            e(90, "persist"),
            e(95, "step::persist"),
            e(100, "step"),
            b(100, "step", Some(1)),
            b(110, "step::solve", None),
            e(140, "step::solve"),
            e(150, "step"),
        ]
    }

    #[test]
    fn tree_and_totals() {
        let ev = sample();
        let roots = build_tree(&ev).unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].children[0].children[0].name, "persist");
        let rows = inclusive_totals(&ev).unwrap();
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().total_ns;
        assert_eq!(get("step"), 150);
        assert_eq!(get("persist"), 70);
        assert_eq!(get("gc::sweep"), 30);
        assert_eq!(rows.iter().find(|r| r.name == "step").unwrap().count, 2);
    }

    #[test]
    fn coverage_counts_direct_children_only() {
        let (parent, children) = coverage(&sample(), "persist").unwrap();
        assert_eq!(parent, 70);
        assert_eq!(children, 60); // merge 30 + gc 30; the 10ns tail is uncovered
    }

    #[test]
    fn per_step_table() {
        let t = step_table(&sample()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].step, 0);
        assert_eq!(t[0].total_ns, 100);
        assert_eq!(t[0].phases, vec![("step::persist", 85)]);
        assert_eq!(t[1].phases, vec![("step::solve", 30)]);
    }

    #[test]
    fn recursion_not_double_counted() {
        let ev = vec![
            b(0, "gc::sweep", None),
            b(10, "gc::sweep", None),
            e(20, "gc::sweep"),
            e(40, "gc::sweep"),
        ];
        let rows = inclusive_totals(&ev).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].total_ns, 40);
        assert_eq!(rows[0].count, 1);
    }
}
