//! Chrome trace-event JSON exporter.
//!
//! Emits the `{"traceEvents": [...]}` object format understood by
//! `chrome://tracing` and Perfetto. Timestamps are microseconds; the
//! virtual clock is nanoseconds, so `ts` is written as `ns/1000` with
//! exactly three decimals via integer math — no float formatting — which
//! keeps traces byte-identical across runs and platforms.

use crate::metrics::Metrics;
use crate::trace::{Event, EventKind};

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a nanosecond timestamp as a microsecond JSON number with three
/// decimals (`1234567` → `"1234.567"`).
pub fn ts_us(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1000, t_ns % 1000)
}

fn push_event(out: &mut String, tid: u32, e: &Event) {
    let ph = match e.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
    };
    out.push_str("{\"name\":\"");
    out.push_str(e.name); // labels are static identifiers; nothing to escape
    out.push_str("\",\"cat\":\"pm\",\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"ts\":");
    out.push_str(&ts_us(e.t_ns));
    out.push_str(",\"pid\":0,\"tid\":");
    out.push_str(&tid.to_string());
    if e.kind == EventKind::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if let Some(a) = e.arg {
        out.push_str(",\"args\":{\"v\":");
        out.push_str(&a.to_string());
        out.push('}');
    }
    out.push('}');
}

/// Serialize per-rank journals as one Chrome trace. `threads` pairs each
/// rank id (`tid`) with its event journal in recording order.
pub fn trace_json(threads: &[(u32, Vec<Event>)]) -> String {
    trace_json_with_metrics(threads, &Metrics::new())
}

fn push_counter(out: &mut String, first: &mut bool, name: &str, value: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    out.push_str(&escape_json(name));
    out.push_str(
        "\",\"cat\":\"pm\",\"ph\":\"C\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"args\":{\"v\":",
    );
    out.push_str(value);
    out.push_str("}}");
}

/// [`trace_json`] plus the final metrics snapshot rendered as Chrome
/// counter (`ph:"C"`) events at `ts` 0 — counters, gauges, and labeled
/// counters, in registry (name, label set) order, so Perfetto shows the
/// wear/bytes attribution tracks next to the span timeline and the bytes
/// stay deterministic.
pub fn trace_json_with_metrics(threads: &[(u32, Vec<Event>)], metrics: &Metrics) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, events) in threads {
        for e in events {
            if !first {
                out.push(',');
            }
            first = false;
            push_event(&mut out, *tid, e);
        }
    }
    for (name, v) in metrics.counters() {
        push_counter(&mut out, &mut first, name, &v.to_string());
    }
    for (name, v) in metrics.gauges() {
        push_counter(&mut out, &mut first, name, &format!("{v}"));
    }
    for (name, labels, v) in metrics.labeled_counters() {
        push_counter(&mut out, &mut first, &format!("{name}{{{labels}}}"), &v.to_string());
    }
    out.push_str("]}");
    out
}

/// Check that a journal is well-formed: timestamps monotone nondecreasing
/// and Begin/End properly nested with matching names.
pub fn validate_events(events: &[Event]) -> Result<(), String> {
    let mut stack: Vec<&'static str> = Vec::new();
    let mut last_t = 0u64;
    for (i, e) in events.iter().enumerate() {
        if e.t_ns < last_t {
            return Err(format!(
                "event {i} ({}) goes back in time: {} < {}",
                e.name, e.t_ns, last_t
            ));
        }
        last_t = e.t_ns;
        match e.kind {
            EventKind::Begin => stack.push(e.name),
            EventKind::End => match stack.pop() {
                Some(top) if top == e.name => {}
                Some(top) => {
                    return Err(format!("event {i}: End({}) closes open span {top}", e.name))
                }
                None => return Err(format!("event {i}: End({}) with no open span", e.name)),
            },
            EventKind::Instant => {}
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("journal ends with span {open} still open"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind, name: &'static str) -> Event {
        Event { t_ns: t, kind, name, arg: None }
    }

    #[test]
    fn ts_is_integer_math() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1), "0.001");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn exports_balanced_json() {
        let events = vec![
            ev(0, EventKind::Begin, "persist"),
            ev(150, EventKind::Instant, "sample"),
            ev(300, EventKind::End, "persist"),
        ];
        let json = trace_json(&[(0, events.clone())]);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ts\":0.150"));
        assert!(validate_events(&events).is_ok());
    }

    #[test]
    fn metrics_render_as_counter_events() {
        let mut m = Metrics::new();
        m.counter_add("nvbm.write_lines", 42);
        m.counter_add_labeled("wear.bytes_by_phase", "phase=\"mutate\"", 512);
        let json = trace_json_with_metrics(&[(0, vec![ev(0, EventKind::Instant, "x")])], &m);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"nvbm.write_lines\""));
        // Label quotes are escaped so the trace stays valid JSON.
        assert!(json.contains("wear.bytes_by_phase{phase=\\\"mutate\\\"}"));
        assert!(json.ends_with("]}"));
        // Without metrics the output is unchanged from plain trace_json.
        assert_eq!(
            trace_json(&[(0, vec![ev(0, EventKind::Instant, "x")])]),
            trace_json_with_metrics(&[(0, vec![ev(0, EventKind::Instant, "x")])], &Metrics::new())
        );
    }

    #[test]
    fn validation_catches_imbalance_and_time_travel() {
        let open = vec![ev(0, EventKind::Begin, "a")];
        assert!(validate_events(&open).is_err());
        let crossed = vec![
            ev(0, EventKind::Begin, "a"),
            ev(1, EventKind::Begin, "b"),
            ev(2, EventKind::End, "a"),
        ];
        assert!(validate_events(&crossed).is_err());
        let back = vec![ev(5, EventKind::Begin, "a"), ev(4, EventKind::End, "a")];
        assert!(validate_events(&back).is_err());
    }
}
