//! The metrics registry: counters, gauges, and latency histograms.
//!
//! This registry absorbs the totals the repo used to accumulate ad hoc in
//! `MemStats` — arenas publish their tier/traversal counters here (see
//! `NvbmArena::publish_metrics`) so one snapshot carries everything the
//! Prometheus exporter needs. `BTreeMap` keys keep every export
//! deterministic.

use std::collections::BTreeMap;

/// Bucket upper bounds (ns) for [`Histogram`]: powers of four from 64 ns,
/// plus a +Inf overflow bucket. Spans in this repo range from a single
/// cacheline write (150 ns) to multi-second persists, which this covers.
pub const BUCKET_BOUNDS_NS: [u64; 15] = [
    64,
    256,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
    1 << 34,
];

/// Fixed-bucket latency histogram (nanoseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Per-bucket counts: `buckets[i]` counts samples in
    /// `(BUCKET_BOUNDS_NS[i-1], BUCKET_BOUNDS_NS[i]]`; the final slot is
    /// the +Inf overflow bucket. The Prometheus exporter cumulates.
    pub buckets: [u64; 16],
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        let i = BUCKET_BOUNDS_NS.iter().position(|&b| v <= b).unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[i] += 1;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Counters, gauges, and histograms, keyed by static label.
///
/// Labeled series (`counter_add_labeled`, `observe_labeled`) carry a
/// Prometheus-style label set rendered by the caller (e.g.
/// `tenant="alpha"`); keys are `(name, labels)` tuples so iteration — and
/// therefore every export — is ordered by metric name first, label set
/// second.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    labeled_counters: BTreeMap<(String, String), u64>,
    labeled_histograms: BTreeMap<(String, String), Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a monotone counter.
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Set a counter to an absolute cumulative value (publishing a total
    /// accumulated elsewhere, e.g. `MemStats`).
    pub fn counter_set(&mut self, name: &'static str, v: u64) {
        self.counters.insert(name, v);
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Add to a labeled monotone counter. `labels` is the rendered label
    /// set without braces, e.g. `tenant="alpha"`.
    pub fn counter_add_labeled(&mut self, name: &str, labels: &str, v: u64) {
        *self.labeled_counters.entry((name.to_string(), labels.to_string())).or_insert(0) += v;
    }

    /// Set a labeled counter to an absolute cumulative value.
    pub fn counter_set_labeled(&mut self, name: &str, labels: &str, v: u64) {
        self.labeled_counters.insert((name.to_string(), labels.to_string()), v);
    }

    /// Record a sample into a labeled histogram.
    pub fn observe_labeled(&mut self, name: &str, labels: &str, v: u64) {
        self.labeled_histograms
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .observe(v);
    }

    /// Counter value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Labeled counter value, if present.
    pub fn labeled_counter(&self, name: &str, labels: &str) -> Option<u64> {
        self.labeled_counters.get(&(name.to_string(), labels.to_string())).copied()
    }

    /// Iterate labeled counters ordered by (name, label set).
    pub fn labeled_counters(&self) -> impl Iterator<Item = (&str, &str, u64)> + '_ {
        self.labeled_counters.iter().map(|((n, l), v)| (n.as_str(), l.as_str(), *v))
    }

    /// Iterate labeled histograms ordered by (name, label set).
    pub fn labeled_histograms(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> + '_ {
        self.labeled_histograms.iter().map(|((n, l), h)| (n.as_str(), l.as_str(), h))
    }

    /// Merge another registry into this one: counters and histogram cells
    /// add; for gauges the other side wins ties by `max` (the use case is
    /// aggregating per-rank registries, where max matches how the cluster
    /// reduces rank clocks).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k).or_insert(f64::NEG_INFINITY);
            *e = e.max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
        for ((n, l), v) in &other.labeled_counters {
            *self.labeled_counters.entry((n.clone(), l.clone())).or_insert(0) += v;
        }
        for ((n, l), h) in &other.labeled_histograms {
            self.labeled_histograms.entry((n.clone(), l.clone())).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_range() {
        let mut h = Histogram::default();
        h.observe(1); // <= 64
        h.observe(150); // <= 256
        h.observe(1 << 35); // +Inf
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[15], 1);
        assert_eq!(h.sum, 1 + 150 + (1 << 35));
    }

    #[test]
    fn labeled_series_sort_by_name_then_label_set() {
        let mut m = Metrics::new();
        m.counter_add_labeled("svc.bytes", "tenant=\"beta\"", 7);
        m.counter_add_labeled("svc.bytes", "tenant=\"alpha\"", 3);
        m.counter_add_labeled("svc.bytes", "tenant=\"alpha\"", 2);
        m.counter_set_labeled("aaa.first", "x=\"1\"", 9);
        m.observe_labeled("svc.lat", "tenant=\"alpha\"", 100);
        let order: Vec<_> =
            m.labeled_counters().map(|(n, l, v)| (n.to_string(), l.to_string(), v)).collect();
        assert_eq!(
            order,
            vec![
                ("aaa.first".into(), "x=\"1\"".into(), 9),
                ("svc.bytes".into(), "tenant=\"alpha\"".into(), 5),
                ("svc.bytes".into(), "tenant=\"beta\"".into(), 7),
            ]
        );
        assert_eq!(m.labeled_counter("svc.bytes", "tenant=\"alpha\""), Some(5));
        let mut other = Metrics::new();
        other.counter_add_labeled("svc.bytes", "tenant=\"beta\"", 1);
        other.observe_labeled("svc.lat", "tenant=\"alpha\"", 50);
        m.merge(&other);
        assert_eq!(m.labeled_counter("svc.bytes", "tenant=\"beta\""), Some(8));
        let h = m.labeled_histograms().next().unwrap().2;
        assert_eq!((h.count, h.sum), (2, 150));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = Metrics::new();
        a.counter_add("x", 2);
        a.gauge_set("g", 1.0);
        let mut b = Metrics::new();
        b.counter_add("x", 3);
        b.gauge_set("g", 4.0);
        b.observe("h", 100);
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(5));
        assert_eq!(a.gauge("g"), Some(4.0));
        assert_eq!(a.histograms().next().unwrap().1.count, 1);
    }
}
