//! Prometheus text-exposition exporter for a [`Metrics`] snapshot.
//!
//! Output follows the text format: every family gets a `# HELP` and a
//! `# TYPE` line, histogram families expand into `_bucket`/`_sum`/`_count`
//! series with cumulative `le` labels. Names are sanitized
//! (`persist::merge` → `persist_merge`) since Prometheus metric names
//! admit only `[a-zA-Z0-9_:]` and we reserve `:` for recording rules.
//!
//! The dump is byte-diffable in CI: families are emitted in sanitized-name
//! order and series within a family in label-set order, independent of
//! insertion order or worker count. Histogram families get a `_ns` unit
//! suffix unless the name already carries a unit (`*_ns`, `*_bytes`).

use crate::metrics::{Histogram, Metrics, BUCKET_BOUNDS_NS};
use std::collections::BTreeMap;

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

/// Histogram family name: append the `_ns` unit unless the raw name
/// already ends in a unit suffix.
fn hist_name(raw: &str) -> String {
    let n = sanitize(raw);
    if n.ends_with("_ns") || n.ends_with("_bytes") {
        n
    } else {
        format!("{n}_ns")
    }
}

/// One-line help text per family. Known families get a specific line; the
/// fallback still guarantees a `# HELP` for every exported metric.
fn help(name: &str) -> String {
    let text = match name {
        n if n.starts_with("nvbm_") => "emulated NVM device activity (cachelines, flushes)",
        n if n.starts_with("wear_") => {
            "per-block wear and bytes-written attribution at commit time"
        }
        n if n.starts_with("recorder_") => "persistent flight-recorder ring activity",
        n if n.starts_with("svc_") => "multi-tenant state-service activity",
        n if n.starts_with("tier_") => "tiered storage traffic",
        n if n.ends_with("_ns") => "virtual-clock span duration in nanoseconds",
        _ => "pm-octree observability metric",
    };
    text.to_string()
}

enum Family {
    Counter(Vec<(String, u64)>),
    Gauge(f64),
    Histogram(Vec<(String, Histogram)>),
}

fn push_series(out: &mut String, name: &str, labels: &str, value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn push_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let le = |bound: &str| {
        if labels.is_empty() {
            format!("le=\"{bound}\"")
        } else {
            format!("{labels},le=\"{bound}\"")
        }
    };
    let mut cumulative = 0u64;
    for (i, bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
        cumulative += h.buckets[i];
        push_series(
            out,
            &format!("{name}_bucket"),
            &le(&bound.to_string()),
            &cumulative.to_string(),
        );
    }
    push_series(out, &format!("{name}_bucket"), &le("+Inf"), &h.count.to_string());
    push_series(out, &format!("{name}_sum"), labels, &h.sum.to_string());
    push_series(out, &format!("{name}_count"), labels, &h.count.to_string());
}

/// Render the registry as Prometheus text exposition. Families are sorted
/// by metric name, series within a family by label set.
pub fn text(m: &Metrics) -> String {
    let mut fams: BTreeMap<String, Family> = BTreeMap::new();
    for (name, v) in m.counters() {
        match fams.entry(sanitize(name)).or_insert_with(|| Family::Counter(Vec::new())) {
            Family::Counter(series) => series.push((String::new(), v)),
            _ => unreachable!("family kind collision"),
        }
    }
    for (name, labels, v) in m.labeled_counters() {
        match fams.entry(sanitize(name)).or_insert_with(|| Family::Counter(Vec::new())) {
            Family::Counter(series) => series.push((labels.to_string(), v)),
            _ => unreachable!("family kind collision"),
        }
    }
    for (name, v) in m.gauges() {
        fams.insert(sanitize(name), Family::Gauge(v));
    }
    for (name, h) in m.histograms() {
        match fams.entry(hist_name(name)).or_insert_with(|| Family::Histogram(Vec::new())) {
            Family::Histogram(series) => series.push((String::new(), h.clone())),
            _ => unreachable!("family kind collision"),
        }
    }
    for (name, labels, h) in m.labeled_histograms() {
        match fams.entry(hist_name(name)).or_insert_with(|| Family::Histogram(Vec::new())) {
            Family::Histogram(series) => series.push((labels.to_string(), h.clone())),
            _ => unreachable!("family kind collision"),
        }
    }

    let mut out = String::new();
    for (name, fam) in &mut fams {
        out.push_str(&format!("# HELP {name} {}\n", help(name)));
        match fam {
            Family::Counter(series) => {
                out.push_str(&format!("# TYPE {name} counter\n"));
                series.sort_by(|a, b| a.0.cmp(&b.0));
                for (labels, v) in series {
                    push_series(&mut out, name, labels, &v.to_string());
                }
            }
            Family::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            Family::Histogram(series) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                series.sort_by(|a, b| a.0.cmp(&b.0));
                for (labels, h) in series {
                    push_histogram(&mut out, name, labels, h);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_three_kinds() {
        let mut m = Metrics::new();
        m.counter_add("nvbm.write_lines", 42);
        m.gauge_set("wear/max", 3.0);
        m.observe("persist::merge", 150);
        m.observe("persist::merge", 100_000);
        let t = text(&m);
        assert!(t.contains("# HELP nvbm_write_lines "));
        assert!(t.contains("# TYPE nvbm_write_lines counter\nnvbm_write_lines 42\n"));
        assert!(t.contains("# TYPE wear_max gauge\nwear_max 3\n"));
        assert!(t.contains("# TYPE persist_merge_ns histogram\n"));
        assert!(t.contains("persist_merge_ns_bucket{le=\"256\"} 1\n"));
        assert!(t.contains("persist_merge_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(t.contains("persist_merge_ns_sum 100150\n"));
        assert!(t.contains("persist_merge_ns_count 2\n"));
    }

    #[test]
    fn every_family_gets_help_and_type() {
        let mut m = Metrics::new();
        m.counter_add("a", 1);
        m.gauge_set("b", 2.0);
        m.observe("c", 3);
        m.counter_add_labeled("d", "tenant=\"x\"", 4);
        let t = text(&m);
        for fam in ["a", "b", "c_ns", "d"] {
            assert!(t.contains(&format!("# HELP {fam} ")), "missing HELP for {fam}:\n{t}");
            assert!(t.contains(&format!("# TYPE {fam} ")), "missing TYPE for {fam}:\n{t}");
        }
    }

    #[test]
    fn labeled_series_sort_within_family() {
        let mut m = Metrics::new();
        m.counter_add_labeled("svc.bytes", "tenant=\"beta\"", 7);
        m.counter_add_labeled("svc.bytes", "tenant=\"alpha\"", 3);
        m.observe_labeled("svc.flush_bytes", "tenant=\"alpha\"", 512);
        let t = text(&m);
        let alpha = t.find("svc_bytes{tenant=\"alpha\"} 3").expect("alpha series");
        let beta = t.find("svc_bytes{tenant=\"beta\"} 7").expect("beta series");
        assert!(alpha < beta, "label sets must sort within a family:\n{t}");
        // `_bytes` histograms keep their unit instead of gaining `_ns`.
        assert!(t.contains("# TYPE svc_flush_bytes histogram\n"));
        assert!(t.contains("svc_flush_bytes_bucket{tenant=\"alpha\",le=\"+Inf\"} 1\n"));
        assert!(t.contains("svc_flush_bytes_sum{tenant=\"alpha\"} 512\n"));
    }

    #[test]
    fn export_is_insertion_order_independent() {
        let mut a = Metrics::new();
        a.counter_add("z.last", 1);
        a.counter_add("a.first", 1);
        a.counter_add_labeled("mid", "k=\"2\"", 1);
        a.counter_add_labeled("mid", "k=\"1\"", 1);
        let mut b = Metrics::new();
        b.counter_add_labeled("mid", "k=\"1\"", 1);
        b.counter_add_labeled("mid", "k=\"2\"", 1);
        b.counter_add("a.first", 1);
        b.counter_add("z.last", 1);
        assert_eq!(text(&a), text(&b));
        let first = text(&a).find("a_first").unwrap();
        let last = text(&a).find("z_last").unwrap();
        assert!(first < last);
    }
}
