//! Prometheus text-exposition exporter for a [`Metrics`] snapshot.
//!
//! Output follows the text format (`# TYPE` headers, `_bucket`/`_sum`/
//! `_count` histogram series with cumulative `le` labels). Names are
//! sanitized (`persist::merge` → `persist_merge`) since Prometheus metric
//! names admit only `[a-zA-Z0-9_:]` and we reserve `:` for recording
//! rules. Ordering is the registry's BTreeMap order — deterministic.

use crate::metrics::{Metrics, BUCKET_BOUNDS_NS};

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

/// Render the registry as Prometheus text exposition.
pub fn text(m: &Metrics) -> String {
    let mut out = String::new();
    for (name, v) in m.counters() {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in m.gauges() {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in m.histograms() {
        let n = format!("{}_ns", sanitize(name));
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            cumulative += h.buckets[i];
            out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_three_kinds() {
        let mut m = Metrics::new();
        m.counter_add("nvbm.write_lines", 42);
        m.gauge_set("wear/max", 3.0);
        m.observe("persist::merge", 150);
        m.observe("persist::merge", 100_000);
        let t = text(&m);
        assert!(t.contains("# TYPE nvbm_write_lines counter\nnvbm_write_lines 42\n"));
        assert!(t.contains("# TYPE wear_max gauge\nwear_max 3\n"));
        assert!(t.contains("# TYPE persist_merge_ns histogram\n"));
        assert!(t.contains("persist_merge_ns_bucket{le=\"256\"} 1\n"));
        assert!(t.contains("persist_merge_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(t.contains("persist_merge_ns_sum 100150\n"));
        assert!(t.contains("persist_merge_ns_count 2\n"));
    }
}
