//! The tracer: an event journal fed by RAII span guards.

use crate::metrics::Metrics;
use std::sync::{Arc, Mutex};

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// The most recently opened span closed.
    End,
    /// A point event (no duration).
    Instant,
}

/// One journal entry. `t_ns` is virtual time; `name` is a static label
/// from the span taxonomy (e.g. `persist::merge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual-clock timestamp in nanoseconds.
    pub t_ns: u64,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Span or event label.
    pub name: &'static str,
    /// Optional numeric payload (step index, byte count, …).
    pub arg: Option<u64>,
}

struct Inner {
    tid: u32,
    journal: Mutex<Journal>,
}

#[derive(Default)]
struct Journal {
    events: Vec<Event>,
    metrics: Metrics,
}

/// Handle onto a per-rank event journal. Cloning shares the journal.
///
/// The default tracer is *disabled*: every operation is a branch on a
/// `None` and spans are no-op guards, so instrumentation left in place
/// costs nothing when tracing is off. The journal behind an enabled
/// tracer is "lock-free-ish": each simulated rank owns its own tracer, so
/// the mutex is uncontended and exists only to keep the handle `Send`.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(i) => write!(f, "Tracer(tid={}, events={})", i.tid, self.events().len()),
        }
    }
}

impl Tracer {
    /// A disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled tracer with an empty journal. `tid` labels the rank in
    /// multi-rank traces.
    pub fn enabled(tid: u32) -> Self {
        Tracer { inner: Some(Arc::new(Inner { tid, journal: Mutex::new(Journal::default()) })) }
    }

    /// Is this tracer recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The rank id this journal belongs to (0 when disabled).
    pub fn tid(&self) -> u32 {
        self.inner.as_ref().map_or(0, |i| i.tid)
    }

    fn with_journal(&self, f: impl FnOnce(&mut Journal)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.journal.lock().expect("tracer journal poisoned"));
        }
    }

    /// Record a span-begin event.
    pub fn begin(&self, name: &'static str, t_ns: u64, arg: Option<u64>) {
        self.with_journal(|j| j.events.push(Event { t_ns, kind: EventKind::Begin, name, arg }));
    }

    /// Record a span-end event.
    pub fn end(&self, name: &'static str, t_ns: u64) {
        self.with_journal(|j| j.events.push(Event { t_ns, kind: EventKind::End, name, arg: None }));
    }

    /// Record a point event.
    pub fn instant(&self, name: &'static str, t_ns: u64, arg: Option<u64>) {
        self.with_journal(|j| j.events.push(Event { t_ns, kind: EventKind::Instant, name, arg }));
    }

    /// Add to a monotone counter in the metrics registry.
    pub fn counter_add(&self, name: &'static str, v: u64) {
        self.with_journal(|j| j.metrics.counter_add(name, v));
    }

    /// Set a counter to an absolute cumulative value (for publishing an
    /// externally accumulated total such as `MemStats`).
    pub fn counter_set(&self, name: &'static str, v: u64) {
        self.with_journal(|j| j.metrics.counter_set(name, v));
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        self.with_journal(|j| j.metrics.gauge_set(name, v));
    }

    /// Add to a labeled monotone counter (`labels` is a rendered label
    /// set without braces, e.g. `tenant="alpha"`).
    pub fn counter_add_labeled(&self, name: &str, labels: &str, v: u64) {
        self.with_journal(|j| j.metrics.counter_add_labeled(name, labels, v));
    }

    /// Set a labeled counter to an absolute cumulative value.
    pub fn counter_set_labeled(&self, name: &str, labels: &str, v: u64) {
        self.with_journal(|j| j.metrics.counter_set_labeled(name, labels, v));
    }

    /// Record a sample into a labeled histogram.
    pub fn observe_labeled(&self, name: &str, labels: &str, v: u64) {
        self.with_journal(|j| j.metrics.observe_labeled(name, labels, v));
    }

    /// Record a duration sample into the named histogram.
    pub fn observe_ns(&self, name: &'static str, v: u64) {
        self.with_journal(|j| j.metrics.observe(name, v));
    }

    /// Snapshot of the event journal.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(i) => i.journal.lock().expect("tracer journal poisoned").events.clone(),
        }
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> Metrics {
        match &self.inner {
            None => Metrics::default(),
            Some(i) => i.journal.lock().expect("tracer journal poisoned").metrics.clone(),
        }
    }

    /// Drop all recorded events and metrics (journal stays enabled).
    pub fn clear(&self) {
        self.with_journal(|j| {
            j.events.clear();
            j.metrics = Metrics::default();
        });
    }

    /// Open a span. `now` reads the owning device's virtual clock; it is
    /// called once here and once when the guard drops. On a disabled
    /// tracer this allocates nothing and `now` is never called.
    pub fn span<F>(&self, name: &'static str, now: F) -> Span
    where
        F: Fn() -> u64 + Send + 'static,
    {
        self.span_arg_opt(name, None, now)
    }

    /// [`Tracer::span`] with a numeric argument (step index, id, …).
    pub fn span_arg<F>(&self, name: &'static str, arg: u64, now: F) -> Span
    where
        F: Fn() -> u64 + Send + 'static,
    {
        self.span_arg_opt(name, Some(arg), now)
    }

    fn span_arg_opt<F>(&self, name: &'static str, arg: Option<u64>, now: F) -> Span
    where
        F: Fn() -> u64 + Send + 'static,
    {
        if !self.is_enabled() {
            return Span::noop();
        }
        let t0 = now();
        self.begin(name, t0, arg);
        Span { tracer: self.clone(), name, t0, now: Some(Box::new(now)) }
    }
}

/// RAII span guard: emits a Begin event when created (by
/// [`Tracer::span`]) and an End event — plus a duration histogram sample —
/// when dropped. Early returns and `?` therefore cannot leave the journal
/// unbalanced.
pub struct Span {
    tracer: Tracer,
    name: &'static str,
    t0: u64,
    now: Option<Box<dyn Fn() -> u64 + Send>>,
}

impl Span {
    /// A guard that does nothing (what a disabled tracer hands out).
    pub fn noop() -> Span {
        Span { tracer: Tracer::default(), name: "", t0: 0, now: None }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Span({:?} from {})", self.name, self.t0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(now) = &self.now {
            let t1 = now();
            self.tracer.end(self.name, t1);
            self.tracer.observe_ns(self.name, t1.saturating_sub(self.t0));
        }
    }
}

/// Deterministically merge per-rank journals gathered at a barrier.
///
/// Under the worker pool ranks record concurrently into their own
/// journals, so the *collection* order of `(tid, events)` threads is
/// whatever order the coordinator polled them in — possibly influenced by
/// which ranks recorded anything at all. This helper makes the merged
/// stream a pure function of journal *content*: threads are stably sorted
/// by tid and journals of duplicate tids are concatenated in input order,
/// so exporters downstream (`chrome::trace_json`, attribution tables)
/// see the same byte stream for any worker count.
pub fn merge_threads(threads: Vec<(u32, Vec<Event>)>) -> Vec<(u32, Vec<Event>)> {
    let mut threads = threads;
    threads.sort_by_key(|(tid, _)| *tid);
    let mut out: Vec<(u32, Vec<Event>)> = Vec::with_capacity(threads.len());
    for (tid, events) in threads {
        match out.last_mut() {
            Some((last_tid, last_events)) if *last_tid == tid => last_events.extend(events),
            _ => out.push((tid, events)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn clock() -> (Arc<AtomicU64>, impl Fn() -> u64 + Send + Clone + 'static) {
        let c = Arc::new(AtomicU64::new(0));
        let h = c.clone();
        (c, move || h.load(Ordering::Relaxed))
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        let (_c, now) = clock();
        {
            let _s = t.span("persist", now);
        }
        t.counter_add("x", 1);
        assert!(t.events().is_empty());
        assert!(t.metrics().counters().next().is_none());
    }

    #[test]
    fn span_guard_balances_on_early_return() {
        let t = Tracer::enabled(3);
        let (c, now) = clock();
        let run = |t: &Tracer| {
            let _outer = t.span("persist", now.clone());
            c.store(100, Ordering::Relaxed);
            let _inner = t.span("persist::merge", now.clone());
            c.store(250, Ordering::Relaxed);
            // early return: both guards drop, inner first
        };
        run(&t);
        let ev = t.events();
        assert_eq!(ev.len(), 4);
        assert_eq!((ev[0].kind, ev[0].name, ev[0].t_ns), (EventKind::Begin, "persist", 0));
        assert_eq!((ev[1].kind, ev[1].name, ev[1].t_ns), (EventKind::Begin, "persist::merge", 100));
        assert_eq!((ev[2].kind, ev[2].name), (EventKind::End, "persist::merge"));
        assert_eq!((ev[3].kind, ev[3].name), (EventKind::End, "persist"));
        assert_eq!(t.tid(), 3);
    }

    #[test]
    fn merge_threads_is_collection_order_independent() {
        let ev = |t_ns| Event { t_ns, kind: EventKind::Instant, name: "x", arg: None };
        let a = (0u32, vec![ev(1), ev(2)]);
        let b = (1u32, vec![ev(5)]);
        let b2 = (1u32, vec![ev(9)]);
        let merged = merge_threads(vec![b.clone(), a.clone(), b2.clone()]);
        // Sorted by tid; duplicate tids concatenated in input order.
        assert_eq!(merged, vec![a.clone(), (1, vec![ev(5), ev(9)])]);
        // A different polling order of distinct tids yields the same merge.
        assert_eq!(
            merge_threads(vec![b, b2, a.clone()]),
            merge_threads(vec![a, (1, vec![ev(5)]), (1, vec![ev(9)])])
        );
    }

    #[test]
    fn span_records_duration_histogram() {
        let t = Tracer::enabled(0);
        let (c, now) = clock();
        {
            let _s = t.span("gc::sweep", now);
            c.store(4096, Ordering::Relaxed);
        }
        let m = t.metrics();
        let h = m.histograms().find(|(n, _)| *n == "gc::sweep").unwrap().1;
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 4096);
    }
}
