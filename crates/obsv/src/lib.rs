//! Observability for the PM-octree repro: spans, an event journal, and a
//! metrics registry, all stamped with the deterministic virtual clock.
//!
//! The paper's headline numbers are *attributions* — virtual time spent in
//! C0→C1 merges, GC sweeps, root swaps, layout transforms — so this crate
//! makes every protocol phase a first-class [`Span`] whose begin/end
//! timestamps come from `pmoctree_nvbm`'s virtual clock. Because the clock
//! is deterministic, traces are byte-identical run-to-run, and because
//! tracing only *reads* the clock (never advances it), enabling it inflates
//! virtual time by exactly zero.
//!
//! A disabled [`Tracer`] (the default) is a `None`: span creation returns
//! a no-op guard without allocating, and every record call is a single
//! branch. The span names mirror the `FailPlan` crash-opportunity labels
//! one-to-one (`persist::merge`, `gc::sweep`, `c0::evict`, …) so a trace
//! can be read against the crash-matrix taxonomy.
//!
//! Exporters: [`chrome::trace_json`] (loadable in `chrome://tracing` /
//! Perfetto), [`prom::text`] (Prometheus text exposition), and
//! [`attribution`] tables for the `repro` harness.
#![warn(missing_docs)]

pub mod attribution;
pub mod chrome;
pub mod metrics;
pub mod prom;
pub mod trace;

pub use attribution::{coverage, inclusive_totals, step_table, AttrRow, SpanNode, StepAttr};
pub use metrics::{Histogram, Metrics};
pub use trace::{merge_threads, Event, EventKind, Span, Tracer};
