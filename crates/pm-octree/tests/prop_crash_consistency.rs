//! Property tests for the paper's central claim: at least one version of
//! the octree is consistent at every instant, with **no fences** on octant
//! writes — a crash that loses or arbitrarily reorders unflushed
//! cachelines always recovers the last persisted version exactly.

use pm_octree::{CellData, PmConfig, PmOctree};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{CrashMode, DeviceModel, NvbmArena};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Refine(Vec<usize>),
    Coarsen(Vec<usize>),
    SetData(Vec<usize>, f64),
    Persist,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let path = prop::collection::vec(0usize..8, 0..4);
    prop::collection::vec(
        prop_oneof![
            4 => path.clone().prop_map(Op::Refine),
            2 => path.clone().prop_map(Op::Coarsen),
            3 => (path, -10.0f64..10.0).prop_map(|(p, v)| Op::SetData(p, v)),
            1 => Just(Op::Persist),
        ],
        1..40,
    )
}

fn key_from_path(path: &[usize]) -> OctKey {
    let mut k = OctKey::root();
    for &i in path {
        k = k.child(i);
    }
    k
}

fn apply(t: &mut PmOctree, op: &Op) {
    match op {
        Op::Refine(p) => {
            let _ = t.refine(key_from_path(p));
        }
        Op::Coarsen(p) => {
            let _ = t.coarsen(key_from_path(p));
        }
        Op::SetData(p, v) => {
            let _ = t.set_data(key_from_path(p), CellData { phi: *v, ..Default::default() });
        }
        Op::Persist => t.persist(),
    }
}

fn configs() -> Vec<PmConfig> {
    vec![
        // Plain: no DRAM tier at all.
        PmConfig {
            seed_c0: false,
            dynamic_transform: false,
            c0_capacity_octants: 0,
            ..PmConfig::default()
        },
        // DRAM tier with aggressive eviction pressure.
        PmConfig {
            seed_c0: true,
            dynamic_transform: false,
            c0_capacity_octants: 32,
            threshold_dram: 0.5,
            ..PmConfig::default()
        },
        // Default-ish with small C0.
        PmConfig { c0_capacity_octants: 256, dynamic_transform: false, ..PmConfig::default() },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash anywhere in an operation stream; recovery must equal the
    /// leaves at the last persist.
    #[test]
    fn restore_equals_last_persist(ops in arb_ops(), crash_at in 0usize..40, seed in any::<u64>(), p in 0.0f64..=1.0, cfg_i in 0usize..3) {
        let cfg = configs()[cfg_i];
        let arena = NvbmArena::new(32 << 20, DeviceModel::default());
        let mut t = PmOctree::create(arena, cfg);
        // Expected state: leaves at the last persist (initially the
        // single-root image written by create()).
        let mut expected = t.leaves_sorted();
        for (i, op) in ops.iter().enumerate() {
            if i == crash_at % ops.len().max(1) {
                break;
            }
            apply(&mut t, op);
            if matches!(op, Op::Persist) {
                expected = t.leaves_sorted();
            }
        }
        let pm_octree::PmOctree { store, .. } = t;
        let mut arena = store.arena;
        arena.crash(CrashMode::CommitRandom { p, seed });
        let mut r = PmOctree::restore(arena, cfg).unwrap();
        prop_assert_eq!(r.leaves_sorted(), expected);
    }

    /// Without a crash, the working tree behaves like a plain octree: a
    /// shadow model (BTreeMap of leaves) agrees with it after any op
    /// sequence, for every config (DRAM tier on/off must be transparent).
    #[test]
    fn tiering_is_transparent(ops in arb_ops(), cfg_i in 0usize..3) {
        let cfg = configs()[cfg_i];
        let arena = NvbmArena::new(32 << 20, DeviceModel::default());
        let mut t = PmOctree::create(arena, cfg);
        // Reference: untiered, never-persisting tree.
        let ref_cfg = PmConfig { seed_c0: false, dynamic_transform: false, c0_capacity_octants: 0, ..PmConfig::default() };
        let mut reference = PmOctree::create(NvbmArena::new(32 << 20, DeviceModel::default()), ref_cfg);
        for op in &ops {
            apply(&mut t, op);
            if !matches!(op, Op::Persist) {
                apply(&mut reference, op);
            }
        }
        prop_assert_eq!(t.leaves_sorted(), reference.leaves_sorted());
        prop_assert_eq!(t.leaf_count(), reference.leaf_count());
    }

    /// GC never frees a reachable octant and always leaves a queryable
    /// tree; memory does not leak across persists (live bytes bounded by
    /// tree size + one version of copies).
    #[test]
    fn persists_do_not_leak(ops in arb_ops()) {
        let cfg = configs()[0];
        let arena = NvbmArena::new(32 << 20, DeviceModel::default());
        let mut t = PmOctree::create(arena, cfg);
        for op in &ops {
            apply(&mut t, op);
        }
        t.persist();
        t.persist(); // second persist with no changes: everything shared
        let octants_in_tree = {
            let mut n = 0usize;
            t.for_each_leaf(|_, _| n += 1);
            // leaves + internals <= 8/7 * leaves + depth
            n * 8 / 7 + 32
        };
        let live_octants = (t.memory_usage_bytes() / 128) as usize;
        prop_assert!(
            live_octants <= octants_in_tree,
            "live {live_octants} vs bound {octants_in_tree}: GC leaked"
        );
    }
}
