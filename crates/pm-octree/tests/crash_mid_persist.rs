//! Crash injection *inside* the persist protocol itself — the hardest
//! window for any persistence design. The paper's claim: "our algorithms
//! can guarantee at least one version of the octree is consistent while
//! updating its newer version"; the only ordering point is the atomic
//! root-slot publication.
//!
//! For every failpoint phase and a grid of cache-commit probabilities,
//! recovery must yield either the previous persisted version (crash
//! before the recovery root moved) or the new one (after) — never a
//! mixture, never corruption.

use pm_octree::{CellData, PersistPhase, PmConfig, PmOctree};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{CrashMode, DeviceModel, NvbmArena};
use proptest::prelude::*;

fn build_and_persist() -> (PmOctree, Vec<(OctKey, CellData)>) {
    let arena = NvbmArena::new(32 << 20, DeviceModel::default());
    // Small C0 so the persist protocol really merges DRAM subtrees.
    let cfg = PmConfig { c0_capacity_octants: 64, dynamic_transform: false, ..PmConfig::default() };
    let mut t = PmOctree::create(arena, cfg);
    t.refine(OctKey::root()).unwrap();
    t.refine(OctKey::root().child(2)).unwrap();
    t.set_data(OctKey::root().child(1), CellData { phi: 1.5, ..Default::default() }).unwrap();
    t.persist();
    let old = t.leaves_sorted();
    (t, old)
}

fn mutate(t: &mut PmOctree) -> Vec<(OctKey, CellData)> {
    // Changes that the interrupted persist is trying to make durable.
    t.refine(OctKey::root().child(5)).unwrap();
    t.coarsen(OctKey::root().child(2)).unwrap();
    t.set_data(OctKey::root().child(1), CellData { phi: -9.0, ..Default::default() }).unwrap();
    t.leaves_sorted()
}

#[test]
fn crash_after_each_phase_recovers_a_version() {
    for phase in [
        PersistPhase::Merge,
        PersistPhase::Flush,
        PersistPhase::RootSwapHalf,
        PersistPhase::RootSwap,
    ] {
        for seed in 0..8u64 {
            let (mut t, old) = build_and_persist();
            let mut new = mutate(&mut t);
            new.sort_by_key(|a| a.0);
            let cfg = t.cfg;
            t.persist_with_failpoint(Some(phase));
            let PmOctree { store, .. } = t;
            let mut arena = store.arena;
            arena.crash(CrashMode::CommitRandom { p: 0.5, seed });
            let mut r = PmOctree::restore(arena, cfg).unwrap();
            let got = r.leaves_sorted();
            match phase {
                // Recovery root untouched: must be exactly the old version.
                PersistPhase::Merge | PersistPhase::Flush => {
                    assert_eq!(got, old, "phase {phase:?}, seed {seed}: expected old version");
                }
                // Recovery root (slot 1) published only in RootSwap; at
                // RootSwapHalf slot 1 still names the old version.
                PersistPhase::RootSwapHalf => {
                    assert_eq!(got, old, "phase {phase:?}, seed {seed}: slot 1 not yet moved");
                }
                PersistPhase::RootSwap => {
                    assert_eq!(got, new, "phase {phase:?}, seed {seed}: expected new version");
                }
            }
        }
    }
}

#[test]
fn interrupted_persist_can_be_retried() {
    // Crash mid-persist, recover the old version, redo the work, persist
    // again: the second persist must succeed and be durable.
    let (mut t, old) = build_and_persist();
    mutate(&mut t);
    t.persist_with_failpoint(Some(PersistPhase::Flush));
    let cfg = t.cfg;
    let PmOctree { store, .. } = t;
    let mut arena = store.arena;
    arena.crash(CrashMode::LoseDirty);
    let mut r = PmOctree::restore(arena, cfg).unwrap();
    assert_eq!(r.leaves_sorted(), old);
    // Redo and complete.
    let new = mutate(&mut r);
    r.persist();
    let PmOctree { store, .. } = r;
    let mut arena = store.arena;
    arena.crash(CrashMode::LoseDirty);
    let mut r2 = PmOctree::restore(arena, cfg).unwrap();
    let mut want = new;
    want.sort_by_key(|a| a.0);
    assert_eq!(r2.leaves_sorted(), want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mutation batches + a crash at a random persist phase with a
    /// random commit pattern: recovery always produces exactly the old or
    /// exactly the new version.
    #[test]
    fn persist_is_all_or_nothing(
        ops in prop::collection::vec((prop::collection::vec(0usize..8, 0..3), -5.0f64..5.0), 1..12),
        phase_i in 0usize..4,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let phase = [
            PersistPhase::Merge,
            PersistPhase::Flush,
            PersistPhase::RootSwapHalf,
            PersistPhase::RootSwap,
        ][phase_i];
        let (mut t, old) = build_and_persist();
        for (path, v) in &ops {
            let mut k = OctKey::root();
            for &i in path {
                k = k.child(i);
            }
            if t.is_leaf(k) == Some(true) {
                let _ = t.refine(k);
            }
            let _ = t.set_data(k, CellData { phi: *v, ..Default::default() });
        }
        let mut new = t.leaves_sorted();
        new.sort_by_key(|a| a.0);
        let cfg = t.cfg;
        t.persist_with_failpoint(Some(phase));
        let PmOctree { store, .. } = t;
        let mut arena = store.arena;
        arena.crash(CrashMode::CommitRandom { p, seed });
        let mut r = PmOctree::restore(arena, cfg).unwrap();
        let got = r.leaves_sorted();
        prop_assert!(
            got == old || got == new,
            "recovered a mixed state at {phase:?} (p={p}, seed={seed})"
        );
        // Before the recovery-root publication the result must be old.
        if matches!(phase, PersistPhase::Merge | PersistPhase::Flush | PersistPhase::RootSwapHalf) {
            prop_assert_eq!(got, old);
        } else {
            prop_assert_eq!(got, new);
        }
    }
}
