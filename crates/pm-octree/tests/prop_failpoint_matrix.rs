//! The failpoint matrix: every persist-protocol phase × every crash mode
//! (drop dirty lines, commit a random subset, tear each line at a random
//! word boundary), driven by random mutation batches.
//!
//! Two things must hold for every cell of the matrix:
//!
//! 1. recovery yields *exactly* the version the [`PersistPhase`] contract
//!    promises — the old tree before the recovery-root publication, the
//!    new tree after — never a mixture;
//! 2. the recovered handle passes the full invariant checker
//!    ([`pm_octree::check_invariants`]): closed structure, index == walk,
//!    free list disjoint from the live set, zero GC orphans.

use pm_octree::{check_invariants, CellData, PersistPhase, PmConfig, PmOctree};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{CrashMode, DeviceModel, NvbmArena};
use proptest::prelude::*;

const PHASES: [PersistPhase; 4] =
    [PersistPhase::Merge, PersistPhase::Flush, PersistPhase::RootSwapHalf, PersistPhase::RootSwap];

fn modes(seed: u64, p: f64) -> [CrashMode; 3] {
    [CrashMode::LoseDirty, CrashMode::CommitRandom { p, seed }, CrashMode::TornWrite { seed }]
}

fn build() -> (PmOctree, Vec<(OctKey, CellData)>) {
    let arena = NvbmArena::new(32 << 20, DeviceModel::default());
    let cfg = PmConfig { c0_capacity_octants: 64, dynamic_transform: false, ..PmConfig::default() };
    let mut t = PmOctree::create(arena, cfg);
    t.refine(OctKey::root()).unwrap();
    t.refine(OctKey::root().child(3)).unwrap();
    t.persist();
    let old = t.leaves_sorted();
    (t, old)
}

fn key_from_path(path: &[usize]) -> OctKey {
    let mut k = OctKey::root();
    for &i in path {
        k = k.child(i);
    }
    k
}

/// Deterministic full-matrix enumeration: a fixed workload through all
/// 4 phases × 3 modes × a few seeds.
#[test]
fn full_matrix_recovers_contract_version() {
    for phase in PHASES {
        for seed in 0..4u64 {
            for mode in modes(seed, 0.5) {
                let (mut t, old) = build();
                t.refine(OctKey::root().child(5)).unwrap();
                t.coarsen(OctKey::root().child(3)).unwrap();
                t.set_data(OctKey::root().child(1), CellData { phi: 7.0, ..Default::default() })
                    .unwrap();
                let mut new = t.leaves_sorted();
                new.sort_by_key(|a| a.0);
                let cfg = t.cfg;
                t.persist_with_failpoint(Some(phase));
                let PmOctree { store, .. } = t;
                let mut arena = store.arena;
                arena.crash(mode);
                let mut r = PmOctree::restore(arena, cfg)
                    .unwrap_or_else(|e| panic!("{phase:?}/{mode:?}/{seed}: {e}"));
                let rep = check_invariants(&mut r)
                    .unwrap_or_else(|e| panic!("{phase:?}/{mode:?}/{seed}: invariants: {e}"));
                assert_eq!(rep.leaves, r.leaf_count());
                let got = r.leaves_sorted();
                match phase {
                    PersistPhase::Merge | PersistPhase::Flush | PersistPhase::RootSwapHalf => {
                        assert_eq!(got, old, "{phase:?}/{mode:?}/{seed}: want old version");
                    }
                    PersistPhase::RootSwap => {
                        assert_eq!(got, new, "{phase:?}/{mode:?}/{seed}: want new version");
                    }
                }
            }
        }
    }
}

/// Span integrity under crash injection: the persist instrumentation
/// uses RAII guards, so a persist that stops mid-protocol (the failpoint
/// early-returns from inside a `persist::*` phase) must still leave a
/// balanced, tree-shaped journal — and a restored tree with a fresh
/// tracer must journal a complete persist again.
#[test]
fn spans_stay_balanced_when_persist_crashes_mid_protocol() {
    use pmoctree_nvbm::obsv;
    use pmoctree_nvbm::Tracer;
    for phase in PHASES {
        for mode in modes(9, 0.5) {
            let (mut t, _old) = build();
            t.store.arena.tracer = Tracer::enabled(0);
            t.refine(OctKey::root().child(5)).unwrap();
            t.set_data(OctKey::root().child(1), CellData { phi: 1.0, ..Default::default() })
                .unwrap();
            let cfg = t.cfg;
            t.persist_with_failpoint(Some(phase));
            let events = t.store.arena.tracer.events();
            obsv::chrome::validate_events(&events)
                .unwrap_or_else(|e| panic!("{phase:?}/{mode:?}: journal after crash: {e}"));
            let tree = obsv::attribution::build_tree(&events)
                .unwrap_or_else(|e| panic!("{phase:?}/{mode:?}: span tree: {e}"));
            assert!(!tree.is_empty(), "{phase:?}/{mode:?}: nothing journalled");
            // The truncated persist must still export as a valid trace.
            let json = obsv::chrome::trace_json(&[(0, events)]);
            assert!(json.contains("\"traceEvents\""));

            // Reboot: restore from the crashed media, attach a fresh
            // tracer, and persist for real — the new journal must hold a
            // complete persist span with its protocol children.
            let PmOctree { store, .. } = t;
            let mut arena = store.arena;
            arena.crash(mode);
            let mut r = PmOctree::restore(arena, cfg)
                .unwrap_or_else(|e| panic!("{phase:?}/{mode:?}: restore: {e}"));
            r.store.arena.tracer = Tracer::enabled(1);
            r.set_data(OctKey::root().child(2), CellData { phi: 2.0, ..Default::default() })
                .unwrap();
            r.persist();
            let replay = r.store.arena.tracer.events();
            obsv::chrome::validate_events(&replay)
                .unwrap_or_else(|e| panic!("{phase:?}/{mode:?}: journal after restore: {e}"));
            let totals = obsv::inclusive_totals(&replay)
                .unwrap_or_else(|e| panic!("{phase:?}/{mode:?}: totals: {e}"));
            for name in ["persist", "persist::merge", "persist::flush", "persist::root_swap"] {
                assert!(
                    totals.iter().any(|row| row.name == name && row.count > 0),
                    "{phase:?}/{mode:?}: no {name} span after recovery; got {totals:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random refine/coarsen/set_data batches, then a crash at a random
    /// phase under a random mode: the recovered tree matches the phase
    /// contract and passes every invariant.
    #[test]
    fn random_workload_through_the_matrix(
        ops in prop::collection::vec((prop::collection::vec(0usize..8, 0..3), -5.0f64..5.0, any::<bool>()), 1..12),
        phase_i in 0usize..4,
        mode_i in 0usize..3,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let phase = PHASES[phase_i];
        let mode = modes(seed, p)[mode_i];
        let (mut t, old) = build();
        for (path, v, coarsen) in &ops {
            let k = key_from_path(path);
            if *coarsen {
                let _ = t.coarsen(k);
            } else if t.is_leaf(k) == Some(true) {
                let _ = t.refine(k);
            }
            let _ = t.set_data(k, CellData { phi: *v, ..Default::default() });
        }
        let mut new = t.leaves_sorted();
        new.sort_by_key(|a| a.0);
        let cfg = t.cfg;
        t.persist_with_failpoint(Some(phase));
        let PmOctree { store, .. } = t;
        let mut arena = store.arena;
        arena.crash(mode);
        let restored = PmOctree::restore(arena, cfg);
        prop_assert!(restored.is_ok(), "restore at {:?}/{:?}: {:?}", phase, mode, restored.err());
        let mut r = restored.unwrap();
        let inv = check_invariants(&mut r);
        prop_assert!(inv.is_ok(), "invariants at {:?}/{:?}: {:?}", phase, mode, inv.err());
        let got = r.leaves_sorted();
        if matches!(phase, PersistPhase::RootSwap) {
            prop_assert_eq!(got, new, "want new version at {:?}/{:?}", phase, mode);
        } else {
            prop_assert_eq!(got, old, "want old version at {:?}/{:?}", phase, mode);
        }
    }
}
