//! On-media octant layout and the persistent store.
//!
//! Each NVBM-resident octant is a fixed 128-byte record — exactly two
//! cachelines, split **hot/cold** (layout v2): the first line carries
//! *everything a root-to-leaf descent needs* — compact child links, the
//! locational key, flags, the child-presence mask, and the epoch — while
//! the second line holds the parent back-pointer and the solver payload.
//! A tree walk therefore charges exactly one NVBM line per hop, including
//! the key read at the root and the leaf test at the bottom (one mask
//! byte, not eight pointer probes); data sweeps touch only the cold line.
//!
//! ```text
//! line 0 (hot / navigation):
//!      0..48   children[8]  8 × 6-byte compact links (see encoding)
//!     48..56   key code     u64 Morton code
//!     56       key level    u8
//!     57       flags        u8  (bit0 DELETED, rest reserved)
//!     58       child mask   u8  bit i set ⟺ children[i] non-null
//!     59       (pad)
//!     60..64   epoch        u32 creation epoch (version ownership)
//! line 1 (cold / identity + payload):
//!     64..72   parent       u64 NVBM offset (0 = none/root)
//!     72..104  payload      4 × f64 (CellData)
//!    104..128  (pad)
//! ```
//!
//! **Pointer encoding** (the paper's "special pointers" linking persistent
//! and volatile octants): a 6-byte child link holds 0 (null), an NVBM
//! offset *divided by 64* (octant records are cacheline-aligned, so the
//! low 6 bits are always zero and 48 bits address 2^54 bytes of media),
//! or — with bit 47 set — a *volatile handle*: the id of a DRAM-resident
//! C0 subtree. Volatile handles are meaningless after a crash; that is
//! safe because recovery never follows `V_i` pointers, it returns to the
//! fully-NVBM `V_{i-1}`.

use crate::api::PmError;
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{AllocLease, ArenaSnapshot, NvbmArena, POffset, PmemAllocator, ShardWriter};

/// Size of one on-media octant record.
pub const OCTANT_SIZE: usize = 128;

/// Fanout of the 3D octree.
pub const FANOUT: usize = 8;

const OFF_LINKS: u64 = 0;
const LINK_SIZE: u64 = 6;
const OFF_CODE: u64 = 48;
const OFF_LEVEL: u64 = 56;
const OFF_FLAGS: u64 = 57;
const OFF_MASK: u64 = 58;
const OFF_EPOCH: u64 = 60;
const OFF_PARENT: u64 = 64;
const OFF_DATA: u64 = 72;

const FLAG_DELETED: u8 = 1;

/// Bit 47 of a compact child link marks a volatile (DRAM) handle.
const VOLATILE_BIT: u64 = 1 << 47;

/// A decoded child pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildPtr {
    /// Empty slot.
    Null,
    /// Persistent octant in NVBM.
    Nvbm(POffset),
    /// DRAM-resident C0 subtree with this volatile id.
    Volatile(u32),
}

impl ChildPtr {
    /// Encode to the compact 48-bit link value (fits the 6-byte slot).
    /// NVBM offsets are stored divided by 64: records are
    /// cacheline-aligned and live above the arena header, so the
    /// quotient is non-zero and never collides with null or bit 47.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            ChildPtr::Null => 0,
            ChildPtr::Nvbm(p) => {
                // Release-mode guard: an unaligned or null offset here
                // would silently corrupt the link; the crash sweep runs
                // in `--release`, so this must not be a debug_assert.
                assert!(
                    !p.is_null() && p.0 % 64 == 0 && p.0 >> 6 < VOLATILE_BIT,
                    "unencodable NVBM child link: {:#x}",
                    p.0
                );
                p.0 >> 6
            }
            ChildPtr::Volatile(id) => VOLATILE_BIT | id as u64,
        }
    }

    /// Decode from the compact 48-bit link value, rejecting malformed
    /// encodings instead of silently truncating them: a link wider than
    /// 6 bytes, or a volatile handle carrying garbage in bits 32..47, is
    /// a corrupted record, not a pointer. This is the checked entry point
    /// recovery scans use ([`OctAccess::nav_line_checked`]); the hot path
    /// goes through [`ChildPtr::decode`], which asserts instead.
    #[inline]
    pub fn try_decode(raw: u64) -> Result<Self, PmError> {
        if raw >= 1 << 48 {
            return Err(PmError::Corrupt(format!("child link {raw:#x} exceeds 6 bytes")));
        }
        if raw == 0 {
            Ok(ChildPtr::Null)
        } else if raw & VOLATILE_BIT != 0 {
            if raw & !(VOLATILE_BIT | 0xffff_ffff) != 0 {
                return Err(PmError::Corrupt(format!(
                    "volatile child link {raw:#x} has non-zero reserved bits"
                )));
            }
            Ok(ChildPtr::Volatile((raw & 0xffff_ffff) as u32))
        } else {
            Ok(ChildPtr::Nvbm(POffset(raw << 6)))
        }
    }

    /// Decode from the compact 48-bit link value. Panics on a malformed
    /// encoding — in release builds too (see [`ChildPtr::try_decode`]):
    /// following a corrupted link silently is how a bad traversal turns
    /// into bad committed state.
    #[inline]
    pub fn decode(raw: u64) -> Self {
        match Self::try_decode(raw) {
            Ok(c) => c,
            Err(e) => panic!("corrupt child link: {e}"),
        }
    }

    /// Is this an empty slot?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, ChildPtr::Null)
    }
}

/// Write a 48-bit link value into a 6-byte slot of `buf`.
#[inline]
fn put_link(buf: &mut [u8], i: usize, raw: u64) {
    debug_assert!(raw < 1 << 48);
    buf[i * 6..i * 6 + 6].copy_from_slice(&raw.to_le_bytes()[..6]);
}

/// Read the 48-bit link value from a 6-byte slot of `buf`.
#[inline]
fn get_link(buf: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b[..6].copy_from_slice(&buf[i * 6..i * 6 + 6]);
    u64::from_le_bytes(b)
}

/// Per-cell simulation payload: the fields a Gerris-style finite-volume
/// multiphase solver keeps per cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellData {
    /// Signed distance to the liquid interface (level-set value).
    pub phi: f64,
    /// Pressure (smoothed by solver sweeps).
    pub pressure: f64,
    /// Volume-of-fluid fraction in `[0, 1]`.
    pub vof: f64,
    /// Accumulated work estimate (used as a partitioning weight).
    pub work: f64,
}

impl CellData {
    fn to_bytes(self) -> [u8; 32] {
        let mut b = [0u8; 32];
        b[0..8].copy_from_slice(&self.phi.to_le_bytes());
        b[8..16].copy_from_slice(&self.pressure.to_le_bytes());
        b[16..24].copy_from_slice(&self.vof.to_le_bytes());
        b[24..32].copy_from_slice(&self.work.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8; 32]) -> Self {
        let f = |r: std::ops::Range<usize>| f64::from_le_bytes(b[r].try_into().expect("8 bytes"));
        CellData { phi: f(0..8), pressure: f(8..16), vof: f(16..24), work: f(24..32) }
    }
}

/// A decoded navigation line (octant line 0): every hot field a descent
/// or recovery scan consults, delivered by one cacheline read
/// ([`PmStore::nav_line`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NavLine {
    /// Child pointers in Morton order.
    pub children: [ChildPtr; FANOUT],
    /// Raw Morton code (unvalidated — see [`PmStore::raw_key`]).
    pub code: u64,
    /// Raw refinement level (unvalidated).
    pub level: u8,
    /// Deleted flag.
    pub deleted: bool,
    /// Child-presence mask: bit `i` set iff `children[i]` is non-null.
    pub mask: u8,
    /// Creation epoch.
    pub epoch: u32,
}

/// A fully decoded octant (for tests and bulk operations; hot paths use
/// the field-level accessors on [`PmStore`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Octant {
    /// Child pointers in Morton order.
    pub children: [ChildPtr; FANOUT],
    /// Parent NVBM offset (null for the root).
    pub parent: POffset,
    /// Locational code.
    pub key: OctKey,
    /// Deleted flag (§3.2 deferred deletion).
    pub deleted: bool,
    /// Creation epoch: octants with `epoch < current` are shared with
    /// `V_{i-1}` and must be copied before mutation.
    pub epoch: u32,
    /// Simulation payload.
    pub data: CellData,
}

impl Octant {
    /// A fresh leaf octant.
    pub fn leaf(key: OctKey, parent: POffset, epoch: u32, data: CellData) -> Self {
        Octant { children: [ChildPtr::Null; FANOUT], parent, key, deleted: false, epoch, data }
    }

    /// Is this octant a leaf (no children at all)?
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(ChildPtr::is_null)
    }
}

/// The persistent store: an NVBM arena + allocator + the volatile registry
/// of allocated octants (rebuilt from the GC mark set after a crash).
pub struct PmStore {
    /// The emulated NVBM device.
    pub arena: NvbmArena,
    /// Volatile free-space management.
    pub alloc: PmemAllocator,
    /// Every currently-allocated octant offset (sweep set for GC).
    pub registry: Vec<POffset>,
}

impl PmStore {
    /// A store over a fresh arena.
    pub fn new(arena: NvbmArena) -> Self {
        let cap = arena.capacity();
        PmStore { arena, alloc: PmemAllocator::new(cap), registry: Vec::new() }
    }

    /// Free an octant's space (GC sweep). The registry entry must be
    /// removed separately (GC rebuilds the registry wholesale).
    pub fn free_octant(&mut self, p: POffset) {
        self.alloc.free(p, OCTANT_SIZE);
    }
}

impl OctAccess for PmStore {
    fn io_read(&mut self, offset: u64, buf: &mut [u8]) {
        self.arena.read(offset, buf);
    }

    fn io_write(&mut self, offset: u64, data: &[u8]) {
        self.arena.write(offset, data);
    }

    fn alloc_block(&mut self) -> Result<POffset, PmError> {
        self.alloc.set_limit(self.arena.live_rt_floor());
        let p = self
            .alloc
            .alloc(OCTANT_SIZE)
            .ok_or_else(|| PmError::Full("NVBM arena full allocating an octant".into()))?;
        self.arena.publish_bump(self.alloc.bump());
        self.registry.push(p);
        Ok(p)
    }
}

/// Octant-granular access over any device view that can read bytes,
/// write bytes, and allocate 128-byte records.
///
/// [`PmStore`] implements it over the live arena (the single-writer
/// path); [`ShardStore`] implements it over a snapshot plus a private
/// overlay and allocator lease (one write domain of a domain-parallel
/// sweep). The COW mutation code in `c1` is generic over this trait, so
/// the exact same path-copy discipline runs serially or sharded.
pub trait OctAccess {
    /// Read `buf.len()` bytes at `offset` from this view of the device.
    fn io_read(&mut self, offset: u64, buf: &mut [u8]);

    /// Write `data` at `offset` into this view of the device.
    fn io_write(&mut self, offset: u64, data: &[u8]);

    /// Allocate one cacheline-aligned [`OCTANT_SIZE`] record.
    /// [`PmError::Full`] when the device (or this domain's lease) is
    /// exhausted.
    fn alloc_block(&mut self) -> Result<POffset, PmError>;

    /// Allocate and write a new octant; returns its offset, or
    /// [`PmError::Full`] with nothing mutated when space is exhausted.
    fn alloc_octant(&mut self, o: &Octant) -> Result<POffset, PmError> {
        let p = self.alloc_block()?;
        self.write_octant(p, o);
        Ok(p)
    }

    /// Write a complete octant record.
    fn write_octant(&mut self, p: POffset, o: &Octant) {
        let mut buf = [0u8; OCTANT_SIZE];
        let mut mask = 0u8;
        for (i, c) in o.children.iter().enumerate() {
            put_link(&mut buf, i, c.encode());
            if !c.is_null() {
                mask |= 1 << i;
            }
        }
        buf[OFF_CODE as usize..OFF_CODE as usize + 8].copy_from_slice(&o.key.raw().to_le_bytes());
        buf[OFF_LEVEL as usize] = o.key.level();
        buf[OFF_FLAGS as usize] = if o.deleted { FLAG_DELETED } else { 0 };
        buf[OFF_MASK as usize] = mask;
        buf[OFF_EPOCH as usize..OFF_EPOCH as usize + 4].copy_from_slice(&o.epoch.to_le_bytes());
        buf[OFF_PARENT as usize..OFF_PARENT as usize + 8]
            .copy_from_slice(&o.parent.0.to_le_bytes());
        buf[OFF_DATA as usize..OFF_DATA as usize + 32].copy_from_slice(&o.data.to_bytes());
        self.io_write(p.0, &buf);
    }

    /// Read a complete octant record.
    fn read_octant(&mut self, p: POffset) -> Octant {
        let mut buf = [0u8; OCTANT_SIZE];
        self.io_read(p.0, &mut buf);
        let mut children = [ChildPtr::Null; FANOUT];
        for (i, c) in children.iter_mut().enumerate() {
            *c = ChildPtr::decode(get_link(&buf, i));
        }
        let parent = POffset(u64::from_le_bytes(
            buf[OFF_PARENT as usize..OFF_PARENT as usize + 8].try_into().expect("8"),
        ));
        let code = u64::from_le_bytes(
            buf[OFF_CODE as usize..OFF_CODE as usize + 8].try_into().expect("8"),
        );
        let level = buf[OFF_LEVEL as usize];
        let flags = buf[OFF_FLAGS as usize];
        let epoch = u32::from_le_bytes(
            buf[OFF_EPOCH as usize..OFF_EPOCH as usize + 4].try_into().expect("4"),
        );
        let data = CellData::from_bytes(
            buf[OFF_DATA as usize..OFF_DATA as usize + 32].try_into().expect("32"),
        );
        Octant {
            children,
            parent,
            key: OctKey::from_raw(code, level),
            deleted: flags & FLAG_DELETED != 0,
            epoch,
            data,
        }
    }

    // ---- field-level accessors (single-cacheline traffic) ----------------

    /// Read one child pointer (touches only the navigation line).
    #[inline]
    fn child(&mut self, p: POffset, i: usize) -> ChildPtr {
        debug_assert!(i < FANOUT);
        let mut b = [0u8; 6];
        self.io_read(p.0 + OFF_LINKS + LINK_SIZE * i as u64, &mut b);
        ChildPtr::decode(get_link(&b, 0))
    }

    /// Read all 8 child pointers with a single cacheline access — the
    /// compact links span 48 bytes of the navigation line, so traversals
    /// pay one read per visited octant, not eight.
    #[inline]
    fn children(&mut self, p: POffset) -> [ChildPtr; FANOUT] {
        let mut buf = [0u8; 48];
        self.io_read(p.0 + OFF_LINKS, &mut buf);
        let mut out = [ChildPtr::Null; FANOUT];
        for (i, c) in out.iter_mut().enumerate() {
            *c = ChildPtr::decode(get_link(&buf, i));
        }
        out
    }

    /// Write one child pointer, keeping the presence mask coherent (one
    /// mask read-modify-write; all traffic stays on the navigation line).
    #[inline]
    fn set_child(&mut self, p: POffset, i: usize, c: ChildPtr) {
        debug_assert!(i < FANOUT);
        let raw = c.encode();
        self.io_write(p.0 + OFF_LINKS + LINK_SIZE * i as u64, &raw.to_le_bytes()[..6]);
        let mut m = [0u8; 1];
        self.io_read(p.0 + OFF_MASK, &mut m);
        let nm = if c.is_null() { m[0] & !(1 << i) } else { m[0] | (1 << i) };
        self.io_write(p.0 + OFF_MASK, &[nm]);
    }

    /// Replace all 8 child pointers and the presence mask in two writes
    /// to the navigation line — the bulk form refine/coarsen use instead
    /// of eight `set_child` read-modify-writes.
    #[inline]
    fn set_children(&mut self, p: POffset, cs: &[ChildPtr; FANOUT]) {
        let mut buf = [0u8; 48];
        let mut mask = 0u8;
        for (i, c) in cs.iter().enumerate() {
            put_link(&mut buf, i, c.encode());
            if !c.is_null() {
                mask |= 1 << i;
            }
        }
        self.io_write(p.0 + OFF_LINKS, &buf);
        self.io_write(p.0 + OFF_MASK, &[mask]);
    }

    /// Read the child-presence mask: bit `i` set iff `children[i]` is
    /// non-null. One single-byte read on the navigation line — the leaf
    /// test descents use instead of probing eight slots.
    #[inline]
    fn child_mask(&mut self, p: POffset) -> u8 {
        let mut m = [0u8; 1];
        self.io_read(p.0 + OFF_MASK, &mut m);
        m[0]
    }

    /// Is the octant at `p` a leaf (no children)? Charges one line.
    #[inline]
    fn is_leaf_octant(&mut self, p: POffset) -> bool {
        self.child_mask(p) == 0
    }

    /// Read the parent offset.
    #[inline]
    fn parent(&mut self, p: POffset) -> POffset {
        let mut b = [0u8; 8];
        self.io_read(p.0 + OFF_PARENT, &mut b);
        POffset(u64::from_le_bytes(b))
    }

    /// Write the parent offset.
    #[inline]
    fn set_parent(&mut self, p: POffset, parent: POffset) {
        self.io_write(p.0 + OFF_PARENT, &parent.0.to_le_bytes());
    }

    /// Read the locational code.
    #[inline]
    fn key(&mut self, p: POffset) -> OctKey {
        let (code, level) = self.raw_key(p);
        OctKey::from_raw(code, level)
    }

    /// Read the raw `(code, level)` pair without constructing an
    /// [`OctKey`] — `OctKey::from_raw` panics on malformed values, so
    /// recovery validation decodes keys only after checking them. Code
    /// and level are adjacent on the navigation line, so this is one
    /// 9-byte, single-line read.
    #[inline]
    fn raw_key(&mut self, p: POffset) -> (u64, u8) {
        let mut b = [0u8; 9];
        self.io_read(p.0 + OFF_CODE, &mut b);
        (u64::from_le_bytes(b[..8].try_into().expect("8 bytes")), b[8])
    }

    /// Decode the whole navigation line in one 64-byte read: children,
    /// raw key, flags, presence mask, and epoch. Recovery scans and
    /// traversals that need several hot fields of the same octant use
    /// this to charge exactly one line instead of one per field.
    #[inline]
    fn nav_line(&mut self, p: POffset) -> NavLine {
        let mut buf = [0u8; 64];
        self.io_read(p.0, &mut buf);
        let mut children = [ChildPtr::Null; FANOUT];
        for (i, c) in children.iter_mut().enumerate() {
            *c = ChildPtr::decode(get_link(&buf, i));
        }
        decode_nav_tail(&buf, children)
    }

    /// [`OctAccess::nav_line`] with checked link decoding: a corrupted
    /// child link surfaces as [`PmError::Corrupt`] instead of a panic.
    /// Recovery validation and `verify` scans use this — they run over
    /// media that a crash (or a poison test) may have mangled, and must
    /// report, not abort.
    fn nav_line_checked(&mut self, p: POffset) -> Result<NavLine, PmError> {
        let mut buf = [0u8; 64];
        self.io_read(p.0, &mut buf);
        let mut children = [ChildPtr::Null; FANOUT];
        for (i, c) in children.iter_mut().enumerate() {
            *c = ChildPtr::try_decode(get_link(&buf, i))
                .map_err(|e| PmError::Corrupt(format!("octant {:#x} child {i}: {e}", p.0)))?;
        }
        Ok(decode_nav_tail(&buf, children))
    }

    /// Read the deleted flag.
    #[inline]
    fn is_deleted(&mut self, p: POffset) -> bool {
        let mut f = [0u8; 1];
        self.io_read(p.0 + OFF_FLAGS, &mut f);
        f[0] & FLAG_DELETED != 0
    }

    /// Set or clear the deleted flag.
    #[inline]
    fn set_deleted(&mut self, p: POffset, deleted: bool) {
        let mut f = [0u8; 1];
        self.io_read(p.0 + OFF_FLAGS, &mut f);
        let nf = if deleted { f[0] | FLAG_DELETED } else { f[0] & !FLAG_DELETED };
        self.io_write(p.0 + OFF_FLAGS, &[nf]);
    }

    /// Read the creation epoch.
    #[inline]
    fn epoch_of(&mut self, p: POffset) -> u32 {
        let mut b = [0u8; 4];
        self.io_read(p.0 + OFF_EPOCH, &mut b);
        u32::from_le_bytes(b)
    }

    /// Read the payload.
    #[inline]
    fn data(&mut self, p: POffset) -> CellData {
        let mut b = [0u8; 32];
        self.io_read(p.0 + OFF_DATA, &mut b);
        CellData::from_bytes(&b)
    }

    /// Write the payload.
    #[inline]
    fn set_data(&mut self, p: POffset, d: &CellData) {
        self.io_write(p.0 + OFF_DATA, &d.to_bytes());
    }
}

/// Decode the non-link fields of a navigation-line buffer.
fn decode_nav_tail(buf: &[u8; 64], children: [ChildPtr; FANOUT]) -> NavLine {
    NavLine {
        children,
        code: u64::from_le_bytes(
            buf[OFF_CODE as usize..OFF_CODE as usize + 8].try_into().expect("8"),
        ),
        level: buf[OFF_LEVEL as usize],
        deleted: buf[OFF_FLAGS as usize] & FLAG_DELETED != 0,
        mask: buf[OFF_MASK as usize],
        epoch: u32::from_le_bytes(
            buf[OFF_EPOCH as usize..OFF_EPOCH as usize + 4].try_into().expect("4"),
        ),
    }
}

/// One write domain's octant store during a domain-parallel sweep: reads
/// fall through a private overlay to the shared fork-point
/// [`ArenaSnapshot`]; writes buffer into the overlay; allocations walk a
/// pre-carved [`AllocLease`], so concurrent domains never contend for the
/// allocator or interleave lines. Everything it produces — the dirty
/// overlay, the consumed lease prefix, newly allocated offsets — is
/// handed back at the serial join point via [`ShardStore::into_parts`].
pub struct ShardStore<'a> {
    w: ShardWriter<'a>,
    lease: AllocLease,
    registry: Vec<POffset>,
}

impl<'a> ShardStore<'a> {
    /// A store for one domain over the sweep's fork-point snapshot and
    /// the domain's allocator lease.
    pub fn new(snap: &'a ArenaSnapshot<'a>, lease: AllocLease) -> Self {
        ShardStore { w: ShardWriter::new(snap), lease, registry: Vec::new() }
    }

    /// Finish the domain: the buffered device delta (for
    /// [`NvbmArena::absorb_shard`]), the lease with its cursor advanced
    /// past the consumed prefix (release the tail back to the
    /// allocator), and the offsets allocated by this domain (append to
    /// the live registry in domain order).
    pub fn into_parts(self) -> (pmoctree_nvbm::ShardDelta, AllocLease, Vec<POffset>) {
        (self.w.into_delta(), self.lease, self.registry)
    }
}

impl OctAccess for ShardStore<'_> {
    fn io_read(&mut self, offset: u64, buf: &mut [u8]) {
        self.w.read(offset, buf);
    }

    fn io_write(&mut self, offset: u64, data: &[u8]) {
        self.w.write(offset, data);
    }

    fn alloc_block(&mut self) -> Result<POffset, PmError> {
        let p = self
            .lease
            .alloc()
            .ok_or_else(|| PmError::Full("write-domain lease exhausted".into()))?;
        self.registry.push(p);
        Ok(p)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pmoctree_nvbm::DeviceModel;

    fn store() -> PmStore {
        PmStore::new(NvbmArena::new(1 << 20, DeviceModel::default()))
    }

    #[test]
    fn octant_roundtrip() {
        let mut s = store();
        let key = OctKey::root().child(3).child(5);
        let mut o = Octant::leaf(
            key,
            POffset(4242),
            7,
            CellData { phi: -0.5, pressure: 101.3, vof: 0.25, work: 2.0 },
        );
        o.children[2] = ChildPtr::Nvbm(POffset(0x1000));
        o.children[5] = ChildPtr::Volatile(17);
        o.deleted = true;
        let p = s.alloc_octant(&o).unwrap();
        let r = s.read_octant(p);
        assert_eq!(r, o);
    }

    #[test]
    fn field_accessors_match_bulk() {
        let mut s = store();
        let key = OctKey::root().child(1);
        let o = Octant::leaf(key, POffset::NULL, 3, CellData { phi: 1.0, ..Default::default() });
        let p = s.alloc_octant(&o).unwrap();
        assert_eq!(s.key(p), key);
        assert_eq!(s.epoch_of(p), 3);
        assert!(!s.is_deleted(p));
        assert_eq!(s.child(p, 0), ChildPtr::Null);
        s.set_child(p, 0, ChildPtr::Nvbm(POffset(512)));
        assert_eq!(s.child(p, 0), ChildPtr::Nvbm(POffset(512)));
        s.set_deleted(p, true);
        assert!(s.is_deleted(p));
        s.set_data(p, &CellData { vof: 0.75, ..Default::default() });
        assert_eq!(s.data(p).vof, 0.75);
        assert_eq!(s.read_octant(p).children[0], ChildPtr::Nvbm(POffset(512)));
    }

    #[test]
    fn child_read_touches_one_line() {
        let mut s = store();
        let o = Octant::leaf(OctKey::root(), POffset::NULL, 0, CellData::default());
        let p = s.alloc_octant(&o).unwrap();
        let before = s.arena.stats.nvbm.read_lines;
        let _ = s.child(p, 3);
        assert_eq!(s.arena.stats.nvbm.read_lines - before, 1);
    }

    #[test]
    fn octant_is_two_lines() {
        let mut s = store();
        let o = Octant::leaf(OctKey::root(), POffset::NULL, 0, CellData::default());
        let before = s.arena.stats.nvbm.write_lines;
        let p = s.alloc_octant(&o).unwrap();
        assert_eq!(s.arena.stats.nvbm.write_lines - before, 2);
        assert_eq!(p.0 % 64, 0, "octants are cacheline aligned");
    }

    #[test]
    fn child_ptr_encoding() {
        assert_eq!(ChildPtr::decode(0), ChildPtr::Null);
        // NVBM offsets are stored divided by 64 (records are aligned).
        let n = ChildPtr::Nvbm(POffset(0x2000));
        assert_eq!(n.encode(), 0x2000 >> 6);
        assert_eq!(ChildPtr::decode(n.encode()), n);
        let v = ChildPtr::Volatile(99);
        assert_eq!(ChildPtr::decode(v.encode()), v);
        // Every encoding fits the 6-byte link slot.
        for c in [n, v, ChildPtr::Null, ChildPtr::Nvbm(POffset(1u64 << 52))] {
            assert!(c.encode() < 1 << 48, "{c:?} does not fit 48 bits");
            assert_eq!(ChildPtr::decode(c.encode()), c);
        }
    }

    #[test]
    fn child_mask_tracks_links() {
        let mut s = store();
        let o = Octant::leaf(OctKey::root(), POffset::NULL, 0, CellData::default());
        let p = s.alloc_octant(&o).unwrap();
        assert_eq!(s.child_mask(p), 0);
        assert!(s.is_leaf_octant(p));
        s.set_child(p, 3, ChildPtr::Nvbm(POffset(0x1000)));
        s.set_child(p, 6, ChildPtr::Volatile(2));
        assert_eq!(s.child_mask(p), (1 << 3) | (1 << 6));
        assert!(!s.is_leaf_octant(p));
        s.set_child(p, 3, ChildPtr::Null);
        assert_eq!(s.child_mask(p), 1 << 6);
        let mut cs = [ChildPtr::Null; FANOUT];
        cs[0] = ChildPtr::Nvbm(POffset(0x2000));
        s.set_children(p, &cs);
        assert_eq!(s.child_mask(p), 1);
        assert_eq!(s.children(p), cs);
        // write_octant recomputes the mask from the children array.
        let r = s.read_octant(p);
        s.write_octant(p, &r);
        assert_eq!(s.child_mask(p), 1);
    }

    #[test]
    fn nav_line_single_read_matches_fields() {
        let mut s = store();
        let key = OctKey::root().child(4).child(2);
        let mut o = Octant::leaf(key, POffset(4096), 9, CellData::default());
        o.children[5] = ChildPtr::Nvbm(POffset(0x1540));
        let p = s.alloc_octant(&o).unwrap();
        let before = s.arena.stats.nvbm.read_lines;
        let nav = s.nav_line(p);
        assert_eq!(s.arena.stats.nvbm.read_lines - before, 1, "nav_line is one line");
        assert_eq!(nav.children, o.children);
        assert_eq!((nav.code, nav.level), (key.raw(), key.level()));
        assert_eq!(nav.mask, 1 << 5);
        assert!(!nav.deleted);
        assert_eq!(nav.epoch, 9);
    }

    #[test]
    fn try_decode_rejects_corrupt_links() {
        assert!(ChildPtr::try_decode(1 << 48).is_err(), "wider than 6 bytes");
        // A volatile handle with garbage in the reserved bits 32..47 used
        // to be silently truncated to a (wrong) id.
        assert!(ChildPtr::try_decode(VOLATILE_BIT | (1 << 40) | 7).is_err());
        assert_eq!(ChildPtr::try_decode(VOLATILE_BIT | 7).unwrap(), ChildPtr::Volatile(7));
        assert_eq!(ChildPtr::try_decode(0).unwrap(), ChildPtr::Null);
        assert_eq!(ChildPtr::try_decode(0x2000 >> 6).unwrap(), ChildPtr::Nvbm(POffset(0x2000)));
    }

    #[test]
    #[should_panic(expected = "corrupt child link")]
    fn decode_checks_links_in_release_builds_too() {
        let _ = ChildPtr::decode(VOLATILE_BIT | (1 << 40));
    }

    #[test]
    fn nav_line_checked_reports_corruption() {
        let mut s = store();
        let o = Octant::leaf(OctKey::root(), POffset::NULL, 0, CellData::default());
        let p = s.alloc_octant(&o).unwrap();
        assert!(s.nav_line_checked(p).is_ok());
        // Poison child slot 0 with a volatile link carrying reserved bits.
        let raw = VOLATILE_BIT | (1 << 40) | 3;
        s.arena.write(p.0, &raw.to_le_bytes()[..6]);
        match s.nav_line_checked(p) {
            Err(PmError::Corrupt(m)) => assert!(m.contains("child 0"), "{m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn shard_store_is_invisible_until_absorbed() {
        let mut s = store();
        let root = s
            .alloc_octant(&Octant::leaf(OctKey::root(), POffset::NULL, 0, CellData::default()))
            .unwrap();
        s.alloc.set_limit(s.arena.live_rt_floor());
        let lease = s.alloc.carve_lease(4, OCTANT_SIZE).unwrap();
        let (delta, lease, regs) = {
            let snap = s.arena.snapshot();
            let mut shard = ShardStore::new(&snap, lease);
            assert_eq!(shard.key(root), OctKey::root(), "shard reads the snapshot");
            let c = shard
                .alloc_octant(&Octant::leaf(OctKey::root().child(2), root, 1, CellData::default()))
                .unwrap();
            shard.set_child(root, 2, ChildPtr::Nvbm(c));
            shard.into_parts()
        };
        assert_eq!(regs, vec![POffset(lease.start())]);
        assert!(s.is_leaf_octant(root), "buffered shard writes are invisible");
        s.arena.absorb_shard("sweep::interleave", delta);
        s.alloc.release_lease(lease, lease.cursor());
        s.registry.extend(regs);
        assert_eq!(s.child(root, 2), ChildPtr::Nvbm(POffset(lease.start())));
        assert_eq!(s.key(POffset(lease.start())), OctKey::root().child(2));
    }

    #[test]
    fn shard_lease_exhaustion_is_full_not_panic() {
        let mut s = store();
        s.alloc.set_limit(s.arena.live_rt_floor());
        let lease = s.alloc.carve_lease(1, OCTANT_SIZE).unwrap();
        let snap = s.arena.snapshot();
        let mut shard = ShardStore::new(&snap, lease);
        let o = Octant::leaf(OctKey::root(), POffset::NULL, 0, CellData::default());
        assert!(shard.alloc_octant(&o).is_ok());
        match shard.alloc_octant(&o) {
            Err(PmError::Full(_)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn leaf_detection() {
        let o = Octant::leaf(OctKey::root(), POffset::NULL, 0, CellData::default());
        assert!(o.is_leaf());
        let mut o2 = o;
        o2.children[7] = ChildPtr::Nvbm(POffset(64));
        assert!(!o2.is_leaf());
    }
}
