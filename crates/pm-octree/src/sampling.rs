//! Feature-directed sampling (§3.3).
//!
//! History of octant accesses cannot predict the next step of an AMR
//! simulation (the mesh moves), so PM-octree instead *pre-executes* the
//! application's own feature functions — refinement predicates, solver
//! region-of-interest tests — on a random sample of octants in each
//! candidate subtree. The fraction of "interesting" samples estimates the
//! subtree's access frequency for the upcoming step.

use pmoctree_morton::OctKey;
use pmoctree_nvbm::POffset;
use rand::Rng;

use crate::c0::C0Tree;
use crate::octant::{CellData, ChildPtr, OctAccess, PmStore, FANOUT};

/// An application feature function: returns `true` when the octant's
/// domain is of interest (e.g. the refinement condition holds there).
pub type FeatureFn = Box<dyn Fn(&OctKey, &CellData) -> bool + Send>;

/// Equation 1: the level of candidate subtrees,
/// `L_sub = Depth − ⌊log_Fanout(Size_DRAM)⌋`, clamped to `[1, Depth]`
/// (level 0 — the root — is never a candidate: the root stays in NVBM).
pub fn l_sub(depth: u8, c0_capacity_octants: usize) -> u8 {
    let log_fanout = if c0_capacity_octants <= 1 {
        0
    } else {
        // ⌊log_8(capacity)⌋ = ⌊log2(capacity) / 3⌋
        (usize::BITS - 1 - c0_capacity_octants.leading_zeros()) / FANOUT.trailing_zeros()
    };
    (depth as i32 - log_fanout as i32).clamp(1, depth.max(1) as i32) as u8
}

/// Estimate the access frequency of the NVBM subtree rooted at `off` by
/// `n` random descents, evaluating every feature function on each sampled
/// octant. Returns the fraction of feature hits in `[0, 1]`.
///
/// Random descents (rather than uniform octant sampling) bias slightly
/// towards shallow octants; that is acceptable because feature functions
/// are spatial predicates — a hit anywhere on a root-to-leaf path means
/// the path's subdomain is interesting.
pub fn sample_nvbm_freq(
    store: &mut PmStore,
    off: POffset,
    n: usize,
    features: &[FeatureFn],
    rng: &mut impl Rng,
) -> f64 {
    if features.is_empty() || n == 0 {
        return 0.0;
    }
    // A single-octant subtree needs exactly one evaluation, not n walks.
    let root_children = store.children(off);
    let root_is_leaf = root_children.iter().all(|c| !matches!(c, ChildPtr::Nvbm(_)));
    let walks = if root_is_leaf { 1 } else { n };
    let mut hits = 0usize;
    let mut evals = 0usize;
    for _ in 0..walks {
        // Random walk from the subtree root to some leaf.
        let mut cur = off;
        loop {
            let children = if cur == off { root_children } else { store.children(cur) };
            let start = rng.gen_range(0..FANOUT);
            let mut next = None;
            for d in 0..FANOUT {
                let i = (start + d) % FANOUT;
                if let ChildPtr::Nvbm(c) = children[i] {
                    next = Some(c);
                    break;
                }
            }
            match next {
                Some(c) => cur = c,
                None => break,
            }
        }
        let key = store.key(cur);
        let data = store.data(cur);
        for f in features {
            evals += 1;
            if f(&key, &data) {
                hits += 1;
            }
        }
    }
    store.arena.tracer.counter_add("sampling.nvbm_evals", evals as u64);
    store.arena.tracer.counter_add("sampling.nvbm_hits", hits as u64);
    hits as f64 / evals.max(1) as f64
}

/// Estimate the access frequency of a DRAM (C0) subtree the same way.
pub fn sample_c0_freq(tree: &C0Tree, n: usize, features: &[FeatureFn], rng: &mut impl Rng) -> f64 {
    if features.is_empty() || n == 0 {
        return 0.0;
    }
    // C0 trees are small; collect leaves once and sample uniformly.
    let octants = tree.collect();
    let leaves: Vec<&(OctKey, CellData, bool)> = octants.iter().filter(|o| o.2).collect();
    if leaves.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut evals = 0usize;
    for _ in 0..n.min(leaves.len().max(1)) {
        let pick = leaves[rng.gen_range(0..leaves.len())];
        for f in features {
            evals += 1;
            if f(&pick.0, &pick.1) {
                hits += 1;
            }
        }
    }
    hits as f64 / evals.max(1) as f64
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::c1::merge_subtree;
    use pmoctree_nvbm::{DeviceModel, NvbmArena};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn l_sub_matches_equation() {
        // Depth 10 tree, DRAM holds 8^3 = 512 octants → L_sub = 10 - 3 = 7.
        assert_eq!(l_sub(10, 512), 7);
        // Capacity not a power of 8 rounds the log down.
        assert_eq!(l_sub(10, 511), 8);
        assert_eq!(l_sub(10, 4096), 6);
        // Clamped: tiny trees still give level >= 1.
        assert_eq!(l_sub(2, 1 << 30), 1);
        assert_eq!(l_sub(0, 8), 1);
    }

    #[test]
    fn nvbm_sampling_separates_hot_and_cold() {
        let mut s = PmStore::new(NvbmArena::new(4 << 20, DeviceModel::default()));
        let hot_key = OctKey::root().child(0);
        let cold_key = OctKey::root().child(7);
        let mk = |k: OctKey, phi: f64| -> Vec<(OctKey, CellData, bool)> {
            std::iter::once((k, CellData { phi, ..Default::default() }, false))
                .chain((0..8).map(|i| (k.child(i), CellData { phi, ..Default::default() }, true)))
                .collect()
        };
        let hot = merge_subtree(&mut s, &mk(hot_key, 0.01), None, 1).unwrap();
        let cold = merge_subtree(&mut s, &mk(cold_key, 5.0), None, 1).unwrap();
        let features: Vec<FeatureFn> = vec![Box::new(|_k, d: &CellData| d.phi.abs() < 0.1)];
        let mut rng = StdRng::seed_from_u64(7);
        let hot_f = sample_nvbm_freq(&mut s, hot, 50, &features, &mut rng);
        let cold_f = sample_nvbm_freq(&mut s, cold, 50, &features, &mut rng);
        assert!(hot_f > 0.9, "hot subtree frequency {hot_f}");
        assert!(cold_f < 0.1, "cold subtree frequency {cold_f}");
    }

    #[test]
    fn c0_sampling_uses_features() {
        let tree =
            C0Tree::new(OctKey::root().child(3), CellData { vof: 0.9, ..Default::default() });
        let features: Vec<FeatureFn> = vec![Box::new(|_k, d: &CellData| d.vof > 0.5)];
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_c0_freq(&tree, 10, &features, &mut rng), 1.0);
        let features2: Vec<FeatureFn> = vec![Box::new(|_k, d: &CellData| d.vof > 0.99)];
        assert_eq!(sample_c0_freq(&tree, 10, &features2, &mut rng), 0.0);
    }

    #[test]
    fn empty_features_yield_zero() {
        let tree = C0Tree::new(OctKey::root(), CellData::default());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_c0_freq(&tree, 10, &[], &mut rng), 0.0);
    }
}
