//! The persistent `C1` tree: NVBM-resident octants with copy-on-write
//! multi-versioning.
//!
//! Invariants maintained by every function here (§3.2 of the paper):
//!
//! 1. **Exclusivity is hereditary.** An octant whose `epoch` equals the
//!    current working epoch is *exclusive* to `V_i` and may be mutated in
//!    place; all of its ancestors are then exclusive too, because the only
//!    way an exclusive octant comes into existence is a path copy that
//!    made its whole ancestor chain exclusive first.
//! 2. **Shared octants are immutable.** Octants with an older epoch may be
//!    referenced by `V_{i-1}`; they are never written. Mutation copies
//!    them (and their shared ancestors) — `V_{i-1}` keeps the originals.
//! 3. **Deletion never writes shared octants.** Unlinking rewrites only
//!    the (exclusive) parent; the shared child octant itself is untouched
//!    and reclaimed by GC once no version references it. Exclusive
//!    deleted octants get their `deleted` flag set for GC.
//!
//! Because of (1)–(3), a crash at *any* point leaves the tree reachable
//! from the persisted `V_{i-1}` root byte-identical to what
//! `pm_persistent` flushed — no fence or flush ordering is required on
//! the octant writes themselves.
//!
//! Every mutation entry point is fallible: allocation exhaustion surfaces
//! as [`PmError::Full`] *before* any publication write, so the
//! pre-mutation version stays reachable and the partially-allocated
//! copies are unreachable garbage for GC. The functions are generic over
//! [`OctAccess`] so the same COW logic runs against the serial
//! [`PmStore`] and against per-domain `ShardStore`s during
//! domain-parallel sweeps.

use pmoctree_morton::OctKey;
use pmoctree_nvbm::POffset;

use crate::api::PmError;
use crate::octant::{CellData, ChildPtr, OctAccess, Octant, PmStore, FANOUT};

/// Outcome of a root-descent for `key`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locate {
    /// Found as a persistent octant.
    Nvbm(POffset),
    /// The descent hit a volatile handle at `ancestor_level`; the octant,
    /// if it exists, lives in C0 tree `id`.
    Volatile(u32),
    /// No such octant in the tree.
    Missing,
}

/// Walk from `root` towards `key`; stop at the octant, a volatile handle,
/// or a missing link.
pub fn locate<S: OctAccess>(store: &mut S, root: POffset, key: OctKey) -> Locate {
    debug_assert!(!root.is_null());
    let root_key = store.key(root);
    if !root_key.contains(&key) {
        return Locate::Missing;
    }
    let mut cur = root;
    for l in root_key.level()..key.level() {
        let idx = key.ancestor_at(l + 1).sibling_index();
        match store.child(cur, idx) {
            ChildPtr::Null => return Locate::Missing,
            ChildPtr::Volatile(id) => return Locate::Volatile(id),
            ChildPtr::Nvbm(p) => cur = p,
        }
    }
    Locate::Nvbm(cur)
}

/// Make the octant at `key` exclusive to the current epoch, copying the
/// shared suffix of its root path (the paper's Figure 4 walk: copy 9→9',
/// copy u→u', link, repeat to the root). Returns the possibly-new root
/// and the exclusive octant's offset.
///
/// `key` must exist as an NVBM octant under `root`. On [`PmError::Full`]
/// no link has been published: copies allocated so far are unreachable
/// and the caller's tree is unchanged.
pub fn cow_path<S: OctAccess>(
    store: &mut S,
    root: POffset,
    key: OctKey,
    epoch: u32,
) -> Result<(POffset, POffset), PmError> {
    // Record the descent: (offset, child index taken from it).
    let root_key = store.key(root);
    debug_assert!(root_key.contains(&key), "cow_path outside tree");
    let mut path: Vec<(POffset, usize)> =
        Vec::with_capacity((key.level() - root_key.level()) as usize);
    let mut cur = root;
    for l in root_key.level()..key.level() {
        let idx = key.ancestor_at(l + 1).sibling_index();
        match store.child(cur, idx) {
            ChildPtr::Nvbm(p) => {
                path.push((cur, idx));
                cur = p;
            }
            other => {
                return Err(PmError::Corrupt(format!(
                    "cow_path: expected NVBM child on path, found {other:?}"
                )))
            }
        }
    }
    // `cur` is the target. Copy the shared suffix bottom-up.
    if store.epoch_of(cur) == epoch {
        return Ok((root, cur)); // already exclusive; ancestors are too.
    }
    let mut copy = store.read_octant(cur);
    copy.epoch = epoch;
    let mut child_off = store.alloc_octant(&copy)?;
    let mut child_key_level = key.level();
    // Walk ancestors from deepest to root, re-linking.
    while let Some((anc, idx)) = path.pop() {
        if store.epoch_of(anc) == epoch {
            // Exclusive ancestor: just update its child slot in place.
            // This is the single publication write for the whole walk —
            // every copy below is fully written before it lands.
            store.set_child(anc, idx, ChildPtr::Nvbm(child_off));
            store.set_parent(child_off, anc);
            return Ok((root, deepest(store, root, key, child_key_level)?));
        }
        let mut anc_copy = store.read_octant(anc);
        anc_copy.epoch = epoch;
        anc_copy.children[idx] = ChildPtr::Nvbm(child_off);
        let anc_off = store.alloc_octant(&anc_copy)?;
        store.set_parent(child_off, anc_off);
        child_off = anc_off;
        child_key_level -= 1;
    }
    // The root itself was copied: child_off is the new root.
    store.set_parent(child_off, POffset::NULL);
    let new_root = child_off;
    let target = deepest(store, new_root, key, key.level())?;
    Ok((new_root, target))
}

/// Re-locate `key` (must exist, as NVBM) under `root`. `_lvl` documents
/// intent; descent is by key.
fn deepest<S: OctAccess>(
    store: &mut S,
    root: POffset,
    key: OctKey,
    _lvl: u8,
) -> Result<POffset, PmError> {
    match locate(store, root, key) {
        Locate::Nvbm(p) => Ok(p),
        other => Err(PmError::Corrupt(format!("octant vanished during COW: {other:?}"))),
    }
}

/// Refine the NVBM leaf at `key`: create its 8 children (all exclusive),
/// each inheriting the parent's payload. Returns the possibly-new root.
///
/// All eight children are allocated before the single bulk link write,
/// so a [`PmError::Full`] mid-way leaves the leaf a leaf.
pub fn refine<S: OctAccess>(
    store: &mut S,
    root: POffset,
    key: OctKey,
    epoch: u32,
) -> Result<POffset, PmError> {
    let (root, leaf) = cow_path(store, root, key, epoch)?;
    if !store.is_leaf_octant(leaf) {
        return Err(PmError::NotALeaf(format!("refine target {key:?} is not a leaf")));
    }
    let data = store.data(leaf);
    let mut cs = [ChildPtr::Null; FANOUT];
    for (i, slot) in cs.iter_mut().enumerate() {
        let o = Octant::leaf(key.child(i), leaf, epoch, data);
        let p = store.alloc_octant(&o)?;
        *slot = ChildPtr::Nvbm(p);
    }
    // One bulk link write instead of eight mask read-modify-writes.
    store.set_children(leaf, &cs);
    Ok(root)
}

/// Coarsen the NVBM octant at `key`: unlink its children (which must all
/// be NVBM leaves), making it a leaf. Shared children are left untouched
/// for `V_{i-1}`; exclusive children are flagged deleted for GC.
pub fn coarsen<S: OctAccess>(
    store: &mut S,
    root: POffset,
    key: OctKey,
    epoch: u32,
) -> Result<POffset, PmError> {
    let (root, node) = cow_path(store, root, key, epoch)?;
    // Validate every child before the first in-place write so a refusal
    // leaves the tree untouched (COW copies from the path walk are
    // already linked but content-identical, so the tree is unchanged).
    let kids = store.children(node);
    for c in &kids {
        match c {
            ChildPtr::Nvbm(c) => {
                if !store.is_leaf_octant(*c) {
                    return Err(PmError::NotCoarsenable(format!(
                        "coarsen at {key:?}: child {:?} is not a leaf",
                        store.key(*c)
                    )));
                }
            }
            ChildPtr::Null => {}
            ChildPtr::Volatile(id) => {
                return Err(PmError::NotCoarsenable(format!(
                    "coarsen at {key:?} reaches across the DRAM boundary (C0 tree {id})"
                )))
            }
        }
    }
    let mut mean = CellData::default();
    for c in kids {
        if let ChildPtr::Nvbm(c) = c {
            let d = store.data(c);
            mean.phi += d.phi / 8.0;
            mean.pressure += d.pressure / 8.0;
            mean.vof += d.vof / 8.0;
            mean.work += d.work / 8.0;
            if store.epoch_of(c) == epoch {
                store.set_deleted(c, true);
            }
        }
    }
    // Unlink all children with one bulk write to the navigation line.
    store.set_children(node, &[ChildPtr::Null; FANOUT]);
    // Restriction operator: the new leaf takes the mean of its children.
    store.set_data(node, &mean);
    Ok(root)
}

/// Update the payload of the NVBM octant at `key` (copy-on-write if
/// shared). Returns the possibly-new root.
pub fn update_data<S: OctAccess>(
    store: &mut S,
    root: POffset,
    key: OctKey,
    data: &CellData,
    epoch: u32,
) -> Result<POffset, PmError> {
    let (root, node) = cow_path(store, root, key, epoch)?;
    store.set_data(node, data);
    Ok(root)
}

/// Replace the child slot that holds `key`'s position under `root` with
/// `ptr` (used to attach merged subtrees and volatile handles). `key`
/// must not be the root itself. Returns the possibly-new root.
pub fn replace_slot<S: OctAccess>(
    store: &mut S,
    root: POffset,
    key: OctKey,
    ptr: ChildPtr,
    epoch: u32,
) -> Result<POffset, PmError> {
    let parent_key =
        key.parent().ok_or_else(|| PmError::Corrupt("cannot replace the root slot".to_string()))?;
    let (root, parent) = cow_path(store, root, parent_key, epoch)?;
    store.set_child(parent, key.sibling_index(), ptr);
    if let ChildPtr::Nvbm(p) = ptr {
        store.set_parent(p, parent);
    }
    Ok(root)
}

/// Pre-order traversal of the NVBM part of the tree under `p`; volatile
/// handles are reported to `on_volatile` and not descended.
pub fn traverse(
    store: &mut PmStore,
    p: POffset,
    f: &mut impl FnMut(&mut PmStore, POffset, OctKey, bool),
    on_volatile: &mut impl FnMut(u32),
) {
    let mut stack = vec![p];
    while let Some(cur) = stack.pop() {
        // One navigation-line read delivers children, key and mask.
        let nav = store.nav_line(cur);
        let mut kids = Vec::new();
        for i in (0..FANOUT).rev() {
            match nav.children[i] {
                ChildPtr::Null => {}
                ChildPtr::Nvbm(c) => kids.push(c),
                ChildPtr::Volatile(id) => on_volatile(id),
            }
        }
        let key = OctKey::from_raw(nav.code, nav.level);
        f(store, cur, key, nav.mask == 0);
        stack.extend(kids);
    }
}

/// Count octants reachable from `p` (NVBM only), and how many of them are
/// *shared* (epoch older than `epoch`). Drives the Fig. 3 overlap-ratio
/// measurement.
pub fn count_shared(store: &mut PmStore, p: POffset, epoch: u32) -> (usize, usize) {
    let mut total = 0usize;
    let mut shared = 0usize;
    let mut stack = vec![p];
    while let Some(cur) = stack.pop() {
        total += 1;
        if store.epoch_of(cur) < epoch {
            shared += 1;
        }
        for c in store.children(cur) {
            if let ChildPtr::Nvbm(c) = c {
                stack.push(c);
            }
        }
    }
    (total, shared)
}

/// Merge a pre-order list of (key, data, is_leaf) octants — a C0 subtree —
/// into NVBM, *diffing against the shadow subtree* (the NVBM image this
/// region had at the last persist) so unchanged octants are shared rather
/// than rewritten. Returns the ChildPtr for the subtree root.
///
/// Sharing rule: an old octant is reused iff its payload is bit-identical
/// and every child slot resolved to the same offset (i.e. the entire
/// subtree below it is unchanged). This is what keeps the Fig. 3 overlap
/// ratio high when the mesh barely changes between steps.
pub fn merge_subtree(
    store: &mut PmStore,
    octants: &[(OctKey, CellData, bool)],
    shadow: Option<POffset>,
    epoch: u32,
) -> Result<POffset, PmError> {
    if octants.is_empty() {
        return Err(PmError::Corrupt("merging an empty subtree".to_string()));
    }
    store.arena.tracer.counter_add("c1.merge_octants", octants.len() as u64);
    let (off, _shared, consumed) = merge_rec(store, octants, 0, shadow, epoch)?;
    debug_assert_eq!(consumed, octants.len(), "pre-order list not fully consumed");
    Ok(off)
}

/// Returns (offset, was_shared, entries_consumed).
fn merge_rec(
    store: &mut PmStore,
    octants: &[(OctKey, CellData, bool)],
    at: usize,
    shadow: Option<POffset>,
    epoch: u32,
) -> Result<(POffset, bool, usize), PmError> {
    let (key, data, is_leaf) = octants[at];
    let mut consumed = 1usize;
    let mut children = [ChildPtr::Null; FANOUT];
    let mut all_children_shared = true;
    if !is_leaf {
        // Pre-order: children appear consecutively (each with its own
        // descendants) right after the parent, in Morton order.
        while at + consumed < octants.len() {
            let ck = octants[at + consumed].0;
            if ck.parent() != Some(key) {
                break;
            }
            let idx = ck.sibling_index();
            let child_shadow = shadow.and_then(|s| match store.child(s, idx) {
                ChildPtr::Nvbm(p) => Some(p),
                _ => None,
            });
            let (coff, cshared, ccons) =
                merge_rec(store, octants, at + consumed, child_shadow, epoch)?;
            children[idx] = ChildPtr::Nvbm(coff);
            all_children_shared &= cshared;
            consumed += ccons;
        }
    }
    // Try to share the shadow octant.
    if let Some(s) = shadow {
        if all_children_shared && !store.is_deleted(s) {
            let old = store.read_octant(s);
            let data_same = old.data.phi.to_bits() == data.phi.to_bits()
                && old.data.pressure.to_bits() == data.pressure.to_bits()
                && old.data.vof.to_bits() == data.vof.to_bits()
                && old.data.work.to_bits() == data.work.to_bits();
            let children_same = old.children == children && old.key == key;
            if data_same && children_same {
                return Ok((s, true, consumed));
            }
        }
    }
    // Parent pointers are advisory (no algorithm walks upward — see the
    // module docs), so merged octants keep parent = NULL rather than
    // paying an extra cacheline write per child to fix them up.
    let o = Octant { children, parent: POffset::NULL, key, deleted: false, epoch, data };
    let off = store.alloc_octant(&o)?;
    Ok((off, false, consumed))
}

/// Collect an NVBM subtree into a pre-order (key, data) list (used when
/// promoting a hot subtree into DRAM). Deleted octants are skipped.
/// Returns `None` when the subtree contains a volatile handle — such a
/// region is already partly DRAM-resident and cannot be promoted
/// wholesale.
pub fn collect_subtree(store: &mut PmStore, p: POffset) -> Option<Vec<(OctKey, CellData)>> {
    let mut out = Vec::new();
    if collect_rec(store, p, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn collect_rec(store: &mut PmStore, p: POffset, out: &mut Vec<(OctKey, CellData)>) -> bool {
    if store.is_deleted(p) {
        return true;
    }
    let o = store.read_octant(p);
    out.push((o.key, o.data));
    for c in o.children {
        match c {
            ChildPtr::Nvbm(cp) => {
                if !collect_rec(store, cp, out) {
                    return false;
                }
            }
            ChildPtr::Null => {}
            ChildPtr::Volatile(_) => return false,
        }
    }
    true
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn store() -> PmStore {
        PmStore::new(NvbmArena::new(4 << 20, DeviceModel::default()))
    }

    /// Build a fresh single-root tree at epoch `e`.
    fn root_tree(s: &mut PmStore, e: u32) -> POffset {
        let o = Octant::leaf(OctKey::root(), POffset::NULL, e, CellData::default());
        s.alloc_octant(&o).unwrap()
    }

    #[test]
    fn locate_finds_descendants() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        let k = OctKey::root().child(3);
        match locate(&mut s, root, k) {
            Locate::Nvbm(p) => assert_eq!(s.key(p), k),
            other => panic!("{other:?}"),
        }
        assert_eq!(locate(&mut s, root, k.child(0)), Locate::Missing);
    }

    #[test]
    fn refine_exclusive_keeps_root() {
        let mut s = store();
        let root = root_tree(&mut s, 1);
        // Root is exclusive at epoch 1: refining must not copy it.
        let new_root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        assert_eq!(new_root, root);
    }

    #[test]
    fn refine_shared_copies_path() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        let old_root = root;
        // Epoch advances: everything is now shared.
        let new_root = refine(&mut s, root, OctKey::root().child(2), 2).unwrap();
        assert_ne!(new_root, old_root, "shared root must be copied");
        // Old version intact: child 2 of the old root is still a leaf.
        match locate(&mut s, old_root, OctKey::root().child(2)) {
            Locate::Nvbm(p) => {
                assert!((0..8).all(|i| s.child(p, i).is_null()), "old version mutated!");
            }
            other => panic!("{other:?}"),
        }
        // New version has the refinement.
        match locate(&mut s, new_root, OctKey::root().child(2).child(5)) {
            Locate::Nvbm(p) => assert_eq!(s.key(p), OctKey::root().child(2).child(5)),
            other => panic!("{other:?}"),
        }
        // Unmodified siblings are shared, not copied.
        let old_c3 = match locate(&mut s, old_root, OctKey::root().child(3)) {
            Locate::Nvbm(p) => p,
            other => panic!("{other:?}"),
        };
        let new_c3 = match locate(&mut s, new_root, OctKey::root().child(3)) {
            Locate::Nvbm(p) => p,
            other => panic!("{other:?}"),
        };
        assert_eq!(old_c3, new_c3, "untouched sibling should be shared");
    }

    #[test]
    fn update_data_cow_preserves_old_value() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        let k = OctKey::root().child(1);
        root =
            update_data(&mut s, root, k, &CellData { phi: 7.0, ..Default::default() }, 1).unwrap();
        let old_root = root;
        let new_root =
            update_data(&mut s, root, k, &CellData { phi: 9.0, ..Default::default() }, 2).unwrap();
        let old = match locate(&mut s, old_root, k) {
            Locate::Nvbm(p) => s.data(p),
            other => panic!("{other:?}"),
        };
        let new = match locate(&mut s, new_root, k) {
            Locate::Nvbm(p) => s.data(p),
            other => panic!("{other:?}"),
        };
        assert_eq!(old.phi, 7.0);
        assert_eq!(new.phi, 9.0);
    }

    #[test]
    fn coarsen_unlinks_without_writing_shared_children() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        root = refine(&mut s, root, OctKey::root().child(0), 1).unwrap();
        let old_root = root;
        let writes_before = s.arena.stats.nvbm.write_lines;
        let new_root = coarsen(&mut s, root, OctKey::root().child(0), 2).unwrap();
        let _ = writes_before;
        // New version: child 0 is a leaf again.
        match locate(&mut s, new_root, OctKey::root().child(0)) {
            Locate::Nvbm(p) => assert!((0..8).all(|i| s.child(p, i).is_null())),
            other => panic!("{other:?}"),
        }
        // Old version: grandchildren still reachable and not deleted.
        match locate(&mut s, old_root, OctKey::root().child(0).child(4)) {
            Locate::Nvbm(p) => assert!(!s.is_deleted(p), "shared child must not be flagged"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn coarsen_flags_exclusive_children_deleted() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        // Children created at epoch 1; coarsen at the SAME epoch.
        let before: Vec<POffset> = (0..8)
            .map(|i| match s.child(root, i) {
                ChildPtr::Nvbm(p) => p,
                other => panic!("{other:?}"),
            })
            .collect();
        let _ = coarsen(&mut s, root, OctKey::root(), 1).unwrap();
        for p in before {
            assert!(s.is_deleted(p), "exclusive child should be flagged for GC");
        }
    }

    #[test]
    fn coarsen_refuses_across_dram_boundary_without_mutating() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        root =
            replace_slot(&mut s, root, OctKey::root().child(3), ChildPtr::Volatile(9), 1).unwrap();
        let err = coarsen(&mut s, root, OctKey::root(), 1).unwrap_err();
        assert!(matches!(err, PmError::NotCoarsenable(_)), "{err}");
        // The refusal happened before any unlink: the volatile handle and
        // the NVBM siblings are all still in place.
        assert_eq!(locate(&mut s, root, OctKey::root().child(3)), Locate::Volatile(9));
        assert!(matches!(locate(&mut s, root, OctKey::root().child(4)), Locate::Nvbm(_)));
    }

    #[test]
    fn alloc_failure_mid_refine_leaves_tree_restorable() {
        // Arena small enough that a refinement sweep eventually hits
        // PmError::Full mid-COW; the tree must stay fully navigable and
        // the failed target must still be a leaf (nothing published).
        let mut s = PmStore::new(NvbmArena::new(64 << 10, DeviceModel::default()));
        let mut root = root_tree(&mut s, 1);
        let mut frontier = vec![OctKey::root()];
        let mut failed_at = None;
        'fill: while failed_at.is_none() {
            let mut next = Vec::new();
            for k in std::mem::take(&mut frontier) {
                match refine(&mut s, root, k, 1) {
                    Ok(r) => {
                        root = r;
                        next.extend((0..8).map(|i| k.child(i)));
                    }
                    Err(PmError::Full(_)) => {
                        failed_at = Some(k);
                        break 'fill;
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
            frontier = next;
        }
        let failed = failed_at.expect("arena never filled");
        // The failed refine published nothing: the target is still a leaf.
        match locate(&mut s, root, failed) {
            Locate::Nvbm(p) => assert!(s.is_leaf_octant(p), "partial refine was published"),
            other => panic!("{other:?}"),
        }
        // Every octant reachable from the root still decodes cleanly.
        let mut count = 0usize;
        traverse(&mut s, root, &mut |_, _, _, _| count += 1, &mut |_| {});
        assert!(count >= 9, "tree collapsed after failed refine: {count} octants");
    }

    #[test]
    fn merge_subtree_shares_unchanged_octants() {
        let mut s = store();
        // Build a shadow subtree in NVBM: one node + 8 leaves at epoch 1.
        let sub_key = OctKey::root().child(6);
        let octants: Vec<(OctKey, CellData, bool)> =
            std::iter::once((sub_key, CellData::default(), false))
                .chain((0..8).map(|i| (sub_key.child(i), CellData::default(), true)))
                .collect();
        let shadow = merge_subtree(&mut s, &octants, None, 1).unwrap();
        // Re-merge identical content at epoch 2 against the shadow.
        let merged = merge_subtree(&mut s, &octants, Some(shadow), 2).unwrap();
        assert_eq!(merged, shadow, "identical subtree must be fully shared");
        // Change one leaf's data: only the path to it should be new.
        let mut octants2 = octants.clone();
        octants2[3].1.phi = 1.5;
        let alloc_before = s.registry.len();
        let merged2 = merge_subtree(&mut s, &octants2, Some(shadow), 2).unwrap();
        assert_ne!(merged2, shadow);
        assert_eq!(s.registry.len() - alloc_before, 2, "new leaf + new subtree root only");
        let (total, shared) = count_shared(&mut s, merged2, 2);
        assert_eq!(total, 9);
        assert_eq!(shared, 7);
    }

    #[test]
    fn merge_subtree_structure_change_is_detected() {
        let mut s = store();
        let sub_key = OctKey::root().child(1);
        let flat: Vec<(OctKey, CellData, bool)> =
            std::iter::once((sub_key, CellData::default(), false))
                .chain((0..8).map(|i| (sub_key.child(i), CellData::default(), true)))
                .collect();
        let shadow = merge_subtree(&mut s, &flat, None, 1).unwrap();
        // Refine child 0 in the new version.
        let mut deep = vec![
            (sub_key, CellData::default(), false),
            (sub_key.child(0), CellData::default(), false),
        ];
        deep.extend((0..8).map(|i| (sub_key.child(0).child(i), CellData::default(), true)));
        deep.extend((1..8).map(|i| (sub_key.child(i), CellData::default(), true)));
        let merged = merge_subtree(&mut s, &deep, Some(shadow), 2).unwrap();
        assert_ne!(merged, shadow);
        let (total, shared) = count_shared(&mut s, merged, 2);
        assert_eq!(total, 17);
        assert_eq!(shared, 7, "the 7 untouched leaves are shared");
    }

    #[test]
    fn collect_roundtrip() {
        let mut s = store();
        let sub_key = OctKey::root().child(4);
        let octants: Vec<(OctKey, CellData, bool)> =
            std::iter::once((sub_key, CellData { vof: 0.2, ..Default::default() }, false))
                .chain((0..8).map(|i| {
                    (sub_key.child(i), CellData { vof: i as f64, ..Default::default() }, true)
                }))
                .collect();
        let off = merge_subtree(&mut s, &octants, None, 1).unwrap();
        let collected = collect_subtree(&mut s, off).expect("pure NVBM subtree");
        assert_eq!(collected.len(), 9);
        assert_eq!(collected[0].0, sub_key);
        assert_eq!(collected[0].1.vof, 0.2);
        let rebuilt: Vec<(OctKey, CellData, bool)> =
            collected.iter().map(|&(k, d)| (k, d, k.level() > sub_key.level())).collect();
        // Re-merging the collected set against the original shares 100%.
        let again = merge_subtree(&mut s, &rebuilt, Some(off), 2).unwrap();
        assert_eq!(again, off);
    }

    #[test]
    fn replace_slot_attaches_volatile_handle() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        let k = OctKey::root().child(5);
        let root2 = replace_slot(&mut s, root, k, ChildPtr::Volatile(42), 2).unwrap();
        assert_eq!(locate(&mut s, root2, k), Locate::Volatile(42));
        // The old version still sees the NVBM child.
        assert!(matches!(locate(&mut s, root, k), Locate::Nvbm(_)));
    }

    #[test]
    fn traverse_visits_all_and_reports_volatile() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        root =
            replace_slot(&mut s, root, OctKey::root().child(2), ChildPtr::Volatile(7), 1).unwrap();
        let mut keys = Vec::new();
        let mut vols = Vec::new();
        traverse(&mut s, root, &mut |_, _, k, _| keys.push(k), &mut |id| vols.push(id));
        assert_eq!(keys.len(), 8, "root + 7 NVBM children");
        assert_eq!(vols, vec![7]);
    }
}
