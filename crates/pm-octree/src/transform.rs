//! Dynamic layout transformation (§3.3).
//!
//! After merging completes, PM-octree asks: is some NVBM subtree about to
//! be hotter than what currently sits in DRAM? Candidates are subtrees at
//! level `L_sub` (Equation 1 — sized so one subtree roughly fits the C0
//! budget). Frequencies come from feature-directed sampling
//! ([`crate::sampling`]); when the hottest NVBM candidate beats the
//! coldest DRAM subtree by more than `T_transform`, the two swap places:
//! the cold subtree is merged out, the hot one is promoted (its NVBM
//! image stays behind as both the `V_{i-1}` copy and the diff shadow, so
//! promotion itself writes nothing to NVBM beyond one path copy).

use pmoctree_nvbm::POffset;

use crate::api::PmOctree;
use crate::c0::C0Tree;
use crate::c1::{self};
use crate::octant::{ChildPtr, OctAccess};
use crate::sampling;

impl PmOctree {
    /// Run one transformation check; swap at most one subtree per call
    /// (the paper swaps "the subtree having the maximum Ratio_access").
    /// Returns whether a swap happened.
    pub fn maybe_transform(&mut self) -> bool {
        self.transform_pass(1) > 0
    }

    /// One detection pass: scan + sample the NVBM candidates *once*, then
    /// promote up to `max_swaps` of the hottest (demoting cold DRAM
    /// residents when the budget requires it). Returns the number of
    /// swaps performed.
    pub fn transform_pass(&mut self, max_swaps: usize) -> usize {
        if self.features.is_empty() || max_swaps == 0 {
            return 0;
        }
        let _span = self.store.arena.span("transform");
        let prev_phase = self.store.arena.set_phase("transform");
        self.store.arena.failpoint("transform");
        let l = sampling::l_sub(self.depth(), self.cfg.c0_capacity_octants);
        // Candidate NVBM subtrees: *maximal volatile-free* subtrees at
        // level ≥ L_sub (a region already partly in DRAM cannot be
        // promoted wholesale; one shallower than L_sub would not fit the
        // C0 budget).
        let root = self.root_offset();
        let (_, candidates) = candidate_scan(&mut self.store, root, l);
        if candidates.is_empty() {
            self.store.arena.set_phase(prev_phase);
            return 0;
        }
        // Sample candidates, capping the per-subtree count at the paper's
        // min(N_sample, subtree size) with a size estimate from the
        // candidate's depth budget.
        let depth = self.depth();
        let mut scored: Vec<(POffset, f64)> = Vec::with_capacity(candidates.len());
        // Split borrows: move rng and features out during sampling.
        let mut rng = self.rng.clone();
        let features = std::mem::take(&mut self.features);
        for (p, lvl) in candidates {
            let est_size = 8usize.saturating_pow(depth.saturating_sub(lvl).min(6) as u32).max(1);
            let n = self.cfg.n_sample.min(est_size);
            let f = sampling::sample_nvbm_freq(&mut self.store, p, n, &features, &mut rng);
            if f > 0.0 {
                scored.push((p, f));
            }
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        // The sampling decision: how many candidates scanned, how many
        // scored hot enough to consider.
        self.store.arena.tracer.counter_add("sampling.decisions", 1);
        self.store.arena.instant("sampling::decision", Some(scored.len() as u64));
        // Sample DRAM trees once; coldest-first is the demotion order.
        let n = self.cfg.n_sample;
        let mut dram: Vec<(u32, f64)> = self
            .forest
            .ids()
            .into_iter()
            .map(|id| (id, sampling::sample_c0_freq(self.forest.get(id), n, &features, &mut rng)))
            .collect();
        dram.sort_by(|a, b| a.1.total_cmp(&b.1));
        self.features = features;
        self.rng = rng;

        let mut swaps = 0usize;
        // Victims are consumed coldest-first as demotions happen; the
        // coldest *remaining* resident is also the `Ratio_access`
        // denominator for every promotion attempt, so it is peeked (not
        // consumed) until an actual demotion commits.
        let mut victims = dram.into_iter().peekable();
        'promote: for (hot_off, hot_f) in scored {
            // A candidate that bails below must not burn the budget;
            // iterate the whole scored list until the budget is truly
            // spent on performed swaps.
            if swaps == max_swaps {
                break;
            }
            // Subtrees containing DRAM regions cannot be promoted.
            let Some(octants) = c1::collect_subtree(&mut self.store, hot_off) else {
                continue;
            };
            if octants.is_empty() {
                continue;
            }
            // Paper step 4: `Ratio_access` must clear `T_transform`
            // against the coldest DRAM resident even when C0 has room —
            // otherwise any lukewarm subtree (f > 0) would be copied into
            // DRAM the moment the budget allows, churning the C0 forest
            // for no locality gain. With an empty DRAM there is nothing
            // to beat and promotion is free.
            if let Some(&(_, coldest_f)) = victims.peek() {
                let ratio = if coldest_f > 0.0 { hot_f / coldest_f } else { f64::INFINITY };
                if ratio <= self.cfg.t_transform {
                    continue;
                }
            }
            let cap = (self.cfg.c0_capacity_octants as f64 * self.cfg.threshold_dram) as usize;
            // Demote cold residents until the hot subtree fits, but only
            // while Ratio_access clears T_transform (paper step 4).
            while self.forest.total_octants + octants.len() > cap {
                let Some(&(vid, vf)) = victims.peek() else {
                    continue 'promote;
                };
                let ratio = if vf > 0.0 { hot_f / vf } else { f64::INFINITY };
                if ratio <= self.cfg.t_transform {
                    // Too warm to demote: leave it resident (and still
                    // peekable as later candidates' gate denominator).
                    continue 'promote;
                }
                victims.next();
                // The victim may already have been demoted by pressure.
                if self.forest.ids().contains(&vid) && self.evict_c0(vid).is_err() {
                    // Demotion needs NVBM headroom for the merged image;
                    // without it no further swap can succeed either.
                    break 'promote;
                }
            }
            let subtree_key = octants[0].0;
            let tree = C0Tree::from_octants(subtree_key, &octants);
            let id = self.register_c0(tree, hot_off);
            let (root, epoch) = (self.root_offset(), self.epoch());
            match c1::replace_slot(
                &mut self.store,
                root,
                subtree_key,
                ChildPtr::Volatile(id),
                epoch,
            ) {
                Ok(new_root) => {
                    self.set_root_offset(new_root);
                    self.events.transforms += 1;
                    swaps += 1;
                }
                Err(_) => {
                    // Path COW ran out of NVBM: unwind the registration
                    // and stop — the transformation is strictly optional.
                    self.forest.remove(id);
                    self.set_shadow(id, pmoctree_nvbm::POffset::NULL);
                    break 'promote;
                }
            }
        }
        self.store.arena.tracer.counter_add("transform.swaps", swaps as u64);
        self.store.arena.set_phase(prev_phase);
        swaps
    }

    pub(crate) fn root_offset(&self) -> POffset {
        self.current_root
    }

    pub(crate) fn set_root_offset(&mut self, p: POffset) {
        self.current_root = p;
    }
}

/// Bottom-up scan for promotion candidates: returns whether the subtree
/// at `off` is volatile-free, plus the list of maximal volatile-free
/// subtree roots at level ≥ `l_sub` (with their levels). A pure subtree
/// at level ≥ `l_sub` supersedes any candidates inside it.
fn candidate_scan(
    store: &mut crate::octant::PmStore,
    off: POffset,
    l_sub: u8,
) -> (bool, Vec<(POffset, u8)>) {
    let key = store.key(off);
    let children = store.children(off);
    let mut pure = true;
    let mut collected: Vec<(POffset, u8)> = Vec::new();
    for c in children {
        match c {
            ChildPtr::Null => {}
            ChildPtr::Volatile(_) => pure = false,
            ChildPtr::Nvbm(p) => {
                let (cp, mut cands) = candidate_scan(store, p, l_sub);
                pure &= cp;
                collected.append(&mut cands);
            }
        }
    }
    if pure && key.level() >= l_sub {
        // Maximal: this whole subtree is one candidate.
        (true, vec![(off, key.level())])
    } else {
        (pure, collected)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::PmConfig;
    use crate::octant::CellData;
    use pmoctree_morton::OctKey;
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn arena() -> NvbmArena {
        NvbmArena::new(16 << 20, DeviceModel::default())
    }

    /// Build a two-level tree whose child-0 region is "hot" (phi ≈ 0) and
    /// the rest cold, but place NOTHING in DRAM: the transformation should
    /// promote the hot subtree.
    #[test]
    fn transformation_promotes_hot_subtree() {
        let mut cfg = PmConfig { dynamic_transform: true, ..PmConfig::default() };
        cfg.c0_capacity_octants = 1 << 12;
        let mut t = PmOctree::create(arena(), cfg);
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            let k = OctKey::root().child(i);
            let phi = if i == 0 { 0.0 } else { 10.0 };
            t.set_data(k, CellData { phi, ..Default::default() }).unwrap();
        }
        t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.5));
        // Depth 1, capacity huge → L_sub clamps to 1: children are candidates.
        let swapped = t.maybe_transform();
        assert!(swapped, "hot subtree should be promoted");
        assert!(t.c0_octants() >= 1);
        assert_eq!(t.events.transforms, 1);
        // The hot region now updates at DRAM cost.
        let nvbm_writes_before = t.store.arena.stats.nvbm.write_lines;
        t.set_data(OctKey::root().child(0), CellData { phi: 0.1, ..Default::default() }).unwrap();
        assert_eq!(
            t.store.arena.stats.nvbm.write_lines, nvbm_writes_before,
            "write to promoted subtree must not touch NVBM"
        );
    }

    /// Regression for the missing ratio gate: a candidate that fits the
    /// C0 budget *without* demotions must still beat the coldest DRAM
    /// resident by more than `T_transform` (§3.3 step 4), not be promoted
    /// merely because its sampled frequency is non-zero.
    #[test]
    fn fitting_promotion_still_requires_ratio_gate() {
        let mut cfg = PmConfig { dynamic_transform: true, seed_c0: false, ..PmConfig::default() };
        cfg.c0_capacity_octants = 1 << 12;
        let mut t = PmOctree::create(arena(), cfg);
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            let phi = if i <= 1 { 0.0 } else { 10.0 };
            t.set_data(OctKey::root().child(i), CellData { phi, ..Default::default() }).unwrap();
        }
        t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.5));
        // First pass: DRAM is empty, so the hottest candidate (child 0,
        // first in scan order among the f = 1.0 ties) promotes freely.
        assert!(t.maybe_transform());
        assert_eq!(t.events.transforms, 1);
        // Child 1 is exactly as hot as the resident it would have to beat
        // (ratio 1.0 ≤ T_transform = 1.5). It fits the budget without any
        // demotion — the buggy path — and must still be rejected.
        assert!(!t.maybe_transform(), "equally-hot candidate must not clear the ratio gate");
        assert_eq!(t.events.transforms, 1);
    }

    /// Regression for `take(max_swaps)`: a hotter candidate that bails
    /// (here: too big to ever fit C0) must not consume the swap budget;
    /// the next viable candidate in score order still gets its turn.
    #[test]
    fn bailing_candidate_does_not_consume_swap_budget() {
        let mut cfg = PmConfig { dynamic_transform: true, seed_c0: false, ..PmConfig::default() };
        // cap = ⌊8 × 0.9⌋ = 7 octants: child 0's refined subtree (9
        // octants) can never fit, child 1 (one octant) always can.
        cfg.c0_capacity_octants = 8;
        let mut t = PmOctree::create(arena(), cfg);
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(0)).unwrap();
        for i in 0..8 {
            let k = OctKey::root().child(0).child(i);
            t.set_data(k, CellData { phi: 0.0, ..Default::default() }).unwrap();
        }
        for i in 1..8 {
            let phi = if i == 1 { 0.0 } else { 10.0 };
            t.set_data(OctKey::root().child(i), CellData { phi, ..Default::default() }).unwrap();
        }
        t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.5));
        assert!(
            t.maybe_transform(),
            "the fitting candidate must be promoted even though a hotter one bailed first"
        );
        assert_eq!(t.events.transforms, 1);
        assert!(t.c0_octants() >= 1);
    }

    #[test]
    fn no_features_no_transform() {
        let mut t = PmOctree::create(arena(), PmConfig::default());
        t.refine(OctKey::root()).unwrap();
        assert!(!t.maybe_transform());
    }

    #[test]
    fn cold_subtrees_not_promoted() {
        let mut t =
            PmOctree::create(arena(), PmConfig { dynamic_transform: true, ..PmConfig::default() });
        t.refine(OctKey::root()).unwrap();
        t.update_leaves(|_, d| Some(CellData { phi: 100.0, ..*d }));
        t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.5));
        assert!(!t.maybe_transform(), "nothing is hot; no swap");
        assert_eq!(t.events.transforms, 0);
    }

    /// The §3.3 motivating claim: a locality-aware layout serves far
    /// fewer NVBM writes for a refinement pass over the hot region.
    #[test]
    fn transformation_reduces_nvbm_writes_for_hot_refinement() {
        let run = |transform: bool| -> u64 {
            let mut cfg =
                PmConfig { dynamic_transform: false, seed_c0: false, ..PmConfig::default() };
            cfg.c0_capacity_octants = 1 << 14;
            let mut t = PmOctree::create(arena(), cfg);
            t.refine(OctKey::root()).unwrap();
            // Mark child 0 hot.
            t.set_data(OctKey::root().child(0), CellData { phi: 0.0, ..Default::default() })
                .unwrap();
            for i in 1..8 {
                t.set_data(OctKey::root().child(i), CellData { phi: 9.0, ..Default::default() })
                    .unwrap();
            }
            t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.5));
            if transform {
                assert!(t.maybe_transform());
            }
            let before = t.store.arena.stats.nvbm.write_lines;
            // Refinement burst inside the hot region.
            t.refine(OctKey::root().child(0)).unwrap();
            for i in 0..8 {
                t.refine(OctKey::root().child(0).child(i)).unwrap();
            }
            t.store.arena.stats.nvbm.write_lines - before
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without / 2,
            "transformed layout should serve far fewer NVBM writes: {with} vs {without}"
        );
    }
}
