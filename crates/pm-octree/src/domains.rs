//! Concurrent write domains: domain-parallel batched mutation of one
//! [`PmOctree`].
//!
//! A batch of refine/coarsen/set-data operations is partitioned by each
//! key's ancestor at `cfg.domain_level` — a fixed shallow cut through the
//! key space — into disjoint *write domains*. Each domain gets its own
//! [`ShardStore`]: a read view of the arena's fork-point snapshot, a
//! private write overlay, and a pre-carved allocator lease, so N worker
//! threads mutate one tree with no shared mutable state. The protocol:
//!
//! 1. **Serial pre-pass.** Every domain root is made epoch-exclusive with
//!    one COW path walk. After this, the spine above the domain cut
//!    belongs to `V_i` alone, and each domain root offset is *final*: no
//!    shard operation can move it (COW inside a shard terminates at the
//!    exclusive domain root). Shards therefore never write outside their
//!    own subtree or lease.
//! 2. **Parallel execution.** Domains run on the worker pool
//!    (`rayon::par_iter_mut`), each applying its operations in batch
//!    input order against its `ShardStore`. Buffered shard stores fire
//!    **no** crash opportunities — a domain's writes are invisible to the
//!    device until publication.
//! 3. **Serial join.** In fixed (sorted) domain order, each shard's
//!    overlay is absorbed into the arena
//!    ([`NvbmArena::absorb_shard`](pmoctree_nvbm::NvbmArena::absorb_shard)),
//!    firing one `sweep::interleave` crash opportunity per domain whose
//!    oracle view is the base image plus a deterministic *prefix* of the
//!    domain overlays — exactly the per-thread interleaving schedules the
//!    crash sweep enumerates. Lease tails are released, registries
//!    appended, and leaf/depth/index bookkeeping replayed in input order.
//!
//! Why any interleaving of domain publication recovers cleanly (the
//! NVTraverse flush-at-destination argument): the pre-pass made every
//! octant a shard writes in place epoch-exclusive, i.e. unreachable from
//! the durable `V_{i-1}` roots; newly allocated octants live in lease
//! regions no durable pointer names. So the dirty image after *any*
//! prefix of domain absorptions differs from the base only in lines the
//! persisted version never reads — only the publication edges (the
//! persist protocol's root swap) need ordering, and those remain serial.
//!
//! The batch always runs through this sharded path, whatever the worker
//! count; the rayon shim's worker-count-independent chunk grid plus the
//! fixed-order join make reports, media, clock and trace byte-identical
//! for 1, 2, 4 or N workers.
//!
//! Batch semantics differ from the per-op API in two documented ways:
//! batched refines never seed DRAM (C0) subtrees, and a batched coarsen
//! whose children still live in DRAM reports `false` instead of absorbing
//! them. Operations on C0-owned or above-the-cut keys fall out of the
//! sharded path and run serially with full per-op semantics.

use std::collections::BTreeMap;

use pmoctree_morton::OctKey;
use pmoctree_nvbm::{AllocLease, ArenaSnapshot, POffset, ShardDelta};
use rayon::prelude::*;

use crate::api::{PmError, PmOctree};
use crate::c1::{self, Locate};
use crate::octant::{CellData, OctAccess, ShardStore, OCTANT_SIZE};

/// One batched mutation, routed to a write domain by its key.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DomainOp {
    /// Refine the leaf at this key into 8 children.
    Refine(OctKey),
    /// Coarsen the octant at this key (children must be NVBM leaves).
    Coarsen(OctKey),
    /// Overwrite the payload of the octant at this key.
    SetData(OctKey, CellData),
}

impl DomainOp {
    fn key(&self) -> OctKey {
        match *self {
            DomainOp::Refine(k) | DomainOp::Coarsen(k) | DomainOp::SetData(k, _) => k,
        }
    }

    /// Upper bound on octant allocations this op can make inside its
    /// shard: one COW copy per level below the (already exclusive)
    /// domain root, plus 8 children for a refine.
    fn lease_blocks(&self, domain_level: u8) -> usize {
        let path = self.key().level().saturating_sub(domain_level) as usize;
        match self {
            DomainOp::Refine(_) => path + 8,
            DomainOp::Coarsen(_) | DomainOp::SetData(..) => path,
        }
    }
}

/// A domain's work order: its exclusive root, its slice of the batch (in
/// input order), its allocator lease, and — after the parallel phase —
/// its outcome.
struct Task {
    root: POffset,
    ops: Vec<(usize, DomainOp)>,
    lease: AllocLease,
    out: Option<Result<ShardOut, PmError>>,
}

type ShardOut = (ShardDelta, AllocLease, Vec<POffset>, Vec<(usize, bool)>);

/// Execute `ops` against `t`, domain-parallel where possible. Returns one
/// success flag per op, in input order. Device-full inside a shard (lease
/// exhausted) or at lease carving falls back to replaying the whole
/// domain portion serially — the conditions are data-dependent, never
/// worker-count-dependent, so results stay deterministic.
pub fn run_batch(t: &mut PmOctree, ops: &[DomainOp]) -> Vec<bool> {
    let mut results = vec![false; ops.len()];
    if ops.is_empty() {
        return results;
    }
    let cut = t.cfg.domain_level;
    // Partition: C0-owned or above-the-cut keys run serially with full
    // per-op semantics; everything else shards by level-`cut` ancestor.
    let mut residual: Vec<(usize, DomainOp)> = Vec::new();
    let mut domains: BTreeMap<OctKey, Vec<(usize, DomainOp)>> = BTreeMap::new();
    for (i, &op) in ops.iter().enumerate() {
        let k = op.key();
        // A coarsen whose children are DRAM-resident needs the serial
        // path too: the per-op API absorbs those C0 subtrees first, and a
        // shard (NVBM-only view) cannot.
        let c0_children = matches!(op, DomainOp::Coarsen(_))
            && k.level() < pmoctree_morton::OctKey::MAX_LEVEL
            && (0..8).any(|c| t.forest.owner_of(&k.child(c)).is_some());
        if k.level() < cut || t.forest.owner_of(&k).is_some() || c0_children {
            residual.push((i, op));
        } else {
            domains.entry(k.ancestor_at(cut)).or_default().push((i, op));
        }
    }
    for (i, op) in residual {
        results[i] = apply_serial(t, op);
    }
    // Serial pre-pass: materialize each domain root as epoch-exclusive.
    // Domains whose root is absent (or un-COW-able) run serially late.
    let mut pending: Vec<(POffset, Vec<(usize, DomainOp)>)> = Vec::new();
    let mut late: Vec<(usize, DomainOp)> = Vec::new();
    for (dk, dops) in domains {
        match c1::locate(&mut t.store, t.current_root, dk) {
            Locate::Nvbm(_) => match c1::cow_path(&mut t.store, t.current_root, dk, t.epoch) {
                Ok((root, off)) => {
                    t.current_root = root;
                    pending.push((off, dops));
                }
                Err(_) => late.extend(dops),
            },
            _ => late.extend(dops),
        }
    }
    // Carve one bump-region lease per domain. Carving failure means the
    // device cannot promise every domain its worst case up front: release
    // everything and replay the whole domain portion serially.
    t.store.alloc.set_limit(t.store.arena.live_rt_floor());
    let mut tasks: Vec<Task> = Vec::new();
    let mut carve_failed = false;
    for (root, dops) in pending {
        let blocks: usize = dops.iter().map(|(_, op)| op.lease_blocks(cut)).sum::<usize>().max(1);
        match t.store.alloc.carve_lease(blocks, OCTANT_SIZE) {
            Some(lease) => tasks.push(Task { root, ops: dops, lease, out: None }),
            None => {
                late.extend(dops);
                carve_failed = true;
            }
        }
    }
    t.store.arena.publish_bump(t.store.alloc.bump());
    if carve_failed {
        for task in &tasks {
            t.store.alloc.release_lease(task.lease, task.lease.start());
        }
        replay_serial(t, tasks, &mut results);
        late.sort_unstable_by_key(|&(i, _)| i);
        for (i, op) in late {
            results[i] = apply_serial(t, op);
        }
        return results;
    }
    // Parallel phase: one ShardStore per domain over a shared fork-point
    // snapshot. Buffered stores fire no crash opportunities; each shard
    // is single-threaded and deterministic.
    let epoch = t.epoch;
    {
        let snap = t.store.arena.snapshot();
        tasks.par_iter_mut().for_each(|task| {
            task.out = Some(run_shard(&snap, epoch, task.root, &task.ops, task.lease));
        });
    }
    if tasks.iter().any(|task| matches!(task.out, Some(Err(_)))) {
        // A shard over-ran its lease (device effectively full). Discard
        // every overlay — nothing was published — and replay serially.
        for task in &tasks {
            t.store.alloc.release_lease(task.lease, task.lease.start());
        }
        replay_serial(t, tasks, &mut results);
        for (i, op) in late {
            results[i] = apply_serial(t, op);
        }
        return results;
    }
    // Serial join, in fixed (sorted-domain) order: publish each overlay —
    // one `sweep::interleave` crash opportunity per domain — release the
    // unused lease tail, and append the domain's allocations.
    let mut flags: Vec<(usize, bool)> = Vec::new();
    for task in tasks {
        let (delta, lease, regs, shard_flags) =
            task.out.expect("joined task").expect("checked above");
        t.store.arena.absorb_shard("sweep::interleave", delta);
        t.store.alloc.release_lease(lease, lease.cursor());
        t.store.registry.extend(regs);
        flags.extend(shard_flags);
    }
    // Bookkeeping replays in batch input order.
    flags.sort_unstable_by_key(|&(i, _)| i);
    let mut mutated = false;
    for (i, ok) in flags {
        results[i] = ok;
        if !ok {
            continue;
        }
        match ops[i] {
            DomainOp::Refine(k) => {
                t.leaves += 7;
                t.depth = t.depth.max(k.level() + 1);
                t.index.on_refine_uniform(k, 0);
                mutated = true;
            }
            DomainOp::Coarsen(k) => {
                t.leaves -= 7;
                t.index.on_coarsen(k, 0);
                mutated = true;
            }
            DomainOp::SetData(..) => {}
        }
    }
    if mutated {
        t.after_mutation();
    }
    for (i, op) in late {
        results[i] = apply_serial(t, op);
    }
    results
}

/// One domain's worker body: apply its ops in input order against a
/// private shard. Only lease exhaustion ([`PmError::Full`]) aborts the
/// shard (triggering the caller's serial fallback); per-op refusals —
/// missing key, non-leaf refine, non-coarsenable node — report `false`
/// exactly like their serial counterparts.
fn run_shard(
    snap: &ArenaSnapshot<'_>,
    epoch: u32,
    root: POffset,
    ops: &[(usize, DomainOp)],
    lease: AllocLease,
) -> Result<ShardOut, PmError> {
    let mut shard = ShardStore::new(snap, lease);
    let mut flags = Vec::with_capacity(ops.len());
    for &(i, op) in ops {
        let ok = match op {
            DomainOp::Refine(k) => match c1::locate(&mut shard, root, k) {
                Locate::Nvbm(p) if shard.is_leaf_octant(p) => {
                    match c1::refine(&mut shard, root, k, epoch) {
                        Ok(r) => {
                            debug_assert_eq!(r, root, "shard mutation moved the domain root");
                            true
                        }
                        Err(e @ PmError::Full(_)) => return Err(e),
                        Err(_) => false,
                    }
                }
                _ => false,
            },
            DomainOp::Coarsen(k) => match c1::locate(&mut shard, root, k) {
                Locate::Nvbm(p) if !shard.is_leaf_octant(p) => {
                    match c1::coarsen(&mut shard, root, k, epoch) {
                        Ok(r) => {
                            debug_assert_eq!(r, root, "shard mutation moved the domain root");
                            true
                        }
                        Err(e @ PmError::Full(_)) => return Err(e),
                        Err(_) => false,
                    }
                }
                _ => false,
            },
            DomainOp::SetData(k, d) => match c1::locate(&mut shard, root, k) {
                Locate::Nvbm(_) => match c1::update_data(&mut shard, root, k, &d, epoch) {
                    Ok(r) => {
                        debug_assert_eq!(r, root, "shard mutation moved the domain root");
                        true
                    }
                    Err(e @ PmError::Full(_)) => return Err(e),
                    Err(_) => false,
                },
                _ => false,
            },
        };
        flags.push((i, ok));
    }
    let (delta, lease, regs) = shard.into_parts();
    Ok((delta, lease, regs, flags))
}

/// Serial fallback: replay every domain op through the per-op API in
/// batch input order (overlays were discarded; the tree is untouched
/// beyond content-identical pre-pass spine copies).
fn replay_serial(t: &mut PmOctree, tasks: Vec<Task>, results: &mut [bool]) {
    let mut all: Vec<(usize, DomainOp)> = tasks.into_iter().flat_map(|task| task.ops).collect();
    all.sort_unstable_by_key(|&(i, _)| i);
    for (i, op) in all {
        results[i] = apply_serial(t, op);
    }
}

/// Apply one op through the full per-op API (C0 routing, seeding, the
/// lot), folding any error to `false`.
fn apply_serial(t: &mut PmOctree, op: DomainOp) -> bool {
    match op {
        DomainOp::Refine(k) => t.refine(k).is_ok(),
        DomainOp::Coarsen(k) => t.coarsen(k).is_ok(),
        DomainOp::SetData(k, d) => t.set_data(k, d).is_ok(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::PmConfig;
    use pmoctree_nvbm::{CrashMode, DeviceModel, NvbmArena};

    fn tree_with(bytes: usize) -> PmOctree {
        let arena = NvbmArena::new(bytes, DeviceModel::default());
        let cfg = PmConfig { dynamic_transform: false, seed_c0: false, ..PmConfig::default() };
        PmOctree::create(arena, cfg)
    }

    fn tree() -> PmOctree {
        tree_with(16 << 20)
    }

    fn children_of_root() -> Vec<OctKey> {
        (0..8).map(|i| OctKey::root().child(i)).collect()
    }

    #[test]
    fn batch_refine_across_all_domains() {
        let mut t = tree();
        t.refine(OctKey::root()).unwrap();
        let ok = t.refine_many(&children_of_root());
        assert!(ok.iter().all(|&b| b), "{ok:?}");
        assert_eq!(t.leaf_count(), 64);
        // Refining the same keys again: every one is now internal.
        let again = t.refine_many(&children_of_root());
        assert!(again.iter().all(|&b| !b), "{again:?}");
        assert_eq!(t.leaf_count(), 64);
    }

    #[test]
    fn batch_set_data_then_coarsen_roundtrip() {
        let mut t = tree();
        t.refine(OctKey::root()).unwrap();
        assert!(t.refine_many(&children_of_root()).iter().all(|&b| b));
        let ops: Vec<(OctKey, CellData)> = (0..8)
            .map(|i| {
                (
                    OctKey::root().child(i).child(7 - i),
                    CellData { phi: i as f64 + 0.25, ..Default::default() },
                )
            })
            .collect();
        assert!(t.set_data_many(&ops).iter().all(|&b| b));
        for (k, d) in &ops {
            assert_eq!(t.get_data(*k).unwrap().phi, d.phi);
        }
        assert!(t.coarsen_many(&children_of_root()).iter().all(|&b| b));
        assert_eq!(t.leaf_count(), 8);
    }

    #[test]
    fn batch_reports_per_op_failures() {
        let mut t = tree();
        t.refine(OctKey::root()).unwrap();
        let good = OctKey::root().child(2);
        let missing = OctKey::root().child(5).child(1); // parent is a leaf
        let ok = t.refine_many(&[good, missing]);
        assert_eq!(ok, vec![true, false]);
        assert_eq!(t.leaf_count(), 15);
        // Coarsening a leaf reports false without touching it.
        let ok = t.coarsen_many(&[OctKey::root().child(6)]);
        assert_eq!(ok, vec![false]);
        assert_eq!(t.leaf_count(), 15);
    }

    #[test]
    fn same_domain_ops_run_in_input_order() {
        let mut t = tree();
        t.refine(OctKey::root()).unwrap();
        let k = OctKey::root().child(3);
        assert!(t.refine_many(&[k]).iter().all(|&b| b));
        let kk = k.child(0);
        // Refine then coarsen the same octant in one batch: both succeed
        // only if the shard applies them in input order.
        let r = run_batch(&mut t, &[DomainOp::Refine(kk), DomainOp::Coarsen(kk)]);
        assert_eq!(r, vec![true, true]);
        assert_eq!(t.is_leaf(kk), Some(true));
    }

    #[test]
    fn shallow_keys_take_the_serial_path() {
        let mut t = tree();
        // Root is above the domain cut (level 0 < domain_level 1).
        let ok = t.refine_many(&[OctKey::root()]);
        assert_eq!(ok, vec![true]);
        assert_eq!(t.leaf_count(), 8);
    }

    #[test]
    fn batched_mutations_persist_and_recover() {
        let mut t = tree();
        t.refine(OctKey::root()).unwrap();
        assert!(t.refine_many(&children_of_root()).iter().all(|&b| b));
        let ops: Vec<(OctKey, CellData)> = (0..8)
            .map(|i| {
                (OctKey::root().child(i).child(i), CellData { vof: 0.5, ..Default::default() })
            })
            .collect();
        assert!(t.set_data_many(&ops).iter().all(|&b| b));
        t.persist();
        let persisted = t.leaves_sorted();
        // Unpersisted batch must vanish on crash.
        t.refine_many(&[OctKey::root().child(0).child(0)]);
        let mut arena = {
            let PmOctree { store, .. } = t;
            store.arena
        };
        arena.crash(CrashMode::LoseDirty);
        let cfg = PmConfig { dynamic_transform: false, seed_c0: false, ..PmConfig::default() };
        let mut r = PmOctree::restore(arena, cfg).unwrap();
        assert_eq!(r.leaves_sorted(), persisted);
        assert_eq!(r.get_data(OctKey::root().child(3).child(3)).unwrap().vof, 0.5);
    }

    #[test]
    fn tight_device_falls_back_to_serial_and_stays_consistent() {
        // Arena too small to promise every domain its worst-case lease:
        // the batch must fall back and still produce correct per-op flags.
        let mut t = tree_with(96 << 10);
        t.refine(OctKey::root()).unwrap();
        let mut frontier = children_of_root();
        loop {
            let ok = t.refine_many(&frontier);
            let succeeded: Vec<OctKey> =
                frontier.iter().zip(&ok).filter(|&(_, &b)| b).map(|(&k, _)| k).collect();
            // Internal bookkeeping must agree with a full recount.
            assert_eq!(t.leaves_sorted().len(), t.leaf_count());
            if succeeded.is_empty() {
                break;
            }
            frontier = succeeded.iter().flat_map(|k| (0..8).map(|i| k.child(i))).collect();
        }
        assert!(t.leaf_count() >= 8, "nothing refined before the device filled");
    }

    #[test]
    fn batch_fires_interleave_opportunities_under_a_plan() {
        use pmoctree_nvbm::FailPlan;
        let mut t = tree();
        t.refine(OctKey::root()).unwrap();
        t.store.arena.set_fail_plan(FailPlan::count());
        assert!(t.refine_many(&children_of_root()).iter().all(|&b| b));
        let plan = t.store.arena.take_fail_plan().unwrap();
        assert_eq!(
            plan.interleavings(),
            8,
            "one publication-boundary crash opportunity per domain"
        );
    }
}
