//! # PM-octree — a persistent merged octree for NVBM
//!
//! Reproduction of the data structure from *"Large-Scale Adaptive Mesh
//! Simulations Through Non-Volatile Byte-Addressable Memory"* (SC'17):
//! a multi-version octree that lives partly in DRAM (the hot `C0`
//! subtrees) and partly in emulated NVBM (the `C1` tree plus the previous
//! persistent version `V_{i-1}`).
//!
//! Key properties, each enforced by tests in the corresponding module:
//!
//! * **Crash consistency without fences** — updates are copy-on-write;
//!   `V_{i-1}` is immutable until the single atomic root swap at
//!   [`PmOctree::persist`]. Arbitrary loss/reordering of unflushed
//!   cachelines cannot corrupt the persisted version ([`c1`]).
//! * **Structural sharing** — unchanged subtrees are shared between
//!   versions; merging diffs against a shadow image so that quiet time
//!   steps persist almost for free ([`c1::merge_subtree`]).
//! * **Deferred deletion + mark-and-sweep GC** — deletes never write
//!   shared octants; space is reclaimed by [`gc`], whose mark pass also
//!   rebuilds the allocator after a crash.
//! * **Feature-directed dynamic layout transformation** — application
//!   feature functions are pre-executed on sampled octants to decide
//!   which subtrees deserve DRAM ([`sampling`], [`transform`]).
//! * **Orthogonal persistence** — the Table 1 interface
//!   (`pm_create` / `pm_persistent` / `pm_restore` / `pm_delete`) is
//!   [`PmOctree::create`] / [`PmOctree::persist`] / [`PmOctree::restore`]
//!   / [`PmOctree::delete`]; persistent-pointer management is entirely
//!   internal.
//!
//! ```
//! use pm_octree::{PmConfig, PmOctree};
//! use pmoctree_morton::OctKey;
//! use pmoctree_nvbm::{DeviceModel, NvbmArena};
//!
//! let arena = NvbmArena::new(8 << 20, DeviceModel::default());
//! let mut tree = PmOctree::create(arena, PmConfig::default());
//! tree.refine(OctKey::root()).unwrap();
//! tree.persist(); // V_{i-1} := V_i, crash-safe from here
//! assert_eq!(tree.leaf_count(), 8);
//! ```
#![warn(missing_docs)]
// Restore and recovery must never panic on what they find on the media;
// corruption is reported as `PmError::Corrupt`. The lint keeps `unwrap()`
// out of the crate wholesale — the few provably-infallible sites carry an
// explicit `#[allow]` with their proof, and tests opt out per-module.
#![warn(clippy::unwrap_used)]

pub mod api;
pub mod c0;
pub mod c1;
pub mod config;
pub mod domains;
pub mod gc;
pub mod octant;
pub mod replica;
pub mod sampling;
pub mod transform;
pub mod verify;

pub use api::{Events, PersistHook, PersistPhase, PmError, PmOctree};
pub use config::{PmConfig, PmConfigBuilder};
pub use domains::DomainOp;
pub use gc::GcReport;
pub use octant::{CellData, ChildPtr, OctAccess, Octant, PmStore, ShardStore, FANOUT, OCTANT_SIZE};
pub use replica::ReplicaSet;
pub use sampling::FeatureFn;
pub use verify::{check_invariants, scan_tree, RecoveryReport, TreeScan};
