//! Tunables of the PM-octree (§3 defaults).

/// Configuration for a [`PmOctree`](crate::api::PmOctree).
///
/// `PartialEq` lets recovery paths assert that a restored tree runs
/// under the exact config it crashed with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmConfig {
    /// DRAM capacity reserved for the C0 tree, in octants (the paper
    /// configures this in GB — 8 GB default; we configure in octants:
    /// `bytes / 128`).
    pub c0_capacity_octants: usize,
    /// Merge a least-frequently-accessed C0 subtree out to C1 when C0
    /// holds more than this fraction of its capacity
    /// (`threshold_DRAM` in §3.2).
    pub threshold_dram: f64,
    /// Run GC on demand when the NVBM free fraction drops below this
    /// (`threshold_NVBM` in §3.2).
    pub threshold_nvbm: f64,
    /// Number of octants sampled per subtree by feature-directed sampling;
    /// the effective count is `min(n_sample, subtree_size)` (§3.3).
    pub n_sample: usize,
    /// Transformation threshold `T_transform`: re-layout when the hottest
    /// NVBM subtree's access frequency exceeds the coldest DRAM subtree's
    /// by this factor (§3.3, "set empirically").
    pub t_transform: f64,
    /// Enable the dynamic layout transformation (§3.3). Off reproduces
    /// the "without transformation" arm of Fig. 11.
    pub dynamic_transform: bool,
    /// Seed new DRAM subtrees on first refinement at eligible levels
    /// (first-come-first-served placement — the "brute-force" layout the
    /// paper contrasts with the feature-directed one). Disable to study
    /// transformation in isolation.
    pub seed_c0: bool,
    /// Keep remote replicas of `V_{i-1}` (§3.4, user-enabled feature).
    pub replicas: bool,
    /// Use the wear-aware (FIFO-rotating) block reuse policy instead of
    /// LIFO, spreading writes across the device ("extend the lifetime of
    /// NVBM", §5.5; Table 2 endurance).
    pub wear_leveling: bool,
    /// Tree level at which batched mutations shard into concurrent write
    /// domains: every octant key at or below this level belongs to the
    /// domain of its level-`domain_level` ancestor (so `1` gives up to 8
    /// domains, `2` up to 64). Batches always shard — for any worker
    /// count — so results are byte-identical whether 1 or N workers
    /// execute the domains.
    pub domain_level: u8,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig {
            c0_capacity_octants: 64 * 1024,
            threshold_dram: 0.9,
            threshold_nvbm: 0.1,
            n_sample: 100,
            t_transform: 1.5,
            dynamic_transform: true,
            seed_c0: true,
            replicas: false,
            wear_leveling: false,
            domain_level: 1,
        }
    }
}

impl PmConfig {
    /// Express the C0 capacity as simulated DRAM bytes (128 B/octant).
    pub fn c0_capacity_bytes(&self) -> usize {
        self.c0_capacity_octants * crate::octant::OCTANT_SIZE
    }

    /// Build a config whose C0 holds `bytes` of DRAM, like the paper's
    /// "8GB DRAM is configured to store the octants of the C0 tree".
    pub fn with_c0_bytes(mut self, bytes: usize) -> Self {
        self.c0_capacity_octants = bytes / crate::octant::OCTANT_SIZE;
        self
    }

    /// Validating builder, starting from [`PmConfig::default`]. Prefer
    /// this over field-literal construction: [`PmConfigBuilder::build`]
    /// rejects configurations the runtime would silently misbehave under
    /// (zero DRAM capacity, thresholds outside their ranges, a zero
    /// sampling rate).
    pub fn builder() -> PmConfigBuilder {
        PmConfigBuilder { cfg: PmConfig::default() }
    }
}

/// Builder for [`PmConfig`]; see [`PmConfig::builder`].
#[derive(Clone, Copy, Debug)]
pub struct PmConfigBuilder {
    cfg: PmConfig,
}

impl PmConfigBuilder {
    /// DRAM (C0) capacity in octants.
    pub fn c0_capacity_octants(mut self, n: usize) -> Self {
        self.cfg.c0_capacity_octants = n;
        self
    }

    /// DRAM (C0) capacity in bytes (128 B/octant).
    pub fn c0_capacity_bytes(mut self, bytes: usize) -> Self {
        self.cfg.c0_capacity_octants = bytes / crate::octant::OCTANT_SIZE;
        self
    }

    /// `threshold_DRAM`: C0 eviction high-water fraction, in `(0, 1]`.
    pub fn threshold_dram(mut self, v: f64) -> Self {
        self.cfg.threshold_dram = v;
        self
    }

    /// `threshold_NVBM`: on-demand GC low-water free fraction, in `[0, 1)`.
    pub fn threshold_nvbm(mut self, v: f64) -> Self {
        self.cfg.threshold_nvbm = v;
        self
    }

    /// Octants sampled per subtree by feature-directed sampling (≥ 1).
    pub fn n_sample(mut self, n: usize) -> Self {
        self.cfg.n_sample = n;
        self
    }

    /// Transformation threshold `T_transform` (must exceed 1).
    pub fn t_transform(mut self, v: f64) -> Self {
        self.cfg.t_transform = v;
        self
    }

    /// Enable/disable the §3.3 dynamic layout transformation.
    pub fn dynamic_transform(mut self, on: bool) -> Self {
        self.cfg.dynamic_transform = on;
        self
    }

    /// Enable/disable first-refinement C0 seeding.
    pub fn seed_c0(mut self, on: bool) -> Self {
        self.cfg.seed_c0 = on;
        self
    }

    /// Keep remote replicas of `V_{i-1}`.
    pub fn replicas(mut self, on: bool) -> Self {
        self.cfg.replicas = on;
        self
    }

    /// Use the wear-aware block reuse policy.
    pub fn wear_leveling(mut self, on: bool) -> Self {
        self.cfg.wear_leveling = on;
        self
    }

    /// Write-domain sharding level for batched mutations (≤ 5).
    pub fn domain_level(mut self, level: u8) -> Self {
        self.cfg.domain_level = level;
        self
    }

    /// Validate and produce the config. Violations come back as
    /// [`PmError::Recovery`](crate::PmError::Recovery) naming the field.
    pub fn build(self) -> Result<PmConfig, crate::api::PmError> {
        use crate::api::PmError;
        let c = self.cfg;
        if c.c0_capacity_octants == 0 {
            return Err(PmError::Recovery("c0_capacity_octants must be nonzero".into()));
        }
        if !(c.threshold_dram > 0.0 && c.threshold_dram <= 1.0) {
            return Err(PmError::Recovery(format!(
                "threshold_dram {} outside (0, 1]",
                c.threshold_dram
            )));
        }
        if !(0.0..1.0).contains(&c.threshold_nvbm) {
            return Err(PmError::Recovery(format!(
                "threshold_nvbm {} outside [0, 1)",
                c.threshold_nvbm
            )));
        }
        if c.n_sample == 0 {
            return Err(PmError::Recovery("n_sample must be at least 1".into()));
        }
        // `<= 1.0` would accept NaN; an explicit partial_cmp rejects it.
        if c.t_transform.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
            return Err(PmError::Recovery(format!(
                "t_transform {} must exceed 1 (a ratio at which a swap pays off)",
                c.t_transform
            )));
        }
        if c.domain_level > 5 {
            return Err(PmError::Recovery(format!(
                "domain_level {} too deep (8^level domains; 5 is already 32768)",
                c.domain_level
            )));
        }
        Ok(c)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = PmConfig::default();
        assert!(c.threshold_dram > 0.0 && c.threshold_dram <= 1.0);
        assert!(c.threshold_nvbm >= 0.0 && c.threshold_nvbm < 1.0);
        assert_eq!(c.n_sample, 100);
        assert!(c.t_transform > 1.0);
    }

    #[test]
    fn c0_bytes_roundtrip() {
        let c = PmConfig::default().with_c0_bytes(1 << 20);
        assert_eq!(c.c0_capacity_octants, (1 << 20) / 128);
        assert_eq!(c.c0_capacity_bytes(), 1 << 20);
    }

    #[test]
    fn builder_accepts_defaults_and_setters() {
        let c = PmConfig::builder().build().unwrap();
        assert_eq!(c.n_sample, PmConfig::default().n_sample);
        let c = PmConfig::builder()
            .c0_capacity_bytes(1 << 20)
            .threshold_dram(0.5)
            .threshold_nvbm(0.2)
            .n_sample(10)
            .t_transform(2.0)
            .dynamic_transform(false)
            .seed_c0(false)
            .replicas(true)
            .wear_leveling(true)
            .build()
            .unwrap();
        assert_eq!(c.c0_capacity_octants, (1 << 20) / 128);
        assert!(c.replicas && c.wear_leveling);
        assert!(!c.dynamic_transform && !c.seed_c0);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        use crate::api::PmError;
        let bad = [
            PmConfig::builder().c0_capacity_octants(0).build(),
            PmConfig::builder().threshold_dram(0.0).build(),
            PmConfig::builder().threshold_dram(1.5).build(),
            PmConfig::builder().threshold_nvbm(1.0).build(),
            PmConfig::builder().threshold_nvbm(-0.1).build(),
            PmConfig::builder().n_sample(0).build(),
            PmConfig::builder().t_transform(1.0).build(),
            PmConfig::builder().threshold_dram(f64::NAN).build(),
            PmConfig::builder().domain_level(6).build(),
        ];
        for b in bad {
            assert!(matches!(b, Err(PmError::Recovery(_))), "{b:?}");
        }
    }
}
