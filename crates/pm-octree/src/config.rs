//! Tunables of the PM-octree (§3 defaults).

/// Configuration for a [`PmOctree`](crate::api::PmOctree).
#[derive(Clone, Copy, Debug)]
pub struct PmConfig {
    /// DRAM capacity reserved for the C0 tree, in octants (the paper
    /// configures this in GB — 8 GB default; we configure in octants:
    /// `bytes / 128`).
    pub c0_capacity_octants: usize,
    /// Merge a least-frequently-accessed C0 subtree out to C1 when C0
    /// holds more than this fraction of its capacity
    /// (`threshold_DRAM` in §3.2).
    pub threshold_dram: f64,
    /// Run GC on demand when the NVBM free fraction drops below this
    /// (`threshold_NVBM` in §3.2).
    pub threshold_nvbm: f64,
    /// Number of octants sampled per subtree by feature-directed sampling;
    /// the effective count is `min(n_sample, subtree_size)` (§3.3).
    pub n_sample: usize,
    /// Transformation threshold `T_transform`: re-layout when the hottest
    /// NVBM subtree's access frequency exceeds the coldest DRAM subtree's
    /// by this factor (§3.3, "set empirically").
    pub t_transform: f64,
    /// Enable the dynamic layout transformation (§3.3). Off reproduces
    /// the "without transformation" arm of Fig. 11.
    pub dynamic_transform: bool,
    /// Seed new DRAM subtrees on first refinement at eligible levels
    /// (first-come-first-served placement — the "brute-force" layout the
    /// paper contrasts with the feature-directed one). Disable to study
    /// transformation in isolation.
    pub seed_c0: bool,
    /// Keep remote replicas of `V_{i-1}` (§3.4, user-enabled feature).
    pub replicas: bool,
    /// Use the wear-aware (FIFO-rotating) block reuse policy instead of
    /// LIFO, spreading writes across the device ("extend the lifetime of
    /// NVBM", §5.5; Table 2 endurance).
    pub wear_leveling: bool,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig {
            c0_capacity_octants: 64 * 1024,
            threshold_dram: 0.9,
            threshold_nvbm: 0.1,
            n_sample: 100,
            t_transform: 1.5,
            dynamic_transform: true,
            seed_c0: true,
            replicas: false,
            wear_leveling: false,
        }
    }
}

impl PmConfig {
    /// Express the C0 capacity as simulated DRAM bytes (128 B/octant).
    pub fn c0_capacity_bytes(&self) -> usize {
        self.c0_capacity_octants * crate::octant::OCTANT_SIZE
    }

    /// Build a config whose C0 holds `bytes` of DRAM, like the paper's
    /// "8GB DRAM is configured to store the octants of the C0 tree".
    pub fn with_c0_bytes(mut self, bytes: usize) -> Self {
        self.c0_capacity_octants = bytes / crate::octant::OCTANT_SIZE;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = PmConfig::default();
        assert!(c.threshold_dram > 0.0 && c.threshold_dram <= 1.0);
        assert!(c.threshold_nvbm >= 0.0 && c.threshold_nvbm < 1.0);
        assert_eq!(c.n_sample, 100);
        assert!(c.t_transform > 1.0);
    }

    #[test]
    fn c0_bytes_roundtrip() {
        let c = PmConfig::default().with_c0_bytes(1 << 20);
        assert_eq!(c.c0_capacity_octants, (1 << 20) / 128);
        assert_eq!(c.c0_capacity_bytes(), 1 << 20);
    }
}
