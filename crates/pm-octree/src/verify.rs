//! Recovery invariant checking.
//!
//! After a crash, [`PmOctree::restore`](crate::PmOctree::restore) must hand
//! back *exactly* the last persisted version — nothing else is acceptable.
//! This module provides the two halves of that proof:
//!
//! * [`scan_tree`] — a **validated** reachability pass over the media.
//!   Unlike [`gc::mark`](crate::gc::mark), which trusts every pointer it
//!   follows (and would panic inside the arena on a torn offset), the scan
//!   checks each step before taking it: bounds, cacheline alignment,
//!   key/position consistency, no cycles, no reachable deleted octants, no
//!   volatile handles in a persisted tree. A violation is reported as
//!   [`PmError::Corrupt`] instead of a panic, so callers can distinguish
//!   "this crash image is unrecoverable" from "the process blew up".
//! * [`check_invariants`] — the post-restore contract: the structure is
//!   closed, the rebuilt leaf index agrees with a direct tree walk, no
//!   reachable octant sits on the allocator free list, and a GC pass finds
//!   zero orphans (recovery already reclaimed every one).
//!
//! The remaining tentpole invariant — the restored tree equals `V_i` or
//! `V_{i-1}` byte-for-byte — needs the pre-crash leaf snapshots and lives
//! in the sweep driver (`bench`), which records them.

use std::collections::{HashMap, HashSet};

use pmoctree_morton::OctKey;
use pmoctree_nvbm::{POffset, CACHELINE, HEADER_SIZE};

use crate::api::{PmError, PmOctree};
use crate::gc;
use crate::octant::{ChildPtr, OctAccess, PmStore, OCTANT_SIZE};

/// What a validated scan learned about the tree below one root.
#[derive(Debug, Clone, Default)]
pub struct TreeScan {
    /// Every reachable octant offset, sorted ascending.
    pub live: Vec<POffset>,
    /// Reachable leaf count.
    pub leaves: usize,
    /// Deepest reachable refinement level.
    pub depth: u8,
    /// Highest creation epoch among reachable octants. Recovery must
    /// resume *above* this — the header epoch alone is not enough when the
    /// crash hit between the root swap and the epoch publish.
    pub max_epoch: u32,
}

/// Is `p` a plausible octant offset for this arena? Checked before any
/// read, because the arena itself asserts on out-of-range access.
fn check_offset(p: POffset, capacity: u64, what: &str) -> Result<(), PmError> {
    if p.0 < HEADER_SIZE || p.0.saturating_add(OCTANT_SIZE as u64) > capacity {
        return Err(PmError::Corrupt(format!(
            "{what} {:#x} out of bounds (capacity {capacity:#x})",
            p.0
        )));
    }
    if !p.0.is_multiple_of(CACHELINE as u64) {
        return Err(PmError::Corrupt(format!("{what} {:#x} not cacheline aligned", p.0)));
    }
    Ok(())
}

/// Decode a key only after proving `from_raw` would accept it.
fn checked_key(p: POffset, code: u64, level: u8) -> Result<OctKey, PmError> {
    if level > OctKey::MAX_LEVEL {
        return Err(PmError::Corrupt(format!(
            "octant {:#x}: level {level} exceeds max {}",
            p.0,
            OctKey::MAX_LEVEL
        )));
    }
    let bits = level as u32 * 3;
    if bits < 64 && code >> bits != 0 {
        return Err(PmError::Corrupt(format!(
            "octant {:#x}: code {code:#x} has bits above level {level}",
            p.0
        )));
    }
    Ok(OctKey::from_raw(code, level))
}

/// Validated reachability scan from `root`. Every pointer is checked
/// before it is followed; structural violations come back as
/// [`PmError::Corrupt`] describing the first problem found.
pub fn scan_tree(store: &mut PmStore, root: POffset) -> Result<TreeScan, PmError> {
    let capacity = store.arena.capacity() as u64;
    check_offset(root, capacity, "root")?;
    let mut scan = TreeScan::default();
    let mut seen: HashSet<POffset> = HashSet::new();
    let mut expected: HashMap<POffset, OctKey> = HashMap::new();
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        if !seen.insert(p) {
            return Err(PmError::Corrupt(format!(
                "octant {:#x} reachable along two paths (cycle or aliased child slot)",
                p.0
            )));
        }
        // The whole hot line — children, raw key, flags, mask, epoch —
        // arrives in one validated read; a torn child link surfaces as
        // `Corrupt` here instead of a decode panic.
        let nav = store.nav_line_checked(p)?;
        let key = checked_key(p, nav.code, nav.level)?;
        if let Some(want) = expected.remove(&p) {
            if key != want {
                return Err(PmError::Corrupt(format!(
                    "octant {:#x}: key {key:?} does not match its position {want:?}",
                    p.0
                )));
            }
        }
        if nav.deleted {
            return Err(PmError::Corrupt(format!(
                "octant {:#x} ({key:?}) reachable but flagged deleted",
                p.0
            )));
        }
        // The presence mask is redundant with the links; a disagreement
        // means a torn navigation line.
        let links_mask =
            nav.children
                .iter()
                .enumerate()
                .fold(0u8, |m, (i, c)| if c.is_null() { m } else { m | 1 << i });
        if links_mask != nav.mask {
            return Err(PmError::Corrupt(format!(
                "octant {:#x} ({key:?}): presence mask {:#04x} disagrees with child links {links_mask:#04x}",
                p.0, nav.mask
            )));
        }
        // Parent pointers are advisory (merge leaves them null; no
        // algorithm walks upward) but a non-null one must still look like
        // an octant — a garbage value here means a torn identity line.
        let parent = store.parent(p);
        if !parent.is_null() {
            check_offset(parent, capacity, "parent pointer")?;
        }
        scan.max_epoch = scan.max_epoch.max(nav.epoch);
        scan.depth = scan.depth.max(key.level());
        let mut leaf = true;
        for (i, c) in nav.children.into_iter().enumerate() {
            match c {
                ChildPtr::Null => {}
                ChildPtr::Volatile(id) => {
                    return Err(PmError::Corrupt(format!(
                        "octant {:#x} ({key:?}): child {i} is volatile handle {id} — DRAM pointers must never be reachable from a persisted root",
                        p.0
                    )));
                }
                ChildPtr::Nvbm(q) => {
                    leaf = false;
                    check_offset(q, capacity, "child pointer")?;
                    if key.level() >= OctKey::MAX_LEVEL {
                        return Err(PmError::Corrupt(format!(
                            "octant {:#x} at max level {} has children",
                            p.0,
                            OctKey::MAX_LEVEL
                        )));
                    }
                    expected.insert(q, key.child(i));
                    stack.push(q);
                }
            }
        }
        if leaf {
            scan.leaves += 1;
        }
        scan.live.push(p);
    }
    scan.live.sort_unstable();
    Ok(scan)
}

/// Report from a successful [`check_invariants`] pass.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Reachable octants in the recovered version.
    pub live: usize,
    /// Leaves in the recovered version.
    pub leaves: usize,
    /// Depth of the recovered version.
    pub depth: u8,
}

/// Post-restore invariant check. Call on a freshly
/// [`restore`](crate::PmOctree::restore)d tree; any violated invariant is
/// reported as [`PmError::Corrupt`].
///
/// Checks, in order:
/// 1. the recovery root (slot 1) names a structurally closed tree
///    ([`scan_tree`]) whose leaf/depth counts match the handle's;
/// 2. rebuilding the leaf index gives exactly the leaf set a direct tree
///    walk finds;
/// 3. no reachable octant overlaps a block on the allocator free list;
/// 4. a GC pass from the recovered roots finds zero orphans and the
///    allocator's live byte count equals the reachable set — recovery
///    already reclaimed every orphan.
pub fn check_invariants(t: &mut PmOctree) -> Result<RecoveryReport, PmError> {
    // (1) Structural closure from the recovery root.
    let root = t.store.arena.root(1);
    if root.is_null() {
        return Err(PmError::Corrupt("recovery root (slot 1) is null".into()));
    }
    let scan = scan_tree(&mut t.store, root)?;
    if scan.leaves != t.leaf_count() {
        return Err(PmError::Corrupt(format!(
            "handle says {} leaves, scan found {}",
            t.leaf_count(),
            scan.leaves
        )));
    }
    if scan.depth != t.depth() {
        return Err(PmError::Corrupt(format!(
            "handle says depth {}, scan found {}",
            t.depth(),
            scan.depth
        )));
    }
    // (2) Leaf index rebuild matches a direct tree walk.
    let walk: Vec<OctKey> = {
        let mut keys = Vec::with_capacity(scan.leaves);
        t.for_each_leaf(|k, _| keys.push(k));
        keys.sort_by(|a, b| a.zcmp(b));
        keys
    };
    let indexed = t.leaf_keys_sorted();
    if indexed != walk {
        return Err(PmError::Corrupt(format!(
            "leaf index ({} entries) disagrees with tree walk ({} leaves)",
            indexed.len(),
            walk.len()
        )));
    }
    // (3) Free-list disjointness: no free block may overlap a live octant.
    // Both sides are cacheline-granular, so compare by occupied lines.
    let mut live_lines: HashSet<u64> = HashSet::new();
    for &p in &scan.live {
        let mut off = p.0;
        while off < p.0 + OCTANT_SIZE as u64 {
            live_lines.insert(off);
            off += CACHELINE as u64;
        }
    }
    for (block, cls) in t.store.alloc.free_blocks() {
        let mut off = block.0;
        while off < block.0 + cls as u64 {
            if live_lines.contains(&off) {
                return Err(PmError::Corrupt(format!(
                    "free block {:#x}+{cls} overlaps a reachable octant at line {off:#x}",
                    block.0
                )));
            }
            off += CACHELINE as u64;
        }
    }
    // (4) GC from the recovered roots reclaims nothing: restore already
    // dropped every orphan when it rebuilt the registry and allocator.
    let roots = [t.current_root, t.prev_root];
    let report = gc::collect(&mut t.store, &roots);
    if report.freed != 0 {
        return Err(PmError::Corrupt(format!(
            "GC after recovery freed {} orphans — restore did not rebuild the live set",
            report.freed
        )));
    }
    if report.live != scan.live.len() {
        return Err(PmError::Corrupt(format!(
            "GC sees {} live octants, validated scan found {}",
            report.live,
            scan.live.len()
        )));
    }
    let live_bytes = (scan.live.len() * OCTANT_SIZE) as u64;
    if t.store.alloc.live_bytes() != live_bytes {
        return Err(PmError::Corrupt(format!(
            "allocator reports {} live bytes, reachable set occupies {live_bytes}",
            t.store.alloc.live_bytes()
        )));
    }
    Ok(RecoveryReport { live: scan.live.len(), leaves: scan.leaves, depth: scan.depth })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::PmConfig;
    use crate::octant::CellData;
    use pmoctree_nvbm::{CrashMode, DeviceModel, NvbmArena};

    fn arena() -> NvbmArena {
        NvbmArena::new(4 << 20, DeviceModel::default())
    }

    fn cfg() -> PmConfig {
        PmConfig { dynamic_transform: false, ..PmConfig::default() }
    }

    #[test]
    fn scan_matches_clean_tree() {
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(2)).unwrap();
        t.persist();
        let root = t.store.arena.root(1);
        let scan = scan_tree(&mut t.store, root).unwrap();
        assert_eq!(scan.leaves, 15);
        assert_eq!(scan.depth, 2);
        assert_eq!(scan.live.len(), 17);
    }

    #[test]
    fn check_invariants_passes_after_clean_restore() {
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.set_data(OctKey::root().child(3), CellData { phi: 1.0, ..Default::default() }).unwrap();
        t.persist();
        t.refine(OctKey::root().child(1)).unwrap(); // unpersisted
        let mut a = {
            let PmOctree { store, .. } = t;
            store.arena
        };
        a.crash(CrashMode::LoseDirty);
        let mut r = PmOctree::restore(a, cfg()).unwrap();
        let rep = check_invariants(&mut r).unwrap();
        assert_eq!(rep.leaves, 8);
    }

    /// Overwrite child link slot `i` (a 6-byte field at record offset
    /// `6*i`) with the raw 48-bit value `raw`.
    fn poison_link(t: &mut PmOctree, p: POffset, i: u64, raw: u64) {
        t.store.arena.write(p.0 + 6 * i, &raw.to_le_bytes()[..6]);
    }

    #[test]
    fn scan_rejects_out_of_bounds_child() {
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let root = t.store.arena.root(1);
        // Corrupt child slot 0 with a huge offset (links store offset/64).
        poison_link(&mut t, root, 0, (1u64 << 40) >> 6);
        let err = scan_tree(&mut t.store, root).unwrap_err();
        assert!(matches!(err, PmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn scan_rejects_misaligned_parent() {
        // The compact /64 link encoding cannot express a misaligned child,
        // so the alignment check is exercised through the parent pointer
        // (still a raw u64 on the cold line).
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let root = t.store.arena.root(1);
        let c0 = match t.store.child(root, 0) {
            ChildPtr::Nvbm(p) => p,
            other => panic!("expected NVBM child, got {other:?}"),
        };
        t.store.arena.write(c0.0 + 64, &0x1234u64.to_le_bytes()); // 0x1234 % 64 != 0
        let err = scan_tree(&mut t.store, root).unwrap_err();
        assert!(err.to_string().contains("aligned"), "{err}");
    }

    #[test]
    fn scan_rejects_cycle() {
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let root = t.store.arena.root(1);
        // Point child 0 of the root back at the root itself.
        poison_link(&mut t, root, 0, root.0 >> 6);
        let err = scan_tree(&mut t.store, root).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("two paths") || msg.contains("does not match"), "{msg}");
    }

    #[test]
    fn scan_rejects_bad_key_level() {
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let root = t.store.arena.root(1);
        // Overwrite the root's level byte (hot-line offset 56) with garbage.
        t.store.arena.write(root.0 + 56, &[200u8]);
        let err = scan_tree(&mut t.store, root).unwrap_err();
        assert!(err.to_string().contains("level"), "{err}");
    }

    #[test]
    fn scan_rejects_volatile_handle() {
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let root = t.store.arena.root(1);
        poison_link(&mut t, root, 1, (1u64 << 47) | 5);
        let err = scan_tree(&mut t.store, root).unwrap_err();
        assert!(err.to_string().contains("volatile"), "{err}");
    }

    #[test]
    fn scan_rejects_mask_link_mismatch() {
        let mut t = PmOctree::create(arena(), cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let root = t.store.arena.root(1);
        // Zero the presence mask (hot-line offset 58) while the eight
        // child links stay populated: a torn navigation line.
        t.store.arena.write(root.0 + 58, &[0u8]);
        let err = scan_tree(&mut t.store, root).unwrap_err();
        assert!(err.to_string().contains("mask"), "{err}");
    }
}
