//! Remote replicas of the persistent version (§3.4).
//!
//! When the crashed node will not come back, `V_{i-1}` must exist
//! somewhere else. PM-octree keeps a peer copy `V_{i-1}^P` and ships only
//! the *differences* between consecutive persistent versions — cheap
//! because of the high overlap ratio between adjacent time steps.
//!
//! The replica here is a byte image of the NVBM device kept in sync by
//! deltas; the `cluster` crate charges its network model with
//! [`ReplicaSet::last_delta_bytes`] per persist and
//! [`ReplicaSet::live_bytes`] on a new-node restore.

use pmoctree_nvbm::{NvbmArena, POffset, HEADER_SIZE};

use crate::octant::OCTANT_SIZE;

/// A peer-node copy of the persistent octree image.
#[derive(Debug, Default, Clone)]
pub struct ReplicaSet {
    image: Vec<u8>,
    /// Bytes shipped over the lifetime of the replica.
    pub bytes_shipped_total: u64,
    /// Bytes shipped by the most recent delta (or full sync).
    pub last_delta_bytes: u64,
    /// Octant payload bytes currently live in the replica (transfer size
    /// for a new-node restore).
    live_octant_bytes: u64,
}

impl ReplicaSet {
    /// An empty, unsynced replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full synchronization: copy the whole (flushed) device image. Done
    /// once at creation; afterwards only deltas are shipped.
    pub fn full_sync(&mut self, arena: &mut NvbmArena) {
        self.image = arena.clone_media();
        let shipped = self.image.len() as u64;
        self.bytes_shipped_total += shipped;
        self.last_delta_bytes = shipped;
        self.live_octant_bytes = shipped;
    }

    /// Ship the delta for one persist: the header, every octant created
    /// by the just-persisted epoch, and any `extra` byte regions (the
    /// `pm-rt` root bundle — object blobs and table written since the
    /// last ship), so a new node resurrects the whole rank, not just the
    /// mesh. Reads everything back from the arena (charging NVBM read
    /// latency, as the real system would).
    pub fn push_delta(
        &mut self,
        arena: &mut NvbmArena,
        new_octants: &[POffset],
        extra: &[(u64, u32)],
    ) {
        assert!(!self.image.is_empty(), "push_delta before full_sync");
        // Header (contains the new roots and epoch — the octree's and the
        // runtime's: both live in the first header line's 256 bytes).
        let mut header = vec![0u8; HEADER_SIZE as usize];
        arena.read(0, &mut header);
        self.image[..HEADER_SIZE as usize].copy_from_slice(&header);
        let mut shipped = HEADER_SIZE;
        let mut buf = [0u8; OCTANT_SIZE];
        for &p in new_octants {
            arena.read(p.0, &mut buf);
            self.image[p.0 as usize..p.0 as usize + OCTANT_SIZE].copy_from_slice(&buf);
            shipped += OCTANT_SIZE as u64;
        }
        for &(off, len) in extra {
            let mut region = vec![0u8; len as usize];
            arena.read(off, &mut region);
            self.image[off as usize..off as usize + len as usize].copy_from_slice(&region);
            shipped += len as u64;
        }
        self.bytes_shipped_total += shipped;
        self.last_delta_bytes = shipped;
        arena.tracer.counter_add("replica.bytes_shipped", shipped);
        arena.tracer.counter_add("replica.deltas", 1);
    }

    /// The current replica image (restore onto a fresh node's NVBM).
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Transfer size for a new-node restore.
    pub fn live_bytes(&self) -> u64 {
        self.live_octant_bytes.min(self.image.len() as u64)
    }

    /// Has the replica ever been synced?
    pub fn is_synced(&self) -> bool {
        !self.image.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {

    use crate::api::PmOctree;
    use crate::config::PmConfig;
    use crate::octant::CellData;
    use pmoctree_morton::OctKey;
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn cfg() -> PmConfig {
        PmConfig { replicas: true, dynamic_transform: false, ..PmConfig::default() }
    }

    #[test]
    fn replica_tracks_persists() {
        let mut t = PmOctree::create(NvbmArena::new(8 << 20, DeviceModel::default()), cfg());
        assert!(t.replicas.as_ref().unwrap().is_synced());
        let full = t.replicas.as_ref().unwrap().bytes_shipped_total;
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let r = t.replicas.as_ref().unwrap();
        assert!(r.bytes_shipped_total > full);
        // The delta is small relative to the full image.
        assert!(r.last_delta_bytes < full / 10, "delta {} vs full {full}", r.last_delta_bytes);
    }

    #[test]
    fn restore_on_new_node_from_replica() {
        let mut t = PmOctree::create(NvbmArena::new(8 << 20, DeviceModel::default()), cfg());
        t.refine(OctKey::root()).unwrap();
        t.set_data(OctKey::root().child(6), CellData { vof: 0.66, ..Default::default() }).unwrap();
        t.persist();
        let persisted = t.leaves_sorted();
        let replica = t.replicas.as_ref().unwrap().clone();
        // The node is gone: build a brand-new arena from the replica.
        let fresh = NvbmArena::new(8 << 20, DeviceModel::default());
        let (mut r, moved) =
            PmOctree::restore_from_replica(fresh, &replica, PmConfig::default()).unwrap();
        assert!(moved > 0);
        assert_eq!(r.leaves_sorted(), persisted);
        assert_eq!(r.get_data(OctKey::root().child(6)).unwrap().vof, 0.66);
    }

    #[test]
    fn deltas_shrink_with_overlap() {
        let mut t = PmOctree::create(NvbmArena::new(8 << 20, DeviceModel::default()), cfg());
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            t.refine(OctKey::root().child(i)).unwrap();
        }
        t.persist();
        let big_delta = t.replicas.as_ref().unwrap().last_delta_bytes;
        // A step that changes one octant ships a far smaller delta.
        t.set_data(OctKey::root().child(0).child(0), CellData { phi: 1.0, ..Default::default() })
            .unwrap();
        t.persist();
        let small_delta = t.replicas.as_ref().unwrap().last_delta_bytes;
        assert!(small_delta < big_delta / 2, "{small_delta} vs {big_delta}");
    }
}
