//! The PM-octree programming interface (§3.4, Table 1).
//!
//! [`PmOctree`] realizes *orthogonal persistence*: the application meshes
//! and solves against one logical octree; the library decides which
//! octants live in DRAM (`C0`) vs NVBM (`C1`), performs copy-on-write
//! versioning, and manages every persistent pointer. The Table 1 entry
//! points map to:
//!
//! | paper              | here                  |
//! |--------------------|-----------------------|
//! | `pm_create`        | [`PmOctree::create`]  |
//! | `pm_persistent`    | [`PmOctree::persist`] |
//! | `pm_restore`       | [`PmOctree::restore`] |
//! | `pm_delete`        | [`PmOctree::delete`]  |

use pmoctree_morton::{LeafIndex, OctKey};
use pmoctree_nvbm::{NvbmArena, POffset, RecKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::c0::{C0Forest, C0Tree};
use crate::c1::{self, Locate};
use crate::config::PmConfig;
use crate::domains;
use crate::gc::{self, GcReport};
use crate::octant::{CellData, ChildPtr, OctAccess, Octant, PmStore};
use crate::replica::ReplicaSet;
use crate::sampling::{self, FeatureFn};

/// Application-state commit hook run inside [`PmOctree::persist_with_hook`]
/// between the tree root swap and GC; returns the byte regions it wrote
/// (shipped with the persist's replica delta), or the error that stopped
/// its commit — in which case the persist skips GC and replica shipping
/// (see [`PmOctree::persist_with_hook`]).
pub type PersistHook<'a> = dyn FnMut(&mut NvbmArena) -> Result<Vec<(u64, u32)>, PmError> + 'a;

/// Phases of the persist protocol, for failpoint testing
/// ([`PmOctree::persist_with_failpoint`]). A crash after `Merge` or
/// `Flush` recovers the *previous* version; after `RootSwapHalf` or
/// `RootSwap`, the *new* version (root slot 1 — the recovery root — is
/// written last, so it always names a fully-flushed tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistPhase {
    /// C0 subtrees merged into NVBM (nothing flushed or published).
    Merge,
    /// All octant data flushed to media; roots not yet swapped.
    Flush,
    /// Root slot 0 updated; recovery slot 1 still points at the old version.
    RootSwapHalf,
    /// Both root slots and the epoch published.
    RootSwap,
}

/// Errors surfaced by the meshing and recovery interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmError {
    /// No octant exists at this key in `V_i`.
    NotFound(String),
    /// Refinement of a non-leaf, or coarsening of a leaf.
    NotALeaf(String),
    /// Coarsening would violate structure (children not all leaves).
    NotCoarsenable(String),
    /// On-media state failed structural validation: an out-of-bounds or
    /// misaligned pointer, a key inconsistent with its position, a cycle,
    /// a reachable deleted octant, or a live octant on the free list.
    /// Recovery and the invariant checker report this instead of
    /// panicking on corrupt media.
    Corrupt(String),
    /// Recovery could not start (unformatted device, no persisted
    /// version) or a configuration was rejected.
    Recovery(String),
    /// A tenant's write would exceed its byte quota (`pm-rt` service
    /// layer). The operation was rejected before touching media.
    QuotaExceeded(String),
    /// An MVCC snapshot handle outlived the state it pinned (media
    /// restored from a replica, or the runtime registry destroyed).
    SnapshotGone(String),
    /// The tenant is exclusively leased (checked out) by another client;
    /// retry after the lease is released.
    TenantBusy(String),
    /// The NVBM device (or a write domain's allocator lease) is full. The
    /// failed mutation left nothing half-linked: COW paths allocate every
    /// copy before the single publication write, so the pre-mutation
    /// version stays intact and restorable; orphaned copies are ordinary
    /// GC garbage.
    Full(String),
}

impl std::fmt::Display for PmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmError::NotFound(k) => write!(f, "octant not found: {k}"),
            PmError::NotALeaf(k) => write!(f, "octant is not a leaf: {k}"),
            PmError::NotCoarsenable(k) => write!(f, "octant cannot be coarsened: {k}"),
            PmError::Corrupt(what) => write!(f, "persistent state corrupt: {what}"),
            PmError::Recovery(what) => write!(f, "recovery failed: {what}"),
            PmError::QuotaExceeded(what) => write!(f, "tenant quota exceeded: {what}"),
            PmError::SnapshotGone(what) => write!(f, "snapshot no longer valid: {what}"),
            PmError::TenantBusy(what) => write!(f, "tenant busy: {what}"),
            PmError::Full(what) => write!(f, "NVBM full: {what}"),
        }
    }
}

impl std::error::Error for PmError {}

/// Operation counters surfaced to the experiment harness.
#[derive(Debug, Default, Clone)]
pub struct Events {
    /// C0→C1 merge operations (pressure evictions + persist merges).
    pub merges: u64,
    /// Of those, merges forced by DRAM pressure (`threshold_DRAM`).
    pub evictions: u64,
    /// Dynamic layout transformations executed.
    pub transforms: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Last GC outcome.
    pub last_gc: Option<GcReport>,
    /// `(octants in V_i, octants shared with V_{i-1})` at the last persist
    /// — the Fig. 3 overlap measurement.
    pub last_overlap: Option<(usize, usize)>,
    /// Persist points executed.
    pub persists: u64,
}

impl Events {
    /// Overlap ratio of the last persist (0 when none yet).
    pub fn overlap_ratio(&self) -> f64 {
        match self.last_overlap {
            Some((total, shared)) if total > 0 => shared as f64 / total as f64,
            _ => 0.0,
        }
    }
}

/// A persistent merged octree over one NVBM device.
pub struct PmOctree {
    /// The NVBM store (public for statistics access).
    pub store: PmStore,
    /// The DRAM (C0) forest.
    pub(crate) forest: C0Forest,
    /// Per-C0-tree NVBM shadow: the subtree image at the last persist
    /// (indexed by volatile id), used for diff-merging.
    pub(crate) shadows: Vec<POffset>,
    /// Configuration.
    pub cfg: PmConfig,
    /// Root of the working version `V_i` (volatile mirror; the header is
    /// only updated at persist points).
    pub(crate) current_root: POffset,
    /// Root of the persisted version `V_{i-1}`.
    pub(crate) prev_root: POffset,
    /// Current working epoch: octants with an older epoch are shared.
    pub(crate) epoch: u32,
    /// Monotone estimate of the deepest refinement level.
    pub(crate) depth: u8,
    /// Leaf count of `V_i`, maintained incrementally.
    pub(crate) leaves: usize,
    /// Application feature functions for §3.3 sampling.
    pub(crate) features: Vec<FeatureFn>,
    /// Operation counters.
    pub events: Events,
    /// Remote replicas of `V_{i-1}` (present when `cfg.replicas`).
    pub replicas: Option<ReplicaSet>,
    pub(crate) rng: StdRng,
    /// Morton-sorted DRAM view of the leaf set, maintained incrementally
    /// on refine/coarsen and rebuilt lazily on first batched query. Slots
    /// are unused (payloads move under COW); the index answers *where*
    /// queries, payload reads still walk to (and charge) the owning tier.
    pub(crate) index: LeafIndex<3>,
}

impl PmOctree {
    /// `pm_create`: format a PM-octree on `arena`, persist an initial
    /// single-root version, and return the handle.
    pub fn create(arena: NvbmArena, cfg: PmConfig) -> Self {
        let mut store = PmStore::new(arena);
        if cfg.wear_leveling {
            store.alloc.set_policy(pmoctree_nvbm::ReusePolicy::WearAware);
        }
        let root_octant = Octant::leaf(OctKey::root(), POffset::NULL, 1, CellData::default());
        let root = store.alloc_octant(&root_octant).expect("arena too small for the root");
        store.arena.flush_all();
        store.arena.set_root(0, root);
        store.arena.set_root(1, root);
        store.arena.set_epoch(1);
        store.arena.set_bump_hint(store.alloc.bump());
        let replicas = cfg.replicas.then(|| {
            let mut r = ReplicaSet::new();
            r.full_sync(&mut store.arena);
            r
        });
        PmOctree {
            store,
            forest: C0Forest::new(),
            shadows: Vec::new(),
            cfg,
            current_root: root,
            prev_root: root,
            epoch: 2,
            depth: 0,
            leaves: 1,
            features: Vec::new(),
            events: Events::default(),
            replicas,
            rng: StdRng::seed_from_u64(0x00C0_FFEE),
            index: LeafIndex::new(),
        }
    }

    /// `pm_restore`: recover from `arena` after a failure on the same
    /// node. Returns a handle whose working tree is exactly the last
    /// persisted version — near-instantaneous: only the header is read,
    /// plus one validated reachability pass to rebuild volatile state.
    ///
    /// The pass ([`crate::verify::scan_tree`]) checks every pointer before
    /// following it, so a device whose persisted tree is structurally
    /// damaged (which the protocol makes impossible for real crashes, but
    /// media corruption can still produce) yields
    /// [`PmError::Corrupt`] rather than a panic. An unformatted or empty
    /// device yields [`PmError::Recovery`].
    pub fn restore(mut arena: NvbmArena, cfg: PmConfig) -> Result<Self, PmError> {
        if !arena.is_formatted() {
            return Err(PmError::Recovery("device is not a PM-octree (bad magic)".into()));
        }
        let prev = arena.root(1);
        Self::restore_at(arena, prev, cfg)
    }

    /// [`PmOctree::restore`] at an explicitly named tree root instead of
    /// the header's recovery slot. The `pm-rt` runtime records which tree
    /// root its committed bundle pairs with; when a crash lands between
    /// the tree's root swap and the runtime's (so the header already
    /// names a newer version than the bundle), whole-application resume
    /// restores *at the recorded root* — still allocated, because GC only
    /// runs after the runtime commit. Octants unreachable from `root`
    /// (including any newer version) are reclaimed by the allocator
    /// rebuild, exactly like ordinary orphans.
    pub fn restore_at(mut arena: NvbmArena, root: POffset, cfg: PmConfig) -> Result<Self, PmError> {
        if !arena.is_formatted() {
            return Err(PmError::Recovery("device is not a PM-octree (bad magic)".into()));
        }
        let prev = root;
        if prev.is_null() {
            return Err(PmError::Recovery(
                "no persisted version to restore (null recovery root)".into(),
            ));
        }
        let header_epoch = arena.epoch() as u32;
        let mut store = PmStore::new(arena);
        if cfg.wear_leveling {
            store.alloc.set_policy(pmoctree_nvbm::ReusePolicy::WearAware);
        }
        // Validated reachability scan: the recovery root must name a
        // structurally closed tree. V_i octants not in V_{i-1} are
        // implicitly discarded (the paper's "mark deleted, GC recycles in
        // background") — the allocator and registry are rebuilt from the
        // live set alone, so every orphan's space is reclaimed here.
        let scan = crate::verify::scan_tree(&mut store, prev)?;
        if scan.max_epoch > header_epoch + 1 {
            return Err(PmError::Corrupt(format!(
                "reachable octant from epoch {} but header says {header_epoch}",
                scan.max_epoch
            )));
        }
        let bump_hint = store.arena.bump_hint().max(
            scan.live
                .last()
                .map_or(pmoctree_nvbm::HEADER_SIZE, |p| p.0 + crate::octant::OCTANT_SIZE as u64),
        );
        let policy = store.alloc.policy();
        store.alloc = pmoctree_nvbm::PmemAllocator::rebuild(
            store.arena.capacity(),
            bump_hint,
            scan.live.iter().map(|&p| (p, crate::octant::OCTANT_SIZE)),
        );
        store.alloc.set_policy(policy);
        store.arena.publish_bump(store.alloc.bump());
        store.registry = scan.live.clone();
        // Resume strictly above every persisted octant's epoch. The header
        // epoch alone is not enough: a crash between the root swap and the
        // epoch publish leaves slot 1 pointing at octants stamped
        // `header_epoch + 1`, and treating those as exclusive would mutate
        // the persisted version in place.
        let epoch = header_epoch.max(scan.max_epoch) + 1;
        // Re-point both root slots at the restored version: when restoring
        // at an explicitly named (older) root, the header's recovery slot
        // may still name a newer version whose octants the allocator
        // rebuild just reclaimed — leaving it dangling would break a
        // subsequent plain `restore`.
        store.arena.set_root(0, prev);
        store.arena.set_root(1, prev);
        let mut t = PmOctree {
            store,
            forest: C0Forest::new(),
            shadows: Vec::new(),
            cfg,
            current_root: prev,
            prev_root: prev,
            epoch,
            depth: scan.depth,
            leaves: scan.leaves,
            features: Vec::new(),
            events: Events::default(),
            replicas: None,
            rng: StdRng::seed_from_u64(0x00C0_FFEE),
            index: LeafIndex::new(),
        };
        if cfg.replicas {
            let mut r = ReplicaSet::new();
            r.full_sync(&mut t.store.arena);
            t.replicas = Some(r);
        }
        // Leave a durable mark that this device came back from a crash:
        // the next black-box dump shows the restore alongside whatever
        // entries survived from before the failure.
        t.store.arena.rec_mark(RecKind::Note, "restore", epoch as u64);
        Ok(t)
    }

    /// Restore onto a *new* node from a remote replica (§3.4 second
    /// scenario): the replica image is transferred and becomes the local
    /// NVBM contents. Returns the handle plus the number of bytes that had
    /// to cross the network (charged by the caller's network model).
    pub fn restore_from_replica(
        mut arena: NvbmArena,
        replica: &ReplicaSet,
        cfg: PmConfig,
    ) -> Result<(Self, u64), PmError> {
        let image = replica.image();
        arena.restore_media(image);
        let moved = replica.live_bytes();
        Ok((Self::restore(arena, cfg)?, moved))
    }

    /// `pm_delete`: drop every octant and clear the persistent roots.
    pub fn delete(mut self) -> NvbmArena {
        self.store.arena.set_root(0, POffset::NULL);
        self.store.arena.set_root(1, POffset::NULL);
        for p in std::mem::take(&mut self.store.registry) {
            self.store.free_octant(p);
        }
        self.store.arena
    }

    /// Register an application feature function (refinement predicate,
    /// solver region-of-interest test) for feature-directed sampling.
    pub fn add_feature(&mut self, f: FeatureFn) {
        self.features.push(f);
    }

    // ---- mesh queries ----------------------------------------------------

    /// Number of leaf octants (mesh elements) in `V_i`.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Deepest refinement level seen so far.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Working-epoch value (exposed for tests and instrumentation).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Total simulated memory in use: NVBM live bytes + DRAM C0 bytes.
    pub fn memory_usage_bytes(&self) -> u64 {
        self.store.alloc.live_bytes()
            + (self.forest.total_octants * crate::octant::OCTANT_SIZE) as u64
    }

    /// How many octants currently sit in DRAM (C0)?
    pub fn c0_octants(&self) -> usize {
        self.forest.total_octants
    }

    /// Root keys of the DRAM-resident (C0) subtrees.
    pub fn c0_subtree_keys(&self) -> Vec<OctKey> {
        self.forest.ids().into_iter().map(|id| self.forest.get(id).subtree_key).collect()
    }

    /// Does the octant at `key` exist in `V_i`, and is it a leaf?
    pub fn is_leaf(&mut self, key: OctKey) -> Option<bool> {
        if let Some(id) = self.forest.owner_of(&key) {
            let store = &mut self.store;
            return self
                .forest
                .with_tree(id, |t| t.find(key, &mut store.arena).map(|i| t.is_leaf(i)));
        }
        match c1::locate(&mut self.store, self.current_root, key) {
            Locate::Nvbm(p) => Some(self.store.is_leaf_octant(p)),
            _ => None,
        }
    }

    /// The leaf whose region contains `key` (descend until a leaf). Every
    /// in-domain key has one. Returns `None` only if `key`'s cell is
    /// *refined deeper* than `key` (i.e. key names an internal octant).
    pub fn containing_leaf(&mut self, key: OctKey) -> Option<OctKey> {
        let before = self.store.arena.stats.total_lines_snapshot();
        let out = self.containing_leaf_inner(key);
        let lines = self.store.arena.stats.total_lines_snapshot() - before;
        self.store.arena.stats.descent_lines(lines);
        out
    }

    fn containing_leaf_inner(&mut self, key: OctKey) -> Option<OctKey> {
        self.store.arena.stats.root_descent();
        if let Some(id) = self.forest.owner_of(&key) {
            let store = &mut self.store;
            return self.forest.with_tree(id, |t| t.containing_leaf(key, &mut store.arena));
        }
        // NVBM descent.
        let root_key = self.store.key(self.current_root);
        if !root_key.contains(&key) {
            return None;
        }
        let mut cur = self.current_root;
        let mut cur_key = root_key;
        for l in root_key.level()..key.level() {
            let idx = key.ancestor_at(l + 1).sibling_index();
            match self.store.child(cur, idx) {
                ChildPtr::Null => return Some(cur_key),
                ChildPtr::Volatile(id) => {
                    // Continue inside the C0 tree.
                    let store = &mut self.store;
                    return self.forest.with_tree(id, |t| t.containing_leaf(key, &mut store.arena));
                }
                ChildPtr::Nvbm(p) => {
                    cur = p;
                    cur_key = key.ancestor_at(l + 1);
                }
            }
        }
        if self.store.is_leaf_octant(cur) {
            Some(cur_key)
        } else {
            None
        }
    }

    /// Read the payload of the octant at `key`.
    pub fn get_data(&mut self, key: OctKey) -> Option<CellData> {
        if let Some(id) = self.forest.owner_of(&key) {
            let store = &mut self.store;
            return self.forest.with_tree(id, |t| {
                t.find(key, &mut store.arena).map(|i| t.data_of(i, &mut store.arena))
            });
        }
        match c1::locate(&mut self.store, self.current_root, key) {
            Locate::Nvbm(p) => Some(self.store.data(p)),
            _ => None,
        }
    }

    // ---- mesh mutation ----------------------------------------------------

    /// Refine the leaf at `key` into 8 children inheriting its payload.
    pub fn refine(&mut self, key: OctKey) -> Result<(), PmError> {
        if let Some(id) = self.forest.owner_of(&key) {
            let store = &mut self.store;
            let r = self.forest.with_tree(id, |t| match t.find(key, &mut store.arena) {
                None => Err(PmError::NotFound(format!("{key:?}"))),
                Some(i) if !t.is_leaf(i) => Err(PmError::NotALeaf(format!("{key:?}"))),
                Some(i) => {
                    t.refine(i, &mut store.arena);
                    Ok(())
                }
            });
            r?;
        } else {
            match c1::locate(&mut self.store, self.current_root, key) {
                Locate::Nvbm(p) => {
                    if !self.store.is_leaf_octant(p) {
                        return Err(PmError::NotALeaf(format!("{key:?}")));
                    }
                    // Seeding: if this region could become a DRAM subtree
                    // and capacity allows, promote the leaf to C0 first so
                    // the refinement happens at DRAM speed.
                    if self.should_seed_c0(key) {
                        let data = self.store.data(p);
                        let tree = C0Tree::new(key, data);
                        let id = self.register_c0(tree, p);
                        self.current_root = c1::replace_slot(
                            &mut self.store,
                            self.current_root,
                            key,
                            ChildPtr::Volatile(id),
                            self.epoch,
                        )?;
                        return self.refine(key);
                    }
                    self.current_root =
                        c1::refine(&mut self.store, self.current_root, key, self.epoch)?;
                }
                Locate::Volatile(_) => unreachable!("owner_of covers volatile regions"),
                Locate::Missing => return Err(PmError::NotFound(format!("{key:?}"))),
            }
        }
        self.leaves += 7;
        self.depth = self.depth.max(key.level() + 1);
        self.index.on_refine_uniform(key, 0);
        self.after_mutation();
        Ok(())
    }

    /// Coarsen the octant at `key`: its children (which must all be
    /// leaves) are removed.
    pub fn coarsen(&mut self, key: OctKey) -> Result<(), PmError> {
        if let Some(id) = self.forest.owner_of(&key) {
            let store = &mut self.store;
            let r = self.forest.with_tree(id, |t| match t.find(key, &mut store.arena) {
                None => Err(PmError::NotFound(format!("{key:?}"))),
                Some(i) => t.coarsen(i, &mut store.arena).map_err(|e| match e {
                    crate::c0::CoarsenError::Leaf => PmError::NotALeaf(format!("{key:?}")),
                    crate::c0::CoarsenError::DeepChildren => {
                        PmError::NotCoarsenable(format!("{key:?}"))
                    }
                }),
            });
            r?;
        } else {
            match c1::locate(&mut self.store, self.current_root, key) {
                Locate::Nvbm(p) => {
                    // Children that are single-leaf DRAM subtrees get
                    // merged back first so the coarsening can proceed
                    // entirely in NVBM; deeper DRAM children mean the
                    // region is refined and coarsening is illegal anyway.
                    let mut absorb = Vec::new();
                    let mut has_child = false;
                    for i in 0..8 {
                        match self.store.child(p, i) {
                            ChildPtr::Null => {}
                            ChildPtr::Volatile(id) => {
                                has_child = true;
                                if self.forest.get(id).octant_count() > 1 {
                                    return Err(PmError::NotCoarsenable(format!("{key:?}")));
                                }
                                absorb.push(id);
                            }
                            ChildPtr::Nvbm(c) => {
                                has_child = true;
                                if !self.store.is_leaf_octant(c) {
                                    return Err(PmError::NotCoarsenable(format!("{key:?}")));
                                }
                            }
                        }
                    }
                    if !has_child {
                        return Err(PmError::NotALeaf(format!("{key:?}")));
                    }
                    for id in absorb {
                        self.evict_c0(id)?;
                    }
                    self.current_root =
                        c1::coarsen(&mut self.store, self.current_root, key, self.epoch)?;
                }
                Locate::Volatile(_) => unreachable!("owner_of covers volatile regions"),
                Locate::Missing => return Err(PmError::NotFound(format!("{key:?}"))),
            }
        }
        self.leaves -= 7;
        self.index.on_coarsen(key, 0);
        self.after_mutation();
        Ok(())
    }

    /// Overwrite the payload of the octant at `key`.
    pub fn set_data(&mut self, key: OctKey, data: CellData) -> Result<(), PmError> {
        if let Some(id) = self.forest.owner_of(&key) {
            let store = &mut self.store;
            return self.forest.with_tree(id, |t| match t.find(key, &mut store.arena) {
                None => Err(PmError::NotFound(format!("{key:?}"))),
                Some(i) => {
                    t.set_data(i, data, &mut store.arena);
                    Ok(())
                }
            });
        }
        match c1::locate(&mut self.store, self.current_root, key) {
            Locate::Nvbm(_) => {
                self.current_root =
                    c1::update_data(&mut self.store, self.current_root, key, &data, self.epoch)?;
                Ok(())
            }
            Locate::Volatile(_) => unreachable!("owner_of covers volatile regions"),
            Locate::Missing => Err(PmError::NotFound(format!("{key:?}"))),
        }
    }

    // ---- domain-parallel batch mutation ----------------------------------

    /// Refine a batch of leaves, sharded across per-subtree write domains
    /// and executed on the worker pool (see [`crate::domains`]). Returns
    /// one success flag per key, in input order; a key that is missing,
    /// not a leaf, or hits a full device reports `false` and leaves the
    /// tree unchanged at that key. Deterministic: results, media, clock
    /// and trace are byte-identical for any worker count.
    pub fn refine_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        domains::run_batch(
            self,
            &keys.iter().map(|&k| domains::DomainOp::Refine(k)).collect::<Vec<_>>(),
        )
    }

    /// Coarsen a batch of octants domain-parallel; same contract as
    /// [`PmOctree::refine_many`].
    pub fn coarsen_many(&mut self, keys: &[OctKey]) -> Vec<bool> {
        domains::run_batch(
            self,
            &keys.iter().map(|&k| domains::DomainOp::Coarsen(k)).collect::<Vec<_>>(),
        )
    }

    /// Overwrite a batch of leaf payloads domain-parallel; same contract
    /// as [`PmOctree::refine_many`].
    pub fn set_data_many(&mut self, ops: &[(OctKey, CellData)]) -> Vec<bool> {
        domains::run_batch(
            self,
            &ops.iter().map(|&(k, d)| domains::DomainOp::SetData(k, d)).collect::<Vec<_>>(),
        )
    }

    // ---- traversal ---------------------------------------------------------

    /// Visit every leaf of `V_i` (NVBM leaves first, then DRAM subtrees;
    /// order within each part is pre-order).
    pub fn for_each_leaf(&mut self, mut f: impl FnMut(OctKey, &CellData)) {
        let mut volatile_ids = Vec::new();
        let root = self.current_root;
        c1::traverse(
            &mut self.store,
            root,
            &mut |store, p, k, leaf| {
                if leaf {
                    let d = store.data(p);
                    f(k, &d);
                }
            },
            &mut |id| volatile_ids.push(id),
        );
        for id in volatile_ids {
            let store = &mut self.store;
            self.forest.with_tree(id, |t| t.for_each_leaf(&mut store.arena, &mut f));
        }
    }

    /// Collect all leaves as `(key, data)` pairs, sorted by Z-order.
    pub fn leaves_sorted(&mut self) -> Vec<(OctKey, CellData)> {
        let mut out = Vec::with_capacity(self.leaves);
        self.for_each_leaf(|k, d| out.push((k, *d)));
        out.sort_by_key(|a| a.0);
        out
    }

    // ---- batched leaf-index queries --------------------------------------

    /// Drop the volatile leaf index; the next batched query rebuilds it.
    /// Whole-application persistence calls this after every combined
    /// persist so a run resumed from the persist point (which necessarily
    /// starts with a cold index) rebuilds at exactly the same points — and
    /// therefore on exactly the same virtual clock — as the original run.
    pub fn invalidate_leaf_index(&mut self) {
        self.index.invalidate();
    }

    /// Charge DRAM-read cost for touching `entries` leaf-index entries
    /// (the index lives in DRAM regardless of where octants live).
    fn charge_index_entries(&mut self, entries: usize) {
        let lines = LeafIndex::<3>::lines_for_entries(entries);
        let ns = self.store.arena.model().dram.read_ns;
        self.store.arena.clock.advance(lines * ns);
        self.store.arena.stats.dram_read(entries * pmoctree_morton::index::ENTRY_BYTES, lines);
    }

    /// Rebuild the leaf index if stale. The enumeration runs through
    /// [`PmOctree::for_each_leaf`], which charges each octant read to the
    /// tier (C0/C1) it actually lives in.
    fn ensure_index(&mut self) {
        if self.index.is_valid() {
            return;
        }
        let mut entries: Vec<(OctKey, u64)> = Vec::with_capacity(self.leaves);
        self.for_each_leaf(|k, _| entries.push((k, 0)));
        let n = self.index.rebuild(entries);
        self.store.arena.stats.index_rebuild(n as u64);
    }

    /// Z-order-sorted leaf keys, answered from the DRAM leaf index.
    pub fn leaf_keys_sorted(&mut self) -> Vec<OctKey> {
        self.ensure_index();
        self.charge_index_entries(self.index.len());
        self.index.entries().iter().map(|e| e.0).collect()
    }

    /// Resolve a batch of containment queries against the sorted leaf
    /// index in one merge-scan. Input order is arbitrary; results match
    /// input order. Each query costs DRAM index reads only — no per-query
    /// root-to-leaf NVBM descent.
    pub fn containing_leaf_many(&mut self, keys: &[OctKey]) -> Vec<Option<OctKey>> {
        self.ensure_index();
        let order = pmoctree_morton::simd::zorder_argsort(keys);
        let sorted: Vec<OctKey> = order.iter().map(|&i| keys[i]).collect();
        let (resolved, touched) = self.index.resolve_sorted(&sorted);
        self.charge_index_entries(touched);
        self.store.arena.stats.index_hits(keys.len() as u64);
        let mut out = vec![None; keys.len()];
        for (slot, r) in order.into_iter().zip(resolved) {
            out[slot] = r.map(|e| self.index.entries()[e].0);
        }
        out
    }

    /// Batched leaf payload reads. The DRAM index filters out keys that
    /// are not current leaves without touching NVBM; each resolved leaf's
    /// payload is then fetched through the normal tiered path (octant
    /// reads charge the tier they live in — the index never caches
    /// payloads).
    pub fn get_data_many(&mut self, keys: &[OctKey]) -> Vec<Option<CellData>> {
        self.ensure_index();
        let order = pmoctree_morton::simd::zorder_argsort(keys);
        let sorted: Vec<OctKey> = order.iter().map(|&i| keys[i]).collect();
        let (resolved, touched) = self.index.resolve_sorted(&sorted);
        self.charge_index_entries(touched);
        self.store.arena.stats.index_hits(keys.len() as u64);
        let mut out = vec![None; keys.len()];
        for (pos, r) in order.into_iter().zip(resolved) {
            if let Some(e) = r {
                if self.index.entries()[e].0 == keys[pos] {
                    out[pos] = self.get_data(keys[pos]);
                }
            }
        }
        out
    }

    /// Solver sweep: `f` inspects each leaf and returns `Some(new_data)`
    /// to update it. NVBM updates are copy-on-write.
    pub fn update_leaves(&mut self, mut f: impl FnMut(OctKey, &CellData) -> Option<CellData>) {
        // NVBM side: gather the updates first, then apply (applying
        // mutates the tree shape via COW, which would invalidate a live
        // traversal).
        let mut updates: Vec<(OctKey, CellData)> = Vec::new();
        let mut volatile_ids = Vec::new();
        let root = self.current_root;
        c1::traverse(
            &mut self.store,
            root,
            &mut |store, p, k, leaf| {
                if leaf {
                    let d = store.data(p);
                    if let Some(nd) = f(k, &d) {
                        updates.push((k, nd));
                    }
                }
            },
            &mut |id| volatile_ids.push(id),
        );
        for (k, nd) in updates {
            self.current_root =
                c1::update_data(&mut self.store, self.current_root, k, &nd, self.epoch)
                    .expect("NVBM device full mid-sweep: updates need COW headroom");
        }
        for id in volatile_ids {
            let store = &mut self.store;
            self.forest.with_tree(id, |t| t.update_leaves(&mut store.arena, &mut f));
        }
        self.after_mutation();
    }

    // ---- persistence ---------------------------------------------------------

    /// `pm_persistent`: merge `C0` into `C1`, flush, atomically advance
    /// the persistent roots, GC the previous version, then (if enabled)
    /// run the dynamic layout transformation. On return, `V_{i-1}` is the
    /// tree as of this call.
    pub fn persist(&mut self) {
        self.persist_inner(None, None)
            .expect("persist failed: NVBM device cannot hold the merged working set");
    }

    /// Failpoint-instrumented persist: execute the persist protocol only
    /// up to (and including) `stop_after`, then return without completing
    /// the remaining phases — as if the process died there. Combined with
    /// [`NvbmArena::crash`], this lets tests and operators verify that a
    /// failure at *any* point of the protocol recovers to a consistent
    /// version. `None` runs the full protocol.
    pub fn persist_with_failpoint(&mut self, stop_after: Option<PersistPhase>) {
        self.persist_inner(stop_after, None)
            .expect("persist failed: NVBM device cannot hold the merged working set");
    }

    /// Persist with an application-state commit hook (the `pm-rt`
    /// integration point). The hook runs *after* the tree's atomic root
    /// swap and *before* GC reclaims the superseded version, and returns
    /// the byte regions it wrote (shipped with this persist's replica
    /// delta).
    ///
    /// That ordering is what makes the combined commit need no new
    /// consistency argument: a crash before the tree swap recovers
    /// `V_{i-1}` for both subsystems; a crash between the tree swap and
    /// the hook's own root swap leaves the runtime bundle naming
    /// `V_{i-1}`'s tree root, whose octants are all still allocated
    /// precisely because GC has not yet run — so restoring *at the root
    /// the bundle names* is always structurally sound.
    ///
    /// # Errors
    ///
    /// If the hook fails (e.g. the runtime heap is full), the persist
    /// stops before GC and replica shipping and returns the hook's
    /// error: the superseded version stays allocated, so whichever tree
    /// root the last *committed* runtime bundle names remains
    /// restorable, and no replica receives a delta missing the runtime
    /// regions. The octree handle itself stays coherent (the new tree
    /// version is durable and current), but the run should be treated as
    /// failed: the hook's own volatile state (e.g. a `pm-rt` instance
    /// that died mid-commit) must be discarded and re-restored.
    pub fn persist_with_hook(&mut self, hook: &mut PersistHook<'_>) -> Result<(), PmError> {
        self.persist_inner(None, Some(hook))
    }

    fn persist_inner(
        &mut self,
        stop_after: Option<PersistPhase>,
        mut hook: Option<&mut PersistHook<'_>>,
    ) -> Result<(), PmError> {
        // Span taxonomy mirrors the failpoint labels one-to-one; the
        // guards close in reverse order on every early return, so a
        // failpoint firing mid-protocol still leaves the journal balanced.
        let _span_persist = self.store.arena.span("persist");
        self.store.arena.rec_mark(RecKind::SpanBegin, "persist", self.epoch as u64);
        // Wear attribution: committed bytes are charged to the protocol
        // phase in force at commit time (write-back, so lines written in
        // one phase may commit in a later flush — see `MemStats`).
        let prev_phase = self.store.arena.set_phase("persist::merge");
        // (1) Merge every DRAM subtree into NVBM with diff-sharing.
        let span_merge = self.store.arena.span("persist::merge");
        let ids = self.forest.ids();
        let mut merged_offsets: Vec<(u32, POffset)> = Vec::with_capacity(ids.len());
        let mut root = self.current_root;
        for id in &ids {
            let shadow = self.shadow_of(*id);
            // Clean trees: the shadow image is still exact; re-link it
            // without reading a single octant.
            let (dirty, key) = {
                let t = self.forest.get(*id);
                (t.dirty, t.subtree_key)
            };
            let off = if !dirty && !shadow.is_null() {
                shadow
            } else {
                let octants = self.forest.get(*id).collect();
                let off = c1::merge_subtree(&mut self.store, &octants, shadow.opt(), self.epoch)?;
                self.events.merges += 1;
                off
            };
            root = c1::replace_slot(&mut self.store, root, key, ChildPtr::Nvbm(off), self.epoch)?;
            merged_offsets.push((*id, off));
        }
        self.store.arena.failpoint("persist::merge");
        drop(span_merge);
        if stop_after == Some(PersistPhase::Merge) {
            self.store.arena.set_phase(prev_phase);
            return Ok(());
        }
        // (2) Overlap measurement (Fig. 3): shared = older than this epoch.
        let span_overlap = self.store.arena.span("persist::overlap");
        let overlap = c1::count_shared(&mut self.store, root, self.epoch);
        self.events.last_overlap = Some(overlap);
        drop(span_overlap);
        // (3) Flush everything, then the atomic root/epoch advance. Until
        // the set_root below lands, recovery uses the old V_{i-1}.
        self.store.arena.set_phase("persist::flush");
        let span_flush = self.store.arena.span("persist::flush");
        self.store.arena.flush_all();
        self.store.arena.failpoint("persist::flush");
        drop(span_flush);
        if stop_after == Some(PersistPhase::Flush) {
            self.store.arena.set_phase(prev_phase);
            return Ok(());
        }
        self.store.arena.set_phase("persist::root_swap");
        let span_half = self.store.arena.span("persist::root_swap_half");
        // The header publication is batched into two media commits
        // instead of four: the bump hint and epoch are *staged* (no
        // flush) so they ride the forward root slot's atomic line write.
        // A torn prefix of that line can persist the epoch without the
        // root — pure inflation, which restore already tolerates
        // (`max(header_epoch, scan.max_epoch) + 1`) — while recovery
        // reads slot 1, untouched until the second commit below.
        self.store.arena.stage_bump_hint(self.store.alloc.bump());
        self.store.arena.stage_epoch(self.epoch as u64);
        self.store.arena.set_root(0, root);
        self.store.arena.failpoint("persist::root_swap_half");
        drop(span_half);
        if stop_after == Some(PersistPhase::RootSwapHalf) {
            self.store.arena.set_phase(prev_phase);
            return Ok(());
        }
        let span_swap = self.store.arena.span("persist::root_swap");
        self.store.arena.set_root(1, root);
        self.store.arena.failpoint("persist::root_swap");
        drop(span_swap);
        if stop_after == Some(PersistPhase::RootSwap) {
            self.store.arena.set_phase(prev_phase);
            return Ok(());
        }
        // (3b) Application-state commit (`pm-rt`): the runtime stages and
        // atomically publishes its root bundle while the superseded tree
        // version is still allocated (GC below has not run), so whichever
        // tree root the bundle names remains restorable. If it fails, GC
        // must NOT run: the last committed bundle may pair with the
        // superseded tree root, and reclaiming those octants (or shipping
        // a replica delta missing the runtime regions) would corrupt the
        // state whole-application resume restores at.
        self.store.arena.set_phase("rt::commit");
        let extra_regions = match hook.as_mut() {
            Some(h) => match h(&mut self.store.arena) {
                Ok(regions) => regions,
                Err(e) => {
                    self.store.arena.set_phase(prev_phase);
                    // The tree swap is durable; adopt it so the handle
                    // stays coherent (the merged subtrees are already in
                    // NVBM — dropping their DRAM copies loses nothing),
                    // then surface the hook's error with the superseded
                    // version still allocated and no delta shipped.
                    self.prev_root = root;
                    self.current_root = root;
                    self.forest = C0Forest::new();
                    self.shadows = Vec::new();
                    self.epoch += 1;
                    return Err(e);
                }
            },
            None => Vec::new(),
        };
        // (4) The previous version is now garbage; reclaim it.
        self.prev_root = root;
        self.current_root = root;
        let report = gc::collect(&mut self.store, &[root]);
        self.events.gc_runs += 1;
        self.events.last_gc = Some(report);
        self.events.persists += 1;
        // (5) Replica delta shipping (before the epoch advances). The
        // registry now holds exactly the live set of the persisted tree;
        // octants created this epoch are the delta.
        if self.replicas.is_some() {
            self.store.arena.set_phase("replica::ship");
            let _span_ship = self.store.arena.span("replica::ship");
            let epoch = self.epoch;
            let offsets: Vec<POffset> = self.store.registry.clone();
            let new_octants: Vec<POffset> =
                offsets.into_iter().filter(|&p| self.store.epoch_of(p) == epoch).collect();
            if let Some(mut r) = self.replicas.take() {
                self.store.arena.failpoint("replica::ship");
                r.push_delta(&mut self.store.arena, &new_octants, &extra_regions);
                self.replicas = Some(r);
            }
        }
        // (6) New working epoch; everything persisted is now shared.
        self.store.arena.set_phase("persist::reattach");
        let span_reattach = self.store.arena.span("persist::reattach");
        self.epoch += 1;
        // (7) Re-attach the retained DRAM subtrees to the working tree
        //     and remember their merged images as diff shadows.
        self.shadows = Vec::new();
        for (id, off) in merged_offsets {
            self.set_shadow(id, off);
            let key = self.forest.get(id).subtree_key;
            self.forest.get_mut(id).dirty = false;
            self.current_root = c1::replace_slot(
                &mut self.store,
                self.current_root,
                key,
                ChildPtr::Volatile(id),
                self.epoch,
            )?;
        }
        self.forest.decay_access(0.5);
        drop(span_reattach);
        self.store.arena.set_phase(prev_phase);
        // (8) Dynamic layout transformation (§3.3) runs after merging:
        // one detection pass, promoting up to 16 of the hottest NVBM
        // subtrees.
        if self.cfg.dynamic_transform {
            self.transform_pass(16);
        }
        self.store.arena.rec_mark(RecKind::SpanEnd, "persist", self.epoch as u64);
        Ok(())
    }

    // ---- internals -------------------------------------------------------------

    pub(crate) fn shadow_of(&self, id: u32) -> POffset {
        self.shadows.get(id as usize).copied().unwrap_or(POffset::NULL)
    }

    pub(crate) fn set_shadow(&mut self, id: u32, off: POffset) {
        if self.shadows.len() <= id as usize {
            self.shadows.resize(id as usize + 1, POffset::NULL);
        }
        self.shadows[id as usize] = off;
    }

    pub(crate) fn register_c0(&mut self, tree: C0Tree, shadow: POffset) -> u32 {
        let id = self.forest.insert(tree);
        self.set_shadow(id, shadow);
        id
    }

    /// Should a refine at `key` seed a new DRAM subtree there?
    fn should_seed_c0(&mut self, key: OctKey) -> bool {
        if key.level() == 0 {
            return false; // the root must remain in NVBM
        }
        if !self.cfg.seed_c0 {
            return false;
        }
        let l = sampling::l_sub(self.depth.max(key.level() + 1), self.cfg.c0_capacity_octants);
        key.level() >= l && self.forest.total_octants + 9 <= self.cfg.c0_capacity_octants
    }

    /// Post-mutation housekeeping: DRAM-pressure eviction and on-demand GC.
    pub(crate) fn after_mutation(&mut self) {
        // DRAM pressure: evict least-frequently-accessed subtrees. An
        // eviction that fails for lack of NVBM space is abandoned (the
        // subtree simply stays in DRAM); the on-demand GC below is the
        // mechanism that makes room.
        let cap = (self.cfg.c0_capacity_octants as f64 * self.cfg.threshold_dram) as usize;
        while self.forest.total_octants > cap && !self.forest.is_empty() {
            let Some(victim) = self.forest.coldest() else {
                break;
            };
            if self.evict_c0(victim).is_err() {
                break;
            }
            self.events.evictions += 1;
        }
        // NVBM pressure: on-demand GC.
        if self.store.alloc.available_fraction() < self.cfg.threshold_nvbm {
            let roots = [self.current_root, self.prev_root];
            let report = gc::collect(&mut self.store, &roots);
            self.events.gc_runs += 1;
            self.events.last_gc = Some(report);
        }
    }

    /// Merge one C0 subtree out to C1 and drop it from the forest. On
    /// [`PmError::Full`] the forest keeps the subtree (the merge's
    /// partial copies are ordinary GC garbage) and the tree is unchanged.
    pub(crate) fn evict_c0(&mut self, id: u32) -> Result<(), PmError> {
        let _span = self.store.arena.span("c0::evict");
        let prev_phase = self.store.arena.set_phase("c0::evict");
        self.store.arena.failpoint("c0::evict");
        let r = self.evict_c0_inner(id);
        self.store.arena.set_phase(prev_phase);
        r
    }

    fn evict_c0_inner(&mut self, id: u32) -> Result<(), PmError> {
        let shadow = self.shadow_of(id);
        let (dirty, key) = {
            let t = self.forest.get(id);
            (t.dirty, t.subtree_key)
        };
        let off = if !dirty && !shadow.is_null() {
            shadow
        } else {
            let octants = self.forest.get(id).collect();
            c1::merge_subtree(&mut self.store, &octants, shadow.opt(), self.epoch)?
        };
        self.current_root = c1::replace_slot(
            &mut self.store,
            self.current_root,
            key,
            ChildPtr::Nvbm(off),
            self.epoch,
        )?;
        // Only now that the subtree is fully re-linked in NVBM does the
        // DRAM copy go away: a failure above leaves it untouched.
        self.forest.remove(id);
        self.set_shadow(id, POffset::NULL);
        self.events.merges += 1;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pmoctree_nvbm::{CrashMode, DeviceModel};

    fn arena() -> NvbmArena {
        NvbmArena::new(16 << 20, DeviceModel::default())
    }

    fn small_cfg() -> PmConfig {
        PmConfig { dynamic_transform: false, ..PmConfig::default() }
    }

    #[test]
    fn create_refine_query() {
        let mut t = PmOctree::create(arena(), small_cfg());
        assert_eq!(t.leaf_count(), 1);
        t.refine(OctKey::root()).unwrap();
        assert_eq!(t.leaf_count(), 8);
        t.refine(OctKey::root().child(3)).unwrap();
        assert_eq!(t.leaf_count(), 15);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.is_leaf(OctKey::root().child(3)), Some(false));
        assert_eq!(t.is_leaf(OctKey::root().child(3).child(1)), Some(true));
        assert_eq!(t.is_leaf(OctKey::root().child(2).child(0)), None);
    }

    #[test]
    fn refine_errors() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        assert!(matches!(t.refine(OctKey::root()), Err(PmError::NotALeaf(_))));
        assert!(matches!(t.refine(OctKey::root().child(0).child(0)), Err(PmError::NotFound(_))));
    }

    #[test]
    fn coarsen_roundtrip() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(5)).unwrap();
        t.coarsen(OctKey::root().child(5)).unwrap();
        assert_eq!(t.leaf_count(), 8);
        t.coarsen(OctKey::root()).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert!(matches!(t.coarsen(OctKey::root()), Err(PmError::NotALeaf(_))));
    }

    #[test]
    fn coarsen_rejects_deep_children() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(1)).unwrap();
        assert!(matches!(t.coarsen(OctKey::root()), Err(PmError::NotCoarsenable(_))));
    }

    #[test]
    fn set_get_data() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        let k = OctKey::root().child(2);
        t.set_data(k, CellData { phi: 3.5, ..Default::default() }).unwrap();
        assert_eq!(t.get_data(k).unwrap().phi, 3.5);
        assert!(t.set_data(k.child(0), CellData::default()).is_err());
    }

    #[test]
    fn for_each_leaf_visits_all() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(7)).unwrap();
        let leaves = t.leaves_sorted();
        assert_eq!(leaves.len(), t.leaf_count());
        // Leaves tile the domain: keys are unique.
        for w in leaves.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn persist_then_continue() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        assert_eq!(t.events.persists, 1);
        let (total, _shared) = t.events.last_overlap.unwrap();
        assert_eq!(total, 9);
        // Keep meshing after the persist.
        t.refine(OctKey::root().child(0)).unwrap();
        assert_eq!(t.leaf_count(), 15);
        t.persist();
        let (total2, shared2) = t.events.last_overlap.unwrap();
        assert_eq!(total2, 17);
        // The 7 untouched children + their 0 descendants are shared; the
        // copied path (root, child 0) and the 8 new leaves are not.
        assert_eq!(shared2, 7);
    }

    #[test]
    fn crash_recovers_last_persisted_version() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.set_data(OctKey::root().child(1), CellData { phi: 42.0, ..Default::default() }).unwrap();
        t.persist();
        let persisted = t.leaves_sorted();
        // Keep working: these mutations must vanish on crash.
        t.refine(OctKey::root().child(0)).unwrap();
        t.set_data(OctKey::root().child(1), CellData { phi: -1.0, ..Default::default() }).unwrap();
        let mut arena = {
            let PmOctree { store, .. } = t;
            store.arena
        };
        arena.crash(CrashMode::LoseDirty);
        let mut r = PmOctree::restore(arena, small_cfg()).unwrap();
        assert_eq!(r.leaves_sorted(), persisted);
        assert_eq!(r.get_data(OctKey::root().child(1)).unwrap().phi, 42.0);
    }

    #[test]
    fn crash_with_random_commit_still_recovers() {
        for seed in 0..5 {
            let mut t = PmOctree::create(arena(), small_cfg());
            t.refine(OctKey::root()).unwrap();
            t.refine(OctKey::root().child(2)).unwrap();
            t.persist();
            let persisted = t.leaves_sorted();
            // Unpersisted chaos.
            t.refine(OctKey::root().child(2).child(0)).unwrap();
            t.coarsen(OctKey::root().child(2)).ok();
            t.refine(OctKey::root().child(5)).unwrap();
            let mut arena = {
                let PmOctree { store, .. } = t;
                store.arena
            };
            arena.crash(CrashMode::CommitRandom { p: 0.5, seed });
            let mut r = PmOctree::restore(arena, small_cfg()).unwrap();
            assert_eq!(r.leaves_sorted(), persisted, "seed {seed}");
        }
    }

    #[test]
    fn update_leaves_sweep_both_tiers() {
        let mut cfg = small_cfg();
        cfg.c0_capacity_octants = 32; // force some DRAM subtrees
        let mut t = PmOctree::create(arena(), cfg);
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(0)).unwrap(); // seeds C0 at child 0
        assert!(t.c0_octants() > 0, "seeding expected");
        t.update_leaves(|_, d| Some(CellData { pressure: d.pressure + 2.0, ..*d }));
        t.for_each_leaf(|_, d| assert_eq!(d.pressure, 2.0));
    }

    #[test]
    fn dram_pressure_evicts() {
        let mut cfg = small_cfg();
        cfg.c0_capacity_octants = 16;
        cfg.threshold_dram = 0.5; // evict above 8 octants
        let mut t = PmOctree::create(arena(), cfg);
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(0)).unwrap(); // seed: 9 DRAM octants > 8
        assert_eq!(t.c0_octants(), 0, "eviction should have emptied C0");
        assert!(t.events.evictions >= 1);
        // The tree is still correct.
        assert_eq!(t.leaf_count(), 15);
        assert_eq!(t.is_leaf(OctKey::root().child(0).child(3)), Some(true));
    }

    #[test]
    fn persist_after_eviction_shares() {
        let mut cfg = small_cfg();
        cfg.c0_capacity_octants = 16;
        cfg.threshold_dram = 0.5;
        let mut t = PmOctree::create(arena(), cfg);
        t.refine(OctKey::root()).unwrap();
        t.refine(OctKey::root().child(0)).unwrap();
        t.persist();
        t.persist(); // nothing changed: V_i == V_{i-1} fully shared
        let (total, shared) = t.events.last_overlap.unwrap();
        assert_eq!(total, shared, "identical steps must share 100%");
    }

    #[test]
    fn failing_hook_skips_gc_and_keeps_superseded_version_restorable() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let old_root = t.store.arena.root(1);
        let gc_before = t.events.gc_runs;
        t.refine(OctKey::root().child(0)).unwrap();
        let err = t
            .persist_with_hook(&mut |_| Err(PmError::Recovery("rt heap full".into())))
            .unwrap_err();
        assert!(matches!(err, PmError::Recovery(_)));
        assert_eq!(t.events.gc_runs, gc_before, "GC must not run after a failed hook");
        // The handle adopted the durable new version and stays usable...
        assert_eq!(t.leaf_count(), 15);
        t.refine(OctKey::root().child(1)).unwrap();
        t.refine(OctKey::root().child(2)).unwrap();
        // ...while the superseded version — which the last *committed*
        // application bundle may pair with — was neither reclaimed nor
        // overwritten, so restoring at its root still works.
        let mut arena = {
            let PmOctree { store, .. } = t;
            store.arena
        };
        arena.crash(CrashMode::LoseDirty);
        let r = PmOctree::restore_at(arena, old_root, small_cfg()).unwrap();
        assert_eq!(r.leaf_count(), 8);
    }

    #[test]
    fn delete_clears_roots() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let mut arena = t.delete();
        assert_eq!(arena.root(0), POffset::NULL);
        assert_eq!(arena.root(1), POffset::NULL);
    }

    #[test]
    fn memory_usage_tracks_sharing() {
        let mut t = PmOctree::create(arena(), small_cfg());
        t.refine(OctKey::root()).unwrap();
        t.persist();
        let m1 = t.memory_usage_bytes();
        // An unchanged persist must not grow memory (full sharing + GC).
        t.persist();
        let m2 = t.memory_usage_bytes();
        assert_eq!(m1, m2);
    }
}
