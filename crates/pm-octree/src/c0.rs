//! The volatile `C0` forest: frequently-accessed subtrees held in DRAM.
//!
//! `V_i`'s hot subtrees live here as ordinary slab-allocated trees —
//! updates are in place and cost DRAM latency, not NVBM latency. Each
//! [`C0Tree`] is a *complete* subtree of `V_i` rooted at `subtree_key`;
//! its attachment point in the NVBM tree holds a
//! [`ChildPtr::Volatile`](crate::octant::ChildPtr) handle carrying the
//! tree's forest id.
//!
//! DRAM traffic is metered through the owning arena's clock/stats so the
//! write-fraction and execution-time experiments see both tiers.

use pmoctree_morton::OctKey;
use pmoctree_nvbm::NvbmArena;

use crate::octant::{CellData, OCTANT_SIZE};

/// Slab index of the absent node.
const NIL: u32 = u32::MAX;

/// Why a C0 coarsening was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoarsenError {
    /// The target is itself a leaf.
    Leaf,
    /// Some child is refined deeper (removing it would drop a subtree).
    DeepChildren,
}

/// Cachelines per whole-node visit (a node is octant-sized).
const NODE_LINES: u64 = (OCTANT_SIZE / 64) as u64;

/// C0 nodes are charged like their on-media image, which since octant
/// layout v2 is split hot/cold: children + key + presence mask share the
/// first cacheline, the payload lives on the second. A descent hop or a
/// payload touch therefore costs one line, not `NODE_LINES`.
const CACHELINE: u64 = 64;

#[derive(Clone, Debug)]
struct C0Node {
    key: OctKey,
    children: [u32; 8],
    data: CellData,
    live: bool,
}

/// One DRAM-resident subtree of `V_i`.
#[derive(Clone, Debug)]
pub struct C0Tree {
    /// Key of the subtree root (its position inside the octree).
    pub subtree_key: OctKey,
    nodes: Vec<C0Node>,
    free: Vec<u32>,
    root: u32,
    live: usize,
    /// Access-frequency estimate used for LFU eviction and transformation
    /// decisions; decayed once per time step.
    pub access: f64,
    /// Has the tree been modified since the last persist? Clean trees
    /// skip the merge entirely (their shadow is still exact).
    pub dirty: bool,
}

fn charge_read(arena: &mut NvbmArena, nodes: u64) {
    let m = arena.model().dram;
    arena.clock.advance(nodes * NODE_LINES * m.read_ns);
    arena.stats.dram_read((nodes * OCTANT_SIZE as u64) as usize, nodes * NODE_LINES);
    arena.tracer.counter_add("c0.node_reads", nodes);
}

fn charge_write(arena: &mut NvbmArena, nodes: u64) {
    let m = arena.model().dram;
    arena.clock.advance(nodes * NODE_LINES * m.write_ns);
    arena.stats.dram_write((nodes * OCTANT_SIZE as u64) as usize, nodes * NODE_LINES);
    arena.tracer.counter_add("c0.node_writes", nodes);
}

/// Charge `lines` single-cacheline reads (hot-line hops, payload reads).
fn charge_read_lines(arena: &mut NvbmArena, lines: u64) {
    let m = arena.model().dram;
    arena.clock.advance(lines * m.read_ns);
    arena.stats.dram_read((lines * CACHELINE) as usize, lines);
    arena.tracer.counter_add("c0.line_reads", lines);
}

/// Charge `lines` single-cacheline writes.
fn charge_write_lines(arena: &mut NvbmArena, lines: u64) {
    let m = arena.model().dram;
    arena.clock.advance(lines * m.write_ns);
    arena.stats.dram_write((lines * CACHELINE) as usize, lines);
    arena.tracer.counter_add("c0.line_writes", lines);
}

impl C0Tree {
    /// A single-leaf subtree rooted at `key`.
    pub fn new(key: OctKey, data: CellData) -> Self {
        C0Tree {
            subtree_key: key,
            nodes: vec![C0Node { key, children: [NIL; 8], data, live: true }],
            free: Vec::new(),
            root: 0,
            live: 1,
            access: 0.0,
            dirty: true,
        }
    }

    /// Number of live octants.
    pub fn octant_count(&self) -> usize {
        self.live
    }

    fn node(&self, i: u32) -> &C0Node {
        let n = &self.nodes[i as usize];
        debug_assert!(n.live, "access to freed C0 node");
        n
    }

    fn alloc_node(&mut self, n: C0Node) -> u32 {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = n;
            i
        } else {
            self.nodes.push(n);
            (self.nodes.len() - 1) as u32
        }
    }

    fn free_node(&mut self, i: u32) {
        self.nodes[i as usize].live = false;
        self.free.push(i);
        self.live -= 1;
    }

    /// Walk from the subtree root to `key`; returns the slab index if the
    /// octant exists. Charges one DRAM node-read per hop.
    pub fn find(&mut self, key: OctKey, arena: &mut NvbmArena) -> Option<u32> {
        if !self.subtree_key.contains(&key) {
            return None;
        }
        let mut cur = self.root;
        let mut hops = 1u64;
        for l in self.subtree_key.level()..key.level() {
            let idx = key.ancestor_at(l + 1).sibling_index();
            let next = self.node(cur).children[idx];
            if next == NIL {
                charge_read_lines(arena, hops);
                return None;
            }
            cur = next;
            hops += 1;
        }
        charge_read_lines(arena, hops);
        self.access += 1.0;
        Some(cur)
    }

    /// Key of a node.
    pub fn key_of(&self, i: u32) -> OctKey {
        self.node(i).key
    }

    /// The leaf containing `key`'s region (one incremental descent —
    /// `None` if `key` is internal or outside this subtree).
    pub fn containing_leaf(&mut self, key: OctKey, arena: &mut NvbmArena) -> Option<OctKey> {
        if !self.subtree_key.contains(&key) {
            return None;
        }
        let mut cur = self.root;
        let mut cur_key = self.subtree_key;
        let mut hops = 1u64;
        for l in self.subtree_key.level()..key.level() {
            if self.is_leaf(cur) {
                charge_read_lines(arena, hops);
                return Some(cur_key);
            }
            let idx = key.ancestor_at(l + 1).sibling_index();
            let next = self.node(cur).children[idx];
            if next == NIL {
                charge_read_lines(arena, hops);
                return Some(cur_key);
            }
            cur = next;
            cur_key = key.ancestor_at(l + 1);
            hops += 1;
        }
        charge_read_lines(arena, hops);
        if self.is_leaf(cur) {
            Some(cur_key)
        } else {
            None
        }
    }

    /// Is node `i` a leaf?
    pub fn is_leaf(&self, i: u32) -> bool {
        self.node(i).children.iter().all(|&c| c == NIL)
    }

    /// Read a node's payload.
    pub fn data_of(&mut self, i: u32, arena: &mut NvbmArena) -> CellData {
        charge_read_lines(arena, 1);
        self.node(i).data
    }

    /// Overwrite a node's payload (in place — this is DRAM).
    pub fn set_data(&mut self, i: u32, d: CellData, arena: &mut NvbmArena) {
        charge_write_lines(arena, 1);
        self.access += 1.0;
        self.dirty = true;
        self.nodes[i as usize].data = d;
    }

    /// Split leaf `i` into 8 children, each inheriting the parent's data.
    /// Returns the child slab indices. Panics if `i` is not a leaf or is
    /// at the maximum level.
    pub fn refine(&mut self, i: u32, arena: &mut NvbmArena) -> [u32; 8] {
        assert!(self.is_leaf(i), "refine of non-leaf C0 node");
        let (key, data) = {
            let n = self.node(i);
            (n.key, n.data)
        };
        let mut out = [NIL; 8];
        for (c, slot) in out.iter_mut().enumerate() {
            let ck = key.child(c);
            *slot = self.alloc_node(C0Node { key: ck, children: [NIL; 8], data, live: true });
        }
        self.nodes[i as usize].children = out;
        charge_write_lines(arena, 8 * NODE_LINES + 1); // 8 whole children + parent's nav line
        self.access += 9.0;
        self.dirty = true;
        out
    }

    /// Remove the children of node `i` (all must be leaves), making `i` a
    /// leaf again. The parent keeps its own payload. Fails (with no
    /// mutation) when `i` is a leaf or has non-leaf children.
    pub fn coarsen(&mut self, i: u32, arena: &mut NvbmArena) -> Result<(), CoarsenError> {
        let children = self.node(i).children;
        if children.iter().all(|&c| c == NIL) {
            return Err(CoarsenError::Leaf);
        }
        if children.iter().any(|&c| c != NIL && !self.is_leaf(c)) {
            return Err(CoarsenError::DeepChildren);
        }
        // Restriction: the surviving leaf takes the mean of its children
        // (all backends agree on this operator, including the linear
        // octree which has no stored internal payload to fall back on).
        let mut mean = CellData::default();
        for &c in &children {
            if c != NIL {
                let d = &self.nodes[c as usize].data;
                mean.phi += d.phi / 8.0;
                mean.pressure += d.pressure / 8.0;
                mean.vof += d.vof / 8.0;
                mean.work += d.work / 8.0;
                self.free_node(c);
            }
        }
        self.nodes[i as usize].data = mean;
        self.nodes[i as usize].children = [NIL; 8];
        charge_write_lines(arena, NODE_LINES);
        self.access += 1.0;
        self.dirty = true;
        Ok(())
    }

    /// Pre-order traversal of live octants: `(key, data, is_leaf)`.
    /// Charges one DRAM read per visited node.
    pub fn for_each(&mut self, arena: &mut NvbmArena, mut f: impl FnMut(OctKey, &CellData, bool)) {
        let mut stack = vec![self.root];
        let mut visited = 0u64;
        while let Some(i) = stack.pop() {
            visited += 1;
            let n = &self.nodes[i as usize];
            let leaf = n.children.iter().all(|&c| c == NIL);
            f(n.key, &n.data, leaf);
            for &c in n.children.iter().rev() {
                if c != NIL {
                    stack.push(c);
                }
            }
        }
        charge_read(arena, visited);
    }

    /// Leaf-only traversal.
    pub fn for_each_leaf(&mut self, arena: &mut NvbmArena, mut f: impl FnMut(OctKey, &CellData)) {
        self.for_each(arena, |k, d, leaf| {
            if leaf {
                f(k, d);
            }
        });
    }

    /// Mutable leaf sweep (solver relaxation): `f` returns the new data.
    pub fn update_leaves(
        &mut self,
        arena: &mut NvbmArena,
        mut f: impl FnMut(OctKey, &CellData) -> Option<CellData>,
    ) {
        let mut stack = vec![self.root];
        let mut reads = 0u64;
        let mut writes = 0u64;
        while let Some(i) = stack.pop() {
            reads += 1;
            let leaf = self.nodes[i as usize].children.iter().all(|&c| c == NIL);
            if leaf {
                let n = &self.nodes[i as usize];
                if let Some(nd) = f(n.key, &n.data) {
                    self.nodes[i as usize].data = nd;
                    writes += 1;
                }
            } else {
                for &c in self.nodes[i as usize].children.iter().rev() {
                    if c != NIL {
                        stack.push(c);
                    }
                }
            }
        }
        charge_read(arena, reads);
        charge_write(arena, writes);
        self.access += (reads + writes) as f64;
        if writes > 0 {
            self.dirty = true;
        }
    }

    /// Collect all live octants in pre-order (used when merging the
    /// subtree out to NVBM). No DRAM charge: the merge itself charges.
    pub fn collect(&self) -> Vec<(OctKey, CellData, bool)> {
        let mut out = Vec::with_capacity(self.live);
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i as usize];
            let leaf = n.children.iter().all(|&c| c == NIL);
            out.push((n.key, n.data, leaf));
            for &c in n.children.iter().rev() {
                if c != NIL {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Rebuild a subtree from a pre-order octant list (used when promoting
    /// a hot NVBM subtree into DRAM). The first entry must be the subtree
    /// root; parents must precede children.
    pub fn from_octants(subtree_key: OctKey, octants: &[(OctKey, CellData)]) -> Self {
        assert!(
            !octants.is_empty() && octants[0].0 == subtree_key,
            "first octant must be the root"
        );
        let mut t = C0Tree::new(subtree_key, octants[0].1);
        // A promoted tree is byte-identical to its NVBM shadow.
        t.dirty = false;
        for &(key, data) in &octants[1..] {
            // Parent is guaranteed present (pre-order).
            let parent_key = key.parent().expect("non-root octant has a parent");
            let pi = t
                .find_no_charge(parent_key)
                .expect("pre-order promotion: parent must precede child");
            let idx = key.sibling_index();
            let ni = t.alloc_node(C0Node { key, children: [NIL; 8], data, live: true });
            t.nodes[pi as usize].children[idx] = ni;
        }
        t
    }

    fn find_no_charge(&self, key: OctKey) -> Option<u32> {
        if !self.subtree_key.contains(&key) {
            return None;
        }
        let mut cur = self.root;
        for l in self.subtree_key.level()..key.level() {
            let idx = key.ancestor_at(l + 1).sibling_index();
            let next = self.node(cur).children[idx];
            if next == NIL {
                return None;
            }
            cur = next;
        }
        Some(cur)
    }
}

/// The forest of DRAM subtrees, addressed by volatile id.
#[derive(Default)]
pub struct C0Forest {
    trees: Vec<Option<C0Tree>>,
    /// Total live octants across all trees (compared against
    /// `c0_capacity_octants`).
    pub total_octants: usize,
}

impl C0Forest {
    /// Empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tree; returns its volatile id.
    pub fn insert(&mut self, tree: C0Tree) -> u32 {
        self.total_octants += tree.octant_count();
        for (i, slot) in self.trees.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(tree);
                return i as u32;
            }
        }
        self.trees.push(Some(tree));
        (self.trees.len() - 1) as u32
    }

    /// Remove and return a tree.
    pub fn remove(&mut self, id: u32) -> C0Tree {
        let t = self.trees[id as usize].take().expect("removing absent C0 tree");
        self.total_octants -= t.octant_count();
        t
    }

    /// Borrow a tree.
    pub fn get(&self, id: u32) -> &C0Tree {
        self.trees[id as usize].as_ref().expect("absent C0 tree")
    }

    /// Borrow a tree mutably. Note: callers adjusting octant counts must
    /// go through [`Self::with_tree`] so `total_octants` stays accurate.
    pub fn get_mut(&mut self, id: u32) -> &mut C0Tree {
        self.trees[id as usize].as_mut().expect("absent C0 tree")
    }

    /// Run `f` on tree `id`, keeping the forest-wide octant count in sync.
    pub fn with_tree<R>(&mut self, id: u32, f: impl FnOnce(&mut C0Tree) -> R) -> R {
        let t = self.trees[id as usize].as_mut().expect("absent C0 tree");
        let before = t.octant_count();
        let r = f(t);
        let after = t.octant_count();
        self.total_octants = self.total_octants + after - before;
        r
    }

    /// Which tree (if any) owns `key`?
    pub fn owner_of(&self, key: &OctKey) -> Option<u32> {
        self.trees
            .iter()
            .enumerate()
            .find(|(_, t)| t.as_ref().is_some_and(|t| t.subtree_key.contains(key)))
            .map(|(i, _)| i as u32)
    }

    /// Ids of all live trees.
    pub fn ids(&self) -> Vec<u32> {
        self.trees.iter().enumerate().filter_map(|(i, t)| t.as_ref().map(|_| i as u32)).collect()
    }

    /// Id of the least-frequently-accessed tree (LFU eviction victim).
    pub fn coldest(&self) -> Option<u32> {
        self.trees
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i as u32, t.access)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
    }

    /// Decay all access counters (called once per time step so frequency
    /// reflects the recent past, not all history).
    pub fn decay_access(&mut self, factor: f64) {
        for t in self.trees.iter_mut().flatten() {
            t.access *= factor;
        }
    }

    /// Number of live trees.
    pub fn len(&self) -> usize {
        self.trees.iter().flatten().count()
    }

    /// Is the forest empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pmoctree_nvbm::DeviceModel;

    fn arena() -> NvbmArena {
        NvbmArena::new(1 << 16, DeviceModel::default())
    }

    #[test]
    fn single_leaf_tree() {
        let mut a = arena();
        let k = OctKey::root().child(2);
        let mut t = C0Tree::new(k, CellData { phi: 1.0, ..Default::default() });
        assert_eq!(t.octant_count(), 1);
        let i = t.find(k, &mut a).unwrap();
        assert!(t.is_leaf(i));
        assert_eq!(t.data_of(i, &mut a).phi, 1.0);
    }

    #[test]
    fn refine_creates_eight_children() {
        let mut a = arena();
        let k = OctKey::root().child(0);
        let mut t = C0Tree::new(k, CellData::default());
        let root = t.find(k, &mut a).unwrap();
        let kids = t.refine(root, &mut a);
        assert_eq!(t.octant_count(), 9);
        assert!(!t.is_leaf(root));
        for (c, &ki) in kids.iter().enumerate() {
            assert_eq!(t.key_of(ki), k.child(c));
            assert!(t.is_leaf(ki));
        }
    }

    #[test]
    fn coarsen_restores_leaf() {
        let mut a = arena();
        let k = OctKey::root().child(0);
        let mut t = C0Tree::new(k, CellData::default());
        let root = t.find(k, &mut a).unwrap();
        t.refine(root, &mut a);
        t.coarsen(root, &mut a).unwrap();
        assert_eq!(t.octant_count(), 1);
        assert_eq!(t.coarsen(root, &mut a), Err(CoarsenError::Leaf));
        assert!(t.is_leaf(root));
    }

    #[test]
    fn find_descends_by_key() {
        let mut a = arena();
        let k = OctKey::root().child(5);
        let mut t = C0Tree::new(k, CellData::default());
        let root = t.find(k, &mut a).unwrap();
        let kids = t.refine(root, &mut a);
        t.refine(kids[3], &mut a);
        let deep = k.child(3).child(6);
        let i = t.find(deep, &mut a).unwrap();
        assert_eq!(t.key_of(i), deep);
        assert!(t.find(k.child(2).child(0), &mut a).is_none(), "unrefined region");
        assert!(t.find(OctKey::root().child(1), &mut a).is_none(), "outside subtree");
    }

    #[test]
    fn collect_and_rebuild_roundtrip() {
        let mut a = arena();
        let k = OctKey::root().child(7);
        let mut t = C0Tree::new(k, CellData { vof: 0.5, ..Default::default() });
        let root = t.find(k, &mut a).unwrap();
        let kids = t.refine(root, &mut a);
        t.refine(kids[0], &mut a);
        let collected = t.collect();
        assert_eq!(collected.len(), 17);
        let rebuilt =
            C0Tree::from_octants(k, &collected.iter().map(|&(k, d, _)| (k, d)).collect::<Vec<_>>());
        assert_eq!(rebuilt.octant_count(), 17);
        let mut got = rebuilt.collect();
        let mut want = collected;
        got.sort_by_key(|x| x.0);
        want.sort_by_key(|x| x.0);
        assert_eq!(got, want);
    }

    #[test]
    fn update_leaves_sweep() {
        let mut a = arena();
        let k = OctKey::root();
        let mut t = C0Tree::new(k, CellData::default());
        let root = t.find(k, &mut a).unwrap();
        t.refine(root, &mut a);
        t.update_leaves(&mut a, |_, d| Some(CellData { pressure: d.pressure + 1.0, ..*d }));
        t.for_each_leaf(&mut a, |_, d| assert_eq!(d.pressure, 1.0));
        // Internal node untouched.
        let i = t.find(k, &mut a).unwrap();
        assert_eq!(t.data_of(i, &mut a).pressure, 0.0);
    }

    #[test]
    fn dram_charges_metered() {
        let mut a = arena();
        let k = OctKey::root();
        let mut t = C0Tree::new(k, CellData::default());
        let before_w = a.stats.dram.write_lines;
        let root = t.find(k, &mut a).unwrap();
        t.refine(root, &mut a);
        assert!(a.stats.dram.write_lines > before_w);
        assert_eq!(a.stats.nvbm.write_lines, 0, "no NVBM traffic from C0 ops");
        assert!(a.clock.now_ns() > 0);
    }

    #[test]
    fn forest_bookkeeping() {
        let mut a = arena();
        let mut f = C0Forest::new();
        let id0 = f.insert(C0Tree::new(OctKey::root().child(0), CellData::default()));
        let id1 = f.insert(C0Tree::new(OctKey::root().child(1), CellData::default()));
        assert_eq!(f.total_octants, 2);
        f.with_tree(id0, |t| {
            let r = t.find_no_charge(OctKey::root().child(0)).unwrap();
            t.refine(r, &mut a);
        });
        assert_eq!(f.total_octants, 10);
        assert_eq!(f.owner_of(&OctKey::root().child(0).child(3)), Some(id0));
        assert_eq!(f.owner_of(&OctKey::root().child(2)), None);
        let t = f.remove(id1);
        assert_eq!(t.octant_count(), 1);
        assert_eq!(f.total_octants, 9);
        // Slot reuse.
        let id2 = f.insert(C0Tree::new(OctKey::root().child(2), CellData::default()));
        assert_eq!(id2, id1);
    }

    #[test]
    fn lfu_coldest() {
        let mut f = C0Forest::new();
        let a = f.insert(C0Tree::new(OctKey::root().child(0), CellData::default()));
        let b = f.insert(C0Tree::new(OctKey::root().child(1), CellData::default()));
        f.get_mut(a).access = 10.0;
        f.get_mut(b).access = 2.0;
        assert_eq!(f.coldest(), Some(b));
        f.decay_access(0.1);
        assert!((f.get(a).access - 1.0).abs() < 1e-12);
    }
}
