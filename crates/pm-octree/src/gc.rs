//! Mark-and-sweep garbage collection over the NVBM octant registry.
//!
//! §3.2: deletion only *marks* octants; the space is reclaimed here. GC
//! runs (a) before each new time step and (b) on demand when the free
//! NVBM fraction drops below `threshold_NVBM`. It is disabled during
//! merging (the caller simply does not invoke it there).
//!
//! The sweep set is the volatile [`PmStore::registry`]; after a crash the
//! registry is itself rebuilt from the mark set (see
//! [`rebuild_after_crash`]), which doubles as allocator recovery — the
//! paper's "no allocator logging" property.

use std::collections::HashSet;

use pmoctree_nvbm::{POffset, PmemAllocator};

use crate::octant::{ChildPtr, OctAccess, PmStore, OCTANT_SIZE};

/// Result of a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Octants reachable from the roots.
    pub live: usize,
    /// Octants freed.
    pub freed: usize,
    /// Of the freed octants, how many carried the `deleted` flag.
    pub freed_flagged: usize,
}

/// Mark every octant reachable from `roots` (descending only NVBM child
/// pointers; volatile handles refer to DRAM and are not swept here).
pub fn mark(store: &mut PmStore, roots: &[POffset]) -> HashSet<POffset> {
    let mut marked: HashSet<POffset> = HashSet::new();
    let mut stack: Vec<POffset> = roots.iter().copied().filter(|p| !p.is_null()).collect();
    while let Some(p) = stack.pop() {
        if !marked.insert(p) {
            continue;
        }
        for c in store.children(p) {
            if let ChildPtr::Nvbm(c) = c {
                stack.push(c);
            }
        }
    }
    marked
}

/// Mark from `roots`, then sweep the registry: unreachable octants are
/// freed and dropped from the registry.
pub fn collect(store: &mut PmStore, roots: &[POffset]) -> GcReport {
    let _span = store.arena.span("gc::sweep");
    let prev_phase = store.arena.set_phase("gc::sweep");
    store.arena.failpoint("gc::sweep");
    let marked = mark(store, roots);
    let mut freed = 0usize;
    let mut freed_flagged = 0usize;
    let registry = std::mem::take(&mut store.registry);
    let mut kept = Vec::with_capacity(marked.len());
    for p in registry {
        if marked.contains(&p) {
            kept.push(p);
        } else {
            if store.is_deleted(p) {
                freed_flagged += 1;
            }
            store.free_octant(p);
            freed += 1;
        }
    }
    store.registry = kept;
    // Under wear-aware reuse, steer the freshly-freed blocks so the next
    // allocations land on the coldest lines: sort each free list by the
    // device's measured per-block wear (coldest first, FIFO on ties).
    if store.alloc.policy() == pmoctree_nvbm::ReusePolicy::WearAware && freed > 0 {
        let stats = &store.arena.stats;
        store.alloc.steer_cold(|off| stats.block_wear(off));
    }
    store.arena.set_phase(prev_phase);
    GcReport { live: marked.len(), freed, freed_flagged }
}

/// Post-crash recovery of the volatile store state: mark from the
/// persisted roots, then rebuild both the registry and the allocator from
/// the live set alone. Returns the number of live octants.
pub fn rebuild_after_crash(store: &mut PmStore, roots: &[POffset]) -> usize {
    let marked = mark(store, roots);
    let mut live: Vec<POffset> = marked.iter().copied().collect();
    live.sort_unstable();
    let bump_hint = store
        .arena
        .bump_hint()
        .max(live.last().map(|p| p.0 + OCTANT_SIZE as u64).unwrap_or(pmoctree_nvbm::HEADER_SIZE));
    let policy = store.alloc.policy();
    store.alloc = PmemAllocator::rebuild(
        store.arena.capacity(),
        bump_hint,
        live.iter().map(|&p| (p, OCTANT_SIZE)),
    );
    store.alloc.set_policy(policy);
    store.arena.publish_bump(store.alloc.bump());
    store.registry = live;
    store.registry.len()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::c1::{coarsen, refine};
    use crate::octant::{CellData, Octant};
    use pmoctree_morton::OctKey;
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn store() -> PmStore {
        PmStore::new(NvbmArena::new(4 << 20, DeviceModel::default()))
    }

    fn root_tree(s: &mut PmStore, e: u32) -> POffset {
        let o = Octant::leaf(OctKey::root(), POffset::NULL, e, CellData::default());
        s.alloc_octant(&o).unwrap()
    }

    #[test]
    fn collect_frees_unreachable() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        assert_eq!(s.registry.len(), 9);
        // Coarsen at the same epoch: children flagged deleted + unlinked.
        let root = coarsen(&mut s, root, OctKey::root(), 1).unwrap();
        let r = collect(&mut s, &[root]);
        assert_eq!(r.live, 1);
        assert_eq!(r.freed, 8);
        assert_eq!(r.freed_flagged, 8);
        assert_eq!(s.registry.len(), 1);
    }

    #[test]
    fn collect_with_two_roots_keeps_both_versions() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        let old_root = root;
        // New epoch: refine child 0 → path copy creates new root.
        let new_root = refine(&mut s, root, OctKey::root().child(0), 2).unwrap();
        let before = s.registry.len();
        let r = collect(&mut s, &[old_root, new_root]);
        assert_eq!(r.freed, 0, "both versions reachable, nothing to free");
        assert_eq!(r.live, before);
        // Dropping the old version frees its exclusive octants
        // (old root + old child 0; the other 7 children are shared).
        let r2 = collect(&mut s, &[new_root]);
        assert_eq!(r2.freed, 2);
    }

    #[test]
    fn freed_space_is_reused() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        root = coarsen(&mut s, root, OctKey::root(), 1).unwrap();
        collect(&mut s, &[root]);
        let live_before = s.alloc.live_bytes();
        // New refinement reuses the freed blocks.
        let _ = refine(&mut s, root, OctKey::root(), 1);
        assert_eq!(s.alloc.live_bytes(), live_before + 8 * OCTANT_SIZE as u64);
    }

    #[test]
    fn rebuild_after_crash_restores_allocator_and_registry() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        root = refine(&mut s, root, OctKey::root().child(3), 1).unwrap();
        s.arena.flush_all();
        s.arena.set_root(1, root);
        let live_expected = 17;
        // Simulate crash: volatile state gone.
        s.arena.crash(pmoctree_nvbm::CrashMode::LoseDirty);
        s.registry.clear();
        s.alloc = PmemAllocator::new(s.arena.capacity());
        let root = s.arena.root(1);
        let live = rebuild_after_crash(&mut s, &[root]);
        assert_eq!(live, live_expected);
        // Allocator hands out fresh space that doesn't collide with live octants.
        let live_set: HashSet<POffset> = s.registry.iter().copied().collect();
        for _ in 0..20 {
            let o = Octant::leaf(OctKey::root(), POffset::NULL, 2, CellData::default());
            let p = s.alloc_octant(&o).unwrap();
            assert!(!live_set.contains(&p), "allocator reused a live octant");
        }
    }

    #[test]
    fn mark_stops_at_volatile_handles() {
        let mut s = store();
        let mut root = root_tree(&mut s, 1);
        root = refine(&mut s, root, OctKey::root(), 1).unwrap();
        let root = crate::c1::replace_slot(
            &mut s,
            root,
            OctKey::root().child(0),
            ChildPtr::Volatile(3),
            1,
        )
        .unwrap();
        let marked = mark(&mut s, &[root]);
        assert_eq!(marked.len(), 8, "root + 7 children (one slot volatile)");
    }
}
