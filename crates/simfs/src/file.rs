//! The file store: named byte arrays with page-cost accounting.

use std::collections::BTreeMap;

use pmoctree_nvbm::model::{BlockDeviceModel, PAGE};
use pmoctree_nvbm::VirtualClock;

/// I/O counters for the simulated file system.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FsStats {
    /// Number of I/O operations issued (each pays the per-op latency).
    pub ops: u64,
    /// Bytes read through the FS interface.
    pub bytes_read: u64,
    /// Bytes written through the FS interface.
    pub bytes_written: u64,
    /// 4 KiB pages transferred (read + write).
    pub pages: u64,
}

/// A simulated file system: named files on one block device.
///
/// All I/O is charged at page granularity (Etree's "minimum I/O unit is a
/// page (4KB)") plus a fixed per-operation cost, onto [`Self::clock`].
pub struct SimFs {
    files: BTreeMap<String, Vec<u8>>,
    model: BlockDeviceModel,
    /// Virtual clock charged by every operation.
    pub clock: VirtualClock,
    /// I/O statistics.
    pub stats: FsStats,
}

impl SimFs {
    /// A file system on the given device model.
    pub fn new(model: BlockDeviceModel) -> Self {
        SimFs {
            files: BTreeMap::new(),
            model,
            clock: VirtualClock::new(),
            stats: FsStats::default(),
        }
    }

    /// File system on NVBM accessed through the FS software stack.
    pub fn on_nvbm() -> Self {
        Self::new(BlockDeviceModel::nvbm_fs())
    }

    /// File system on a rotating disk.
    pub fn on_disk() -> Self {
        Self::new(BlockDeviceModel::hard_disk())
    }

    fn charge(&mut self, bytes: usize) {
        let pages = (bytes.max(1)).div_ceil(PAGE) as u64;
        self.clock.advance(self.model.io_ns(pages));
        self.stats.ops += 1;
        self.stats.pages += pages;
    }

    /// Does `name` exist?
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Size of a file, or `None` if absent.
    pub fn len(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(Vec::len)
    }

    /// Is the file system empty?
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Create (or truncate) a file.
    pub fn create(&mut self, name: &str) {
        self.charge(0);
        self.files.insert(name.to_string(), Vec::new());
    }

    /// Delete a file. Returns whether it existed.
    pub fn unlink(&mut self, name: &str) -> bool {
        self.charge(0);
        self.files.remove(name).is_some()
    }

    /// Write `data` at byte `offset`, extending the file as needed.
    /// One I/O operation; cost covers every page touched.
    pub fn write_at(&mut self, name: &str, offset: usize, data: &[u8]) -> Result<(), String> {
        self.charge(data.len());
        self.stats.bytes_written += data.len() as u64;
        let f = self.files.get_mut(name).ok_or_else(|| format!("no such file: {name}"))?;
        if f.len() < offset + data.len() {
            f.resize(offset + data.len(), 0);
        }
        f[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read up to `buf.len()` bytes at `offset`; returns bytes read.
    pub fn read_at(&mut self, name: &str, offset: usize, buf: &mut [u8]) -> Result<usize, String> {
        let f = self.files.get(name).ok_or_else(|| format!("no such file: {name}"))?;
        let n = f.len().saturating_sub(offset).min(buf.len());
        buf[..n].copy_from_slice(&f[offset..offset + n]);
        self.charge(n);
        self.stats.bytes_read += n as u64;
        Ok(n)
    }

    /// Replace a file's entire contents (snapshot write).
    pub fn write_all(&mut self, name: &str, data: &[u8]) {
        self.charge(data.len());
        self.stats.bytes_written += data.len() as u64;
        self.files.insert(name.to_string(), data.to_vec());
    }

    /// Read a whole file (snapshot restore).
    pub fn read_all(&mut self, name: &str) -> Result<Vec<u8>, String> {
        let f = self.files.get(name).ok_or_else(|| format!("no such file: {name}"))?.clone();
        self.charge(f.len());
        self.stats.bytes_read += f.len() as u64;
        Ok(f)
    }

    /// List file names (no I/O charge; directory walks are not modeled).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Durability barrier (`fsync`): charge the device's cache-flush cost.
    /// Until this returns, a "written" file may still sit in the device
    /// write cache — checkpoint schemes that skip it are not comparable to
    /// an NVBM commit, which is durable by construction.
    pub fn sync(&mut self) {
        self.clock.advance(self.model.sync_ns);
        self.stats.ops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = SimFs::on_nvbm();
        fs.create("snap.gfs");
        fs.write_at("snap.gfs", 0, b"octants").unwrap();
        let mut buf = [0u8; 7];
        assert_eq!(fs.read_at("snap.gfs", 0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, b"octants");
    }

    #[test]
    fn write_at_offset_extends() {
        let mut fs = SimFs::on_nvbm();
        fs.create("f");
        fs.write_at("f", 100, b"xy").unwrap();
        assert_eq!(fs.len("f"), Some(102));
        let mut buf = [0u8; 2];
        fs.read_at("f", 100, &mut buf).unwrap();
        assert_eq!(&buf, b"xy");
    }

    #[test]
    fn short_read_at_eof() {
        let mut fs = SimFs::on_nvbm();
        fs.write_all("f", b"abc");
        let mut buf = [0u8; 10];
        assert_eq!(fs.read_at("f", 1, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"bc");
    }

    #[test]
    fn missing_file_errors() {
        let mut fs = SimFs::on_nvbm();
        assert!(fs.read_all("nope").is_err());
        assert!(fs.write_at("nope", 0, b"x").is_err());
    }

    #[test]
    fn unlink_removes() {
        let mut fs = SimFs::on_nvbm();
        fs.write_all("f", b"x");
        assert!(fs.unlink("f"));
        assert!(!fs.unlink("f"));
        assert!(!fs.exists("f"));
    }

    #[test]
    fn io_cost_scales_with_pages() {
        let mut fs = SimFs::on_nvbm();
        fs.create("f");
        let t0 = fs.clock.now_ns();
        fs.write_at("f", 0, &vec![0u8; PAGE]).unwrap();
        let one_page = fs.clock.now_ns() - t0;
        let t1 = fs.clock.now_ns();
        fs.write_at("f", 0, &vec![0u8; 8 * PAGE]).unwrap();
        let eight_pages = fs.clock.now_ns() - t1;
        assert!(eight_pages > one_page);
        assert_eq!(
            fs.stats.pages,
            (1 + 8) /* create charged 1 page min? no: 0-byte op charges 1 page */ + 1
        );
    }

    #[test]
    fn disk_is_slower_than_nvbm_fs() {
        let mut nvbm = SimFs::on_nvbm();
        let mut disk = SimFs::on_disk();
        nvbm.write_all("f", &vec![0u8; 64 * PAGE]);
        disk.write_all("f", &vec![0u8; 64 * PAGE]);
        assert!(disk.clock.now_ns() > 10 * nvbm.clock.now_ns());
    }

    #[test]
    fn sync_charges_barrier_cost() {
        let mut fs = SimFs::on_disk();
        fs.write_all("f", b"checkpoint");
        let t0 = fs.clock.now_ns();
        fs.sync();
        assert_eq!(fs.clock.now_ns() - t0, BlockDeviceModel::hard_disk().sync_ns);
    }

    #[test]
    fn stats_accumulate() {
        let mut fs = SimFs::on_nvbm();
        fs.write_all("f", &[1u8; 100]);
        let mut buf = vec![0u8; 100];
        fs.read_at("f", 0, &mut buf).unwrap();
        assert_eq!(fs.stats.bytes_written, 100);
        assert_eq!(fs.stats.bytes_read, 100);
        assert_eq!(fs.stats.ops, 2);
    }
}
