//! POSIX-flavoured handle interface.
//!
//! Gerris accesses snapshots through `gfs_output_file_open` /
//! `gfs_output_file_close` wrappers over POSIX I/O; this module provides
//! the equivalent descriptor-based veneer over [`SimFs`] so the baselines
//! read like the original code paths.

use crate::file::SimFs;

/// File descriptor handed out by [`PosixFs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub usize);

/// Open flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only; fails if missing.
    Read,
    /// Write; creates or truncates.
    Write,
    /// Read/write; creates if missing, preserves contents.
    ReadWrite,
}

/// Errors from the POSIX veneer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosixError {
    /// Open of a missing file in `Read` mode.
    NotFound(String),
    /// Operation on a closed or invalid descriptor.
    BadFd,
}

impl std::fmt::Display for PosixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PosixError::NotFound(n) => write!(f, "no such file: {n}"),
            PosixError::BadFd => write!(f, "bad file descriptor"),
        }
    }
}

impl std::error::Error for PosixError {}

struct OpenFile {
    name: String,
    cursor: usize,
}

/// Descriptor table over a [`SimFs`].
pub struct PosixFs {
    /// The underlying file system (public so cost/statistics are visible).
    pub fs: SimFs,
    table: Vec<Option<OpenFile>>,
}

impl PosixFs {
    /// Wrap a simulated file system.
    pub fn new(fs: SimFs) -> Self {
        PosixFs { fs, table: Vec::new() }
    }

    /// Open `name` with `mode`.
    pub fn open(&mut self, name: &str, mode: OpenMode) -> Result<Fd, PosixError> {
        match mode {
            OpenMode::Read => {
                if !self.fs.exists(name) {
                    return Err(PosixError::NotFound(name.to_string()));
                }
            }
            OpenMode::Write => self.fs.create(name),
            OpenMode::ReadWrite => {
                if !self.fs.exists(name) {
                    self.fs.create(name);
                }
            }
        }
        let of = OpenFile { name: name.to_string(), cursor: 0 };
        for (i, slot) in self.table.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(of);
                return Ok(Fd(i));
            }
        }
        self.table.push(Some(of));
        Ok(Fd(self.table.len() - 1))
    }

    fn entry(&mut self, fd: Fd) -> Result<&mut OpenFile, PosixError> {
        self.table.get_mut(fd.0).and_then(Option::as_mut).ok_or(PosixError::BadFd)
    }

    /// Sequential read at the cursor; returns bytes read (0 at EOF).
    pub fn read(&mut self, fd: Fd, buf: &mut [u8]) -> Result<usize, PosixError> {
        let (name, cursor) = {
            let e = self.entry(fd)?;
            (e.name.clone(), e.cursor)
        };
        let n = self.fs.read_at(&name, cursor, buf).map_err(|_| PosixError::BadFd)?;
        self.entry(fd)?.cursor += n;
        Ok(n)
    }

    /// Sequential write at the cursor.
    pub fn write(&mut self, fd: Fd, data: &[u8]) -> Result<usize, PosixError> {
        let (name, cursor) = {
            let e = self.entry(fd)?;
            (e.name.clone(), e.cursor)
        };
        self.fs.write_at(&name, cursor, data).map_err(|_| PosixError::BadFd)?;
        self.entry(fd)?.cursor += data.len();
        Ok(data.len())
    }

    /// Absolute seek.
    pub fn seek(&mut self, fd: Fd, pos: usize) -> Result<(), PosixError> {
        self.entry(fd)?.cursor = pos;
        Ok(())
    }

    /// Durability barrier on an open descriptor: charges the device's
    /// cache-flush cost (see [`SimFs::sync`]). POSIX `fsync(2)` semantics —
    /// the fd must be valid, and on return the file's written pages are on
    /// stable media.
    pub fn fsync(&mut self, fd: Fd) -> Result<(), PosixError> {
        self.entry(fd)?;
        self.fs.sync();
        Ok(())
    }

    /// Close a descriptor.
    pub fn close(&mut self, fd: Fd) -> Result<(), PosixError> {
        let slot = self.table.get_mut(fd.0).ok_or(PosixError::BadFd)?;
        if slot.take().is_none() {
            return Err(PosixError::BadFd);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> PosixFs {
        PosixFs::new(SimFs::on_nvbm())
    }

    #[test]
    fn open_write_read_close() {
        let mut p = pfs();
        let fd = p.open("snap", OpenMode::Write).unwrap();
        p.write(fd, b"hello ").unwrap();
        p.write(fd, b"world").unwrap();
        p.close(fd).unwrap();
        let fd = p.open("snap", OpenMode::Read).unwrap();
        let mut buf = [0u8; 11];
        assert_eq!(p.read(fd, &mut buf).unwrap(), 11);
        assert_eq!(&buf, b"hello world");
        assert_eq!(p.read(fd, &mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn read_missing_fails() {
        let mut p = pfs();
        assert!(matches!(p.open("nope", OpenMode::Read), Err(PosixError::NotFound(_))));
    }

    #[test]
    fn write_truncates() {
        let mut p = pfs();
        let fd = p.open("f", OpenMode::Write).unwrap();
        p.write(fd, b"long content").unwrap();
        p.close(fd).unwrap();
        let fd = p.open("f", OpenMode::Write).unwrap();
        p.write(fd, b"hi").unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.fs.len("f"), Some(2));
    }

    #[test]
    fn readwrite_preserves() {
        let mut p = pfs();
        p.fs.write_all("f", b"keep");
        let fd = p.open("f", OpenMode::ReadWrite).unwrap();
        let mut buf = [0u8; 4];
        p.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"keep");
    }

    #[test]
    fn seek_moves_cursor() {
        let mut p = pfs();
        p.fs.write_all("f", b"0123456789");
        let fd = p.open("f", OpenMode::Read).unwrap();
        p.seek(fd, 5).unwrap();
        let mut buf = [0u8; 3];
        p.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"567");
    }

    #[test]
    fn closed_fd_is_invalid() {
        let mut p = pfs();
        let fd = p.open("f", OpenMode::Write).unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.close(fd), Err(PosixError::BadFd));
        let mut buf = [0u8; 1];
        assert_eq!(p.read(fd, &mut buf), Err(PosixError::BadFd));
    }

    #[test]
    fn fsync_charges_and_validates_fd() {
        let mut p = pfs();
        let fd = p.open("f", OpenMode::Write).unwrap();
        p.write(fd, b"data").unwrap();
        let t0 = p.fs.clock.now_ns();
        p.fsync(fd).unwrap();
        assert!(p.fs.clock.now_ns() > t0, "fsync must cost time");
        p.close(fd).unwrap();
        assert_eq!(p.fsync(fd), Err(PosixError::BadFd));
    }

    #[test]
    fn fd_slots_reused() {
        let mut p = pfs();
        let a = p.open("a", OpenMode::Write).unwrap();
        let b = p.open("b", OpenMode::Write).unwrap();
        p.close(a).unwrap();
        let c = p.open("c", OpenMode::Write).unwrap();
        assert_eq!(a, c, "slot reuse");
        assert_ne!(b, c);
    }
}
