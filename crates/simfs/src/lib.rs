//! A simulated file system over a block-device cost model.
//!
//! Two of the paper's three octree implementations go through a file
//! system: the in-core baseline writes whole-tree **snapshot files**
//! (Gerris' `gfs_output_write`), and the Etree baseline stores octant
//! **pages** behind a B-tree index. Both pay (a) per-operation software
//! overhead (syscall + FS path) and (b) page-granularity transfer costs —
//! even when the backing device is NVBM, which is the paper's point: "I/O
//! optimization techniques used in these algorithms only incur additional
//! memory latency, which may offset the benefits of NVBM".
//!
//! The device is chosen by a [`BlockDeviceModel`]; costs are charged to a
//! [`VirtualClock`](pmoctree_nvbm::VirtualClock) the same way `pmoctree-nvbm` charges byte-level
//! accesses.
#![warn(missing_docs)]

pub mod file;
pub mod posix;

pub use file::{FsStats, SimFs};
pub use posix::{Fd, OpenMode, PosixError, PosixFs};

pub use pmoctree_nvbm::model::BlockDeviceModel;
