//! The droplet-ejection workload (§5.1's "driving scientific problem").
//!
//! An inkjet liquid jet grows from a nozzle, necks under a
//! Rayleigh–Plateau perturbation, pinches off, and breaks into primary
//! and satellite droplets. The interface is prescribed analytically
//! ([`interface::DropletEjection`]); refinement criteria
//! ([`criteria::InterfaceCriterion`]) keep the mesh fine in a band around
//! it, and finite-volume-style sweeps ([`sweeps`]) reproduce the
//! write-intensive access mix the paper measured. [`driver::Simulation`]
//! ties it together with per-routine virtual-time breakdowns.
#![warn(missing_docs)]

pub mod criteria;
pub mod driver;
pub mod interface;
pub mod levelset;
pub mod persistent;
pub mod sweeps;

pub use criteria::{refinement_feature, solver_feature, InterfaceCriterion, SharedTime};
pub use driver::{RunReport, SimConfig, Simulation, StepBreakdown};
pub use interface::{DropletEjection, DropletParams};
pub use levelset::{advect_levelset, BoilingFlow, DropletImpact, LevelSet, LevelSetCriterion};
pub use persistent::{
    canonical_pm_cfg, reattach, resume_persistent, run_persistent, run_persistent_partial,
    PersistentRun, Reattach, RunState, RUN_ROOT, RUN_TENANT,
};
pub use sweeps::{advect, estimate_work, relax_pressure, relax_pressure_neighbors};
