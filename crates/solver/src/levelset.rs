//! The level-set abstraction and the other two workloads the paper's
//! introduction motivates.
//!
//! §1 lists three simulations enabled by octree AMR: "droplet ejection in
//! inkjet technology, droplet impact on a solid surface, and rapid
//! boiling flow". The ejection case drives the evaluation
//! ([`crate::interface::DropletEjection`]); this module adds analytic
//! interfaces for the other two, behind a common [`LevelSet`] trait so
//! the adaptation criterion and sweeps work with any of them.

use pmoctree_amr::{AdaptCriterion, Cell, OctreeBackend, Target};
use pmoctree_morton::OctKey;

use crate::criteria::SharedTime;
use crate::interface::DropletEjection;
use crate::sweeps::NARROW_BAND;

/// A time-dependent signed-distance field describing a liquid interface.
pub trait LevelSet {
    /// Signed distance to the interface at `x`, time `t` (negative =
    /// liquid).
    fn phi(&self, x: [f64; 3], t: f64) -> f64;

    /// Volume-of-fluid fraction: smoothed Heaviside of `phi` over `eps`.
    fn vof(&self, x: [f64; 3], t: f64, eps: f64) -> f64 {
        let p = self.phi(x, t);
        if p < -eps {
            1.0
        } else if p > eps {
            0.0
        } else {
            0.5 * (1.0 - p / eps - (std::f64::consts::PI * p / eps).sin() / std::f64::consts::PI)
        }
    }

    /// Is `x` within `band` of the interface?
    fn near_interface(&self, x: [f64; 3], t: f64, band: f64) -> bool {
        self.phi(x, t).abs() < band
    }
}

impl LevelSet for DropletEjection {
    fn phi(&self, x: [f64; 3], t: f64) -> f64 {
        DropletEjection::phi(self, x, t)
    }

    fn vof(&self, x: [f64; 3], t: f64, eps: f64) -> f64 {
        DropletEjection::vof(self, x, t, eps)
    }
}

/// Droplet impact on a solid surface (Josserand & Thoroddsen, Yarin):
/// a sphere falls onto the `z = 0` wall, then spreads into a thinning
/// lamella whose radius grows like √t (the classic spreading law).
#[derive(Clone, Copy, Debug)]
pub struct DropletImpact {
    /// Droplet radius.
    pub radius: f64,
    /// Center height at `t = 0`.
    pub height0: f64,
    /// Fall speed (domain lengths per unit time).
    pub speed: f64,
    /// Lamella spreading coefficient (`r(t) = radius·(1 + c·√τ)`).
    pub spread: f64,
}

impl Default for DropletImpact {
    fn default() -> Self {
        DropletImpact { radius: 0.12, height0: 0.6, speed: 1.2, spread: 2.5 }
    }
}

impl DropletImpact {
    /// Time at which the droplet's lower pole reaches the wall.
    pub fn impact_time(&self) -> f64 {
        (self.height0 - self.radius) / self.speed
    }
}

impl LevelSet for DropletImpact {
    fn phi(&self, x: [f64; 3], t: f64) -> f64 {
        let t_i = self.impact_time();
        let r_xy = ((x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2)).sqrt();
        if t < t_i {
            // Falling sphere.
            let zc = self.height0 - self.speed * t;
            ((x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2) + (x[2] - zc).powi(2)).sqrt() - self.radius
        } else {
            // Spreading lamella: a flattening disc on the wall. Volume
            // conservation thins the sheet as it spreads.
            let tau = t - t_i;
            let r_l = self.radius * (1.0 + self.spread * tau.sqrt());
            let h = (4.0 / 3.0) * self.radius.powi(3) / (r_l * r_l); // ~volume / area
                                                                     // Distance to a disc of radius r_l, height h on z = 0.
            let dr = r_xy - r_l;
            let dz = x[2] - h;
            if dr <= 0.0 {
                dz.max(-x[2].min(h)) // inside the rim: distance to the top face
            } else if dz <= 0.0 {
                dr
            } else {
                (dr * dr + dz * dz).sqrt()
            }
        }
    }
}

/// Rapid boiling flow (Carey, *Liquid-Vapor Phase-Change Phenomena*):
/// vapor bubbles nucleate at fixed wall sites, grow like √t, and rise.
/// `phi` is negative inside the vapor (the tracked phase).
#[derive(Clone, Debug)]
pub struct BoilingFlow {
    /// Nucleation sites on the bottom wall with their activation times.
    pub sites: Vec<([f64; 2], f64)>,
    /// Bubble growth coefficient (`r = g·√(t−t0)`).
    pub growth: f64,
    /// Rise speed once detached.
    pub rise: f64,
    /// Radius at which a bubble detaches from the wall.
    pub detach_radius: f64,
}

impl Default for BoilingFlow {
    fn default() -> Self {
        // Deterministic pseudo-random sites (no RNG: positions from a
        // low-discrepancy sequence so runs are reproducible).
        let sites = (0..6)
            .map(|i| {
                let g = 0.618_033_988_75f64;
                let x = (0.17 + g * i as f64).fract();
                let y = (0.39 + g * g * i as f64).fract();
                ([0.1 + 0.8 * x, 0.1 + 0.8 * y], 0.08 * i as f64)
            })
            .collect();
        BoilingFlow { sites, growth: 0.22, rise: 0.6, detach_radius: 0.09 }
    }
}

impl LevelSet for BoilingFlow {
    fn phi(&self, x: [f64; 3], t: f64) -> f64 {
        let mut d = f64::INFINITY;
        for &([sx, sy], t0) in &self.sites {
            if t <= t0 {
                continue;
            }
            let age = t - t0;
            let r = (self.growth * age.sqrt()).min(0.14);
            // Time the bubble reaches detachment size.
            let t_detach = (self.detach_radius / self.growth).powi(2);
            let zc = if age < t_detach {
                r * 0.8 // still attached: center near the wall
            } else {
                self.detach_radius * 0.8 + self.rise * (age - t_detach)
            };
            let zc = zc.min(1.2); // leaves through the top
            let dd = ((x[0] - sx).powi(2) + (x[1] - sy).powi(2) + (x[2] - zc).powi(2)).sqrt() - r;
            d = d.min(dd);
        }
        d.min(2.0)
    }
}

/// An adaptation criterion for any [`LevelSet`]: refine in a band around
/// the interface (the generic form of
/// [`InterfaceCriterion`](crate::criteria::InterfaceCriterion)).
pub struct LevelSetCriterion<L: LevelSet> {
    /// The interface.
    pub levelset: L,
    /// Shared simulation time.
    pub time: SharedTime,
    /// Band half-width in cell sizes.
    pub band_cells: f64,
    /// Maximum refinement level.
    pub max_level: u8,
}

impl<L: LevelSet> AdaptCriterion for LevelSetCriterion<L> {
    fn target(&self, key: &OctKey, _data: &Cell) -> Target {
        let t = self.time.get();
        let h = key.extent();
        let d = self.levelset.phi(key.center(), t).abs();
        if d < self.band_cells * h {
            Target::Refine
        } else if d > 4.0 * self.band_cells * h {
            Target::Coarsen
        } else {
            Target::Keep
        }
    }

    fn max_level(&self) -> u8 {
        self.max_level
    }
}

/// Generic advection sweep for any [`LevelSet`] (the
/// [`advect`](crate::sweeps::advect) kernel without the concrete type).
pub fn advect_levelset(b: &mut dyn OctreeBackend, ls: &dyn LevelSet, t: f64) -> usize {
    let mut written = 0usize;
    b.update_leaves(&mut |k, d: &Cell| {
        let h = k.extent();
        let phi = ls.phi(k.center(), t).clamp(-NARROW_BAND, NARROW_BAND);
        let vof = ls.vof(k.center(), t, h);
        let changed = (d[0] - phi).abs() > 1e-6 * h || (d[2] - vof).abs() > 1e-9;
        if changed {
            written += 1;
            Some([phi, d[1], vof, d[3]])
        } else {
            None
        }
    });
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmoctree_amr::{adapt, check_balance, construct_uniform, InCoreBackend};

    #[test]
    fn impact_sphere_falls_then_spreads() {
        let f = DropletImpact::default();
        let t_i = f.impact_time();
        assert!(t_i > 0.0);
        // Before impact: liquid at the falling center, wall dry.
        let zc0 = f.height0 - f.speed * (t_i * 0.5);
        assert!(f.phi([0.5, 0.5, zc0], t_i * 0.5) < 0.0);
        assert!(f.phi([0.5, 0.5, 0.01], t_i * 0.5) > 0.0, "wall dry before impact");
        // After impact: a sheet on the wall, wider than the droplet.
        let t = t_i + 0.2;
        assert!(f.phi([0.5, 0.5, 0.01], t) < 0.0, "wall wetted");
        let r_probe = f.radius * 1.5;
        assert!(
            f.phi([0.5 + r_probe, 0.5, 0.01], t) < 0.0,
            "lamella spreads past the droplet radius"
        );
        // High above the wall: gas again.
        assert!(f.phi([0.5, 0.5, 0.5], t) > 0.0);
    }

    #[test]
    fn lamella_radius_grows() {
        let f = DropletImpact::default();
        let t_i = f.impact_time();
        let wet = |t: f64| -> f64 {
            // Largest r with liquid at the wall.
            let mut r = 0.0;
            for i in 0..200 {
                let rr = i as f64 / 400.0;
                if f.phi([0.5 + rr, 0.5, 0.005], t) < 0.0 {
                    r = rr;
                }
            }
            r
        };
        let r1 = wet(t_i + 0.05);
        let r2 = wet(t_i + 0.4);
        assert!(r2 > r1, "lamella must spread: {r1} -> {r2}");
    }

    #[test]
    fn boiling_bubbles_nucleate_grow_and_rise() {
        let f = BoilingFlow::default();
        let site = f.sites[0].0;
        // Before activation: no vapor.
        assert!(f.phi([site[0], site[1], 0.05], 0.0) > 0.0);
        // Shortly after: a small bubble at the wall.
        assert!(f.phi([site[0], site[1], 0.03], 0.1) < 0.0);
        // Much later: the first bubble has risen off the wall.
        let t = 1.2;
        assert!(f.phi([site[0], site[1], 0.02], t) > 0.0, "wall site vacated");
        let mut found_above = false;
        for i in 1..40 {
            let z = i as f64 / 40.0;
            if f.phi([site[0], site[1], z], t) < 0.0 {
                found_above = true;
            }
        }
        assert!(found_above, "risen bubble somewhere in the column");
    }

    #[test]
    fn multiple_bubbles_active_simultaneously() {
        let f = BoilingFlow::default();
        let t = 0.6;
        let active = f
            .sites
            .iter()
            .filter(|&&([x, y], _)| (0..30).any(|i| f.phi([x, y, i as f64 / 30.0], t) < 0.0))
            .count();
        assert!(active >= 3, "only {active} active bubble columns at t={t}");
    }

    #[test]
    fn generic_criterion_adapts_to_any_levelset() {
        let time = SharedTime::new();
        for (name, ls) in [
            ("impact", Box::new(DropletImpact::default()) as Box<dyn LevelSet>),
            ("boiling", Box::new(BoilingFlow::default())),
        ] {
            let mut b = InCoreBackend::new();
            construct_uniform(&mut b, 2);
            time.set(0.5);
            struct DynCrit<'a> {
                ls: &'a dyn LevelSet,
                time: SharedTime,
            }
            impl AdaptCriterion for DynCrit<'_> {
                fn target(&self, key: &OctKey, _d: &Cell) -> Target {
                    let t = self.time.get();
                    let h = key.extent();
                    let d = self.ls.phi(key.center(), t).abs();
                    if d < 1.2 * h {
                        Target::Refine
                    } else if d > 4.8 * h {
                        Target::Coarsen
                    } else {
                        Target::Keep
                    }
                }
                fn max_level(&self) -> u8 {
                    4
                }
            }
            let crit = DynCrit { ls: ls.as_ref(), time: time.clone() };
            for _ in 0..2 {
                adapt(&mut b, &crit);
            }
            advect_levelset(&mut b, ls.as_ref(), 0.5);
            assert!(b.depth() >= 3, "{name}: interface must drive refinement");
            assert!(check_balance(&mut b).is_none(), "{name}: 2:1 holds");
            // Fine cells hug the interface.
            let mut fine_far = 0usize;
            b.for_each_leaf(&mut |k, _| {
                if k.level() == 4 && ls.phi(k.center(), 0.5).abs() > 0.3 {
                    fine_far += 1;
                }
            });
            assert_eq!(fine_far, 0, "{name}: no fine cells far from the interface");
        }
    }

    #[test]
    fn typed_levelset_criterion_compiles_and_votes() {
        let time = SharedTime::new();
        time.set(0.3);
        let c = LevelSetCriterion {
            levelset: DropletImpact::default(),
            time,
            band_cells: 1.0,
            max_level: 5,
        };
        // The falling droplet's surface cell refines; a far corner coarsens.
        let f = DropletImpact::default();
        let zc = f.height0 - f.speed * 0.3;
        let on = OctKey::from_coords([8, 8, (zc * 16.0) as u64 + 2], 4);
        let far = OctKey::from_coords([0, 0, 15], 4);
        assert_eq!(c.target(&on, &[0.0; 4]), Target::Refine);
        assert_eq!(c.target(&far, &[0.0; 4]), Target::Coarsen);
    }
}
