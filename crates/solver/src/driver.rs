//! The simulation driver: one droplet-ejection run over any backend,
//! with per-routine timing breakdowns (the quantities behind Figures
//! 6–11).

use pmoctree_amr::{adapt, balance_subset, OctreeBackend};

use crate::criteria::{InterfaceCriterion, SharedTime};
use crate::interface::DropletEjection;
use crate::sweeps::{advect, estimate_work, relax_pressure};

/// Simulation configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of time steps.
    pub steps: usize,
    /// Simulated time at step 0.
    pub t0: f64,
    /// Time increment per step.
    pub dt: f64,
    /// Maximum refinement level (controls the element count).
    pub max_level: u8,
    /// Base uniform level built by `Construct`.
    pub base_level: u8,
    /// Interface band half-width in cell sizes.
    pub band_cells: f64,
    /// Pressure relaxation iterations per step.
    pub relax_iters: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            steps: 20,
            t0: 0.1,
            dt: 0.04,
            max_level: 5,
            base_level: 2,
            band_cells: 1.2,
            relax_iters: 2,
        }
    }
}

/// Virtual-time breakdown of one step across the §2 meshing routines.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepBreakdown {
    /// Refine & Coarsen time (ns, virtual).
    pub refine_ns: u64,
    /// Balance time.
    pub balance_ns: u64,
    /// Solve (advect + relax) time.
    pub solve_ns: u64,
    /// Persistence time (persist / snapshot / flush).
    pub persist_ns: u64,
    /// Leaves at the end of the step.
    pub leaves: usize,
}

impl StepBreakdown {
    /// Total virtual time of the step.
    pub fn total_ns(&self) -> u64 {
        self.refine_ns + self.balance_ns + self.solve_ns + self.persist_ns
    }
}

/// Aggregate over a run.
#[derive(Debug, Default, Clone)]
pub struct RunReport {
    /// Per-step breakdowns.
    pub steps: Vec<StepBreakdown>,
}

impl RunReport {
    /// Sum of a component over all steps, in virtual seconds.
    pub fn total_secs(&self) -> f64 {
        self.steps.iter().map(|s| s.total_ns()).sum::<u64>() as f64 * 1e-9
    }

    /// Component sums `[refine, balance, solve, persist]` in seconds.
    pub fn component_secs(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for s in &self.steps {
            out[0] += s.refine_ns as f64 * 1e-9;
            out[1] += s.balance_ns as f64 * 1e-9;
            out[2] += s.solve_ns as f64 * 1e-9;
            out[3] += s.persist_ns as f64 * 1e-9;
        }
        out
    }

    /// Peak element (leaf) count over the run.
    pub fn peak_leaves(&self) -> usize {
        self.steps.iter().map(|s| s.leaves).max().unwrap_or(0)
    }
}

/// The droplet-ejection simulation bound to a time source.
pub struct Simulation {
    /// The analytic interface.
    pub interface: DropletEjection,
    /// Shared time (feature functions read this).
    pub time: SharedTime,
    /// Configuration.
    pub cfg: SimConfig,
}

impl Simulation {
    /// New simulation with the given config.
    pub fn new(cfg: SimConfig) -> Self {
        Simulation { interface: DropletEjection::default(), time: SharedTime::new(), cfg }
    }

    /// Build the initial mesh: uniform base grid, then adapt to the
    /// interface at `t0` (the `Construct` phase).
    pub fn construct(&self, b: &mut dyn OctreeBackend) {
        let tr = b.tracer();
        tr.begin("construct", b.elapsed_ns(), None);
        pmoctree_amr::construct_uniform(b, self.cfg.base_level);
        self.time.set(self.cfg.t0);
        let crit = self.criterion();
        // Iterate adaptation to let refinement reach max_level.
        for _ in 0..(self.cfg.max_level - self.cfg.base_level).max(1) {
            adapt(b, &crit);
        }
        advect(b, &self.interface, self.cfg.t0);
        estimate_work(b);
        tr.end("construct", b.elapsed_ns());
    }

    fn criterion(&self) -> InterfaceCriterion {
        InterfaceCriterion {
            interface: self.interface,
            time: self.time.clone(),
            band_cells: self.cfg.band_cells,
            max_level: self.cfg.max_level,
        }
    }

    /// Run one time step, returning its breakdown.
    pub fn step(&self, mut b: &mut dyn OctreeBackend, step_idx: usize) -> StepBreakdown {
        self.step_core(&mut b, step_idx, |b, _partial, _t3| {
            b.end_of_step(step_idx + 1);
            None
        })
    }

    /// One time step with a custom persistence action (the
    /// whole-application-persistence seam; [`Simulation::step`] is this
    /// with `end_of_step`). `persist` runs at the persist point and
    /// receives the breakdown so far (refine/balance/solve/leaves filled)
    /// plus the clock reading `t3` at persist entry; returning
    /// `Some(ns)` overrides the recorded `persist_ns` (used when the
    /// persisted run state must itself contain the value — anything the
    /// persistence action spends *after* staging it is deliberately
    /// unattributed, identically in original and resumed runs).
    pub fn step_core<B: OctreeBackend>(
        &self,
        b: &mut B,
        step_idx: usize,
        persist: impl FnOnce(&mut B, &StepBreakdown, u64) -> Option<u64>,
    ) -> StepBreakdown {
        let t = self.cfg.t0 + self.cfg.dt * (step_idx as f64 + 1.0);
        self.time.set(t);
        let crit = self.criterion();
        let mut out = StepBreakdown::default();
        // Driver-level phases are emitted as explicit begin/end events at
        // the same clock reads used for the breakdown, so the trace and
        // the `StepBreakdown` agree exactly.
        let tr = b.tracer();

        let t0 = b.elapsed_ns();
        tr.begin("step", t0, Some(step_idx as u64));
        tr.begin("step::refine", t0, None);
        adapt(b, &crit);
        let t1 = b.elapsed_ns();
        tr.end("step::refine", t1);
        tr.begin("step::balance", t1, None);
        out.refine_ns = t1 - t0;

        // Balance is enforced on the fly by the balanced adapt
        // primitives; this pass re-checks only the active band (where
        // this step's changes happened), like Gerris does.
        let mut active = Vec::new();
        b.for_each_leaf(&mut |k, d: &pmoctree_amr::Cell| {
            if d[0].abs() < 8.0 * k.extent() {
                active.push(k);
            }
        });
        balance_subset(b, &active);
        let t2 = b.elapsed_ns();
        tr.end("step::balance", t2);
        tr.begin("step::solve", t2, None);
        out.balance_ns = t2 - t1;

        advect(b, &self.interface, t);
        relax_pressure(b, self.cfg.relax_iters);
        estimate_work(b);
        let t3 = b.elapsed_ns();
        tr.end("step::solve", t3);
        tr.begin("step::persist", t3, None);
        out.solve_ns = t3 - t2;
        out.leaves = b.leaf_count();

        let staged_ns = persist(b, &out, t3);
        let t4 = b.elapsed_ns();
        tr.end("step::persist", t4);
        tr.end("step", t4);
        out.persist_ns = staged_ns.unwrap_or(t4 - t3);
        out
    }

    /// Run the full configured simulation (construct + all steps).
    pub fn run(&self, b: &mut dyn OctreeBackend) -> RunReport {
        self.construct(b);
        let mut report = RunReport::default();
        for s in 0..self.cfg.steps {
            report.steps.push(self.step(b, s));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_octree::{PmConfig, PmOctree};
    use pmoctree_amr::{check_balance, EtreeBackend, InCoreBackend, PmBackend};
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn sim() -> Simulation {
        Simulation::new(SimConfig { steps: 6, max_level: 4, base_level: 2, ..SimConfig::default() })
    }

    fn pm_backend() -> PmBackend {
        PmBackend::new(PmOctree::create(
            NvbmArena::new(64 << 20, DeviceModel::default()),
            PmConfig { dynamic_transform: false, ..PmConfig::default() },
        ))
    }

    #[test]
    fn construct_adapts_to_interface() {
        let s = sim();
        let mut b = InCoreBackend::new();
        s.construct(&mut b);
        assert!(b.depth() > s.cfg.base_level, "refinement beyond the base grid");
        assert!(b.leaf_count() > 64);
        assert!(check_balance(&mut b).is_none());
    }

    #[test]
    fn run_produces_breakdowns() {
        let s = sim();
        let mut b = InCoreBackend::new();
        let report = s.run(&mut b);
        assert_eq!(report.steps.len(), 6);
        for st in &report.steps {
            assert!(st.solve_ns > 0, "solve must cost time");
            assert!(st.leaves > 0);
        }
        assert!(report.total_secs() > 0.0);
        let comps = report.component_secs();
        assert!((comps.iter().sum::<f64>() - report.total_secs()).abs() < 1e-9);
    }

    #[test]
    fn mesh_tracks_moving_interface() {
        let s = sim();
        let mut b = InCoreBackend::new();
        s.construct(&mut b);
        // Fine cells at t0 follow the tip; after several steps the fine
        // region must have moved upward in z.
        let fine_centroid_z = |b: &mut InCoreBackend| {
            let mut z = 0.0;
            let mut n = 0.0f64;
            b.for_each_leaf(&mut |k, _| {
                if k.level() == 4 {
                    z += k.center()[2];
                    n += 1.0;
                }
            });
            z / n.max(1.0)
        };
        let z0 = fine_centroid_z(&mut b);
        for st in 0..6 {
            s.step(&mut b, st);
        }
        let z1 = fine_centroid_z(&mut b);
        assert!(z1 > z0, "fine region should follow the jet tip: {z0} -> {z1}");
    }

    #[test]
    fn all_backends_complete_identical_meshes() {
        let s = sim();
        let mut pm = pm_backend();
        let mut ic = InCoreBackend::new();
        let mut et = EtreeBackend::on_nvbm();
        let rp = s.run(&mut pm);
        let ri = s.run(&mut ic);
        let re = s.run(&mut et);
        // Same element counts every step (determinism across backends).
        for i in 0..s.cfg.steps {
            assert_eq!(rp.steps[i].leaves, ri.steps[i].leaves, "step {i}");
            assert_eq!(rp.steps[i].leaves, re.steps[i].leaves, "step {i}");
        }
        // PM-octree persisted every step and saw sharing.
        assert_eq!(pm.tree.events.persists as usize, s.cfg.steps);
        assert!(pm.tree.events.overlap_ratio() > 0.3, "overlap {:?}", pm.tree.events.last_overlap);
    }

    #[test]
    fn pm_write_fraction_matches_paper_band() {
        let s = sim();
        let mut pm = pm_backend();
        s.run(&mut pm);
        let frac = pm.tree.store.arena.stats.overall_write_fraction();
        // §1 quotes 41% average / 72% max during meshing operations; our
        // harness additionally charges the read-only balance verification
        // sweep every step, so the aggregate lands lower. The repro
        // binary reports the per-phase fractions (see EXPERIMENTS.md).
        assert!((0.005..=0.8).contains(&frac), "write fraction {frac}");
    }
}
